// Deliberately broken RTL exercising the gila-lint RTL passes
// (GL011-GL013). The module is well-formed Verilog in the supported
// subset; the defects are semantic, not syntactic.
module broken_rtl(clk, go, noise, out);
  input clk;
  input go;
  input [7:0] noise;   // GL011: drives no logic
  output [7:0] out;
  reg [7:0] live;
  reg [7:0] floating;  // GL012: never driven, no reset value
  reg [7:0] shadow;    // GL013: driven, but never influences an output
  always @(posedge clk) begin
    live <= ((go == 1'b1) ? (live + 8'h01) : live);
    shadow <= (shadow + 8'h01);
  end
  assign out = live;
endmodule
