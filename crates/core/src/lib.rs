//! # gila-core — Instruction-Level Abstractions for general hardware modules
//!
//! The modeling half of the DATE 2021 methodology "Leveraging Processor
//! Modeling and Verification for General Hardware Modules":
//!
//! 1. Group a module's input pins into *ports* — each port presents a
//!    command ([`PortIla::input`]).
//! 2. Identify architectural states and instructions per port
//!    ([`PortIla::state`], [`PortIla::instr`], [`PortIla::sub_instr`]).
//! 3. *Integrate* ports that share state ([`integrate`]): the integrated
//!    instruction set is the cross product at sub-instruction
//!    granularity, and conflicting updates are resolved by a
//!    [`ConflictResolver`] — or flagged as specification gaps.
//! 4. The union of the now-independent ports is the module-ILA
//!    ([`ModuleIla::compose`]).
//!
//! Well-formedness (exactly one instruction per command) is checked with
//! SAT ([`decode_gap`], [`decode_overlaps`]); models execute concretely
//! via [`PortSimulator`] / [`ModuleSimulator`]. Verification of RTL
//! implementations against these models lives in `gila-verify`.
//!
//! # Examples
//!
//! ```
//! use gila_core::{ModuleIla, PortIla, StateKind};
//! use gila_expr::Sort;
//!
//! // A single-command-interface module (paper §III-A).
//! let mut p = PortIla::new("decoder");
//! let wait = p.input("wait", Sort::Bv(1));
//! p.state("alu_op", Sort::Bv(4), StateKind::Output);
//! let d = p.ctx_mut().eq_u64(wait, 1);
//! p.instr("stall").decode(d).add()?;
//! let d = p.ctx_mut().eq_u64(wait, 0);
//! p.instr("process").decode(d).add()?;
//! let module = ModuleIla::single_port(p);
//! assert_eq!(module.stats().instructions, 2);
//! # Ok::<(), gila_core::ModelError>(())
//! ```

#![warn(missing_docs)]

mod check;
mod compose;
mod describe;
mod model;
mod module;
mod sim;

pub use check::{
    dead_instructions, decode_gap, decode_overlap_pair, decode_overlaps, instruction_dead,
    DecodeOverlap, Witness,
};
pub use compose::{
    integrate, shared_states, shared_updated_states, AuxStateSpec, ConflictResolver, IntegrateError, NoResolver,
    PortPriorityResolver, Resolution, RoundRobinResolver, Side, SpecificationGap,
    ValuePriorityResolver,
};
pub use model::{InputVar, InstrBuilder, Instruction, ModelError, PortIla, StateKind, StateVar};
pub use module::{ComposeError, ModuleIla, ModuleIlaStats};
pub use sim::{InputMap, ModuleSimulator, PortSimulator, SimError, StateMap};
