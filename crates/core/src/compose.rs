//! Integration of port-ILAs that share architectural state.
//!
//! When two or more ports can update the same state in the same cycle
//! (e.g. `mem_wait` in the 8051 memory interface, or the routing table in
//! the OpenPiton NoC router), they are *integrated* into a single
//! port-ILA whose instruction set is the cross product of the ports'
//! atomic instruction sets. Conflicting updates to shared state are
//! resolved by a [`ConflictResolver`] encoding what the informal
//! specification says; if the specification does not resolve a conflict,
//! integration fails with a *specification gap* — a genuine finding of
//! the methodology.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use gila_expr::{import, ExprCtx, ExprRef, Sort, Value};

use crate::model::{Instruction, ModelError, PortIla, StateKind};

/// One port's contribution to a conflicting update.
#[derive(Clone, Copy, Debug)]
pub struct Side<'a> {
    /// Name of the contributing port.
    pub port: &'a str,
    /// Index of the contributing port in the integration order.
    pub port_index: usize,
    /// Name of the contributing atomic instruction.
    pub instruction: &'a str,
    /// The (already imported) update expression.
    pub update: ExprRef,
}

/// A resolver's answer for one conflicting state in one instruction combo.
#[derive(Clone, Debug)]
pub struct Resolution {
    /// The resolved update expression for the shared state.
    pub update: ExprRef,
    /// Additional updates to resolver-owned auxiliary states (e.g. a
    /// round-robin pointer advancing past the granted port).
    pub extra_updates: Vec<(String, ExprRef)>,
}

/// An auxiliary architectural state a resolver needs (e.g. an arbiter
/// pointer), declared on the integrated port.
#[derive(Clone, Debug)]
pub struct AuxStateSpec {
    /// State name (must not clash with any port's declarations).
    pub name: String,
    /// Sort of the state.
    pub sort: Sort,
    /// Optional reset value.
    pub init: Option<Value>,
}

/// Resolves conflicting updates to shared states during integration,
/// encoding the priority/arbitration rules of the informal specification.
pub trait ConflictResolver {
    /// Auxiliary states this resolver introduces on the integrated port.
    fn aux_states(&self) -> Vec<AuxStateSpec> {
        Vec::new()
    }

    /// Resolves a conflict: at least two sides update `state` with
    /// non-identical expressions. Returning `None` flags a specification
    /// gap for this instruction combination.
    fn resolve(&self, ctx: &mut ExprCtx, state: &str, sides: &[Side<'_>]) -> Option<Resolution>;
}

/// The default resolver: every conflict is a specification gap.
///
/// Use this when the informal specification is silent about simultaneous
/// updates — integration will then report exactly which instruction
/// combinations the specification fails to cover.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoResolver;

impl ConflictResolver for NoResolver {
    fn resolve(&self, _ctx: &mut ExprCtx, _state: &str, _sides: &[Side<'_>]) -> Option<Resolution> {
        None
    }
}

/// Resolves conflicts by fixed port priority: the side from the
/// earliest-listed port wins. Ports not listed rank after listed ones,
/// by integration order.
#[derive(Clone, Debug, Default)]
pub struct PortPriorityResolver {
    order: Vec<String>,
}

impl PortPriorityResolver {
    /// Creates a resolver preferring ports in the given order.
    pub fn new<I, S>(order: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        PortPriorityResolver {
            order: order.into_iter().map(Into::into).collect(),
        }
    }

    fn rank(&self, side: &Side<'_>) -> (usize, usize) {
        let listed = self
            .order
            .iter()
            .position(|p| p == side.port)
            .unwrap_or(self.order.len());
        (listed, side.port_index)
    }
}

impl ConflictResolver for PortPriorityResolver {
    fn resolve(&self, _ctx: &mut ExprCtx, _state: &str, sides: &[Side<'_>]) -> Option<Resolution> {
        let winner = sides.iter().min_by_key(|s| self.rank(s))?;
        Some(Resolution {
            update: winner.update,
            extra_updates: Vec::new(),
        })
    }
}

/// Resolves conflicts by value priority: an update to the *preferred
/// constant value* wins (the 8051 memory interface rule "an update of
/// `mem_wait` to 1 has priority over an update to 0").
///
/// If several sides update to the preferred value, the lowest-indexed
/// port wins (they agree anyway). If no side updates to the preferred
/// constant, the conflict is a specification gap.
#[derive(Clone, Debug)]
pub struct ValuePriorityResolver {
    preferred: Value,
}

impl ValuePriorityResolver {
    /// Creates a resolver preferring updates equal to `preferred`.
    pub fn new(preferred: impl Into<Value>) -> Self {
        ValuePriorityResolver {
            preferred: preferred.into(),
        }
    }

    fn is_preferred(&self, ctx: &ExprCtx, e: ExprRef) -> bool {
        match &self.preferred {
            Value::Bool(b) => ctx.as_bool_const(e) == Some(*b),
            Value::Bv(v) => ctx.as_bv_const(e) == Some(v),
            Value::Mem(_) => false,
        }
    }
}

impl ConflictResolver for ValuePriorityResolver {
    fn resolve(&self, ctx: &mut ExprCtx, _state: &str, sides: &[Side<'_>]) -> Option<Resolution> {
        sides
            .iter()
            .find(|s| self.is_preferred(ctx, s.update))
            .map(|winner| Resolution {
                update: winner.update,
                extra_updates: Vec::new(),
            })
    }
}

/// Resolves conflicts with a round-robin arbiter, as the OpenPiton NoC
/// router's specification prescribes for its shared routing table.
///
/// The resolver materializes a pointer state (`<name>`, `ceil(log2(n))`
/// bits) on the integrated port. On a conflict, the contending side whose
/// port index is reached first when scanning from the pointer wins, and
/// the pointer advances past the winner.
#[derive(Clone, Debug)]
pub struct RoundRobinResolver {
    name: String,
    num_ports: usize,
    ptr_width: u32,
}

impl RoundRobinResolver {
    /// Creates a round-robin resolver over `num_ports` ports with an
    /// arbiter pointer state named `name`.
    ///
    /// # Panics
    ///
    /// Panics if `num_ports < 2`.
    pub fn new(name: impl Into<String>, num_ports: usize) -> Self {
        assert!(num_ports >= 2, "round-robin needs at least two ports");
        let mut ptr_width = 1;
        while (1usize << ptr_width) < num_ports {
            ptr_width += 1;
        }
        RoundRobinResolver {
            name: name.into(),
            num_ports,
            ptr_width,
        }
    }
}

impl ConflictResolver for RoundRobinResolver {
    fn aux_states(&self) -> Vec<AuxStateSpec> {
        vec![AuxStateSpec {
            name: self.name.clone(),
            sort: Sort::Bv(self.ptr_width),
            init: Some(Value::Bv(gila_expr::BitVecValue::zero(self.ptr_width))),
        }]
    }

    fn resolve(&self, ctx: &mut ExprCtx, _state: &str, sides: &[Side<'_>]) -> Option<Resolution> {
        let ptr = ctx.var(self.name.clone(), Sort::Bv(self.ptr_width));
        // For each possible pointer value p, the statically-known winner is
        // the contending side reached first scanning p, p+1, ... (mod n).
        let winner_for = |p: usize| -> &Side<'_> {
            sides
                .iter()
                .min_by_key(|s| (s.port_index + self.num_ports - p) % self.num_ports)
                .expect("at least two sides")
        };
        // Build nested ITEs over the pointer value, for both the resolved
        // update and the pointer advance.
        let last = winner_for(self.num_ports - 1);
        let mut update = last.update;
        let mut ptr_next = ctx.bv_u64(
            ((last.port_index + 1) % self.num_ports) as u64,
            self.ptr_width,
        );
        for p in (0..self.num_ports - 1).rev() {
            let w = winner_for(p);
            let cond = ctx.eq_u64(ptr, p as u64);
            update = ctx.ite(cond, w.update, update);
            let adv = ctx.bv_u64(((w.port_index + 1) % self.num_ports) as u64, self.ptr_width);
            ptr_next = ctx.ite(cond, adv, ptr_next);
        }
        Some(Resolution {
            update,
            extra_updates: vec![(self.name.clone(), ptr_next)],
        })
    }
}

/// One unresolved conflict: the instruction combination and shared state
/// for which the informal specification gives no answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecificationGap {
    /// The shared state with conflicting updates.
    pub state: String,
    /// The `(port, instruction)` pairs triggering together.
    pub combo: Vec<(String, String)>,
}

impl fmt::Display for SpecificationGap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conflicting updates to {:?} when ", self.state)?;
        for (i, (p, instr)) in self.combo.iter().enumerate() {
            if i > 0 {
                write!(f, " & ")?;
            }
            write!(f, "{p}.{instr}")?;
        }
        write!(f, " trigger simultaneously and the specification does not resolve the conflict")
    }
}

/// An error during port integration.
#[derive(Clone, Debug, PartialEq)]
pub enum IntegrateError {
    /// Fewer than two ports were given.
    TooFewPorts,
    /// A port has no instructions, so the cross product would be empty.
    EmptyPort {
        /// The offending port.
        port: String,
    },
    /// Two ports declare a same-named input or state with different sorts.
    SortMismatch {
        /// The clashing name.
        name: String,
        /// The first sort seen.
        first: Sort,
        /// The conflicting sort.
        second: Sort,
    },
    /// Two ports give a shared state different reset values.
    InitConflict {
        /// The shared state.
        state: String,
    },
    /// The informal specification leaves conflicts unresolved.
    SpecificationGaps(
        /// All unresolved conflicts found during integration.
        Vec<SpecificationGap>,
    ),
    /// A resolver produced clashing extra updates for one auxiliary state.
    AuxUpdateConflict {
        /// The auxiliary state.
        state: String,
        /// The integrated instruction in which the clash occurred.
        instruction: String,
    },
    /// Building the integrated model failed.
    Model(
        /// The underlying model error.
        ModelError,
    ),
}

impl fmt::Display for IntegrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntegrateError::TooFewPorts => write!(f, "integration needs at least two ports"),
            IntegrateError::EmptyPort { port } => {
                write!(f, "port {port:?} has no instructions")
            }
            IntegrateError::SortMismatch { name, first, second } => write!(
                f,
                "declaration {name:?} has sort {first} in one port and {second} in another"
            ),
            IntegrateError::InitConflict { state } => {
                write!(f, "shared state {state:?} has conflicting reset values")
            }
            IntegrateError::SpecificationGaps(gaps) => {
                writeln!(f, "{} specification gap(s) found:", gaps.len())?;
                for g in gaps {
                    writeln!(f, "  - {g}")?;
                }
                Ok(())
            }
            IntegrateError::AuxUpdateConflict { state, instruction } => write!(
                f,
                "resolver produced conflicting updates for auxiliary state {state:?} in {instruction:?}"
            ),
            IntegrateError::Model(e) => write!(f, "integrated model invalid: {e}"),
        }
    }
}

impl std::error::Error for IntegrateError {}

impl From<ModelError> for IntegrateError {
    fn from(e: ModelError) -> Self {
        IntegrateError::Model(e)
    }
}

/// Returns the state names *updated* by instructions of more than one of
/// the given ports. Only these require integration: a state that one
/// port updates and others merely read poses no conflicting-update
/// hazard (e.g. the store buffer's load-port reading the buffer array).
pub fn shared_updated_states(ports: &[&PortIla]) -> Vec<String> {
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for p in ports {
        let mut updated: Vec<&str> = p
            .instructions()
            .iter()
            .flat_map(|i| i.updates.keys().map(String::as_str))
            .collect();
        updated.sort_unstable();
        updated.dedup();
        for name in updated {
            *counts.entry(name).or_default() += 1;
        }
    }
    counts
        .into_iter()
        .filter(|&(_, c)| c > 1)
        .map(|(n, _)| n.to_string())
        .collect()
}

/// Returns the state names declared by more than one of the given ports.
pub fn shared_states(ports: &[&PortIla]) -> Vec<String> {
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for p in ports {
        for s in p.states() {
            *counts.entry(&s.name).or_default() += 1;
        }
    }
    counts
        .into_iter()
        .filter(|&(_, c)| c > 1)
        .map(|(n, _)| n.to_string())
        .collect()
}

/// Integrates ports that share architectural state into a single
/// port-ILA (`W_c = ∪ W_p`, `S_c = ∪ S_p`, `I_c = Π I_p` at the atomic
/// sub-instruction level, `D_{c,(i..)} = ∧ D_{p,i}`).
///
/// Non-shared states take the single port's update; shared states with
/// identical updates merge silently; genuinely conflicting updates are
/// handed to `resolver`.
///
/// # Errors
///
/// See [`IntegrateError`]. In particular, unresolved conflicts are
/// reported as [`IntegrateError::SpecificationGaps`] listing every
/// offending instruction combination.
pub fn integrate(
    name: impl Into<String>,
    ports: &[&PortIla],
    resolver: &dyn ConflictResolver,
) -> Result<PortIla, IntegrateError> {
    if ports.len() < 2 {
        return Err(IntegrateError::TooFewPorts);
    }
    if let Some(p) = ports.iter().find(|p| p.instructions().is_empty()) {
        return Err(IntegrateError::EmptyPort {
            port: p.name().to_string(),
        });
    }
    let mut out = PortIla::new(name);

    // Union of inputs (same name must mean same sort).
    let mut declared: BTreeMap<String, Sort> = BTreeMap::new();
    for p in ports {
        for i in p.inputs() {
            match declared.get(&i.name) {
                None => {
                    declared.insert(i.name.clone(), i.sort);
                    out.input(i.name.clone(), i.sort);
                }
                Some(&s) if s == i.sort => {}
                Some(&s) => {
                    return Err(IntegrateError::SortMismatch {
                        name: i.name.clone(),
                        first: s,
                        second: i.sort,
                    })
                }
            }
        }
    }
    // Union of states.
    let mut state_inits: BTreeMap<String, Option<Value>> = BTreeMap::new();
    for p in ports {
        for s in p.states() {
            match declared.get(&s.name) {
                None => {
                    declared.insert(s.name.clone(), s.sort);
                    out.state(s.name.clone(), s.sort, s.kind);
                    state_inits.insert(s.name.clone(), s.init.clone());
                }
                Some(&d) if d == s.sort => {
                    // Shared state: kinds may differ (output wins is not
                    // needed here; first declaration stands). Check inits.
                    if let Some(prev) = state_inits.get_mut(&s.name) {
                        match (&prev, &s.init) {
                            (None, Some(v)) => *prev = Some(v.clone()),
                            (Some(a), Some(b)) if *a != *b => {
                                return Err(IntegrateError::InitConflict {
                                    state: s.name.clone(),
                                })
                            }
                            _ => {}
                        }
                    }
                }
                Some(&d) => {
                    return Err(IntegrateError::SortMismatch {
                        name: s.name.clone(),
                        first: d,
                        second: s.sort,
                    })
                }
            }
        }
    }
    for (state, init) in &state_inits {
        if let Some(v) = init {
            out.set_init(state, v.clone())?;
        }
    }
    // Resolver auxiliary states.
    for aux in resolver.aux_states() {
        out.state(aux.name.clone(), aux.sort, StateKind::Internal);
        if let Some(v) = aux.init {
            out.set_init(&aux.name, v)?;
        }
    }

    // Import expressions port by port (variables map by name into `out`).
    let mut memos: Vec<HashMap<ExprRef, ExprRef>> = vec![HashMap::new(); ports.len()];
    let import_expr = |out: &mut PortIla,
                       memos: &mut Vec<HashMap<ExprRef, ExprRef>>,
                       pi: usize,
                       src: &PortIla,
                       e: ExprRef| {
        // Split borrow: ctx is independent of memos.
        let memo = &mut memos[pi];
        import(out.ctx_mut(), src.ctx(), e, memo)
    };

    // Cross product of atomic instructions.
    let mut gaps: Vec<SpecificationGap> = Vec::new();
    let counts: Vec<usize> = ports.iter().map(|p| p.instructions().len()).collect();
    let mut odometer = vec![0usize; ports.len()];
    loop {
        let combo: Vec<&Instruction> = odometer
            .iter()
            .enumerate()
            .map(|(pi, &ii)| &ports[pi].instructions()[ii])
            .collect();
        let combo_name = combo
            .iter()
            .map(|i| i.name.as_str())
            .collect::<Vec<_>>()
            .join(" & ");

        // Decode: conjunction of all parts.
        let mut decode_parts = Vec::with_capacity(combo.len());
        for (pi, instr) in combo.iter().enumerate() {
            decode_parts.push(import_expr(&mut out, &mut memos, pi, ports[pi], instr.decode));
        }
        let decode = out.ctx_mut().and_many(&decode_parts);

        // Gather updates per state.
        let mut per_state: BTreeMap<String, Vec<(usize, &Instruction, ExprRef)>> = BTreeMap::new();
        for (pi, instr) in combo.iter().enumerate() {
            for (state, &upd) in &instr.updates {
                let imported = import_expr(&mut out, &mut memos, pi, ports[pi], upd);
                per_state
                    .entry(state.clone())
                    .or_default()
                    .push((pi, instr, imported));
            }
        }

        let mut updates: Vec<(String, ExprRef)> = Vec::new();
        let mut extra: BTreeMap<String, ExprRef> = BTreeMap::new();
        let mut gap_here = false;
        for (state, sides) in &per_state {
            let first = sides[0].2;
            if sides.len() == 1 || sides.iter().all(|&(_, _, e)| e == first) {
                updates.push((state.clone(), first));
                continue;
            }
            let side_views: Vec<Side<'_>> = sides
                .iter()
                .map(|&(pi, instr, e)| Side {
                    port: ports[pi].name(),
                    port_index: pi,
                    instruction: &instr.name,
                    update: e,
                })
                .collect();
            match resolver.resolve(out.ctx_mut(), state, &side_views) {
                Some(res) => {
                    updates.push((state.clone(), res.update));
                    for (aux, e) in res.extra_updates {
                        if let Some(&prev) = extra.get(&aux) {
                            if prev != e {
                                return Err(IntegrateError::AuxUpdateConflict {
                                    state: aux,
                                    instruction: combo_name,
                                });
                            }
                        } else {
                            extra.insert(aux, e);
                        }
                    }
                }
                None => {
                    gaps.push(SpecificationGap {
                        state: state.clone(),
                        combo: combo
                            .iter()
                            .enumerate()
                            .map(|(pi, i)| (ports[pi].name().to_string(), i.name.clone()))
                            .collect(),
                    });
                    gap_here = true;
                }
            }
        }
        if !gap_here {
            updates.extend(extra);
            let mut b = out.instr(combo_name).decode(decode);
            for (s, e) in updates {
                b = b.update(s, e);
            }
            b.add()?;
        }

        // Advance the odometer.
        let mut k = ports.len();
        loop {
            if k == 0 {
                break;
            }
            k -= 1;
            odometer[k] += 1;
            if odometer[k] < counts[k] {
                break;
            }
            odometer[k] = 0;
            if k == 0 {
                k = usize::MAX;
                break;
            }
        }
        if k == usize::MAX {
            break;
        }
    }
    if !gaps.is_empty() {
        return Err(IntegrateError::SpecificationGaps(gaps));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gila_expr::BitVecValue;

    /// Builds a miniature ROM-port / RAM-port pair sharing `mem_wait`,
    /// mirroring Fig. 3 of the paper.
    fn rom_ram_ports() -> (PortIla, PortIla) {
        let mut rom = PortIla::new("ROM-PORT");
        let rom_req = rom.input("rom_req_in", Sort::Bv(1));
        let _rom_addr_in = rom.input("rom_addr_in", Sort::Bv(8));
        let rom_addr = rom.state("rom_addr", Sort::Bv(8), StateKind::Output);
        let _ = rom_addr;
        let mem_wait = rom.state("mem_wait", Sort::Bv(1), StateKind::Internal);
        let _ = mem_wait;
        {
            let d = rom.ctx_mut().eq_u64(rom_req, 1);
            let addr = rom.ctx().find_var("rom_addr_in").unwrap();
            let one = rom.ctx_mut().bv_u64(1, 1);
            rom.instr("ROM_REQ")
                .decode(d)
                .update("rom_addr", addr)
                .update("mem_wait", one)
                .add()
                .unwrap();
            let d = rom.ctx_mut().eq_u64(rom_req, 0);
            let zero = rom.ctx_mut().bv_u64(0, 1);
            rom.instr("ROM_IDLE")
                .decode(d)
                .update("mem_wait", zero)
                .add()
                .unwrap();
        }
        let mut ram = PortIla::new("RAM-PORT");
        let ram_req = ram.input("ram_req_in", Sort::Bv(1));
        let _ram_addr_in = ram.input("ram_addr_in", Sort::Bv(8));
        ram.state("ram_addr", Sort::Bv(8), StateKind::Output);
        ram.state("mem_wait", Sort::Bv(1), StateKind::Internal);
        {
            let d = ram.ctx_mut().eq_u64(ram_req, 1);
            let addr = ram.ctx().find_var("ram_addr_in").unwrap();
            let one = ram.ctx_mut().bv_u64(1, 1);
            ram.instr("RAM_REQ")
                .decode(d)
                .update("ram_addr", addr)
                .update("mem_wait", one)
                .add()
                .unwrap();
            let d = ram.ctx_mut().eq_u64(ram_req, 0);
            let zero = ram.ctx_mut().bv_u64(0, 1);
            ram.instr("RAM_IDLE")
                .decode(d)
                .update("mem_wait", zero)
                .add()
                .unwrap();
        }
        (rom, ram)
    }

    #[test]
    fn shared_state_detection() {
        let (rom, ram) = rom_ram_ports();
        assert_eq!(shared_states(&[&rom, &ram]), vec!["mem_wait".to_string()]);
    }

    #[test]
    fn unresolved_conflict_is_specification_gap() {
        let (rom, ram) = rom_ram_ports();
        let err = integrate("ROM-RAM", &[&rom, &ram], &NoResolver).unwrap_err();
        match err {
            IntegrateError::SpecificationGaps(gaps) => {
                // Conflicts: REQ&IDLE and IDLE&REQ (1 vs 0); REQ&REQ and
                // IDLE&IDLE agree (same constant).
                assert_eq!(gaps.len(), 2);
                assert!(gaps.iter().all(|g| g.state == "mem_wait"));
            }
            other => panic!("expected gaps, got {other:?}"),
        }
    }

    #[test]
    fn value_priority_resolves_mem_wait() {
        let (rom, ram) = rom_ram_ports();
        let resolver = ValuePriorityResolver::new(BitVecValue::from_u64(1, 1));
        let c = integrate("ROM-RAM", &[&rom, &ram], &resolver).unwrap();
        // 2 x 2 = 4 integrated instructions.
        assert_eq!(c.num_atomic_instructions(), 4);
        // ROM_IDLE & RAM_REQ must update mem_wait to 1.
        let i = c.find_instruction("ROM_IDLE & RAM_REQ").unwrap();
        let upd = i.updates["mem_wait"];
        assert_eq!(
            c.ctx().as_bv_const(upd),
            Some(&BitVecValue::from_u64(1, 1))
        );
        // Non-conflicting state updates survive unchanged.
        assert!(i.updates.contains_key("ram_addr"));
        assert!(!i.updates.contains_key("rom_addr"));
        // Agreement cases merge silently.
        let i = c.find_instruction("ROM_IDLE & RAM_IDLE").unwrap();
        assert_eq!(
            c.ctx().as_bv_const(i.updates["mem_wait"]),
            Some(&BitVecValue::from_u64(0, 1))
        );
    }

    #[test]
    fn port_priority_resolver() {
        let (rom, ram) = rom_ram_ports();
        let resolver = PortPriorityResolver::new(["RAM-PORT", "ROM-PORT"]);
        let c = integrate("ROM-RAM", &[&rom, &ram], &resolver).unwrap();
        // In ROM_REQ & RAM_IDLE, RAM wins: mem_wait := 0.
        let i = c.find_instruction("ROM_REQ & RAM_IDLE").unwrap();
        assert_eq!(
            c.ctx().as_bv_const(i.updates["mem_wait"]),
            Some(&BitVecValue::from_u64(0, 1))
        );
    }

    #[test]
    fn round_robin_adds_pointer_state() {
        let (rom, ram) = rom_ram_ports();
        let resolver = RoundRobinResolver::new("mem_wait_rr", 2);
        let c = integrate("ROM-RAM", &[&rom, &ram], &resolver).unwrap();
        assert!(c.find_state("mem_wait_rr").is_some());
        let i = c.find_instruction("ROM_REQ & RAM_IDLE").unwrap();
        // The conflicting combo updates both the shared state and pointer.
        assert!(i.updates.contains_key("mem_wait"));
        assert!(i.updates.contains_key("mem_wait_rr"));
        // Non-conflicting combos leave the pointer alone.
        let i = c.find_instruction("ROM_REQ & RAM_REQ").unwrap();
        assert!(!i.updates.contains_key("mem_wait_rr"));
    }

    #[test]
    fn sort_mismatch_detected() {
        let (rom, _) = rom_ram_ports();
        let mut bad = PortIla::new("BAD");
        bad.state("mem_wait", Sort::Bv(2), StateKind::Internal);
        let d = bad.ctx_mut().tt();
        bad.instr("nop").decode(d).add().unwrap();
        let err = integrate("X", &[&rom, &bad], &NoResolver).unwrap_err();
        assert!(matches!(err, IntegrateError::SortMismatch { .. }));
    }

    #[test]
    fn too_few_ports() {
        let (rom, _) = rom_ram_ports();
        assert_eq!(
            integrate("X", &[&rom], &NoResolver).unwrap_err(),
            IntegrateError::TooFewPorts
        );
    }

    #[test]
    fn init_values_propagate_and_conflict() {
        let (mut rom, mut ram) = rom_ram_ports();
        rom.set_init("mem_wait", BitVecValue::from_u64(0, 1)).unwrap();
        let resolver = ValuePriorityResolver::new(BitVecValue::from_u64(1, 1));
        let c = integrate("ROM-RAM", &[&rom, &ram], &resolver).unwrap();
        assert_eq!(
            c.find_state("mem_wait").unwrap().init,
            Some(Value::Bv(BitVecValue::from_u64(0, 1)))
        );
        ram.set_init("mem_wait", BitVecValue::from_u64(1, 1)).unwrap();
        let err = integrate("ROM-RAM", &[&rom, &ram], &resolver).unwrap_err();
        assert!(matches!(err, IntegrateError::InitConflict { .. }));
    }

    #[test]
    fn three_port_cross_product() {
        let (rom, ram) = rom_ram_ports();
        let mut third = PortIla::new("AUX");
        let go = third.input("aux_go", Sort::Bv(1));
        third.state("aux_state", Sort::Bv(4), StateKind::Output);
        let d = third.ctx_mut().eq_u64(go, 1);
        let v = third.ctx_mut().bv_u64(3, 4);
        third.instr("AUX_GO").decode(d).update("aux_state", v).add().unwrap();
        let d = third.ctx_mut().eq_u64(go, 0);
        third.instr("AUX_NOP").decode(d).add().unwrap();
        let resolver = ValuePriorityResolver::new(BitVecValue::from_u64(1, 1));
        let c = integrate("TRIPLE", &[&rom, &ram, &third], &resolver).unwrap();
        assert_eq!(c.num_atomic_instructions(), 8);
        assert!(c.find_instruction("ROM_REQ & RAM_IDLE & AUX_GO").is_some());
    }
}
