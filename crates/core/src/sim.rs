//! Instruction-level simulation of port- and module-ILAs.
//!
//! The simulator executes a model the way the operational semantics of
//! §III defines it: at each step, the instruction whose decode condition
//! holds for the presented command fires, and all its next-state
//! functions apply simultaneously. It is used for ILA-vs-RTL
//! co-simulation in tests and for exploring models in the examples.

use std::collections::BTreeMap;
use std::fmt;

use gila_expr::{eval, BitVecValue, Env, EvalError, MemValue, Sort, Value};

use crate::model::PortIla;
use crate::module::ModuleIla;

/// A concrete valuation of architectural states, by state name.
pub type StateMap = BTreeMap<String, Value>;

/// A concrete valuation of inputs, by input name.
pub type InputMap = BTreeMap<String, Value>;

/// An error during simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// No instruction's decode condition held for the presented command
    /// (the model is incomplete for this input).
    NoInstruction {
        /// The port being stepped.
        port: String,
    },
    /// More than one atomic instruction triggered simultaneously
    /// (the model is nondeterministic).
    MultipleInstructions {
        /// The port being stepped.
        port: String,
        /// Names of all triggered instructions.
        instructions: Vec<String>,
    },
    /// A state or input value was missing or evaluation failed.
    Eval(
        /// The underlying evaluation error.
        EvalError,
    ),
    /// An input required by the port was not provided.
    MissingInput {
        /// The missing input's name.
        input: String,
    },
    /// A provided value has the wrong sort.
    SortMismatch {
        /// The variable name.
        name: String,
        /// Expected sort.
        expected: Sort,
        /// Provided sort.
        found: Sort,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoInstruction { port } => {
                write!(f, "no instruction triggered on port {port:?}")
            }
            SimError::MultipleInstructions { port, instructions } => write!(
                f,
                "multiple instructions triggered on port {port:?}: {instructions:?}"
            ),
            SimError::Eval(e) => write!(f, "evaluation failed: {e}"),
            SimError::MissingInput { input } => write!(f, "missing input {input:?}"),
            SimError::SortMismatch {
                name,
                expected,
                found,
            } => write!(f, "value for {name:?} has sort {found}, expected {expected}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<EvalError> for SimError {
    fn from(e: EvalError) -> Self {
        SimError::Eval(e)
    }
}

fn default_value(sort: Sort) -> Value {
    match sort {
        Sort::Bool => Value::Bool(false),
        Sort::Bv(w) => Value::Bv(BitVecValue::zero(w)),
        Sort::Mem {
            addr_width,
            data_width,
        } => Value::Mem(MemValue::zeroed(addr_width, data_width)),
    }
}

/// A simulator for one port-ILA.
///
/// # Examples
///
/// ```
/// use gila_core::{PortIla, PortSimulator, StateKind};
/// use gila_expr::{BitVecValue, Sort, Value};
///
/// let mut p = PortIla::new("counter");
/// let en = p.input("en", Sort::Bv(1));
/// let cnt = p.state("cnt", Sort::Bv(8), StateKind::Output);
/// let d = p.ctx_mut().eq_u64(en, 1);
/// let one = p.ctx_mut().bv_u64(1, 8);
/// let nx = p.ctx_mut().bvadd(cnt, one);
/// p.instr("inc").decode(d).update("cnt", nx).add()?;
/// let d = p.ctx_mut().eq_u64(en, 0);
/// p.instr("hold").decode(d).add()?;
///
/// let mut sim = PortSimulator::new(&p);
/// let mut inputs = std::collections::BTreeMap::new();
/// inputs.insert("en".to_string(), Value::Bv(BitVecValue::from_u64(1, 1)));
/// let fired = sim.step(&inputs)?;
/// assert_eq!(fired, "inc");
/// assert_eq!(sim.state()["cnt"].as_bv().to_u64(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct PortSimulator<'a> {
    port: &'a PortIla,
    state: StateMap,
}

impl<'a> PortSimulator<'a> {
    /// Creates a simulator starting from the port's reset state
    /// (declared inits, or all-zero for states without one).
    pub fn new(port: &'a PortIla) -> Self {
        let state = port
            .states()
            .iter()
            .map(|s| {
                let v = s.init.clone().unwrap_or_else(|| default_value(s.sort));
                (s.name.clone(), v)
            })
            .collect();
        PortSimulator { port, state }
    }

    /// Creates a simulator starting from an explicit state.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SortMismatch`] or [`SimError::MissingInput`]
    /// style errors if `state` does not cover every declared state with
    /// the right sort.
    pub fn with_state(port: &'a PortIla, state: StateMap) -> Result<Self, SimError> {
        for s in port.states() {
            match state.get(&s.name) {
                None => {
                    return Err(SimError::MissingInput {
                        input: s.name.clone(),
                    })
                }
                Some(v) if v.sort() != s.sort => {
                    return Err(SimError::SortMismatch {
                        name: s.name.clone(),
                        expected: s.sort,
                        found: v.sort(),
                    })
                }
                _ => {}
            }
        }
        Ok(PortSimulator { port, state })
    }

    /// The current architectural state.
    pub fn state(&self) -> &StateMap {
        &self.state
    }

    /// Executes one step: decodes the command in `inputs`, fires the
    /// unique triggered instruction, and commits its updates. Returns the
    /// fired instruction's name.
    ///
    /// # Errors
    ///
    /// [`SimError::NoInstruction`] if no decode condition holds,
    /// [`SimError::MultipleInstructions`] if several do, plus input/sort
    /// errors.
    pub fn step(&mut self, inputs: &InputMap) -> Result<String, SimError> {
        let env = self.build_env(inputs)?;
        let ctx = self.port.ctx();
        let mut fired: Option<usize> = None;
        let mut all_fired = Vec::new();
        for (idx, instr) in self.port.instructions().iter().enumerate() {
            if eval(ctx, instr.decode, &env)?.as_bool() {
                all_fired.push(instr.name.clone());
                fired = Some(idx);
            }
        }
        match all_fired.len() {
            0 => Err(SimError::NoInstruction {
                port: self.port.name().to_string(),
            }),
            1 => {
                let instr = &self.port.instructions()[fired.expect("one fired")];
                // Evaluate all updates against the pre-state, then commit.
                let mut next = Vec::new();
                for (state, &expr) in &instr.updates {
                    next.push((state.clone(), eval(ctx, expr, &env)?));
                }
                for (state, v) in next {
                    self.state.insert(state, v);
                }
                Ok(instr.name.clone())
            }
            _ => Err(SimError::MultipleInstructions {
                port: self.port.name().to_string(),
                instructions: all_fired,
            }),
        }
    }

    fn build_env(&self, inputs: &InputMap) -> Result<Env, SimError> {
        let mut env = Env::new();
        for i in self.port.inputs() {
            let v = inputs.get(&i.name).ok_or_else(|| SimError::MissingInput {
                input: i.name.clone(),
            })?;
            if v.sort() != i.sort {
                return Err(SimError::SortMismatch {
                    name: i.name.clone(),
                    expected: i.sort,
                    found: v.sort(),
                });
            }
            env.bind(i.var, v.clone());
        }
        for s in self.port.states() {
            let v = self.state.get(&s.name).expect("state initialized");
            env.bind(s.var, v.clone());
        }
        Ok(env)
    }
}

/// A simulator for a whole module-ILA: steps every port against its own
/// slice of the module state. Ports are independent by construction
/// ([`ModuleIla::compose`] enforces it), so the order does not matter.
#[derive(Clone, Debug)]
pub struct ModuleSimulator<'a> {
    module: &'a ModuleIla,
    sims: Vec<PortSimulator<'a>>,
}

impl<'a> ModuleSimulator<'a> {
    /// Creates a simulator from the module's reset state.
    pub fn new(module: &'a ModuleIla) -> Self {
        let sims = module.ports().iter().map(PortSimulator::new).collect();
        ModuleSimulator { module, sims }
    }

    /// Steps every port; `inputs` must cover the inputs of all ports.
    /// Returns the fired instruction per port, in port order.
    ///
    /// # Errors
    ///
    /// Propagates the first per-port [`SimError`].
    pub fn step(&mut self, inputs: &InputMap) -> Result<Vec<String>, SimError> {
        self.sims.iter_mut().map(|s| s.step(inputs)).collect()
    }

    /// The union of all ports' architectural states.
    pub fn state(&self) -> StateMap {
        let mut out = StateMap::new();
        for s in &self.sims {
            out.extend(s.state().clone());
        }
        out
    }

    /// The module being simulated.
    pub fn module(&self) -> &ModuleIla {
        self.module
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::StateKind;

    fn bv(x: u64, w: u32) -> Value {
        Value::Bv(BitVecValue::from_u64(x, w))
    }

    fn counter() -> PortIla {
        let mut p = PortIla::new("counter");
        let en = p.input("en", Sort::Bv(1));
        let cnt = p.state("cnt", Sort::Bv(8), StateKind::Output);
        let d = p.ctx_mut().eq_u64(en, 1);
        let one = p.ctx_mut().bv_u64(1, 8);
        let nx = p.ctx_mut().bvadd(cnt, one);
        p.instr("inc").decode(d).update("cnt", nx).add().unwrap();
        let d = p.ctx_mut().eq_u64(en, 0);
        p.instr("hold").decode(d).add().unwrap();
        p
    }

    #[test]
    fn counts_and_holds() {
        let p = counter();
        let mut sim = PortSimulator::new(&p);
        let mut inputs = InputMap::new();
        inputs.insert("en".into(), bv(1, 1));
        for _ in 0..5 {
            assert_eq!(sim.step(&inputs).unwrap(), "inc");
        }
        assert_eq!(sim.state()["cnt"].as_bv().to_u64(), 5);
        inputs.insert("en".into(), bv(0, 1));
        assert_eq!(sim.step(&inputs).unwrap(), "hold");
        assert_eq!(sim.state()["cnt"].as_bv().to_u64(), 5);
    }

    #[test]
    fn init_values_respected() {
        let mut p = counter();
        p.set_init("cnt", BitVecValue::from_u64(100, 8)).unwrap();
        let sim = PortSimulator::new(&p);
        assert_eq!(sim.state()["cnt"].as_bv().to_u64(), 100);
    }

    #[test]
    fn missing_input_reported() {
        let p = counter();
        let mut sim = PortSimulator::new(&p);
        let err = sim.step(&InputMap::new()).unwrap_err();
        assert_eq!(err, SimError::MissingInput { input: "en".into() });
    }

    #[test]
    fn wrong_sort_reported() {
        let p = counter();
        let mut sim = PortSimulator::new(&p);
        let mut inputs = InputMap::new();
        inputs.insert("en".into(), bv(1, 2));
        assert!(matches!(
            sim.step(&inputs).unwrap_err(),
            SimError::SortMismatch { .. }
        ));
    }

    #[test]
    fn incomplete_decode_detected() {
        let mut p = PortIla::new("partial");
        let x = p.input("x", Sort::Bv(2));
        p.state("s", Sort::Bv(2), StateKind::Output);
        let d = p.ctx_mut().eq_u64(x, 0);
        p.instr("only_zero").decode(d).add().unwrap();
        let mut sim = PortSimulator::new(&p);
        let mut inputs = InputMap::new();
        inputs.insert("x".into(), bv(3, 2));
        assert_eq!(
            sim.step(&inputs).unwrap_err(),
            SimError::NoInstruction {
                port: "partial".into()
            }
        );
    }

    #[test]
    fn overlapping_decode_detected() {
        let mut p = PortIla::new("overlap");
        let x = p.input("x", Sort::Bv(1));
        p.state("s", Sort::Bv(1), StateKind::Output);
        let d1 = p.ctx_mut().eq_u64(x, 1);
        p.instr("a").decode(d1).add().unwrap();
        let d2 = p.ctx_mut().tt();
        p.instr("b").decode(d2).add().unwrap();
        let mut sim = PortSimulator::new(&p);
        let mut inputs = InputMap::new();
        inputs.insert("x".into(), bv(1, 1));
        assert!(matches!(
            sim.step(&inputs).unwrap_err(),
            SimError::MultipleInstructions { .. }
        ));
    }

    #[test]
    fn updates_apply_simultaneously() {
        // swap: a' = b, b' = a — must read pre-state for both.
        let mut p = PortIla::new("swap");
        let go = p.input("go", Sort::Bv(1));
        let a = p.state("a", Sort::Bv(4), StateKind::Output);
        let b = p.state("b", Sort::Bv(4), StateKind::Output);
        let d = p.ctx_mut().eq_u64(go, 1);
        p.instr("swap")
            .decode(d)
            .update("a", b)
            .update("b", a)
            .add()
            .unwrap();
        let d0 = p.ctx_mut().eq_u64(go, 0);
        p.instr("nop").decode(d0).add().unwrap();
        p.set_init("a", BitVecValue::from_u64(3, 4)).unwrap();
        p.set_init("b", BitVecValue::from_u64(9, 4)).unwrap();
        let mut sim = PortSimulator::new(&p);
        let mut inputs = InputMap::new();
        inputs.insert("go".into(), bv(1, 1));
        sim.step(&inputs).unwrap();
        assert_eq!(sim.state()["a"].as_bv().to_u64(), 9);
        assert_eq!(sim.state()["b"].as_bv().to_u64(), 3);
    }

    #[test]
    fn module_simulator_steps_all_ports() {
        let c1 = counter();
        let mut c2 = PortIla::new("counter2");
        let en = c2.input("en2", Sort::Bv(1));
        let cnt = c2.state("cnt2", Sort::Bv(8), StateKind::Output);
        let d = c2.ctx_mut().eq_u64(en, 1);
        let two = c2.ctx_mut().bv_u64(2, 8);
        let nx = c2.ctx_mut().bvadd(cnt, two);
        c2.instr("inc2").decode(d).update("cnt2", nx).add().unwrap();
        let d = c2.ctx_mut().eq_u64(en, 0);
        c2.instr("hold2").decode(d).add().unwrap();

        let m = ModuleIla::compose("two_counters", vec![c1, c2]).unwrap();
        let mut sim = ModuleSimulator::new(&m);
        let mut inputs = InputMap::new();
        inputs.insert("en".into(), bv(1, 1));
        inputs.insert("en2".into(), bv(1, 1));
        let fired = sim.step(&inputs).unwrap();
        assert_eq!(fired, vec!["inc".to_string(), "inc2".to_string()]);
        let st = sim.state();
        assert_eq!(st["cnt"].as_bv().to_u64(), 1);
        assert_eq!(st["cnt2"].as_bv().to_u64(), 2);
    }
}
