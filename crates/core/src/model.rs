//! The port-ILA model type: architectural states, inputs, and
//! instructions with decode and next-state functions.

use std::collections::BTreeMap;
use std::fmt;

use gila_expr::{ExprCtx, ExprRef, Sort, Value};

/// Whether an architectural state is externally visible.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StateKind {
    /// An output state: drives module output pins (e.g. `rd_data`).
    Output,
    /// A non-output ("other") state: persistent across instructions but
    /// internal (e.g. `current_word`, `step`, `mem_wait`).
    Internal,
}

/// An architectural state variable of a port-ILA.
#[derive(Clone, Debug)]
pub struct StateVar {
    /// Name, unique within the port (and meaningful across ports: ports
    /// that declare a state with the same name *share* that state).
    pub name: String,
    /// Sort of the state.
    pub sort: Sort,
    /// Output vs internal.
    pub kind: StateKind,
    /// The expression-level variable standing for the pre-state value.
    pub var: ExprRef,
    /// Optional reset value.
    pub init: Option<Value>,
    /// Source line of the declaration, when parsed from a `.ila` file.
    pub line: Option<usize>,
}

/// An input pin (or pin group) of a port.
#[derive(Clone, Debug)]
pub struct InputVar {
    /// Name, unique within the port.
    pub name: String,
    /// Sort of the input.
    pub sort: Sort,
    /// The expression-level variable.
    pub var: ExprRef,
    /// Source line of the declaration, when parsed from a `.ila` file.
    pub line: Option<usize>,
}

/// One *atomic* instruction: a decode condition plus state updates.
///
/// Sub-instructions (the visible steps of a multi-step instruction) are
/// atomic instructions whose [`Instruction::parent`] names the logical
/// instruction they belong to. The cross-product integration of ports
/// with shared state operates at this atomic granularity, exactly as the
/// paper prescribes.
#[derive(Clone, Debug)]
pub struct Instruction {
    /// Name, unique within the port.
    pub name: String,
    /// For a sub-instruction, the name of the logical parent instruction.
    pub parent: Option<String>,
    /// Boolean trigger condition over the port's inputs and states.
    pub decode: ExprRef,
    /// Next-state functions; states not mentioned are unchanged.
    pub updates: BTreeMap<String, ExprRef>,
    /// Source line of the declaration, when parsed from a `.ila` file.
    pub line: Option<usize>,
}

/// An error while building a port-ILA.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelError {
    /// A name was declared twice.
    DuplicateName {
        /// The offending name.
        name: String,
    },
    /// An instruction references an undeclared input or state.
    UnknownVar {
        /// The instruction being added.
        instruction: String,
        /// The undeclared variable.
        var: String,
    },
    /// An update targets an unknown state.
    UnknownState {
        /// The instruction being added.
        instruction: String,
        /// The unknown state name.
        state: String,
    },
    /// An update expression's sort does not match the state's sort.
    UpdateSortMismatch {
        /// The instruction being added.
        instruction: String,
        /// The state being updated.
        state: String,
        /// The state's sort.
        expected: Sort,
        /// The update expression's sort.
        found: Sort,
    },
    /// A decode expression is not boolean.
    DecodeNotBool {
        /// The instruction being added.
        instruction: String,
        /// The decode expression's sort.
        found: Sort,
    },
    /// A sub-instruction names a parent that does not exist.
    UnknownParent {
        /// The instruction being added.
        instruction: String,
        /// The missing parent name.
        parent: String,
    },
    /// An initial value's sort does not match the state's sort.
    InitSortMismatch {
        /// The state name.
        state: String,
        /// The state's sort.
        expected: Sort,
        /// The initial value's sort.
        found: Sort,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DuplicateName { name } => write!(f, "name {name:?} declared twice"),
            ModelError::UnknownVar { instruction, var } => write!(
                f,
                "instruction {instruction:?} references undeclared variable {var:?}"
            ),
            ModelError::UnknownState { instruction, state } => write!(
                f,
                "instruction {instruction:?} updates unknown state {state:?}"
            ),
            ModelError::UpdateSortMismatch {
                instruction,
                state,
                expected,
                found,
            } => write!(
                f,
                "instruction {instruction:?}: update of {state:?} has sort {found}, expected {expected}"
            ),
            ModelError::DecodeNotBool { instruction, found } => write!(
                f,
                "instruction {instruction:?}: decode has sort {found}, expected bool"
            ),
            ModelError::UnknownParent {
                instruction,
                parent,
            } => write!(
                f,
                "sub-instruction {instruction:?} names unknown parent {parent:?}"
            ),
            ModelError::InitSortMismatch {
                state,
                expected,
                found,
            } => write!(
                f,
                "initial value for {state:?} has sort {found}, expected {expected}"
            ),
        }
    }
}

impl std::error::Error for ModelError {}

/// An ILA for one command interface (one *port*) of a hardware module.
///
/// A port groups the input pins that together present a command; each
/// valid command bit-pattern is an instruction. A module with a single
/// command interface is modeled as one port; multi-port modules compose
/// several (see [`crate::ModuleIla`] and [`crate::integrate`]).
///
/// # Examples
///
/// Modeling a trivial up-counter with `inc` / `hold` instructions:
///
/// ```
/// use gila_core::{PortIla, StateKind};
/// use gila_expr::Sort;
///
/// let mut p = PortIla::new("counter");
/// let en = p.input("en", Sort::Bv(1));
/// let cnt = p.state("cnt", Sort::Bv(8), StateKind::Output);
/// let dec_inc = p.ctx_mut().eq_u64(en, 1);
/// let one = p.ctx_mut().bv_u64(1, 8);
/// let next = p.ctx_mut().bvadd(cnt, one);
/// p.instr("inc").decode(dec_inc).update("cnt", next).add()?;
/// let dec_hold = p.ctx_mut().eq_u64(en, 0);
/// p.instr("hold").decode(dec_hold).add()?;
/// assert_eq!(p.instructions().len(), 2);
/// # Ok::<(), gila_core::ModelError>(())
/// ```
#[derive(Clone, Debug)]
pub struct PortIla {
    name: String,
    ctx: ExprCtx,
    inputs: Vec<InputVar>,
    states: Vec<StateVar>,
    instructions: Vec<Instruction>,
}

impl PortIla {
    /// Creates an empty port-ILA with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        PortIla {
            name: name.into(),
            ctx: ExprCtx::new(),
            inputs: Vec::new(),
            states: Vec::new(),
            instructions: Vec::new(),
        }
    }

    /// The port's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The expression context holding all of this port's expressions.
    pub fn ctx(&self) -> &ExprCtx {
        &self.ctx
    }

    /// Mutable access to the expression context, for building decode and
    /// update expressions.
    pub fn ctx_mut(&mut self) -> &mut ExprCtx {
        &mut self.ctx
    }

    /// Declares an input pin (group) and returns its expression variable.
    ///
    /// # Panics
    ///
    /// Panics if the name is already used by an input or state of this
    /// port (model construction is programmer-facing, so this fails fast).
    pub fn input(&mut self, name: impl Into<String>, sort: Sort) -> ExprRef {
        let name = name.into();
        assert!(
            !self.has_name(&name),
            "input {name:?} clashes with an existing declaration"
        );
        let var = self.ctx.var(name.clone(), sort);
        self.inputs.push(InputVar {
            name,
            sort,
            var,
            line: None,
        });
        var
    }

    /// Like [`PortIla::input`], tagging the declaration with a source
    /// line so diagnostics can point back into the `.ila` file.
    ///
    /// # Panics
    ///
    /// Panics if the name is already used (see [`PortIla::input`]).
    pub fn input_at(&mut self, name: impl Into<String>, sort: Sort, line: usize) -> ExprRef {
        let var = self.input(name, sort);
        self.inputs.last_mut().expect("just pushed").line = Some(line);
        var
    }

    /// Declares an architectural state and returns its expression variable.
    ///
    /// # Panics
    ///
    /// Panics if the name is already used.
    pub fn state(&mut self, name: impl Into<String>, sort: Sort, kind: StateKind) -> ExprRef {
        let name = name.into();
        assert!(
            !self.has_name(&name),
            "state {name:?} clashes with an existing declaration"
        );
        let var = self.ctx.var(name.clone(), sort);
        self.states.push(StateVar {
            name,
            sort,
            kind,
            var,
            init: None,
            line: None,
        });
        var
    }

    /// Like [`PortIla::state`], tagging the declaration with a source
    /// line so diagnostics can point back into the `.ila` file.
    ///
    /// # Panics
    ///
    /// Panics if the name is already used (see [`PortIla::state`]).
    pub fn state_at(
        &mut self,
        name: impl Into<String>,
        sort: Sort,
        kind: StateKind,
        line: usize,
    ) -> ExprRef {
        let var = self.state(name, sort, kind);
        self.states.last_mut().expect("just pushed").line = Some(line);
        var
    }

    /// Sets the reset value of a state.
    ///
    /// # Errors
    ///
    /// Returns an error if the state is unknown or the value has the
    /// wrong sort.
    pub fn set_init(&mut self, state: &str, value: impl Into<Value>) -> Result<(), ModelError> {
        let value = value.into();
        let sv = self
            .states
            .iter_mut()
            .find(|s| s.name == state)
            .ok_or_else(|| ModelError::UnknownState {
                instruction: "<init>".into(),
                state: state.to_string(),
            })?;
        if value.sort() != sv.sort {
            return Err(ModelError::InitSortMismatch {
                state: state.to_string(),
                expected: sv.sort,
                found: value.sort(),
            });
        }
        sv.init = Some(value);
        Ok(())
    }

    fn has_name(&self, name: &str) -> bool {
        self.inputs.iter().any(|i| i.name == name) || self.states.iter().any(|s| s.name == name)
    }

    /// The declared inputs, in declaration order.
    pub fn inputs(&self) -> &[InputVar] {
        &self.inputs
    }

    /// The declared states, in declaration order.
    pub fn states(&self) -> &[StateVar] {
        &self.states
    }

    /// The atomic instructions, in declaration order.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Looks up a state by name.
    pub fn find_state(&self, name: &str) -> Option<&StateVar> {
        self.states.iter().find(|s| s.name == name)
    }

    /// Looks up an input by name.
    pub fn find_input(&self, name: &str) -> Option<&InputVar> {
        self.inputs.iter().find(|i| i.name == name)
    }

    /// Looks up an instruction by name.
    pub fn find_instruction(&self, name: &str) -> Option<&Instruction> {
        self.instructions.iter().find(|i| i.name == name)
    }

    /// Starts building an instruction with the given name.
    pub fn instr(&mut self, name: impl Into<String>) -> InstrBuilder<'_> {
        InstrBuilder {
            port: self,
            name: name.into(),
            parent: None,
            decode: None,
            updates: Vec::new(),
            line: None,
        }
    }

    /// Starts building a sub-instruction of `parent`.
    pub fn sub_instr(
        &mut self,
        name: impl Into<String>,
        parent: impl Into<String>,
    ) -> InstrBuilder<'_> {
        InstrBuilder {
            port: self,
            name: name.into(),
            parent: Some(parent.into()),
            decode: None,
            updates: Vec::new(),
            line: None,
        }
    }

    fn add_instruction(
        &mut self,
        name: String,
        parent: Option<String>,
        decode: ExprRef,
        updates: Vec<(String, ExprRef)>,
        line: Option<usize>,
    ) -> Result<(), ModelError> {
        if self.instructions.iter().any(|i| i.name == name) {
            return Err(ModelError::DuplicateName { name });
        }
        if let Some(p) = &parent {
            // Parents are either top-level instructions already added, or
            // purely logical groupings; require the referenced parent to
            // exist as an instruction OR as another sub-instruction group.
            let exists = self
                .instructions
                .iter()
                .any(|i| i.name == *p || i.parent.as_deref() == Some(p.as_str()));
            if !exists {
                return Err(ModelError::UnknownParent {
                    instruction: name,
                    parent: p.clone(),
                });
            }
        }
        if !self.ctx.sort_of(decode).is_bool() {
            return Err(ModelError::DecodeNotBool {
                instruction: name,
                found: self.ctx.sort_of(decode),
            });
        }
        // All referenced variables must be declared inputs or states.
        let mut roots = vec![decode];
        roots.extend(updates.iter().map(|(_, e)| *e));
        for v in self.ctx.vars_of(&roots) {
            let vname = self.ctx.var_name(v).expect("var node").to_string();
            if !self.has_name(&vname) {
                return Err(ModelError::UnknownVar {
                    instruction: name,
                    var: vname,
                });
            }
        }
        let mut map = BTreeMap::new();
        for (state, expr) in updates {
            let sv = self
                .find_state(&state)
                .ok_or_else(|| ModelError::UnknownState {
                    instruction: name.clone(),
                    state: state.clone(),
                })?;
            let found = self.ctx.sort_of(expr);
            if found != sv.sort {
                return Err(ModelError::UpdateSortMismatch {
                    instruction: name,
                    state,
                    expected: sv.sort,
                    found,
                });
            }
            if map.insert(state.clone(), expr).is_some() {
                return Err(ModelError::DuplicateName { name: state });
            }
        }
        self.instructions.push(Instruction {
            name,
            parent,
            decode,
            updates: map,
            line,
        });
        Ok(())
    }

    /// Number of *logical* instructions (atomic instructions that are not
    /// sub-instructions, plus one per distinct parent group).
    pub fn num_logical_instructions(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| i.parent.is_none())
            .count()
    }

    /// Number of atomic instructions (instructions + sub-instructions) —
    /// the unit the paper counts in Table I.
    pub fn num_atomic_instructions(&self) -> usize {
        self.instructions.len()
    }

    /// Total architectural state bits (memories count in full), as
    /// counted by the "# of Arch. State Bits" column in Table I.
    pub fn arch_state_bits(&self) -> u64 {
        self.states.iter().map(|s| s.sort.bit_count()).sum()
    }

    /// Total input bits.
    pub fn input_bits(&self) -> u64 {
        self.inputs.iter().map(|i| i.sort.bit_count()).sum()
    }
}

/// Fluent builder for one instruction; created by [`PortIla::instr`] or
/// [`PortIla::sub_instr`], finished with [`InstrBuilder::add`].
#[derive(Debug)]
pub struct InstrBuilder<'a> {
    port: &'a mut PortIla,
    name: String,
    parent: Option<String>,
    decode: Option<ExprRef>,
    updates: Vec<(String, ExprRef)>,
    line: Option<usize>,
}

impl InstrBuilder<'_> {
    /// Sets the decode (trigger) condition.
    pub fn decode(mut self, decode: ExprRef) -> Self {
        self.decode = Some(decode);
        self
    }

    /// Adds a next-state function for `state`.
    pub fn update(mut self, state: impl Into<String>, expr: ExprRef) -> Self {
        self.updates.push((state.into(), expr));
        self
    }

    /// Tags the instruction with the source line of its declaration.
    pub fn at(mut self, line: usize) -> Self {
        self.line = Some(line);
        self
    }

    /// Validates and adds the instruction to the port.
    ///
    /// # Errors
    ///
    /// See [`ModelError`] for the conditions checked. A missing decode
    /// defaults to `true` (useful for "0-command" modules whose single
    /// `start` instruction is triggered by power-on).
    pub fn add(self) -> Result<(), ModelError> {
        let decode = match self.decode {
            Some(d) => d,
            None => self.port.ctx.tt(),
        };
        self.port
            .add_instruction(self.name, self.parent, decode, self.updates, self.line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter() -> PortIla {
        let mut p = PortIla::new("counter");
        let en = p.input("en", Sort::Bv(1));
        let cnt = p.state("cnt", Sort::Bv(8), StateKind::Output);
        let d1 = p.ctx_mut().eq_u64(en, 1);
        let one = p.ctx_mut().bv_u64(1, 8);
        let nx = p.ctx_mut().bvadd(cnt, one);
        p.instr("inc").decode(d1).update("cnt", nx).add().unwrap();
        let d0 = p.ctx_mut().eq_u64(en, 0);
        p.instr("hold").decode(d0).add().unwrap();
        p
    }

    #[test]
    fn build_and_query() {
        let p = counter();
        assert_eq!(p.name(), "counter");
        assert_eq!(p.instructions().len(), 2);
        assert_eq!(p.arch_state_bits(), 8);
        assert_eq!(p.input_bits(), 1);
        assert!(p.find_state("cnt").is_some());
        assert!(p.find_instruction("inc").is_some());
        assert!(p.find_instruction("dec").is_none());
    }

    #[test]
    fn duplicate_instruction_rejected() {
        let mut p = counter();
        let d = p.ctx_mut().tt();
        let err = p.instr("inc").decode(d).add().unwrap_err();
        assert!(matches!(err, ModelError::DuplicateName { .. }));
    }

    #[test]
    fn unknown_state_rejected() {
        let mut p = counter();
        let d = p.ctx_mut().tt();
        let v = p.ctx_mut().bv_u64(0, 8);
        let err = p.instr("bad").decode(d).update("nope", v).add().unwrap_err();
        assert!(matches!(err, ModelError::UnknownState { .. }));
    }

    #[test]
    fn sort_mismatch_rejected() {
        let mut p = counter();
        let d = p.ctx_mut().tt();
        let v = p.ctx_mut().bv_u64(0, 4);
        let err = p.instr("bad").decode(d).update("cnt", v).add().unwrap_err();
        assert!(matches!(err, ModelError::UpdateSortMismatch { .. }));
    }

    #[test]
    fn non_bool_decode_rejected() {
        let mut p = counter();
        let d = p.ctx_mut().bv_u64(1, 1);
        let err = p.instr("bad").decode(d).add().unwrap_err();
        assert!(matches!(err, ModelError::DecodeNotBool { .. }));
    }

    #[test]
    fn foreign_var_rejected() {
        let mut p = counter();
        let alien = p.ctx_mut().var("alien", Sort::Bool);
        let err = p.instr("bad").decode(alien).add().unwrap_err();
        assert!(matches!(err, ModelError::UnknownVar { .. }));
    }

    #[test]
    fn sub_instruction_parent_checked() {
        let mut p = counter();
        let d = p.ctx_mut().tt();
        let err = p.sub_instr("s0", "ghost").decode(d).add().unwrap_err();
        assert!(matches!(err, ModelError::UnknownParent { .. }));
        let d = p.ctx_mut().tt();
        p.sub_instr("s0", "inc").decode(d).add().unwrap();
        assert_eq!(p.num_logical_instructions(), 2);
        assert_eq!(p.num_atomic_instructions(), 3);
    }

    #[test]
    fn init_values() {
        let mut p = counter();
        p.set_init("cnt", gila_expr::BitVecValue::from_u64(0, 8)).unwrap();
        assert!(p.find_state("cnt").unwrap().init.is_some());
        let err = p
            .set_init("cnt", gila_expr::BitVecValue::from_u64(0, 4))
            .unwrap_err();
        assert!(matches!(err, ModelError::InitSortMismatch { .. }));
        assert!(p
            .set_init("ghost", gila_expr::BitVecValue::from_u64(0, 4))
            .is_err());
    }

    #[test]
    fn default_decode_is_true() {
        let mut p = PortIla::new("clockgen");
        let tick = p.state("tick", Sort::Bv(1), StateKind::Output);
        let nx = p.ctx_mut().bvnot(tick);
        p.instr("start").update("tick", nx).add().unwrap();
        let i = p.find_instruction("start").unwrap();
        assert_eq!(p.ctx().as_bool_const(i.decode), Some(true));
    }
}
