//! Static well-formedness checks on port-ILAs, discharged with SAT.
//!
//! A port-ILA is a *complete* functional specification when, for every
//! command presented at the port, exactly one atomic instruction
//! triggers. [`decode_gap`] finds commands no instruction covers;
//! [`decode_overlaps`] finds commands that trigger several instructions
//! at once. Both accept an optional reachability assumption (e.g.
//! `step <= 3`) to exclude unreachable states from the check.

use gila_expr::{ExprRef, Value};
use gila_smt::SmtSolver;

use crate::model::PortIla;

/// A concrete command (input + state valuation) witnessing a decode
/// anomaly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Witness {
    /// `(name, value)` for every input of the port.
    pub inputs: Vec<(String, Value)>,
    /// `(name, value)` for every state of the port.
    pub states: Vec<(String, Value)>,
}

/// Checks decode *completeness*: searches for a command that triggers no
/// instruction. Returns a witness if one exists, `None` if the decode
/// functions cover every command (under `assumption`, if given).
///
/// # Panics
///
/// Panics if `assumption` is not a boolean expression of the port's
/// context.
///
/// # Examples
///
/// ```
/// use gila_core::{decode_gap, PortIla, StateKind};
/// use gila_expr::Sort;
///
/// let mut p = PortIla::new("partial");
/// let x = p.input("x", Sort::Bv(1));
/// let d = p.ctx_mut().eq_u64(x, 0);
/// p.instr("zero").decode(d).add()?;
/// // x == 1 is uncovered:
/// assert!(decode_gap(&p, None).is_some());
/// let d = p.ctx_mut().eq_u64(x, 1);
/// p.instr("one").decode(d).add()?;
/// assert!(decode_gap(&p, None).is_none());
/// # Ok::<(), gila_core::ModelError>(())
/// ```
pub fn decode_gap(port: &PortIla, assumption: Option<ExprRef>) -> Option<Witness> {
    let mut ctx = port.ctx().clone();
    let decodes: Vec<ExprRef> = port.instructions().iter().map(|i| i.decode).collect();
    let any = ctx.or_many(&decodes);
    let none = ctx.not(any);
    let mut smt = SmtSolver::new();
    if let Some(a) = assumption {
        smt.assert(&ctx, a);
    }
    smt.assert(&ctx, none);
    if smt.check().is_sat() {
        Some(extract_witness(port, &ctx, &smt))
    } else {
        None
    }
}

/// A pair of instructions whose decode conditions can hold
/// simultaneously, with a concrete command triggering both.
///
/// Pairs are reported in declaration order: `first` always precedes
/// `second` in the port, and the list itself follows the pairwise scan
/// order, so output is stable across runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeOverlap {
    /// The earlier-declared instruction of the pair.
    pub first: String,
    /// The later-declared instruction of the pair.
    pub second: String,
    /// A command on which both decode conditions hold.
    pub witness: Witness,
}

/// Checks one instruction pair for overlap: if the decode conditions of
/// instructions `i` and `j` (declaration indices) can hold
/// simultaneously (under `assumption`), returns the overlap with a
/// witness. This is the per-pair granularity behind
/// [`decode_overlaps`], exposed so callers that already proved some
/// pairs disjoint by other means can run SAT only on the rest.
///
/// # Panics
///
/// Panics if `i` or `j` is out of range.
pub fn decode_overlap_pair(
    port: &PortIla,
    i: usize,
    j: usize,
    assumption: Option<ExprRef>,
) -> Option<DecodeOverlap> {
    let instrs = port.instructions();
    let mut ctx = port.ctx().clone();
    let both = ctx.and(instrs[i].decode, instrs[j].decode);
    let mut smt = SmtSolver::new();
    if let Some(a) = assumption {
        smt.assert(&ctx, a);
    }
    smt.assert(&ctx, both);
    if smt.check().is_sat() {
        Some(DecodeOverlap {
            first: instrs[i].name.clone(),
            second: instrs[j].name.clone(),
            witness: extract_witness(port, &ctx, &smt),
        })
    } else {
        None
    }
}

/// Checks decode *determinism*: returns every pair of instructions whose
/// decode conditions can hold simultaneously (under `assumption`).
///
/// An empty result means at most one instruction triggers per command —
/// together with an empty [`decode_gap`], exactly one always triggers.
pub fn decode_overlaps(port: &PortIla, assumption: Option<ExprRef>) -> Vec<DecodeOverlap> {
    let mut overlaps = Vec::new();
    let n = port.instructions().len();
    for i in 0..n {
        for j in (i + 1)..n {
            overlaps.extend(decode_overlap_pair(port, i, j, assumption));
        }
    }
    overlaps
}

/// Checks whether the instruction at declaration index `idx` is *dead*:
/// its decode condition is unsatisfiable (under `assumption`) and it
/// can never trigger. Per-instruction granularity behind
/// [`dead_instructions`].
///
/// # Panics
///
/// Panics if `idx` is out of range.
pub fn instruction_dead(port: &PortIla, idx: usize, assumption: Option<ExprRef>) -> bool {
    let instr = &port.instructions()[idx];
    let ctx = port.ctx().clone();
    let mut smt = SmtSolver::new();
    if let Some(a) = assumption {
        smt.assert(&ctx, a);
    }
    smt.assert(&ctx, instr.decode);
    !smt.check().is_sat()
}

/// Checks for *dead* instructions: instructions whose decode condition
/// is unsatisfiable (under `assumption`) and therefore can never
/// trigger. Returns their names in declaration order.
pub fn dead_instructions(port: &PortIla, assumption: Option<ExprRef>) -> Vec<String> {
    (0..port.instructions().len())
        .filter(|&i| instruction_dead(port, i, assumption))
        .map(|i| port.instructions()[i].name.clone())
        .collect()
}

fn extract_witness(port: &PortIla, ctx: &gila_expr::ExprCtx, smt: &SmtSolver) -> Witness {
    let value_of = |var: ExprRef, sort: gila_expr::Sort| -> Value {
        // Variables not mentioned in any decode were never blasted; report
        // a default value for them.
        smt.try_model_value(ctx, var).unwrap_or(match sort {
            gila_expr::Sort::Bool => Value::Bool(false),
            gila_expr::Sort::Bv(w) => Value::Bv(gila_expr::BitVecValue::zero(w)),
            gila_expr::Sort::Mem {
                addr_width,
                data_width,
            } => Value::Mem(gila_expr::MemValue::zeroed(addr_width, data_width)),
        })
    };
    Witness {
        inputs: port
            .inputs()
            .iter()
            .map(|i| (i.name.clone(), value_of(i.var, i.sort)))
            .collect(),
        states: port
            .states()
            .iter()
            .map(|s| (s.name.clone(), value_of(s.var, s.sort)))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::StateKind;
    use gila_expr::Sort;

    fn two_instr_port(complete: bool, disjoint: bool) -> PortIla {
        let mut p = PortIla::new("p");
        let x = p.input("x", Sort::Bv(2));
        p.state("s", Sort::Bv(2), StateKind::Output);
        let d0 = p.ctx_mut().eq_u64(x, 0);
        p.instr("a").decode(d0).add().unwrap();
        let d1 = if complete {
            let z = p.ctx_mut().bv_u64(0, 2);
            p.ctx_mut().ne(x, z)
        } else {
            p.ctx_mut().eq_u64(x, 1)
        };
        let d1 = if disjoint {
            d1
        } else {
            let d0again = p.ctx_mut().eq_u64(x, 0);
            p.ctx_mut().or(d1, d0again)
        };
        p.instr("b").decode(d1).add().unwrap();
        p
    }

    #[test]
    fn complete_and_deterministic() {
        let p = two_instr_port(true, true);
        assert!(decode_gap(&p, None).is_none());
        assert!(decode_overlaps(&p, None).is_empty());
    }

    #[test]
    fn gap_witness_found() {
        let p = two_instr_port(false, true);
        let w = decode_gap(&p, None).expect("x in {2,3} uncovered");
        let x = w.inputs.iter().find(|(n, _)| n == "x").unwrap();
        assert!(x.1.as_bv().to_u64() >= 2);
    }

    #[test]
    fn overlap_witness_found() {
        let p = two_instr_port(true, false);
        let os = decode_overlaps(&p, None);
        assert_eq!(os.len(), 1);
        assert_eq!(os[0].first, "a");
        assert_eq!(os[0].second, "b");
        let x = os[0].witness.inputs.iter().find(|(n, _)| n == "x").unwrap();
        assert_eq!(x.1.as_bv().to_u64(), 0);
    }

    #[test]
    fn dead_instruction_detected() {
        let mut p = two_instr_port(true, true);
        let x = p.ctx().find_var("x").unwrap();
        let never = {
            let a = p.ctx_mut().eq_u64(x, 0);
            let b = p.ctx_mut().eq_u64(x, 1);
            p.ctx_mut().and(a, b)
        };
        p.instr("dead").decode(never).add().unwrap();
        assert_eq!(dead_instructions(&p, None), vec!["dead".to_string()]);
    }

    #[test]
    fn assumption_restricts_check() {
        let mut p = two_instr_port(false, true);
        // Under the assumption x < 2, the incomplete decode is fine.
        let x = p.ctx().find_var("x").unwrap();
        let two = p.ctx_mut().bv_u64(2, 2);
        let assumption = p.ctx_mut().ult(x, two);
        assert!(decode_gap(&p, Some(assumption)).is_none());
    }
}
