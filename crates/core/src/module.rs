//! The module-ILA: a union of independent port-ILAs.

use std::fmt;

use crate::compose::shared_updated_states;
use crate::model::PortIla;

/// An error while composing ports into a module-ILA.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ComposeError {
    /// Two or more ports still share state; integrate them first
    /// (see [`crate::integrate`]).
    SharedStates(
        /// Names of the states shared across ports.
        Vec<String>,
    ),
    /// Two ports have the same name.
    DuplicatePort(
        /// The duplicated port name.
        String,
    ),
    /// No ports were given.
    NoPorts,
}

impl fmt::Display for ComposeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComposeError::SharedStates(states) => write!(
                f,
                "ports share state(s) {states:?}; integrate them before composing"
            ),
            ComposeError::DuplicatePort(name) => write!(f, "duplicate port name {name:?}"),
            ComposeError::NoPorts => write!(f, "a module needs at least one port"),
        }
    }
}

impl std::error::Error for ComposeError {}

/// Summary statistics of a module-ILA, matching the "ILA Model
/// Statistics" columns of Table I.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModuleIlaStats {
    /// Number of ports.
    pub ports: usize,
    /// Atomic instructions across all ports ("# of insts. (all ports)").
    pub instructions: usize,
    /// Total architectural state bits ("# of Arch. State Bits"); shared
    /// states (by name) are counted once.
    pub arch_state_bits: u64,
}

/// A complete functional specification of a hardware module: the union
/// of its (pairwise independent) port-ILAs.
///
/// Construction enforces the paper's Step 4 precondition: ports that
/// share state must be integrated (Step 3, [`crate::integrate`]) before
/// composition, so the composed ports are independent by construction.
///
/// # Examples
///
/// ```
/// use gila_core::{ModuleIla, PortIla, StateKind};
/// use gila_expr::Sort;
///
/// let mut read = PortIla::new("READ");
/// let v = read.input("rd_valid", Sort::Bv(1));
/// read.state("rd_data", Sort::Bv(8), StateKind::Output);
/// let d = read.ctx_mut().eq_u64(v, 1);
/// read.instr("RD").decode(d).add()?;
///
/// let mut write = PortIla::new("WRITE");
/// let v = write.input("wr_valid", Sort::Bv(1));
/// write.state("wr_ready", Sort::Bv(1), StateKind::Output);
/// let d = write.ctx_mut().eq_u64(v, 1);
/// write.instr("WR").decode(d).add()?;
///
/// let m = ModuleIla::compose("axi_slave", vec![read, write])?;
/// assert_eq!(m.stats().ports, 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct ModuleIla {
    name: String,
    ports: Vec<PortIla>,
}

impl ModuleIla {
    /// Composes independent ports into a module-ILA.
    ///
    /// # Errors
    ///
    /// Returns [`ComposeError::SharedStates`] if any state is *updated*
    /// by more than one port (integrate those ports first; read-only
    /// sharing is fine), and
    /// [`ComposeError::DuplicatePort`] / [`ComposeError::NoPorts`] for
    /// malformed input.
    pub fn compose(
        name: impl Into<String>,
        ports: Vec<PortIla>,
    ) -> Result<Self, ComposeError> {
        if ports.is_empty() {
            return Err(ComposeError::NoPorts);
        }
        for (i, p) in ports.iter().enumerate() {
            if ports[..i].iter().any(|q| q.name() == p.name()) {
                return Err(ComposeError::DuplicatePort(p.name().to_string()));
            }
        }
        let refs: Vec<&PortIla> = ports.iter().collect();
        // Ports may *read* common states (declared in several ports); only
        // conflicting *updates* require prior integration.
        let shared = shared_updated_states(&refs);
        if !shared.is_empty() {
            return Err(ComposeError::SharedStates(shared));
        }
        Ok(ModuleIla {
            name: name.into(),
            ports,
        })
    }

    /// A module with a single command interface.
    pub fn single_port(port: PortIla) -> Self {
        let name = port.name().to_string();
        ModuleIla {
            name,
            ports: vec![port],
        }
    }

    /// The module's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The constituent (independent) ports.
    pub fn ports(&self) -> &[PortIla] {
        &self.ports
    }

    /// Looks up a port by name.
    pub fn find_port(&self, name: &str) -> Option<&PortIla> {
        self.ports.iter().find(|p| p.name() == name)
    }

    /// Table I-style statistics for this module-ILA.
    pub fn stats(&self) -> ModuleIlaStats {
        // States shared (read-only) across ports count once.
        let mut seen = std::collections::BTreeSet::new();
        let mut arch_state_bits = 0;
        for p in &self.ports {
            for s in p.states() {
                if seen.insert(s.name.clone()) {
                    arch_state_bits += s.sort.bit_count();
                }
            }
        }
        ModuleIlaStats {
            ports: self.ports.len(),
            instructions: self
                .ports
                .iter()
                .map(|p| p.num_atomic_instructions())
                .sum(),
            arch_state_bits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::StateKind;
    use gila_expr::Sort;

    fn port(name: &str, state: &str) -> PortIla {
        let mut p = PortIla::new(name);
        let v = p.input(format!("{name}_in"), Sort::Bv(1));
        p.state(state, Sort::Bv(4), StateKind::Output);
        let d = p.ctx_mut().eq_u64(v, 1);
        let nx = p.ctx_mut().bv_u64(3, 4);
        p.instr(format!("{name}_GO"))
            .decode(d)
            .update(state, nx)
            .add()
            .unwrap();
        p
    }

    #[test]
    fn compose_independent() {
        let m = ModuleIla::compose("m", vec![port("A", "sa"), port("B", "sb")]).unwrap();
        assert_eq!(m.stats().ports, 2);
        assert_eq!(m.stats().instructions, 2);
        assert_eq!(m.stats().arch_state_bits, 8);
        assert!(m.find_port("A").is_some());
        assert!(m.find_port("C").is_none());
    }

    #[test]
    fn shared_updated_state_rejected() {
        let err = ModuleIla::compose("m", vec![port("A", "s"), port("B", "s")]).unwrap_err();
        assert_eq!(err, ComposeError::SharedStates(vec!["s".to_string()]));
    }

    #[test]
    fn read_only_sharing_allowed() {
        // Port B declares A's state but never updates it.
        let a = port("A", "s");
        let mut b = PortIla::new("B");
        let v = b.input("b_in", Sort::Bv(1));
        let s = b.state("s", Sort::Bv(4), StateKind::Output);
        b.state("b_out", Sort::Bv(4), StateKind::Output);
        let d = b.ctx_mut().eq_u64(v, 1);
        b.instr("B_READ").decode(d).update("b_out", s).add().unwrap();
        let m = ModuleIla::compose("m", vec![a, b]).unwrap();
        assert_eq!(m.stats().ports, 2);
    }

    #[test]
    fn duplicate_port_rejected() {
        let err = ModuleIla::compose("m", vec![port("A", "sa"), port("A", "sb")]).unwrap_err();
        assert_eq!(err, ComposeError::DuplicatePort("A".to_string()));
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(
            ModuleIla::compose("m", vec![]).unwrap_err(),
            ComposeError::NoPorts
        );
    }
}
