//! Textual rendering of ILA models in the style of the paper's
//! Figs. 1–3: inputs, output states, other states, and an instruction
//! table listing updated states.

use std::fmt::Write as _;

use crate::model::{PortIla, StateKind};
use crate::module::ModuleIla;

impl PortIla {
    /// Renders the port-ILA as a Fig. 1/2/3-style sketch.
    ///
    /// The line count of this rendering is also used as the "ILA Size
    /// (LoC)" statistic in the Table I reproduction.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== {} ===", self.name());
        let inputs: Vec<String> = self
            .inputs()
            .iter()
            .map(|i| format!("{}: {}", i.name, i.sort))
            .collect();
        let _ = writeln!(out, "W   Input         {}", inputs.join(", "));
        let outs: Vec<String> = self
            .states()
            .iter()
            .filter(|s| s.kind == StateKind::Output)
            .map(|s| format!("{}: {}", s.name, s.sort))
            .collect();
        let _ = writeln!(out, "S   Output States {}", outs.join(", "));
        let others: Vec<String> = self
            .states()
            .iter()
            .filter(|s| s.kind == StateKind::Internal)
            .map(|s| format!("{}: {}", s.name, s.sort))
            .collect();
        let _ = writeln!(out, "    Other States  {}", others.join(", "));
        let _ = writeln!(out, "I   Instruction        Decode | Updated States");
        for (idx, i) in self.instructions().iter().enumerate() {
            let tag = match &i.parent {
                Some(p) => format!("i{idx} (sub of {p})"),
                None => format!("i{idx}"),
            };
            let updated: Vec<&str> = i.updates.keys().map(String::as_str).collect();
            let _ = writeln!(
                out,
                "    {tag:<18} {name:<18} {decode} | {updates}",
                name = i.name,
                decode = self.ctx().display(i.decode),
                updates = updated.join(", "),
            );
        }
        out
    }

    /// Number of lines in [`PortIla::describe`] — the "ILA Size (LoC)"
    /// proxy for this port.
    pub fn size_loc(&self) -> usize {
        self.describe().lines().count()
    }
}

impl ModuleIla {
    /// Renders all ports of the module, Fig. 3-style.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "module-ILA {}: [{}]", self.name(), {
            let names: Vec<&str> = self.ports().iter().map(|p| p.name()).collect();
            names.join(", ")
        });
        for p in self.ports() {
            out.push('\n');
            out.push_str(&p.describe());
        }
        out
    }

    /// Total "ILA Size (LoC)" across ports.
    pub fn size_loc(&self) -> usize {
        self.ports().iter().map(|p| p.size_loc()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gila_expr::Sort;

    #[test]
    fn describe_contains_sections() {
        let mut p = PortIla::new("DEC");
        let w = p.input("wait", Sort::Bv(1));
        p.state("alu_op", Sort::Bv(4), StateKind::Output);
        p.state("step", Sort::Bv(2), StateKind::Internal);
        let d = p.ctx_mut().eq_u64(w, 1);
        p.instr("stall").decode(d).add().unwrap();
        let text = p.describe();
        assert!(text.contains("=== DEC ==="));
        assert!(text.contains("wait: bv1"));
        assert!(text.contains("alu_op: bv4"));
        assert!(text.contains("step: bv2"));
        assert!(text.contains("stall"));
        assert!(p.size_loc() >= 5);
    }

    #[test]
    fn module_describe_lists_ports() {
        let mut a = PortIla::new("A");
        let x = a.input("xa", Sort::Bv(1));
        a.state("sa", Sort::Bv(1), StateKind::Output);
        let d = a.ctx_mut().eq_u64(x, 0);
        a.instr("ia").decode(d).add().unwrap();
        let mut b = PortIla::new("B");
        let x = b.input("xb", Sort::Bv(1));
        b.state("sb", Sort::Bv(1), StateKind::Output);
        let d = b.ctx_mut().eq_u64(x, 0);
        b.instr("ib").decode(d).add().unwrap();
        let m = ModuleIla::compose("m", vec![a, b]).unwrap();
        let text = m.describe();
        assert!(text.contains("module-ILA m: [A, B]"));
        assert!(text.contains("=== A ==="));
        assert!(text.contains("=== B ==="));
    }
}
