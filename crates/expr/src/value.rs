//! Arbitrary-width bit-vector values.
//!
//! [`BitVecValue`] is the concrete counterpart of the `Bv(w)` sort: a
//! two's-complement bit string of a fixed width `w >= 1`, stored as
//! little-endian 64-bit limbs. All operations keep the value *normalized*
//! (bits above `w` are zero), so `==` is semantic equality.

use std::fmt;

/// Number of bits per storage limb.
const LIMB_BITS: u32 = 64;

/// A fixed-width bit-vector value.
///
/// # Examples
///
/// ```
/// use gila_expr::BitVecValue;
///
/// let a = BitVecValue::from_u64(0xAB, 8);
/// let b = BitVecValue::from_u64(0x01, 8);
/// assert_eq!(a.add(&b).to_u64(), 0xAC);
/// assert_eq!(a.concat(&b).width(), 16);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BitVecValue {
    width: u32,
    limbs: Vec<u64>,
}

fn limbs_for(width: u32) -> usize {
    width.div_ceil(LIMB_BITS) as usize
}

impl BitVecValue {
    /// Creates a zero value of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn zero(width: u32) -> Self {
        assert!(width > 0, "bit-vector width must be positive");
        BitVecValue {
            width,
            limbs: vec![0; limbs_for(width)],
        }
    }

    /// Creates the value 1 of the given width.
    pub fn one(width: u32) -> Self {
        let mut v = Self::zero(width);
        v.limbs[0] = 1;
        v.normalize();
        v
    }

    /// Creates the all-ones value of the given width.
    pub fn ones(width: u32) -> Self {
        let mut v = Self::zero(width);
        for l in &mut v.limbs {
            *l = u64::MAX;
        }
        v.normalize();
        v
    }

    /// Creates a value from the low bits of `x`, truncating to `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn from_u64(x: u64, width: u32) -> Self {
        let mut v = Self::zero(width);
        v.limbs[0] = x;
        v.normalize();
        v
    }

    /// Creates a 1-bit value from a boolean.
    pub fn from_bool(b: bool) -> Self {
        Self::from_u64(b as u64, 1)
    }

    /// Overwrites `self` with `src`, reusing the limb allocation when
    /// the limb counts match (the common case for same-width copies).
    fn clone_bits_from(&mut self, src: &BitVecValue) {
        self.width = src.width;
        if self.limbs.len() == src.limbs.len() {
            self.limbs.copy_from_slice(&src.limbs);
        } else {
            self.limbs.clear();
            self.limbs.extend_from_slice(&src.limbs);
        }
    }

    /// Creates a value from bits, least-significant first.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty.
    pub fn from_bits(bits: &[bool]) -> Self {
        assert!(!bits.is_empty(), "bit-vector width must be positive");
        let mut v = Self::zero(bits.len() as u32);
        for (i, &b) in bits.iter().enumerate() {
            if b {
                v.limbs[i / LIMB_BITS as usize] |= 1u64 << (i as u32 % LIMB_BITS);
            }
        }
        v
    }

    /// Parses a binary string like `"1010"` (most-significant bit first).
    ///
    /// Returns `None` on empty input or non-binary characters
    /// (underscores are ignored).
    pub fn parse_binary(s: &str) -> Option<Self> {
        let digits: Vec<bool> = s
            .chars()
            .filter(|c| *c != '_')
            .map(|c| match c {
                '0' => Some(false),
                '1' => Some(true),
                _ => None,
            })
            .collect::<Option<_>>()?;
        if digits.is_empty() {
            return None;
        }
        let lsb_first: Vec<bool> = digits.into_iter().rev().collect();
        Some(Self::from_bits(&lsb_first))
    }

    /// Parses a hexadecimal string like `"dead_beef"`; width is 4 bits per digit.
    pub fn parse_hex(s: &str) -> Option<Self> {
        let mut bits = Vec::new();
        for c in s.chars().filter(|c| *c != '_') {
            let d = c.to_digit(16)? as u64;
            for i in (0..4).rev() {
                bits.push((d >> i) & 1 == 1);
            }
        }
        if bits.is_empty() {
            return None;
        }
        let lsb_first: Vec<bool> = bits.into_iter().rev().collect();
        Some(Self::from_bits(&lsb_first))
    }

    /// The width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Returns bit `i` (little-endian).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    pub fn bit(&self, i: u32) -> bool {
        assert!(i < self.width, "bit index {i} out of range for width {}", self.width);
        (self.limbs[(i / LIMB_BITS) as usize] >> (i % LIMB_BITS)) & 1 == 1
    }

    /// Returns the bits, least-significant first.
    pub fn to_bits(&self) -> Vec<bool> {
        (0..self.width).map(|i| self.bit(i)).collect()
    }

    /// Returns the value as `u64`, truncating high bits if the width exceeds 64.
    pub fn to_u64(&self) -> u64 {
        self.limbs[0]
    }

    /// Returns the value as `u64` if it fits losslessly, else `None`.
    pub fn try_to_u64(&self) -> Option<u64> {
        if self.limbs[1..].iter().all(|&l| l == 0) {
            Some(self.limbs[0])
        } else {
            None
        }
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// True if every bit is one.
    pub fn is_ones(&self) -> bool {
        *self == Self::ones(self.width)
    }

    /// The sign (most-significant) bit.
    pub fn msb(&self) -> bool {
        self.bit(self.width - 1)
    }

    fn normalize(&mut self) {
        let rem = self.width % LIMB_BITS;
        if rem != 0 {
            let last = self.limbs.len() - 1;
            self.limbs[last] &= (1u64 << rem) - 1;
        }
    }

    fn check_same_width(&self, other: &Self, op: &str) {
        assert_eq!(
            self.width, other.width,
            "width mismatch in {op}: {} vs {}",
            self.width, other.width
        );
    }

    /// Bitwise NOT.
    pub fn not(&self) -> Self {
        let mut out = self.clone();
        for l in &mut out.limbs {
            *l = !*l;
        }
        out.normalize();
        out
    }

    /// Bitwise AND. Panics on width mismatch.
    pub fn and(&self, other: &Self) -> Self {
        self.check_same_width(other, "and");
        let mut out = self.clone();
        for (a, b) in out.limbs.iter_mut().zip(&other.limbs) {
            *a &= *b;
        }
        out
    }

    /// Bitwise OR. Panics on width mismatch.
    pub fn or(&self, other: &Self) -> Self {
        self.check_same_width(other, "or");
        let mut out = self.clone();
        for (a, b) in out.limbs.iter_mut().zip(&other.limbs) {
            *a |= *b;
        }
        out
    }

    /// Bitwise XOR. Panics on width mismatch.
    pub fn xor(&self, other: &Self) -> Self {
        self.check_same_width(other, "xor");
        let mut out = self.clone();
        for (a, b) in out.limbs.iter_mut().zip(&other.limbs) {
            *a ^= *b;
        }
        out
    }

    /// Wrapping addition. Panics on width mismatch.
    pub fn add(&self, other: &Self) -> Self {
        self.check_same_width(other, "add");
        let mut out = Self::zero(self.width);
        let mut carry = 0u64;
        for i in 0..self.limbs.len() {
            let (s1, c1) = self.limbs[i].overflowing_add(other.limbs[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            out.limbs[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        out.normalize();
        out
    }

    /// Wrapping subtraction. Panics on width mismatch.
    pub fn sub(&self, other: &Self) -> Self {
        self.add(&other.neg())
    }

    /// Two's-complement negation.
    pub fn neg(&self) -> Self {
        self.not().add(&Self::one(self.width))
    }

    /// Wrapping multiplication. Panics on width mismatch.
    pub fn mul(&self, other: &Self) -> Self {
        self.check_same_width(other, "mul");
        let n = self.limbs.len();
        let mut acc = vec![0u64; n];
        for i in 0..n {
            let mut carry: u128 = 0;
            if self.limbs[i] == 0 {
                continue;
            }
            for j in 0..n - i {
                let cur = acc[i + j] as u128
                    + (self.limbs[i] as u128) * (other.limbs[j] as u128)
                    + carry;
                acc[i + j] = cur as u64;
                carry = cur >> 64;
            }
        }
        let mut out = BitVecValue {
            width: self.width,
            limbs: acc,
        };
        out.normalize();
        out
    }

    /// Unsigned division; division by zero yields all-ones (SMT-LIB semantics).
    pub fn udiv(&self, other: &Self) -> Self {
        self.check_same_width(other, "udiv");
        if other.is_zero() {
            return Self::ones(self.width);
        }
        self.udivrem(other).0
    }

    /// Unsigned remainder; remainder by zero yields the dividend (SMT-LIB semantics).
    pub fn urem(&self, other: &Self) -> Self {
        self.check_same_width(other, "urem");
        if other.is_zero() {
            return self.clone();
        }
        self.udivrem(other).1
    }

    fn udivrem(&self, other: &Self) -> (Self, Self) {
        // Simple bit-serial long division; widths here are small (<= a few hundred bits).
        let mut q = Self::zero(self.width);
        let mut r = Self::zero(self.width);
        for i in (0..self.width).rev() {
            r = r.shl_amount(1);
            if self.bit(i) {
                r.limbs[0] |= 1;
            }
            if r.uge(other) {
                r = r.sub(other);
                q.limbs[(i / LIMB_BITS) as usize] |= 1u64 << (i % LIMB_BITS);
            }
        }
        (q, r)
    }

    fn shl_amount(&self, amount: u32) -> Self {
        let mut out = Self::zero(self.width);
        for i in 0..self.width {
            if i >= amount && self.bit(i - amount) {
                out.limbs[(i / LIMB_BITS) as usize] |= 1u64 << (i % LIMB_BITS);
            }
        }
        out
    }

    fn lshr_amount(&self, amount: u32) -> Self {
        let mut out = Self::zero(self.width);
        for i in 0..self.width {
            if i + amount < self.width && self.bit(i + amount) {
                out.limbs[(i / LIMB_BITS) as usize] |= 1u64 << (i % LIMB_BITS);
            }
        }
        out
    }

    /// Logical left shift; the shift amount is the unsigned value of `other`.
    pub fn shl(&self, other: &Self) -> Self {
        match other.try_to_u64() {
            Some(n) if n < self.width as u64 => self.shl_amount(n as u32),
            _ => Self::zero(self.width),
        }
    }

    /// Logical right shift.
    pub fn lshr(&self, other: &Self) -> Self {
        match other.try_to_u64() {
            Some(n) if n < self.width as u64 => self.lshr_amount(n as u32),
            _ => Self::zero(self.width),
        }
    }

    /// Arithmetic right shift (sign-extending).
    pub fn ashr(&self, other: &Self) -> Self {
        let sign = self.msb();
        let fill = if sign {
            Self::ones(self.width)
        } else {
            Self::zero(self.width)
        };
        match other.try_to_u64() {
            Some(n) if n < self.width as u64 => {
                let n = n as u32;
                let shifted = self.lshr_amount(n);
                if sign && n > 0 {
                    let high = Self::ones(self.width).shl_amount(self.width - n);
                    shifted.or(&high)
                } else {
                    shifted
                }
            }
            _ => fill,
        }
    }

    /// Concatenation: `self` provides the high bits, `other` the low bits.
    pub fn concat(&self, other: &Self) -> Self {
        let mut bits = other.to_bits();
        bits.extend(self.to_bits());
        Self::from_bits(&bits)
    }

    /// Extracts bits `hi..=lo` (inclusive, little-endian indices).
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi >= self.width()`.
    pub fn extract(&self, hi: u32, lo: u32) -> Self {
        assert!(hi >= lo, "extract hi {hi} < lo {lo}");
        assert!(hi < self.width, "extract hi {hi} out of range for width {}", self.width);
        let bits: Vec<bool> = (lo..=hi).map(|i| self.bit(i)).collect();
        Self::from_bits(&bits)
    }

    /// Zero-extends to `to` bits.
    ///
    /// # Panics
    ///
    /// Panics if `to < self.width()`.
    pub fn zext(&self, to: u32) -> Self {
        assert!(to >= self.width, "zext target {to} narrower than width {}", self.width);
        let mut out = Self::zero(to);
        for (i, l) in self.limbs.iter().enumerate() {
            out.limbs[i] = *l;
        }
        out
    }

    /// Sign-extends to `to` bits.
    ///
    /// # Panics
    ///
    /// Panics if `to < self.width()`.
    pub fn sext(&self, to: u32) -> Self {
        assert!(to >= self.width, "sext target {to} narrower than width {}", self.width);
        let mut out = self.zext(to);
        if self.msb() {
            for i in self.width..to {
                out.limbs[(i / LIMB_BITS) as usize] |= 1u64 << (i % LIMB_BITS);
            }
        }
        out
    }

    /// Unsigned less-than.
    pub fn ult(&self, other: &Self) -> bool {
        self.check_same_width(other, "ult");
        for i in (0..self.limbs.len()).rev() {
            if self.limbs[i] != other.limbs[i] {
                return self.limbs[i] < other.limbs[i];
            }
        }
        false
    }

    /// Unsigned less-or-equal.
    pub fn ule(&self, other: &Self) -> bool {
        !other.ult(self)
    }

    /// Unsigned greater-or-equal.
    pub fn uge(&self, other: &Self) -> bool {
        other.ule(self)
    }

    /// Unsigned greater-than.
    pub fn ugt(&self, other: &Self) -> bool {
        other.ult(self)
    }

    /// Signed less-than (two's complement).
    pub fn slt(&self, other: &Self) -> bool {
        self.check_same_width(other, "slt");
        match (self.msb(), other.msb()) {
            (true, false) => true,
            (false, true) => false,
            _ => self.ult(other),
        }
    }

    /// Signed less-or-equal.
    pub fn sle(&self, other: &Self) -> bool {
        !other.slt(self)
    }
}

impl fmt::Debug for BitVecValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'h{:x}", self.width, self)
    }
}

impl fmt::Display for BitVecValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'h{:x}", self.width, self)
    }
}

impl fmt::LowerHex for BitVecValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let digits = self.width.div_ceil(4);
        let mut s = String::with_capacity(digits as usize);
        for d in (0..digits).rev() {
            let lo = d * 4;
            let hi = (lo + 3).min(self.width - 1);
            let nib = self.extract(hi, lo).to_u64();
            s.push(char::from_digit(nib as u32, 16).expect("nibble"));
        }
        f.write_str(&s)
    }
}

impl fmt::Binary for BitVecValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::with_capacity(self.width as usize);
        for i in (0..self.width).rev() {
            s.push(if self.bit(i) { '1' } else { '0' });
        }
        f.write_str(&s)
    }
}

/// A concrete memory value: a total map from addresses to data words.
///
/// Represented sparsely as a default word plus overrides, so 2^16-word
/// memories stay cheap to copy during simulation.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct MemValue {
    addr_width: u32,
    data_width: u32,
    default: BitVecValue,
    written: std::collections::BTreeMap<u64, BitVecValue>,
}

impl MemValue {
    /// Creates a memory with every word equal to `default`.
    ///
    /// # Panics
    ///
    /// Panics if `default.width() != data_width` or `addr_width == 0` or
    /// `addr_width > 32`.
    pub fn filled(addr_width: u32, data_width: u32, default: BitVecValue) -> Self {
        assert!(addr_width > 0 && addr_width <= 32, "unsupported addr width {addr_width}");
        assert_eq!(default.width(), data_width, "default word width mismatch");
        MemValue {
            addr_width,
            data_width,
            default,
            written: Default::default(),
        }
    }

    /// Creates an all-zero memory.
    pub fn zeroed(addr_width: u32, data_width: u32) -> Self {
        Self::filled(addr_width, data_width, BitVecValue::zero(data_width))
    }

    /// Address width in bits.
    pub fn addr_width(&self) -> u32 {
        self.addr_width
    }

    /// Data width in bits.
    pub fn data_width(&self) -> u32 {
        self.data_width
    }

    /// Reads the word at `addr` (only the low `addr_width` bits of `addr` are used).
    pub fn read(&self, addr: &BitVecValue) -> BitVecValue {
        let key = addr.to_u64() & ((1u64 << self.addr_width) - 1);
        self.written.get(&key).cloned().unwrap_or_else(|| self.default.clone())
    }

    /// Reads the word at a raw address (only the low `addr_width` bits
    /// are used). Allocation-free counterpart of [`MemValue::read`] for
    /// the compiled simulation tape.
    pub fn read_word(&self, addr: u64) -> &BitVecValue {
        let key = addr & ((1u64 << self.addr_width) - 1);
        self.written.get(&key).unwrap_or(&self.default)
    }

    /// Returns a new memory with `data` stored at a raw address (only
    /// the low `addr_width` bits are used).
    ///
    /// # Panics
    ///
    /// Panics if `data.width() != self.data_width()`.
    pub fn write_word(&self, addr: u64, data: BitVecValue) -> Self {
        assert_eq!(data.width(), self.data_width, "memory write width mismatch");
        let key = addr & ((1u64 << self.addr_width) - 1);
        let mut out = self.clone();
        out.written.insert(key, data);
        out
    }

    /// Overwrites `self` with `src`'s contents, reusing `self`'s
    /// allocations where possible: entries at addresses both maps carry
    /// are updated in place. The compiled simulation tape uses this for
    /// register copies whose destination usually holds last cycle's
    /// near-identical map, making the steady state allocation-free.
    pub fn copy_from(&mut self, src: &MemValue) {
        self.addr_width = src.addr_width;
        self.data_width = src.data_width;
        self.default.clone_bits_from(&src.default);
        // Fast path: identical key sets (the steady state — the tape
        // copies a register over last cycle's version of the same map)
        // need one parallel walk and no per-key lookups. A partial copy
        // before a key mismatch is harmless: the general path below
        // rewrites every entry it keeps.
        if self.written.len() == src.written.len() {
            let mut same = true;
            for ((dk, dv), (sk, sv)) in self.written.iter_mut().zip(src.written.iter()) {
                if dk != sk {
                    same = false;
                    break;
                }
                dv.clone_bits_from(sv);
            }
            if same {
                return;
            }
        }
        self.written.retain(|k, _| src.written.contains_key(k));
        for (k, v) in &src.written {
            match self.written.entry(*k) {
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    e.get_mut().clone_bits_from(v)
                }
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(v.clone());
                }
            }
        }
    }

    /// Stores a word-sized value at a raw address in place, masked to
    /// the data width. Allocation-free when the address was already
    /// written — the hot store path of the compiled simulation tape,
    /// which pairs it with a register move instead of a functional
    /// [`MemValue::write_word`] copy.
    ///
    /// # Panics
    ///
    /// Panics if `self.data_width() > 64`.
    pub fn write_word_mut(&mut self, addr: u64, data: u64) {
        assert!(self.data_width <= 64, "word write to wide memory");
        let key = addr & ((1u64 << self.addr_width) - 1);
        let masked = if self.data_width == 64 {
            data
        } else {
            data & ((1u64 << self.data_width) - 1)
        };
        match self.written.entry(key) {
            std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().limbs[0] = masked,
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(BitVecValue::from_u64(masked, self.data_width));
            }
        }
    }

    /// Returns a new memory with `data` stored at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `data.width() != self.data_width()`.
    pub fn write(&self, addr: &BitVecValue, data: &BitVecValue) -> Self {
        assert_eq!(data.width(), self.data_width, "memory write width mismatch");
        let key = addr.to_u64() & ((1u64 << self.addr_width) - 1);
        let mut out = self.clone();
        out.written.insert(key, data.clone());
        out
    }

    /// Iterates over explicitly written (address, word) pairs.
    pub fn iter_written(&self) -> impl Iterator<Item = (u64, &BitVecValue)> {
        self.written.iter().map(|(k, v)| (*k, v))
    }

    /// The default word for unwritten addresses.
    pub fn default_word(&self) -> &BitVecValue {
        &self.default
    }
}

/// A concrete value of any sort.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// A boolean.
    Bool(bool),
    /// A bit-vector.
    Bv(BitVecValue),
    /// A memory.
    Mem(MemValue),
}

impl Value {
    /// Extracts a boolean.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a boolean.
    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            other => panic!("expected bool value, got {other:?}"),
        }
    }

    /// Extracts a bit-vector.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a bit-vector.
    pub fn as_bv(&self) -> &BitVecValue {
        match self {
            Value::Bv(v) => v,
            other => panic!("expected bit-vector value, got {other:?}"),
        }
    }

    /// Extracts a memory.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a memory.
    pub fn as_mem(&self) -> &MemValue {
        match self {
            Value::Mem(m) => m,
            other => panic!("expected memory value, got {other:?}"),
        }
    }

    /// The sort of this value.
    pub fn sort(&self) -> crate::Sort {
        match self {
            Value::Bool(_) => crate::Sort::Bool,
            Value::Bv(v) => crate::Sort::Bv(v.width()),
            Value::Mem(m) => crate::Sort::Mem {
                addr_width: m.addr_width(),
                data_width: m.data_width(),
            },
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<BitVecValue> for Value {
    fn from(v: BitVecValue) -> Self {
        Value::Bv(v)
    }
}

impl From<MemValue> for Value {
    fn from(m: MemValue) -> Self {
        Value::Mem(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(x: u64, w: u32) -> BitVecValue {
        BitVecValue::from_u64(x, w)
    }

    #[test]
    fn add_wraps() {
        assert_eq!(bv(0xFF, 8).add(&bv(1, 8)), bv(0, 8));
        assert_eq!(bv(200, 8).add(&bv(100, 8)), bv(44, 8));
    }

    #[test]
    fn sub_and_neg() {
        assert_eq!(bv(5, 8).sub(&bv(7, 8)), bv(254, 8));
        assert_eq!(bv(1, 8).neg(), bv(0xFF, 8));
    }

    #[test]
    fn mul_wraps() {
        assert_eq!(bv(16, 8).mul(&bv(16, 8)), bv(0, 8));
        assert_eq!(bv(7, 8).mul(&bv(6, 8)), bv(42, 8));
    }

    #[test]
    fn mul_wide() {
        let a = BitVecValue::parse_hex("ffffffffffffffff").unwrap().zext(128);
        let b = bv(2, 128);
        let p = a.mul(&b);
        assert_eq!(p, BitVecValue::parse_hex("0000000000000001fffffffffffffffe").unwrap());
    }

    #[test]
    fn division_smtlib_semantics() {
        assert_eq!(bv(42, 8).udiv(&bv(5, 8)), bv(8, 8));
        assert_eq!(bv(42, 8).urem(&bv(5, 8)), bv(2, 8));
        assert_eq!(bv(42, 8).udiv(&bv(0, 8)), BitVecValue::ones(8));
        assert_eq!(bv(42, 8).urem(&bv(0, 8)), bv(42, 8));
    }

    #[test]
    fn shifts() {
        assert_eq!(bv(0b1011, 4).shl(&bv(1, 4)), bv(0b0110, 4));
        assert_eq!(bv(0b1011, 4).lshr(&bv(1, 4)), bv(0b0101, 4));
        assert_eq!(bv(0b1011, 4).ashr(&bv(1, 4)), bv(0b1101, 4));
        assert_eq!(bv(0b0011, 4).ashr(&bv(1, 4)), bv(0b0001, 4));
        // over-shift
        assert_eq!(bv(0b1011, 4).shl(&bv(9, 4)), bv(0, 4));
        assert_eq!(bv(0b1011, 4).ashr(&bv(9, 4)), BitVecValue::ones(4));
    }

    #[test]
    fn shift_across_limbs() {
        let v = BitVecValue::one(100);
        let s = v.shl(&bv(80, 100));
        assert!(s.bit(80));
        assert_eq!(s.lshr(&bv(80, 100)), BitVecValue::one(100));
    }

    #[test]
    fn concat_extract_roundtrip() {
        let hi = bv(0xAB, 8);
        let lo = bv(0xCD, 8);
        let c = hi.concat(&lo);
        assert_eq!(c, bv(0xABCD, 16));
        assert_eq!(c.extract(15, 8), hi);
        assert_eq!(c.extract(7, 0), lo);
    }

    #[test]
    fn extensions() {
        assert_eq!(bv(0x80, 8).zext(16), bv(0x0080, 16));
        assert_eq!(bv(0x80, 8).sext(16), bv(0xFF80, 16));
        assert_eq!(bv(0x7F, 8).sext(16), bv(0x007F, 16));
    }

    #[test]
    fn comparisons() {
        assert!(bv(3, 8).ult(&bv(200, 8)));
        assert!(bv(200, 8).slt(&bv(3, 8))); // 200 = -56 signed
        assert!(bv(3, 8).ule(&bv(3, 8)));
        assert!(bv(3, 8).sle(&bv(3, 8)));
    }

    #[test]
    fn parse_and_format() {
        let v = BitVecValue::parse_binary("1010_0001").unwrap();
        assert_eq!(v, bv(0xA1, 8));
        assert_eq!(format!("{v:x}"), "a1");
        assert_eq!(format!("{v:b}"), "10100001");
        assert_eq!(BitVecValue::parse_hex("a1").unwrap(), v);
        assert!(BitVecValue::parse_binary("").is_none());
        assert!(BitVecValue::parse_binary("012").is_none());
    }

    #[test]
    fn wide_values_normalized() {
        let v = BitVecValue::ones(65);
        assert_eq!(v.width(), 65);
        assert!(v.bit(64));
        assert_eq!(v.not(), BitVecValue::zero(65));
        assert_eq!(v.add(&BitVecValue::one(65)), BitVecValue::zero(65));
    }

    #[test]
    fn mem_read_write() {
        let m = MemValue::zeroed(4, 8);
        assert_eq!(m.read(&bv(3, 4)), bv(0, 8));
        let m2 = m.write(&bv(3, 4), &bv(0x5A, 8));
        assert_eq!(m2.read(&bv(3, 4)), bv(0x5A, 8));
        assert_eq!(m2.read(&bv(4, 4)), bv(0, 8));
        // original untouched (persistent semantics)
        assert_eq!(m.read(&bv(3, 4)), bv(0, 8));
    }

    #[test]
    fn mem_addr_masking() {
        let m = MemValue::zeroed(4, 8).write(&bv(0x13, 8), &bv(1, 8));
        assert_eq!(m.read(&bv(0x3, 4)), bv(1, 8));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let _ = bv(1, 8).add(&bv(1, 9));
    }
}
