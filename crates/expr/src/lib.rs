//! # gila-expr — expression DSL for hardware modeling
//!
//! The common expression language shared by every layer of the gila
//! platform: ILA specifications (`gila-core`), RTL implementations
//! (`gila-rtl`), transition systems (`gila-mc`), and the bit-blasting
//! decision procedure (`gila-smt`).
//!
//! Three sorts are supported ([`Sort`]): booleans, fixed-width
//! bit-vectors, and memories (arrays of words). Expressions are built
//! inside a hash-consing arena ([`ExprCtx`]) and referenced by cheap
//! copyable handles ([`ExprRef`]); structurally equal expressions are
//! shared and constants fold at construction time.
//!
//! # Examples
//!
//! ```
//! use gila_expr::{eval, Env, ExprCtx, Sort};
//!
//! let mut ctx = ExprCtx::new();
//! let wait = ctx.var("wait", Sort::Bv(1));
//! let _word = ctx.var("word_in", Sort::Bv(8));
//!
//! // The 8051 decoder's `stall` decode condition: wait == 1.
//! let stall = ctx.eq_u64(wait, 1);
//!
//! let mut env = Env::new();
//! env.bind_u64(&ctx, "wait", 1);
//! env.bind_u64(&ctx, "word_in", 0x75);
//! assert!(eval(&ctx, stall, &env)?.as_bool());
//! # Ok::<(), gila_expr::EvalError>(())
//! ```

#![warn(missing_docs)]

mod absval;
mod ctx;
mod display;
mod eval;
mod lower;
mod simplify;
mod smtlib;
mod sort;
mod subst;
mod value;

pub use absval::{abs_apply, abs_eval, abs_eval_nodes, AbsBool, AbsBv, AbsEnv, AbsValue, Flat};
pub use ctx::{ExprCtx, ExprNode, ExprRef, Op, SortError};
pub use display::ExprDisplay;
pub use eval::{eval, Env, EvalError};
pub use lower::{Slot, TapeProgram, TapeState};
pub use simplify::simplify_cached;
pub use smtlib::{to_smtlib_script, to_smtlib_term};
pub use sort::Sort;
pub use subst::{import, import_mapped, import_renamed, substitute, substitute_cached};
pub use value::{BitVecValue, MemValue, Value};
