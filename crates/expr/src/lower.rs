//! Word-level lowering of expression DAGs to a flat, levelized tape.
//!
//! [`eval`](crate::eval) walks the DAG with a per-call post-order vector
//! and a `HashMap` memo — fine for one-shot queries, far too slow for
//! simulation loops that evaluate the same next-state functions millions
//! of times. [`TapeProgram::compile`] pays the DAG walk *once*: the
//! expression graph is levelized (children strictly before parents, the
//! order [`ExprCtx::post_order`] already guarantees) and lowered into a
//! straight-line buffer of fixed-size tape instructions over a dense
//! register file. Evaluation is then a single tight loop over the
//! buffer with array indexing only — no hashing, no allocation on the
//! word path.
//!
//! The register file is split into three banks:
//!
//! - **words** — `u64` slots for booleans (0/1) and bit-vectors of width
//!   `<= 64`, kept normalized (bits above the width are zero). All
//!   common operations are bit-packed into machine-word arithmetic.
//! - **wides** — [`BitVecValue`] slots for vectors wider than 64 bits.
//! - **mems** — [`MemValue`] slots.
//!
//! Operations whose operands and result all live in the word bank use
//! specialized instructions; anything touching a wide or memory slot
//! (except the hot [`MemValue`] read/write paths, which are also
//! specialized) falls back to a generic instruction that reuses the
//! interpreter's [`Op`] semantics, so the two evaluators agree by
//! construction on the slow path and are differentially tested on the
//! fast path.

use std::collections::HashMap;

use crate::ctx::{ExprCtx, ExprNode, ExprRef, Op};
use crate::eval::apply;
use crate::sort::Sort;
use crate::value::{BitVecValue, MemValue, Value};

/// The bit-mask with the low `w` bits set (`w <= 64`).
#[inline]
/// Disjoint mutable-destination / shared-source view into the memory
/// bank, for in-place register copies.
fn mem_pair(mems: &mut [MemValue], d: usize, s: usize) -> (&mut MemValue, &MemValue) {
    debug_assert_ne!(d, s);
    if d < s {
        let (lo, hi) = mems.split_at_mut(s);
        (&mut lo[d], &hi[0])
    } else {
        let (lo, hi) = mems.split_at_mut(d);
        (&mut hi[0], &lo[s])
    }
}

fn mask_of(w: u32) -> u64 {
    if w >= 64 {
        u64::MAX
    } else {
        (1u64 << w) - 1
    }
}

/// A register-file slot handle: a bank tag packed with a bank index.
///
/// The two top bits select the bank (word / wide / mem), the low 30 bits
/// are the index within the bank.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Slot(u32);

const TAG_WORD: u32 = 0;
const TAG_WIDE: u32 = 1;
const TAG_MEM: u32 = 2;
const TAG_SHIFT: u32 = 30;
const IDX_MASK: u32 = (1 << TAG_SHIFT) - 1;

impl Slot {
    fn new(tag: u32, idx: usize) -> Slot {
        assert!(idx < IDX_MASK as usize, "register bank overflow");
        Slot((tag << TAG_SHIFT) | idx as u32)
    }

    fn tag(self) -> u32 {
        self.0 >> TAG_SHIFT
    }

    fn idx(self) -> usize {
        (self.0 & IDX_MASK) as usize
    }

    /// True if this slot lives in the `u64` word bank.
    pub fn is_word(self) -> bool {
        self.tag() == TAG_WORD
    }
}

/// Metadata for one word-bank slot.
#[derive(Clone, Copy, Debug)]
struct WordMeta {
    /// Bit-vector width, or 0 for a boolean slot.
    width: u32,
}

impl WordMeta {
    fn is_bool(self) -> bool {
        self.width == 0
    }
}

/// Word-bank unary operations.
#[derive(Clone, Copy, Debug)]
enum UnOp {
    /// Boolean negation (`x ^ 1`).
    BoolNot,
    /// Bitwise complement, masked to the width.
    BvNot,
    /// Two's-complement negation, masked to the width.
    BvNeg,
    /// Plain copy: zero-extension, bool-to-bv, width-preserving moves.
    Mov,
    /// Extract `[w0 + w1 - 1 : w0]`: shift right by `w0`, mask to `w1`.
    Extract,
    /// Sign-extension from `w0` bits to `w1` bits.
    Sext,
}

/// Word-bank binary operations. Comparisons store 0/1.
#[derive(Clone, Copy, Debug)]
enum BinOp {
    BoolAnd,
    BoolOr,
    BoolXor,
    BoolImplies,
    BoolIff,
    /// Polymorphic equality of two word slots (bool or same-width bv).
    Eq,
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    /// Unsigned division; division by zero yields all-ones.
    Udiv,
    /// Unsigned remainder; remainder by zero yields the dividend.
    Urem,
    Shl,
    Lshr,
    Ashr,
    /// Concatenation; `w` is the width of the low (second) operand.
    Concat,
    Ult,
    Ule,
    Slt,
    Sle,
}

/// One fixed-size tape instruction.
#[derive(Clone, Debug)]
enum TapeInstr {
    /// `words[dst] = un(op, words[a])`; `w0`/`w1` carry widths.
    Un {
        op: UnOp,
        dst: u32,
        a: u32,
        w0: u32,
        w1: u32,
    },
    /// `words[dst] = bin(op, words[a], words[b])` at width `w`.
    Bin {
        op: BinOp,
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    /// `words[dst] = words[c] != 0 ? words[t] : words[e]`.
    Ite { dst: u32, c: u32, t: u32, e: u32 },
    /// `words[dst] = mems[mem][words[addr]]` (data width `<= 64`).
    MemReadWord { dst: u32, mem: u32, addr: u32 },
    /// `mems[dst] = mems[mem] with [words[addr]] = words[data]`.
    ///
    /// When `take` is set the source register is dead after this
    /// instruction (proved by [`TapeProgram::optimize_mem_moves`]), so
    /// the copy is a bank swap instead of a map clone.
    MemWriteWord {
        dst: u32,
        mem: u32,
        addr: u32,
        data: u32,
        take: bool,
    },
    /// `mems[dst] = words[c] != 0 ? mems[t] : mems[e]`.
    ///
    /// `take_t`/`take_e` mark branches whose register is dead after this
    /// instruction; selecting such a branch swaps instead of cloning
    /// (and leaves the unselected branch untouched either way).
    MemIte {
        dst: u32,
        c: u32,
        t: u32,
        e: u32,
        take_t: bool,
        take_e: bool,
    },
    /// Generic fallback through the interpreter's [`Op`] semantics for
    /// operations touching wide or memory slots.
    Slow {
        op: Op,
        dst: Slot,
        args: Box<[Slot]>,
    },
}

/// A compiled, reusable straight-line evaluation program.
///
/// # Examples
///
/// ```
/// use gila_expr::{ExprCtx, Sort, TapeProgram};
///
/// let mut ctx = ExprCtx::new();
/// let x = ctx.var("x", Sort::Bv(8));
/// let one = ctx.bv_u64(1, 8);
/// let e = ctx.bvadd(x, one);
/// let prog = TapeProgram::compile(&ctx, &[e]);
/// let mut st = prog.new_state();
/// prog.write_word(&mut st, prog.slot_of(x).unwrap(), 41);
/// prog.run(&mut st);
/// assert_eq!(prog.read_word(&st, prog.root_slot(0)), 42);
/// ```
#[derive(Clone, Debug)]
pub struct TapeProgram {
    code: Vec<TapeInstr>,
    /// Initial register-file image: constants pre-stored, variables zero.
    word_init: Vec<u64>,
    wide_init: Vec<BitVecValue>,
    mem_init: Vec<MemValue>,
    word_meta: Vec<WordMeta>,
    wide_widths: Vec<u32>,
    mem_sorts: Vec<(u32, u32)>,
    slots: HashMap<ExprRef, Slot>,
    roots: Vec<Slot>,
}

/// The mutable register file a [`TapeProgram`] evaluates over.
#[derive(Clone, Debug)]
pub struct TapeState {
    words: Vec<u64>,
    wides: Vec<BitVecValue>,
    mems: Vec<MemValue>,
}

impl TapeProgram {
    /// Compiles the DAG reachable from `roots` into a tape.
    ///
    /// Every reachable node gets exactly one slot; shared sub-expressions
    /// are computed once per [`TapeProgram::run`]. Constants are folded
    /// into the initial register image and cost nothing per run.
    pub fn compile(ctx: &ExprCtx, roots: &[ExprRef]) -> TapeProgram {
        Self::compile_segmented(ctx, &[roots]).0
    }

    /// Compiles the DAG reachable from the concatenation of `groups`,
    /// emitting each group's cone as one contiguous tape segment.
    ///
    /// Returns the program plus the end offset of every segment, so a
    /// caller can [`TapeProgram::run_range`] only a prefix — e.g. just
    /// the decode conditions of a simulator, re-run per stimulus
    /// attempt, without paying for the next-state cones each time.
    /// Shared sub-expressions are emitted in the first segment that
    /// needs them and reused by later ones, so a later segment is only
    /// valid after every earlier segment has run on the current
    /// variable values. The compiled roots are the flattened groups in
    /// order.
    pub fn compile_segmented(ctx: &ExprCtx, groups: &[&[ExprRef]]) -> (TapeProgram, Vec<usize>) {
        let mut p = TapeProgram {
            code: Vec::new(),
            word_init: Vec::new(),
            wide_init: Vec::new(),
            mem_init: Vec::new(),
            word_meta: Vec::new(),
            wide_widths: Vec::new(),
            mem_sorts: Vec::new(),
            slots: HashMap::new(),
            roots: Vec::new(),
        };
        let mut boundaries = Vec::with_capacity(groups.len());
        // Iterative post-order with the slot map doubling as the "done"
        // set, so cones shared across groups are emitted exactly once.
        let mut open: std::collections::HashSet<ExprRef> = Default::default();
        for group in groups {
            for &root in *group {
                let mut stack = vec![root];
                while let Some(&top) = stack.last() {
                    if p.slots.contains_key(&top) {
                        stack.pop();
                        continue;
                    }
                    if open.insert(top) {
                        for &a in ctx.args(top) {
                            if !p.slots.contains_key(&a) {
                                stack.push(a);
                            }
                        }
                    } else {
                        p.emit(ctx, top);
                        stack.pop();
                    }
                }
            }
            boundaries.push(p.code.len());
        }
        p.roots = groups
            .iter()
            .flat_map(|g| g.iter())
            .map(|r| p.slots[r])
            .collect();
        p.optimize_mem_moves();
        (p, boundaries)
    }

    /// Allocates a slot for `e` (children already emitted) and appends
    /// its instruction, if any.
    fn emit(&mut self, ctx: &ExprCtx, e: ExprRef) {
        let dst = self.alloc_slot(ctx.sort_of(e));
        match ctx.node(e) {
            ExprNode::BoolConst(b) => self.word_init[dst.idx()] = *b as u64,
            ExprNode::BvConst(v) => match dst.tag() {
                TAG_WORD => self.word_init[dst.idx()] = v.to_u64(),
                _ => self.wide_init[dst.idx()] = v.clone(),
            },
            ExprNode::MemConst(m) => self.mem_init[dst.idx()] = m.clone(),
            ExprNode::Var { .. } => {}
            ExprNode::App { op, args, .. } => {
                let arg_slots: Vec<Slot> = args.iter().map(|a| self.slots[a]).collect();
                let instr = self.select_instr(*op, dst, &arg_slots);
                self.code.push(instr);
            }
        }
        self.slots.insert(e, dst);
    }

    /// Backward liveness over memory-bank operands: a [`TapeInstr::MemWriteWord`]
    /// may steal its source register (a swap instead of an `O(entries)`
    /// map clone) iff the source is produced by an earlier tape
    /// instruction (variables and constants are externally owned), is
    /// not a compilation root (roots are read after the run), and no
    /// later instruction reads it. Store *chains* — the common shape of
    /// a memory next-state function — then clone only at the chain head.
    fn optimize_mem_moves(&mut self) {
        let n = self.mem_init.len();
        if n == 0 {
            return;
        }
        let mut computed = vec![false; n];
        for ins in &self.code {
            match ins {
                TapeInstr::MemWriteWord { dst, .. } | TapeInstr::MemIte { dst, .. } => {
                    computed[*dst as usize] = true
                }
                TapeInstr::Slow { dst, .. } if dst.tag() == TAG_MEM => computed[dst.idx()] = true,
                _ => {}
            }
        }
        // Roots are live at the end of the tape: they are read after
        // every run.
        let mut live = vec![false; n];
        for r in &self.roots {
            if r.tag() == TAG_MEM {
                live[r.idx()] = true;
            }
        }
        for k in (0..self.code.len()).rev() {
            match &mut self.code[k] {
                TapeInstr::MemWriteWord { mem, take, .. } => {
                    let m = *mem as usize;
                    *take = computed[m] && !live[m];
                }
                TapeInstr::MemIte {
                    t, e, take_t, take_e, ..
                } => {
                    *take_t = computed[*t as usize] && !live[*t as usize];
                    *take_e = computed[*e as usize] && !live[*e as usize];
                }
                _ => {}
            }
            match &self.code[k] {
                TapeInstr::MemReadWord { mem, .. } => live[*mem as usize] = true,
                TapeInstr::MemWriteWord { mem, .. } => live[*mem as usize] = true,
                TapeInstr::MemIte { t, e, .. } => {
                    live[*t as usize] = true;
                    live[*e as usize] = true;
                }
                TapeInstr::Slow { args, .. } => {
                    for a in args.iter() {
                        if a.tag() == TAG_MEM {
                            live[a.idx()] = true;
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// Instruction-kind histogram (diagnostics): `(kind, count)` pairs
    /// in descending count order.
    pub fn op_counts(&self) -> Vec<(&'static str, usize)> {
        let mut h: std::collections::BTreeMap<&'static str, usize> = Default::default();
        for ins in &self.code {
            let k = match ins {
                TapeInstr::Un { .. } => "un",
                TapeInstr::Bin { .. } => "bin",
                TapeInstr::Ite { .. } => "ite",
                TapeInstr::MemReadWord { .. } => "mem_read",
                TapeInstr::MemWriteWord { .. } => "mem_write",
                TapeInstr::MemIte { .. } => "mem_ite",
                TapeInstr::Slow { .. } => "slow",
            };
            *h.entry(k).or_default() += 1;
        }
        let mut v: Vec<_> = h.into_iter().collect();
        v.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        v
    }

    /// Memory-copy site statistics: `(move-enabled operands, total
    /// copy-or-move operands)` across [`TapeInstr::MemWriteWord`] and
    /// [`TapeInstr::MemIte`] instructions — each non-move operand costs
    /// an `O(entries)` map copy when its instruction (branch) executes.
    pub fn move_counts(&self) -> (usize, usize) {
        let mut moves = 0;
        let mut total = 0;
        for ins in &self.code {
            match ins {
                TapeInstr::MemWriteWord { take, .. } => {
                    total += 1;
                    moves += *take as usize;
                }
                TapeInstr::MemIte { take_t, take_e, .. } => {
                    total += 2;
                    moves += *take_t as usize + *take_e as usize;
                }
                _ => {}
            }
        }
        (moves, total)
    }

    /// Opt-in move-out of *variable* memory registers: a variable's
    /// final reader may steal it (swap instead of clone) when every
    /// read of that variable sits in `final_start..`, the tape's last
    /// segment, which prefix re-runs via [`Self::run_range`] never
    /// revisit. After a full run such a variable holds garbage until
    /// the caller rewrites it, so this is only sound for callers that
    /// restore every stolen variable after each full run and before
    /// the next — e.g. a simulator whose commit writes every state
    /// register. Slots in `excluded` (read externally before the
    /// restore, such as pass-through commit roots) are never stolen.
    pub fn enable_var_moves(&mut self, final_start: usize, excluded: &[Slot]) {
        let n = self.mem_init.len();
        if n == 0 {
            return;
        }
        let mut computed = vec![false; n];
        for ins in &self.code {
            match ins {
                TapeInstr::MemWriteWord { dst, .. } | TapeInstr::MemIte { dst, .. } => {
                    computed[*dst as usize] = true
                }
                TapeInstr::Slow { dst, .. } if dst.tag() == TAG_MEM => computed[dst.idx()] = true,
                _ => {}
            }
        }
        let mut ok = vec![true; n];
        for s in excluded {
            if s.tag() == TAG_MEM {
                ok[s.idx()] = false;
            }
        }
        let mut last: Vec<Option<usize>> = vec![None; n];
        for (k, ins) in self.code.iter().enumerate() {
            let mut read = |m: usize| {
                if k < final_start {
                    ok[m] = false;
                }
                last[m] = Some(k);
            };
            match ins {
                TapeInstr::MemReadWord { mem, .. } => read(*mem as usize),
                TapeInstr::MemWriteWord { mem, .. } => read(*mem as usize),
                TapeInstr::MemIte { t, e, .. } => {
                    read(*t as usize);
                    read(*e as usize);
                }
                TapeInstr::Slow { args, .. } => {
                    for a in args.iter() {
                        if a.tag() == TAG_MEM {
                            read(a.idx());
                        }
                    }
                }
                _ => {}
            }
        }
        for m in 0..n {
            if computed[m] || !ok[m] {
                continue;
            }
            let Some(k) = last[m] else { continue };
            match &mut self.code[k] {
                TapeInstr::MemWriteWord { mem, take, .. } if *mem as usize == m => *take = true,
                TapeInstr::MemIte {
                    t, e, take_t, take_e, ..
                } => {
                    if *t as usize == m {
                        *take_t = true;
                    }
                    if *e as usize == m {
                        *take_e = true;
                    }
                }
                // The final reader only inspects the value (a word read
                // or the generic path); stealing needs a copy site.
                _ => {}
            }
        }
    }

    fn alloc_slot(&mut self, sort: Sort) -> Slot {
        match sort {
            Sort::Bool => {
                self.word_init.push(0);
                self.word_meta.push(WordMeta { width: 0 });
                Slot::new(TAG_WORD, self.word_init.len() - 1)
            }
            Sort::Bv(w) if w <= 64 => {
                self.word_init.push(0);
                self.word_meta.push(WordMeta { width: w });
                Slot::new(TAG_WORD, self.word_init.len() - 1)
            }
            Sort::Bv(w) => {
                self.wide_init.push(BitVecValue::zero(w));
                self.wide_widths.push(w);
                Slot::new(TAG_WIDE, self.wide_init.len() - 1)
            }
            Sort::Mem {
                addr_width,
                data_width,
            } => {
                self.mem_init.push(MemValue::zeroed(addr_width, data_width));
                self.mem_sorts.push((addr_width, data_width));
                Slot::new(TAG_MEM, self.mem_init.len() - 1)
            }
        }
    }

    /// Picks the specialized word instruction when every operand and the
    /// destination fit the word bank, the fast memory instructions for
    /// word-sized memory traffic, and the generic fallback otherwise.
    fn select_instr(&self, op: Op, dst: Slot, args: &[Slot]) -> TapeInstr {
        use Op::*;
        let all_words = dst.is_word() && args.iter().all(|s| s.is_word());
        let slow = || TapeInstr::Slow {
            op,
            dst,
            args: args.to_vec().into_boxed_slice(),
        };
        // Memory traffic gets dedicated instructions when the data word
        // fits the word bank (the address always does: addr_width <= 32).
        match op {
            MemRead if dst.is_word() => {
                return TapeInstr::MemReadWord {
                    dst: dst.idx() as u32,
                    mem: args[0].idx() as u32,
                    addr: args[1].idx() as u32,
                }
            }
            Ite if dst.tag() == TAG_MEM => {
                return TapeInstr::MemIte {
                    dst: dst.idx() as u32,
                    c: args[0].idx() as u32,
                    t: args[1].idx() as u32,
                    e: args[2].idx() as u32,
                    // Filled in by the liveness pass after compilation.
                    take_t: false,
                    take_e: false,
                };
            }
            MemWrite if args[2].is_word() => {
                return TapeInstr::MemWriteWord {
                    dst: dst.idx() as u32,
                    mem: args[0].idx() as u32,
                    addr: args[1].idx() as u32,
                    data: args[2].idx() as u32,
                    // Filled in by the liveness pass after compilation.
                    take: false,
                };
            }
            _ => {}
        }
        if !all_words {
            return slow();
        }
        let d = dst.idx() as u32;
        let a = args[0].idx() as u32;
        let width = |s: &Slot| self.word_meta[s.idx()].width;
        let un = |op: UnOp, w0: u32, w1: u32| TapeInstr::Un {
            op,
            dst: d,
            a,
            w0,
            w1,
        };
        let bin = |op: BinOp, w: u32| TapeInstr::Bin {
            op,
            dst: d,
            a,
            b: args[1].idx() as u32,
            w,
        };
        match op {
            Not => un(UnOp::BoolNot, 0, 0),
            And => bin(BinOp::BoolAnd, 0),
            Or => bin(BinOp::BoolOr, 0),
            Xor => bin(BinOp::BoolXor, 0),
            Implies => bin(BinOp::BoolImplies, 0),
            Iff => bin(BinOp::BoolIff, 0),
            Ite => TapeInstr::Ite {
                dst: d,
                c: a,
                t: args[1].idx() as u32,
                e: args[2].idx() as u32,
            },
            Eq => bin(BinOp::Eq, 0),
            BvNot => un(UnOp::BvNot, width(&args[0]), 0),
            BvNeg => un(UnOp::BvNeg, width(&args[0]), 0),
            BvAnd => bin(BinOp::And, width(&args[0])),
            BvOr => bin(BinOp::Or, width(&args[0])),
            BvXor => bin(BinOp::Xor, width(&args[0])),
            BvAdd => bin(BinOp::Add, width(&args[0])),
            BvSub => bin(BinOp::Sub, width(&args[0])),
            BvMul => bin(BinOp::Mul, width(&args[0])),
            BvUdiv => bin(BinOp::Udiv, width(&args[0])),
            BvUrem => bin(BinOp::Urem, width(&args[0])),
            BvShl => bin(BinOp::Shl, width(&args[0])),
            BvLshr => bin(BinOp::Lshr, width(&args[0])),
            BvAshr => bin(BinOp::Ashr, width(&args[0])),
            BvConcat => bin(BinOp::Concat, width(&args[1])),
            BvExtract { hi, lo } => un(UnOp::Extract, lo, hi - lo + 1),
            BvZext { .. } => un(UnOp::Mov, 0, 0),
            BvSext { to } => un(UnOp::Sext, width(&args[0]), to),
            BvUlt => bin(BinOp::Ult, width(&args[0])),
            BvUle => bin(BinOp::Ule, width(&args[0])),
            BvSlt => bin(BinOp::Slt, width(&args[0])),
            BvSle => bin(BinOp::Sle, width(&args[0])),
            BoolToBv => un(UnOp::Mov, 0, 0),
            MemRead | MemWrite => slow(),
        }
    }

    /// A fresh register file with constants pre-loaded and variables zero.
    pub fn new_state(&self) -> TapeState {
        TapeState {
            words: self.word_init.clone(),
            wides: self.wide_init.clone(),
            mems: self.mem_init.clone(),
        }
    }

    /// Number of tape instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// True if the tape has no instructions (all roots are leaves).
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Number of instructions on the generic (interpreter-semantics)
    /// fallback path — the tape's slow lane.
    pub fn slow_len(&self) -> usize {
        self.code
            .iter()
            .filter(|i| matches!(i, TapeInstr::Slow { .. }))
            .count()
    }

    /// Debug summaries (`"op @ sort"`) of every slow-lane instruction.
    pub fn slow_ops(&self) -> Vec<String> {
        self.code
            .iter()
            .filter_map(|i| match i {
                TapeInstr::Slow { op, dst, .. } => {
                    Some(format!("{op:?} @ {:?}", self.slot_sort(*dst)))
                }
                _ => None,
            })
            .collect()
    }

    /// Register-bank sizes as `(words, wides, mems)`.
    pub fn bank_sizes(&self) -> (usize, usize, usize) {
        (
            self.word_init.len(),
            self.wide_init.len(),
            self.mem_init.len(),
        )
    }

    /// The slot assigned to a compiled node (variables included), if the
    /// node is reachable from the compilation roots.
    pub fn slot_of(&self, e: ExprRef) -> Option<Slot> {
        self.slots.get(&e).copied()
    }

    /// The slot holding the `i`-th compilation root after a run.
    pub fn root_slot(&self, i: usize) -> Slot {
        self.roots[i]
    }

    /// The sort of a slot.
    pub fn slot_sort(&self, slot: Slot) -> Sort {
        match slot.tag() {
            TAG_WORD => {
                let m = self.word_meta[slot.idx()];
                if m.is_bool() {
                    Sort::Bool
                } else {
                    Sort::Bv(m.width)
                }
            }
            TAG_WIDE => Sort::Bv(self.wide_widths[slot.idx()]),
            _ => {
                let (addr_width, data_width) = self.mem_sorts[slot.idx()];
                Sort::Mem {
                    addr_width,
                    data_width,
                }
            }
        }
    }

    /// Evaluates the whole tape over `st` in order.
    pub fn run(&self, st: &mut TapeState) {
        self.run_range(st, 0..self.code.len());
    }

    /// Evaluates one instruction range of the tape over `st`.
    ///
    /// Ranges must respect the segment boundaries returned by
    /// [`TapeProgram::compile_segmented`], and a segment's results are
    /// only valid once every earlier segment has run on the current
    /// variable values (later segments reuse shared sub-expressions).
    pub fn run_range(&self, st: &mut TapeState, range: std::ops::Range<usize>) {
        for ins in &self.code[range] {
            match *ins {
                TapeInstr::Un { op, dst, a, w0, w1 } => {
                    let x = st.words[a as usize];
                    st.words[dst as usize] = match op {
                        UnOp::BoolNot => x ^ 1,
                        UnOp::BvNot => !x & mask_of(w0),
                        UnOp::BvNeg => x.wrapping_neg() & mask_of(w0),
                        UnOp::Mov => x,
                        UnOp::Extract => (x >> w0) & mask_of(w1),
                        UnOp::Sext => {
                            if (x >> (w0 - 1)) & 1 == 1 {
                                x | (mask_of(w1) & !mask_of(w0))
                            } else {
                                x
                            }
                        }
                    };
                }
                TapeInstr::Bin { op, dst, a, b, w } => {
                    let x = st.words[a as usize];
                    let y = st.words[b as usize];
                    st.words[dst as usize] = match op {
                        BinOp::BoolAnd => x & y,
                        BinOp::BoolOr => x | y,
                        BinOp::BoolXor => x ^ y,
                        BinOp::BoolImplies => (x ^ 1) | y,
                        BinOp::BoolIff => (x ^ y) ^ 1,
                        BinOp::Eq => (x == y) as u64,
                        BinOp::Add => x.wrapping_add(y) & mask_of(w),
                        BinOp::Sub => x.wrapping_sub(y) & mask_of(w),
                        BinOp::Mul => x.wrapping_mul(y) & mask_of(w),
                        BinOp::And => x & y,
                        BinOp::Or => x | y,
                        BinOp::Xor => x ^ y,
                        BinOp::Udiv => x.checked_div(y).unwrap_or_else(|| mask_of(w)),
                        BinOp::Urem => x.checked_rem(y).unwrap_or(x),
                        BinOp::Shl => {
                            if y < w as u64 {
                                (x << y) & mask_of(w)
                            } else {
                                0
                            }
                        }
                        BinOp::Lshr => {
                            if y < w as u64 {
                                x >> y
                            } else {
                                0
                            }
                        }
                        BinOp::Ashr => {
                            let sign = (x >> (w - 1)) & 1 == 1;
                            if y >= w as u64 {
                                if sign {
                                    mask_of(w)
                                } else {
                                    0
                                }
                            } else if sign {
                                (x >> y) | (mask_of(w) & !(mask_of(w) >> y))
                            } else {
                                x >> y
                            }
                        }
                        BinOp::Concat => (x << w) | y,
                        BinOp::Ult => (x < y) as u64,
                        BinOp::Ule => (x <= y) as u64,
                        BinOp::Slt => {
                            let sh = 64 - w;
                            (((x << sh) as i64) < ((y << sh) as i64)) as u64
                        }
                        BinOp::Sle => {
                            let sh = 64 - w;
                            (((x << sh) as i64) <= ((y << sh) as i64)) as u64
                        }
                    };
                }
                TapeInstr::Ite { dst, c, t, e } => {
                    st.words[dst as usize] = if st.words[c as usize] != 0 {
                        st.words[t as usize]
                    } else {
                        st.words[e as usize]
                    };
                }
                TapeInstr::MemReadWord { dst, mem, addr } => {
                    st.words[dst as usize] =
                        st.mems[mem as usize].read_word(st.words[addr as usize]).to_u64();
                }
                TapeInstr::MemWriteWord {
                    dst,
                    mem,
                    addr,
                    data,
                    take,
                } => {
                    let (d, m) = (dst as usize, mem as usize);
                    if take {
                        // The source is dead: reuse its map, leaving the
                        // destination's stale value in the dead register.
                        st.mems.swap(d, m);
                    } else {
                        let (dv, sv) = mem_pair(&mut st.mems, d, m);
                        dv.copy_from(sv);
                    }
                    st.mems[d].write_word_mut(st.words[addr as usize], st.words[data as usize]);
                }
                TapeInstr::MemIte {
                    dst,
                    c,
                    t,
                    e,
                    take_t,
                    take_e,
                } => {
                    let d = dst as usize;
                    let (src, take) = if st.words[c as usize] != 0 {
                        (t as usize, take_t)
                    } else {
                        (e as usize, take_e)
                    };
                    if take {
                        st.mems.swap(d, src);
                    } else {
                        let (dv, sv) = mem_pair(&mut st.mems, d, src);
                        dv.copy_from(sv);
                    }
                }
                TapeInstr::Slow { op, dst, ref args } => {
                    let vals: Vec<Value> = args.iter().map(|s| self.read(st, *s)).collect();
                    let refs: Vec<&Value> = vals.iter().collect();
                    let out = apply(op, &refs);
                    self.write(st, dst, &out);
                }
            }
        }
    }

    /// Materializes a slot's value.
    pub fn read(&self, st: &TapeState, slot: Slot) -> Value {
        match slot.tag() {
            TAG_WORD => {
                let m = self.word_meta[slot.idx()];
                let x = st.words[slot.idx()];
                if m.is_bool() {
                    Value::Bool(x != 0)
                } else {
                    Value::Bv(BitVecValue::from_u64(x, m.width))
                }
            }
            TAG_WIDE => Value::Bv(st.wides[slot.idx()].clone()),
            _ => Value::Mem(st.mems[slot.idx()].clone()),
        }
    }

    /// Reads a word slot's raw bits (bool slots read as 0/1).
    ///
    /// # Panics
    ///
    /// Panics if the slot is not in the word bank.
    pub fn read_word(&self, st: &TapeState, slot: Slot) -> u64 {
        assert!(slot.is_word(), "slot {slot:?} is not a word");
        st.words[slot.idx()]
    }

    /// Borrows a wide slot's value without cloning.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not in the wide bank.
    pub fn read_wide<'s>(&self, st: &'s TapeState, slot: Slot) -> &'s BitVecValue {
        assert_eq!(slot.tag(), TAG_WIDE, "slot {slot:?} is not wide");
        &st.wides[slot.idx()]
    }

    /// Borrows a memory slot's value without cloning.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not in the memory bank.
    pub fn read_mem<'s>(&self, st: &'s TapeState, slot: Slot) -> &'s MemValue {
        assert_eq!(slot.tag(), TAG_MEM, "slot {slot:?} is not a memory");
        &st.mems[slot.idx()]
    }

    /// Writes a value into a slot (sort must match the slot's sort).
    pub fn write(&self, st: &mut TapeState, slot: Slot, v: &Value) {
        debug_assert_eq!(v.sort(), self.slot_sort(slot), "slot sort mismatch");
        match (slot.tag(), v) {
            (TAG_WORD, Value::Bool(b)) => st.words[slot.idx()] = *b as u64,
            (TAG_WORD, Value::Bv(x)) => st.words[slot.idx()] = x.to_u64(),
            (TAG_WIDE, Value::Bv(x)) => st.wides[slot.idx()] = x.clone(),
            (TAG_MEM, Value::Mem(m)) => st.mems[slot.idx()] = m.clone(),
            _ => panic!("value {v:?} does not fit slot {slot:?}"),
        }
    }

    /// Writes raw bits into a word slot, masking to the slot's width.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not in the word bank.
    pub fn write_word(&self, st: &mut TapeState, slot: Slot, x: u64) {
        assert!(slot.is_word(), "slot {slot:?} is not a word");
        let m = self.word_meta[slot.idx()];
        st.words[slot.idx()] = if m.is_bool() {
            (x != 0) as u64
        } else {
            x & mask_of(m.width)
        };
    }

    /// Copies one slot's value to another slot of the same bank.
    ///
    /// # Panics
    ///
    /// Panics if the slots live in different banks.
    pub fn copy_slot(&self, st: &mut TapeState, from: Slot, to: Slot) {
        assert_eq!(from.tag(), to.tag(), "cross-bank slot copy");
        if from.idx() == to.idx() {
            return;
        }
        match from.tag() {
            TAG_WORD => st.words[to.idx()] = st.words[from.idx()],
            TAG_WIDE => st.wides[to.idx()] = st.wides[from.idx()].clone(),
            _ => st.mems[to.idx()] = st.mems[from.idx()].clone(),
        }
    }

    /// True if `slot` is the destination of some tape instruction — i.e.
    /// fully recomputed by every run covering it. Variable and constant
    /// slots are not; their values are externally owned.
    pub fn slot_is_computed(&self, slot: Slot) -> bool {
        self.code.iter().any(|ins| match *ins {
            TapeInstr::Un { dst, .. }
            | TapeInstr::Bin { dst, .. }
            | TapeInstr::Ite { dst, .. }
            | TapeInstr::MemReadWord { dst, .. } => slot.is_word() && dst as usize == slot.idx(),
            TapeInstr::MemWriteWord { dst, .. } | TapeInstr::MemIte { dst, .. } => {
                slot.tag() == TAG_MEM && dst as usize == slot.idx()
            }
            TapeInstr::Slow { dst, .. } => dst == slot,
        })
    }

    /// Moves a memory slot's value out, leaving a trivial placeholder.
    /// Only sound for computed ([`TapeProgram::slot_is_computed`]) slots,
    /// which the next covering run overwrites before any read.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not in the memory bank.
    pub fn take_mem(&self, st: &mut TapeState, slot: Slot) -> MemValue {
        assert_eq!(slot.tag(), TAG_MEM, "slot {slot:?} is not a memory");
        std::mem::replace(&mut st.mems[slot.idx()], MemValue::zeroed(1, 1))
    }

    /// Writes a memory value into a slot by move (no clone).
    ///
    /// # Panics
    ///
    /// Panics if the slot is not in the memory bank.
    pub fn put_mem(&self, st: &mut TapeState, slot: Slot, m: MemValue) {
        assert_eq!(slot.tag(), TAG_MEM, "slot {slot:?} is not a memory");
        debug_assert_eq!(
            (m.addr_width(), m.data_width()),
            self.mem_sorts[slot.idx()],
            "memory sort mismatch"
        );
        st.mems[slot.idx()] = m;
    }

    /// Writes a wide bit-vector into a slot by move (no clone).
    ///
    /// # Panics
    ///
    /// Panics if the slot is not in the wide bank.
    pub fn put_wide(&self, st: &mut TapeState, slot: Slot, v: BitVecValue) {
        assert_eq!(slot.tag(), TAG_WIDE, "slot {slot:?} is not wide");
        debug_assert_eq!(v.width(), self.wide_widths[slot.idx()], "width mismatch");
        st.wides[slot.idx()] = v;
    }

    /// Two-phase bulk register copy in the word bank: reads every
    /// source before writing any destination (so simultaneous swaps see
    /// the pre-state), with `buf` as reusable scratch.
    ///
    /// # Panics
    ///
    /// Debug-panics if any slot is not in the word bank.
    pub fn copy_words(&self, st: &mut TapeState, pairs: &[(Slot, Slot)], buf: &mut Vec<u64>) {
        buf.clear();
        buf.extend(pairs.iter().map(|&(src, _)| {
            debug_assert!(src.is_word());
            st.words[src.idx()]
        }));
        for (&(_, dst), &x) in pairs.iter().zip(buf.iter()) {
            debug_assert!(dst.is_word());
            st.words[dst.idx()] = x;
        }
    }

    /// Mutable access to a memory-bank slot's value, for in-place
    /// cross-program copies ([`MemValue::copy_from`]).
    ///
    /// # Panics
    ///
    /// Panics if the slot is not in the memory bank.
    pub fn mem_mut<'s>(&self, st: &'s mut TapeState, slot: Slot) -> &'s mut MemValue {
        assert_eq!(slot.tag(), TAG_MEM, "slot {slot:?} is not a memory");
        &mut st.mems[slot.idx()]
    }

    /// Swaps the contents of two memory-bank slots. Preferable to a
    /// take/put pair for commits: the displaced map parks in the other
    /// slot, so its allocation is reused by the next in-place copy
    /// instead of being dropped and re-grown.
    ///
    /// # Panics
    ///
    /// Panics if either slot is not in the memory bank, or (debug) if
    /// their memory sorts differ.
    pub fn swap_mems(&self, st: &mut TapeState, a: Slot, b: Slot) {
        assert_eq!(a.tag(), TAG_MEM, "slot {a:?} is not a memory");
        assert_eq!(b.tag(), TAG_MEM, "slot {b:?} is not a memory");
        debug_assert_eq!(
            self.mem_sorts[a.idx()],
            self.mem_sorts[b.idx()],
            "memory sort mismatch"
        );
        st.mems.swap(a.idx(), b.idx());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval, Env};

    /// splitmix64 — deterministic operand streams without external deps.
    struct Mix(u64);
    impl Mix {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
        fn bits(&mut self, w: u32) -> Vec<bool> {
            (0..w).map(|_| self.next() & 1 == 1).collect()
        }
    }

    fn check_roots(ctx: &ExprCtx, roots: &[ExprRef], env: &Env) {
        let prog = TapeProgram::compile(ctx, roots);
        let mut st = prog.new_state();
        for (var, value) in env.iter() {
            if let Some(slot) = prog.slot_of(var) {
                prog.write(&mut st, slot, value);
            }
        }
        prog.run(&mut st);
        for (i, &root) in roots.iter().enumerate() {
            let want = eval(ctx, root, env).unwrap();
            let got = prog.read(&st, prog.root_slot(i));
            assert_eq!(got, want, "root {i} ({root:?}) disagrees with eval");
        }
    }

    /// Every bit-vector operator, at widths crossing the word boundary,
    /// against random and boundary operands.
    #[test]
    fn word_ops_agree_with_eval() {
        let mut mix = Mix(0xDA7E2021);
        for w in [1u32, 3, 7, 8, 31, 32, 63, 64, 65, 100, 128] {
            let mut ctx = ExprCtx::new();
            let x = ctx.var("x", Sort::Bv(w));
            let y = ctx.var("y", Sort::Bv(w));
            let p = ctx.var("p", Sort::Bool);
            let q = ctx.var("q", Sort::Bool);
            let mut roots = vec![
                ctx.bvnot(x),
                ctx.bvneg(x),
                ctx.bvand(x, y),
                ctx.bvor(x, y),
                ctx.bvxor(x, y),
                ctx.bvadd(x, y),
                ctx.bvsub(x, y),
                ctx.bvmul(x, y),
                ctx.bvudiv(x, y),
                ctx.bvurem(x, y),
                ctx.bvshl(x, y),
                ctx.bvlshr(x, y),
                ctx.bvashr(x, y),
                ctx.concat(x, y),
                ctx.extract(x, w - 1, w / 2),
                ctx.zext(x, w + 13),
                ctx.sext(x, w + 13),
            ];
            let cmps = vec![
                ctx.eq(x, y),
                ctx.ult(x, y),
                ctx.ule(x, y),
                ctx.slt(x, y),
                ctx.sle(x, y),
            ];
            roots.extend(&cmps);
            let c0 = cmps[0];
            roots.push(ctx.ite(c0, x, y));
            roots.push(ctx.not(p));
            roots.push(ctx.and(p, q));
            roots.push(ctx.or(p, q));
            roots.push(ctx.xor(p, q));
            roots.push(ctx.implies(p, q));
            roots.push(ctx.iff(p, q));
            roots.push(ctx.bool_to_bv(p));

            let zero = BitVecValue::zero(w);
            let ones = BitVecValue::ones(w);
            let small = BitVecValue::from_u64(1, w);
            for trial in 0..24 {
                let (xv, yv) = match trial {
                    0 => (zero.clone(), zero.clone()),
                    1 => (ones.clone(), zero.clone()),
                    2 => (ones.clone(), ones.clone()),
                    3 => (zero.clone(), small.clone()),
                    4 => (ones.clone(), small.clone()),
                    _ => (
                        BitVecValue::from_bits(&mix.bits(w)),
                        BitVecValue::from_bits(&mix.bits(w)),
                    ),
                };
                let mut env = Env::new();
                env.bind(x, xv);
                env.bind(y, yv);
                env.bind(p, mix.next() & 1 == 1);
                env.bind(q, mix.next() & 1 == 1);
                check_roots(&ctx, &roots, &env);
            }
        }
    }

    #[test]
    fn memory_ops_agree_with_eval() {
        let mut mix = Mix(0x51CA);
        for data_width in [8u32, 64, 96] {
            let mut ctx = ExprCtx::new();
            let sort = Sort::Mem {
                addr_width: 6,
                data_width,
            };
            let m = ctx.var("m", sort);
            let a = ctx.var("a", Sort::Bv(6));
            let d = ctx.var("d", Sort::Bv(data_width));
            let w1 = ctx.mem_write(m, a, d);
            let two = ctx.bv_u64(2, 6);
            let a2 = ctx.bvadd(a, two);
            let w2 = ctx.mem_write(w1, a2, d);
            let tt = ctx.tt();
            let sel = ctx.var("sel", Sort::Bool);
            let roots = vec![
                ctx.mem_read(m, a),
                ctx.mem_read(w2, a),
                ctx.mem_read(w2, a2),
                ctx.eq(w1, w2),
                ctx.eq(w1, w1),
                ctx.ite(tt, w1, w2),
                ctx.ite(sel, w1, w2),
            ];
            for _ in 0..16 {
                let mut mem = MemValue::zeroed(6, data_width);
                for _ in 0..4 {
                    mem = mem.write(
                        &BitVecValue::from_u64(mix.next(), 6),
                        &BitVecValue::from_bits(&mix.bits(data_width)),
                    );
                }
                let mut env = Env::new();
                env.bind(m, mem);
                env.bind(a, BitVecValue::from_u64(mix.next(), 6));
                env.bind(d, BitVecValue::from_bits(&mix.bits(data_width)));
                env.bind(sel, mix.next() & 1 == 1);
                check_roots(&ctx, &roots, &env);
            }
        }
    }

    #[test]
    fn constants_fold_into_init_image() {
        let mut ctx = ExprCtx::new();
        let x = ctx.var("x", Sort::Bv(8));
        let k = ctx.bv_u64(0x55, 8);
        let e = ctx.bvxor(x, k);
        let prog = TapeProgram::compile(&ctx, &[e]);
        // one instruction: the xor; the constant lives in the init image.
        assert_eq!(prog.len(), 1);
        let mut st = prog.new_state();
        prog.write_word(&mut st, prog.slot_of(x).unwrap(), 0xFF);
        prog.run(&mut st);
        assert_eq!(prog.read_word(&st, prog.root_slot(0)), 0xAA);
    }

    #[test]
    fn shared_subexpressions_compile_once() {
        let mut ctx = ExprCtx::new();
        let x = ctx.var("x", Sort::Bv(32));
        let s = ctx.bvadd(x, x);
        let a = ctx.bvmul(s, s);
        let b = ctx.bvxor(s, x);
        let prog = TapeProgram::compile(&ctx, &[a, b]);
        assert_eq!(prog.len(), 3, "s, a, b — s must not be duplicated");
    }

    #[test]
    fn deep_chain_runs_without_overflow() {
        let mut ctx = ExprCtx::new();
        let x = ctx.var("x", Sort::Bv(32));
        let one = ctx.bv_u64(1, 32);
        let mut e = x;
        for _ in 0..100_000 {
            e = ctx.bvadd(e, one);
        }
        let prog = TapeProgram::compile(&ctx, &[e]);
        let mut st = prog.new_state();
        prog.write_word(&mut st, prog.slot_of(x).unwrap(), 7);
        prog.run(&mut st);
        assert_eq!(prog.read_word(&st, prog.root_slot(0)), 100_007);
    }

    #[test]
    fn state_reuse_and_reset() {
        let mut ctx = ExprCtx::new();
        let x = ctx.var("x", Sort::Bv(16));
        let k = ctx.bv_u64(3, 16);
        let e = ctx.bvmul(x, k);
        let prog = TapeProgram::compile(&ctx, &[e]);
        let mut st = prog.new_state();
        for i in 0..10u64 {
            prog.write_word(&mut st, prog.slot_of(x).unwrap(), i);
            prog.run(&mut st);
            assert_eq!(prog.read_word(&st, prog.root_slot(0)), (i * 3) & 0xFFFF);
        }
    }
}
