//! Substitution, renaming, and cross-context import of expression DAGs.

use std::collections::HashMap;

use crate::ctx::{ExprCtx, ExprNode, ExprRef};

/// Rewrites `root`, replacing every occurrence of a key of `map` with its
/// value. Keys are typically variables, but any sub-expression handle works.
///
/// The replacement must have the same sort as the replaced expression
/// (enforced when the surrounding applications are rebuilt).
///
/// # Examples
///
/// ```
/// use std::collections::HashMap;
/// use gila_expr::{substitute, ExprCtx, Sort};
///
/// let mut ctx = ExprCtx::new();
/// let x = ctx.var("x", Sort::Bv(8));
/// let one = ctx.bv_u64(1, 8);
/// let e = ctx.bvadd(x, one);
/// let y = ctx.var("y", Sort::Bv(8));
/// let map = HashMap::from([(x, y)]);
/// let e2 = substitute(&mut ctx, e, &map);
/// let expected = ctx.bvadd(y, one);
/// assert_eq!(e2, expected);
/// ```
///
/// # Panics
///
/// Panics if a substitution makes an application ill-sorted.
pub fn substitute(ctx: &mut ExprCtx, root: ExprRef, map: &HashMap<ExprRef, ExprRef>) -> ExprRef {
    let mut memo: HashMap<ExprRef, ExprRef> = HashMap::new();
    substitute_cached(ctx, root, map, &mut memo)
}

/// Like [`substitute`], but reuses a memo table across calls so that many
/// roots sharing structure are rewritten once.
pub fn substitute_cached(
    ctx: &mut ExprCtx,
    root: ExprRef,
    map: &HashMap<ExprRef, ExprRef>,
    memo: &mut HashMap<ExprRef, ExprRef>,
) -> ExprRef {
    let order = ctx.post_order(&[root]);
    for e in order {
        if memo.contains_key(&e) {
            continue;
        }
        let out = if let Some(&r) = map.get(&e) {
            r
        } else {
            match ctx.node(e).clone() {
                ExprNode::App { op, args, .. } => {
                    let new_args: Vec<ExprRef> = args.iter().map(|a| memo[a]).collect();
                    if new_args == args {
                        e
                    } else {
                        ctx.app(op, new_args)
                    }
                }
                _ => e,
            }
        };
        memo.insert(e, out);
    }
    memo[&root]
}

/// Imports an expression from another context into `dst`, returning the
/// corresponding handle in `dst`. Variables are imported by name (so a
/// variable named `"x"` in `src` maps to the variable named `"x"` in
/// `dst`, created if absent).
///
/// `memo` caches translations of `src` handles and may be reused across
/// calls with the same `src`/`dst` pair.
///
/// # Panics
///
/// Panics if `dst` already has a same-named variable of a different sort.
pub fn import(
    dst: &mut ExprCtx,
    src: &ExprCtx,
    root: ExprRef,
    memo: &mut HashMap<ExprRef, ExprRef>,
) -> ExprRef {
    let order = src.post_order(&[root]);
    for e in order {
        if memo.contains_key(&e) {
            continue;
        }
        let out = match src.node(e) {
            ExprNode::BoolConst(b) => dst.bool_const(*b),
            ExprNode::BvConst(v) => dst.bv(v.clone()),
            ExprNode::MemConst(m) => dst.mem_const(m.clone()),
            ExprNode::Var { name, sort } => dst.var(name.clone(), *sort),
            ExprNode::App { op, args, .. } => {
                let new_args: Vec<ExprRef> = args.iter().map(|a| memo[a]).collect();
                dst.app(*op, new_args)
            }
        };
        memo.insert(e, out);
    }
    memo[&root]
}

/// Imports an expression while renaming variables: each variable named `n`
/// in `src` becomes a variable named `rename(n)` in `dst`.
///
/// Useful for unrolling transition systems (`x` at step `k` becomes
/// `x@k`) and for building product models without name clashes.
pub fn import_renamed(
    dst: &mut ExprCtx,
    src: &ExprCtx,
    root: ExprRef,
    rename: &dyn Fn(&str) -> String,
    memo: &mut HashMap<ExprRef, ExprRef>,
) -> ExprRef {
    let order = src.post_order(&[root]);
    for e in order {
        if memo.contains_key(&e) {
            continue;
        }
        let out = match src.node(e) {
            ExprNode::BoolConst(b) => dst.bool_const(*b),
            ExprNode::BvConst(v) => dst.bv(v.clone()),
            ExprNode::MemConst(m) => dst.mem_const(m.clone()),
            ExprNode::Var { name, sort } => dst.var(rename(name), *sort),
            ExprNode::App { op, args, .. } => {
                let new_args: Vec<ExprRef> = args.iter().map(|a| memo[a]).collect();
                dst.app(*op, new_args)
            }
        };
        memo.insert(e, out);
    }
    memo[&root]
}

/// Imports an expression from `src` into `dst` while *replacing its
/// variables*: every variable of `src` reachable from `root` must appear
/// in `var_map`, mapping it to an arbitrary `dst` expression of the same
/// sort.
///
/// This is the primitive the refinement-check engine uses to graft ILA
/// decode and next-state functions onto RTL unrolling frames.
///
/// # Errors
///
/// Returns the name of the first unmapped variable.
///
/// # Panics
///
/// Panics if a mapped expression's sort mismatches (the rebuilt
/// application will fail sort checking).
pub fn import_mapped(
    dst: &mut ExprCtx,
    src: &ExprCtx,
    root: ExprRef,
    var_map: &HashMap<ExprRef, ExprRef>,
    memo: &mut HashMap<ExprRef, ExprRef>,
) -> Result<ExprRef, String> {
    let order = src.post_order(&[root]);
    for e in order {
        if memo.contains_key(&e) {
            continue;
        }
        let out = match src.node(e) {
            ExprNode::BoolConst(b) => dst.bool_const(*b),
            ExprNode::BvConst(v) => dst.bv(v.clone()),
            ExprNode::MemConst(m) => dst.mem_const(m.clone()),
            ExprNode::Var { name, .. } => match var_map.get(&e) {
                Some(&r) => r,
                None => return Err(name.clone()),
            },
            ExprNode::App { op, args, .. } => {
                let new_args: Vec<ExprRef> = args.iter().map(|a| memo[a]).collect();
                dst.app(*op, new_args)
            }
        };
        memo.insert(e, out);
    }
    Ok(memo[&root])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{eval, Env, Sort};

    #[test]
    fn substitute_replaces_all_occurrences() {
        let mut ctx = ExprCtx::new();
        let x = ctx.var("x", Sort::Bv(8));
        let e0 = ctx.bvadd(x, x);
        let e = ctx.bvmul(e0, x);
        let c = ctx.bv_u64(3, 8);
        let map = HashMap::from([(x, c)]);
        let r = substitute(&mut ctx, e, &map);
        // (3+3)*3 = 18, fully folded
        assert_eq!(ctx.as_bv_const(r).unwrap().to_u64(), 18);
    }

    #[test]
    fn substitute_is_untouched_without_matches() {
        let mut ctx = ExprCtx::new();
        let x = ctx.var("x", Sort::Bv(8));
        let y = ctx.var("y", Sort::Bv(8));
        let e = ctx.bvadd(x, y);
        let z = ctx.var("z", Sort::Bv(8));
        let w = ctx.var("w", Sort::Bv(8));
        let map = HashMap::from([(z, w)]);
        assert_eq!(substitute(&mut ctx, e, &map), e);
    }

    #[test]
    fn import_by_name() {
        let mut src = ExprCtx::new();
        let x = src.var("x", Sort::Bv(8));
        let one = src.bv_u64(1, 8);
        let e = src.bvadd(x, one);

        let mut dst = ExprCtx::new();
        // Pre-create "x" in dst; import must reuse it.
        let dx = dst.var("x", Sort::Bv(8));
        let mut memo = HashMap::new();
        let de = import(&mut dst, &src, e, &mut memo);
        let mut env = Env::new();
        env.bind_u64(&dst, "x", 9);
        assert_eq!(eval(&dst, de, &env).unwrap().as_bv().to_u64(), 10);
        assert!(dst.vars_of(&[de]).contains(&dx));
    }

    #[test]
    fn import_mapped_replaces_vars() {
        let mut src = ExprCtx::new();
        let x = src.var("x", Sort::Bv(8));
        let one = src.bv_u64(1, 8);
        let e = src.bvadd(x, one);
        let mut dst = ExprCtx::new();
        let a = dst.var("a", Sort::Bv(8));
        let b = dst.var("b", Sort::Bv(8));
        let ab = dst.bvmul(a, b);
        let map = HashMap::from([(x, ab)]);
        let mut memo = HashMap::new();
        let de = import_mapped(&mut dst, &src, e, &map, &mut memo).unwrap();
        let mut env = Env::new();
        env.bind_u64(&dst, "a", 3);
        env.bind_u64(&dst, "b", 4);
        assert_eq!(eval(&dst, de, &env).unwrap().as_bv().to_u64(), 13);
        // Unmapped variable is an error.
        let y = src.var("y", Sort::Bv(8));
        let e2 = src.bvadd(e, y);
        let mut memo = HashMap::new();
        assert_eq!(
            import_mapped(&mut dst, &src, e2, &map, &mut memo).unwrap_err(),
            "y"
        );
    }

    #[test]
    fn import_renamed_prefixes() {
        let mut src = ExprCtx::new();
        let x = src.var("x", Sort::Bv(8));
        let e = src.bvadd(x, x);
        let mut dst = ExprCtx::new();
        let mut memo = HashMap::new();
        let de = import_renamed(&mut dst, &src, e, &|n| format!("rtl.{n}"), &mut memo);
        let vars = dst.vars_of(&[de]);
        assert_eq!(vars.len(), 1);
        assert_eq!(dst.var_name(vars[0]), Some("rtl.x"));
    }
}
