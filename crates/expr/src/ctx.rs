//! The expression context: a hash-consing arena for expression DAGs.
//!
//! All expressions live inside an [`ExprCtx`] and are referred to by the
//! lightweight copyable handle [`ExprRef`]. Structurally identical
//! expressions are interned to the same handle, so semantic construction
//! is cheap and sharing is maximal. Constant operands are folded at
//! construction time.

use std::collections::HashMap;
use std::fmt;

use crate::value::{BitVecValue, MemValue};
use crate::Sort;

/// A handle to an interned expression inside an [`ExprCtx`].
///
/// Handles are only meaningful together with the context that created them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprRef(u32);

impl ExprRef {
    /// The raw index of this expression in its context.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ExprRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// An operator applied to argument expressions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    // --- boolean connectives ---
    /// Boolean negation (1 arg).
    Not,
    /// Boolean conjunction (2 args).
    And,
    /// Boolean disjunction (2 args).
    Or,
    /// Boolean exclusive or (2 args).
    Xor,
    /// Boolean implication (2 args).
    Implies,
    /// Boolean equivalence (2 args).
    Iff,
    /// If-then-else over any sort: `Ite(cond: bool, then, else)` (3 args).
    Ite,
    /// Polymorphic equality over bool, bit-vector, or memory (2 args).
    Eq,

    // --- bit-vector operations ---
    /// Bitwise complement (1 arg).
    BvNot,
    /// Two's-complement negation (1 arg).
    BvNeg,
    /// Bitwise and (2 args).
    BvAnd,
    /// Bitwise or (2 args).
    BvOr,
    /// Bitwise xor (2 args).
    BvXor,
    /// Wrapping addition (2 args).
    BvAdd,
    /// Wrapping subtraction (2 args).
    BvSub,
    /// Wrapping multiplication (2 args).
    BvMul,
    /// Unsigned division, `x / 0 = all-ones` (2 args).
    BvUdiv,
    /// Unsigned remainder, `x % 0 = x` (2 args).
    BvUrem,
    /// Logical shift left (2 args, same width).
    BvShl,
    /// Logical shift right (2 args, same width).
    BvLshr,
    /// Arithmetic shift right (2 args, same width).
    BvAshr,
    /// Concatenation; first argument becomes the high bits (2 args).
    BvConcat,
    /// Bit range extraction `[hi:lo]`, inclusive (1 arg).
    BvExtract {
        /// High bit index (inclusive).
        hi: u32,
        /// Low bit index (inclusive).
        lo: u32,
    },
    /// Zero extension to `to` bits (1 arg).
    BvZext {
        /// Target width.
        to: u32,
    },
    /// Sign extension to `to` bits (1 arg).
    BvSext {
        /// Target width.
        to: u32,
    },
    /// Unsigned less-than (2 args) -> bool.
    BvUlt,
    /// Unsigned less-or-equal (2 args) -> bool.
    BvUle,
    /// Signed less-than (2 args) -> bool.
    BvSlt,
    /// Signed less-or-equal (2 args) -> bool.
    BvSle,

    // --- memory operations ---
    /// `MemRead(mem, addr) -> data` (2 args).
    MemRead,
    /// `MemWrite(mem, addr, data) -> mem` (3 args).
    MemWrite,

    // --- conversions ---
    /// Converts a boolean to a 1-bit vector: true -> 1, false -> 0 (1 arg).
    BoolToBv,
}

/// An interned expression node.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ExprNode {
    /// A boolean constant.
    BoolConst(bool),
    /// A bit-vector constant.
    BvConst(BitVecValue),
    /// A memory constant.
    MemConst(MemValue),
    /// A free variable.
    Var {
        /// Unique name within the context.
        name: String,
        /// Sort of the variable.
        sort: Sort,
    },
    /// An operator applied to arguments.
    App {
        /// The operator.
        op: Op,
        /// Argument handles.
        args: Vec<ExprRef>,
        /// Result sort (cached).
        sort: Sort,
    },
}

/// An error produced when constructing an ill-sorted expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SortError {
    message: String,
}

impl SortError {
    fn new(message: impl Into<String>) -> Self {
        SortError {
            message: message.into(),
        }
    }
}

impl fmt::Display for SortError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sort error: {}", self.message)
    }
}

impl std::error::Error for SortError {}

/// A hash-consing arena of expressions.
///
/// # Examples
///
/// ```
/// use gila_expr::{ExprCtx, Sort};
///
/// let mut ctx = ExprCtx::new();
/// let x = ctx.var("x", Sort::Bv(8));
/// let one = ctx.bv_u64(1, 8);
/// let y1 = ctx.bvadd(x, one);
/// let y2 = ctx.bvadd(x, one);
/// assert_eq!(y1, y2); // hash-consed
/// ```
#[derive(Clone, Debug, Default)]
pub struct ExprCtx {
    nodes: Vec<ExprNode>,
    interner: HashMap<ExprNode, ExprRef>,
    vars_by_name: HashMap<String, ExprRef>,
}

impl ExprCtx {
    /// Creates an empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct interned nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no expressions have been created.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node behind a handle.
    pub fn node(&self, e: ExprRef) -> &ExprNode {
        &self.nodes[e.index()]
    }

    /// The sort of an expression.
    pub fn sort_of(&self, e: ExprRef) -> Sort {
        match self.node(e) {
            ExprNode::BoolConst(_) => Sort::Bool,
            ExprNode::BvConst(v) => Sort::Bv(v.width()),
            ExprNode::MemConst(m) => Sort::Mem {
                addr_width: m.addr_width(),
                data_width: m.data_width(),
            },
            ExprNode::Var { sort, .. } => *sort,
            ExprNode::App { sort, .. } => *sort,
        }
    }

    fn intern(&mut self, node: ExprNode) -> ExprRef {
        if let Some(&r) = self.interner.get(&node) {
            return r;
        }
        let r = ExprRef(self.nodes.len() as u32);
        self.nodes.push(node.clone());
        self.interner.insert(node, r);
        r
    }

    // ------------------------------------------------------------------
    // Leaves
    // ------------------------------------------------------------------

    /// Creates (or looks up) a free variable.
    ///
    /// # Panics
    ///
    /// Panics if a variable of the same name but different sort already
    /// exists in this context.
    pub fn var(&mut self, name: impl Into<String>, sort: Sort) -> ExprRef {
        let name = name.into();
        if let Some(&existing) = self.vars_by_name.get(&name) {
            assert_eq!(
                self.sort_of(existing),
                sort,
                "variable {name:?} redeclared with a different sort"
            );
            return existing;
        }
        let r = self.intern(ExprNode::Var {
            name: name.clone(),
            sort,
        });
        self.vars_by_name.insert(name, r);
        r
    }

    /// Looks up a variable by name.
    pub fn find_var(&self, name: &str) -> Option<ExprRef> {
        self.vars_by_name.get(name).copied()
    }

    /// The name of a variable expression, if it is one.
    pub fn var_name(&self, e: ExprRef) -> Option<&str> {
        match self.node(e) {
            ExprNode::Var { name, .. } => Some(name),
            _ => None,
        }
    }

    /// The boolean constant `true`.
    pub fn tt(&mut self) -> ExprRef {
        self.intern(ExprNode::BoolConst(true))
    }

    /// The boolean constant `false`.
    pub fn ff(&mut self) -> ExprRef {
        self.intern(ExprNode::BoolConst(false))
    }

    /// A boolean constant.
    pub fn bool_const(&mut self, b: bool) -> ExprRef {
        self.intern(ExprNode::BoolConst(b))
    }

    /// A bit-vector constant.
    pub fn bv(&mut self, value: BitVecValue) -> ExprRef {
        self.intern(ExprNode::BvConst(value))
    }

    /// A bit-vector constant from a `u64` and a width.
    pub fn bv_u64(&mut self, x: u64, width: u32) -> ExprRef {
        self.bv(BitVecValue::from_u64(x, width))
    }

    /// A memory constant.
    pub fn mem_const(&mut self, value: MemValue) -> ExprRef {
        self.intern(ExprNode::MemConst(value))
    }

    /// Returns the constant boolean behind `e`, if it is one.
    pub fn as_bool_const(&self, e: ExprRef) -> Option<bool> {
        match self.node(e) {
            ExprNode::BoolConst(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the constant bit-vector behind `e`, if it is one.
    pub fn as_bv_const(&self, e: ExprRef) -> Option<&BitVecValue> {
        match self.node(e) {
            ExprNode::BvConst(v) => Some(v),
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // Sort checking and application
    // ------------------------------------------------------------------

    fn expect_bool(&self, e: ExprRef, op: Op) -> Result<(), SortError> {
        if self.sort_of(e).is_bool() {
            Ok(())
        } else {
            Err(SortError::new(format!(
                "{op:?} expects a bool argument, got {}",
                self.sort_of(e)
            )))
        }
    }

    fn expect_bv(&self, e: ExprRef, op: Op) -> Result<u32, SortError> {
        self.sort_of(e).bv_width().ok_or_else(|| {
            SortError::new(format!(
                "{op:?} expects a bit-vector argument, got {}",
                self.sort_of(e)
            ))
        })
    }

    fn expect_same_bv(&self, a: ExprRef, b: ExprRef, op: Op) -> Result<u32, SortError> {
        let wa = self.expect_bv(a, op)?;
        let wb = self.expect_bv(b, op)?;
        if wa != wb {
            return Err(SortError::new(format!(
                "{op:?} width mismatch: {wa} vs {wb}"
            )));
        }
        Ok(wa)
    }

    fn result_sort(&self, op: Op, args: &[ExprRef]) -> Result<Sort, SortError> {
        let arity_err = |n: usize| {
            Err(SortError::new(format!(
                "{op:?} expects {n} arguments, got {}",
                args.len()
            )))
        };
        match op {
            Op::Not => {
                if args.len() != 1 {
                    return arity_err(1);
                }
                self.expect_bool(args[0], op)?;
                Ok(Sort::Bool)
            }
            Op::And | Op::Or | Op::Xor | Op::Implies | Op::Iff => {
                if args.len() != 2 {
                    return arity_err(2);
                }
                self.expect_bool(args[0], op)?;
                self.expect_bool(args[1], op)?;
                Ok(Sort::Bool)
            }
            Op::Ite => {
                if args.len() != 3 {
                    return arity_err(3);
                }
                self.expect_bool(args[0], op)?;
                let st = self.sort_of(args[1]);
                let se = self.sort_of(args[2]);
                if st != se {
                    return Err(SortError::new(format!(
                        "Ite branch sorts differ: {st} vs {se}"
                    )));
                }
                Ok(st)
            }
            Op::Eq => {
                if args.len() != 2 {
                    return arity_err(2);
                }
                let sa = self.sort_of(args[0]);
                let sb = self.sort_of(args[1]);
                if sa != sb {
                    return Err(SortError::new(format!(
                        "Eq argument sorts differ: {sa} vs {sb}"
                    )));
                }
                Ok(Sort::Bool)
            }
            Op::BvNot | Op::BvNeg => {
                if args.len() != 1 {
                    return arity_err(1);
                }
                Ok(Sort::Bv(self.expect_bv(args[0], op)?))
            }
            Op::BvAnd
            | Op::BvOr
            | Op::BvXor
            | Op::BvAdd
            | Op::BvSub
            | Op::BvMul
            | Op::BvUdiv
            | Op::BvUrem
            | Op::BvShl
            | Op::BvLshr
            | Op::BvAshr => {
                if args.len() != 2 {
                    return arity_err(2);
                }
                Ok(Sort::Bv(self.expect_same_bv(args[0], args[1], op)?))
            }
            Op::BvConcat => {
                if args.len() != 2 {
                    return arity_err(2);
                }
                let wa = self.expect_bv(args[0], op)?;
                let wb = self.expect_bv(args[1], op)?;
                Ok(Sort::Bv(wa + wb))
            }
            Op::BvExtract { hi, lo } => {
                if args.len() != 1 {
                    return arity_err(1);
                }
                let w = self.expect_bv(args[0], op)?;
                if hi < lo || hi >= w {
                    return Err(SortError::new(format!(
                        "extract [{hi}:{lo}] out of range for bv{w}"
                    )));
                }
                Ok(Sort::Bv(hi - lo + 1))
            }
            Op::BvZext { to } | Op::BvSext { to } => {
                if args.len() != 1 {
                    return arity_err(1);
                }
                let w = self.expect_bv(args[0], op)?;
                if to < w {
                    return Err(SortError::new(format!(
                        "extension target {to} narrower than bv{w}"
                    )));
                }
                Ok(Sort::Bv(to))
            }
            Op::BvUlt | Op::BvUle | Op::BvSlt | Op::BvSle => {
                if args.len() != 2 {
                    return arity_err(2);
                }
                self.expect_same_bv(args[0], args[1], op)?;
                Ok(Sort::Bool)
            }
            Op::MemRead => {
                if args.len() != 2 {
                    return arity_err(2);
                }
                match self.sort_of(args[0]) {
                    Sort::Mem {
                        addr_width,
                        data_width,
                    } => {
                        let wa = self.expect_bv(args[1], op)?;
                        if wa != addr_width {
                            return Err(SortError::new(format!(
                                "MemRead address width {wa} != memory address width {addr_width}"
                            )));
                        }
                        Ok(Sort::Bv(data_width))
                    }
                    other => Err(SortError::new(format!(
                        "MemRead expects a memory, got {other}"
                    ))),
                }
            }
            Op::MemWrite => {
                if args.len() != 3 {
                    return arity_err(3);
                }
                match self.sort_of(args[0]) {
                    Sort::Mem {
                        addr_width,
                        data_width,
                    } => {
                        let wa = self.expect_bv(args[1], op)?;
                        let wd = self.expect_bv(args[2], op)?;
                        if wa != addr_width {
                            return Err(SortError::new(format!(
                                "MemWrite address width {wa} != memory address width {addr_width}"
                            )));
                        }
                        if wd != data_width {
                            return Err(SortError::new(format!(
                                "MemWrite data width {wd} != memory data width {data_width}"
                            )));
                        }
                        Ok(self.sort_of(args[0]))
                    }
                    other => Err(SortError::new(format!(
                        "MemWrite expects a memory, got {other}"
                    ))),
                }
            }
            Op::BoolToBv => {
                if args.len() != 1 {
                    return arity_err(1);
                }
                self.expect_bool(args[0], op)?;
                Ok(Sort::Bv(1))
            }
        }
    }

    /// Constructs `op(args)` with full sort checking, folding constants.
    ///
    /// # Errors
    ///
    /// Returns a [`SortError`] if the arguments have the wrong arity or
    /// sorts for `op`.
    pub fn try_app(&mut self, op: Op, args: Vec<ExprRef>) -> Result<ExprRef, SortError> {
        let sort = self.result_sort(op, &args)?;
        if let Some(folded) = self.fold(op, &args) {
            return Ok(folded);
        }
        Ok(self.intern(ExprNode::App { op, args, sort }))
    }

    /// Constructs `op(args)`, panicking on sort errors.
    ///
    /// # Panics
    ///
    /// Panics if the arguments are ill-sorted; prefer [`ExprCtx::try_app`]
    /// when handling untrusted input.
    pub fn app(&mut self, op: Op, args: Vec<ExprRef>) -> ExprRef {
        match self.try_app(op, args) {
            Ok(e) => e,
            Err(err) => panic!("{err}"),
        }
    }

    /// Constant folding and cheap local simplification.
    fn fold(&mut self, op: Op, args: &[ExprRef]) -> Option<ExprRef> {
        use Op::*;
        // Fully constant applications evaluate directly.
        let all_const = args.iter().all(|&a| {
            matches!(
                self.node(a),
                ExprNode::BoolConst(_) | ExprNode::BvConst(_) | ExprNode::MemConst(_)
            )
        });
        if all_const {
            if let Some(r) = self.fold_const(op, args) {
                return Some(r);
            }
        }
        // A few identity rules that keep generated formulas small without a
        // full rewriting pass.
        match op {
            Not => {
                if let ExprNode::App {
                    op: Not,
                    args: inner,
                    ..
                } = self.node(args[0])
                {
                    return Some(inner[0]);
                }
                None
            }
            And => match (self.as_bool_const(args[0]), self.as_bool_const(args[1])) {
                (Some(true), _) => Some(args[1]),
                (_, Some(true)) => Some(args[0]),
                (Some(false), _) | (_, Some(false)) => Some(self.ff()),
                _ if args[0] == args[1] => Some(args[0]),
                _ => None,
            },
            Or => match (self.as_bool_const(args[0]), self.as_bool_const(args[1])) {
                (Some(false), _) => Some(args[1]),
                (_, Some(false)) => Some(args[0]),
                (Some(true), _) | (_, Some(true)) => Some(self.tt()),
                _ if args[0] == args[1] => Some(args[0]),
                _ => None,
            },
            Implies => match (self.as_bool_const(args[0]), self.as_bool_const(args[1])) {
                (Some(false), _) | (_, Some(true)) => Some(self.tt()),
                (Some(true), _) => Some(args[1]),
                _ => None,
            },
            Ite => {
                match self.as_bool_const(args[0]) {
                    Some(true) => return Some(args[1]),
                    Some(false) => return Some(args[2]),
                    None => {}
                }
                if args[1] == args[2] {
                    return Some(args[1]);
                }
                None
            }
            Eq => {
                if args[0] == args[1] {
                    return Some(self.tt());
                }
                // (bool2bv b) == 1'b1  ->  b ;  == 1'b0  ->  !b.
                for (side, other) in [(args[0], args[1]), (args[1], args[0])] {
                    let inner = match self.node(side) {
                        ExprNode::App {
                            op: BoolToBv,
                            args: inner,
                            ..
                        } => inner[0],
                        _ => continue,
                    };
                    if let Some(v) = self.as_bv_const(other) {
                        return Some(if v.is_zero() {
                            self.not(inner)
                        } else {
                            inner
                        });
                    }
                }
                None
            }
            _ => None,
        }
    }

    fn fold_const(&mut self, op: Op, args: &[ExprRef]) -> Option<ExprRef> {
        use crate::eval::{eval, Env};
        // Re-use the evaluator on the constant sub-expression.
        let sort = self.result_sort(op, args).ok()?;
        let node = ExprNode::App {
            op,
            args: args.to_vec(),
            sort,
        };
        let tmp = self.intern(node);
        let env = Env::new();
        match eval(self, tmp, &env) {
            Ok(crate::Value::Bool(b)) => Some(self.bool_const(b)),
            Ok(crate::Value::Bv(v)) => Some(self.bv(v)),
            Ok(crate::Value::Mem(m)) => Some(self.mem_const(m)),
            Err(_) => None,
        }
    }

    // ------------------------------------------------------------------
    // Convenience builders (all panic on sort errors)
    // ------------------------------------------------------------------

    /// Boolean negation.
    pub fn not(&mut self, a: ExprRef) -> ExprRef {
        self.app(Op::Not, vec![a])
    }

    /// Boolean conjunction.
    pub fn and(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.app(Op::And, vec![a, b])
    }

    /// Boolean disjunction.
    pub fn or(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.app(Op::Or, vec![a, b])
    }

    /// Boolean exclusive or.
    pub fn xor(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.app(Op::Xor, vec![a, b])
    }

    /// Boolean implication.
    pub fn implies(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.app(Op::Implies, vec![a, b])
    }

    /// Boolean equivalence.
    pub fn iff(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.app(Op::Iff, vec![a, b])
    }

    /// If-then-else over any sort.
    pub fn ite(&mut self, c: ExprRef, t: ExprRef, e: ExprRef) -> ExprRef {
        self.app(Op::Ite, vec![c, t, e])
    }

    /// Polymorphic equality.
    pub fn eq(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.app(Op::Eq, vec![a, b])
    }

    /// Polymorphic disequality.
    pub fn ne(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        let e = self.eq(a, b);
        self.not(e)
    }

    /// Conjunction of many booleans (empty list yields `true`).
    pub fn and_many(&mut self, es: &[ExprRef]) -> ExprRef {
        let mut acc = self.tt();
        for &e in es {
            acc = self.and(acc, e);
        }
        acc
    }

    /// Disjunction of many booleans (empty list yields `false`).
    pub fn or_many(&mut self, es: &[ExprRef]) -> ExprRef {
        let mut acc = self.ff();
        for &e in es {
            acc = self.or(acc, e);
        }
        acc
    }

    /// Bitwise complement.
    pub fn bvnot(&mut self, a: ExprRef) -> ExprRef {
        self.app(Op::BvNot, vec![a])
    }

    /// Two's-complement negation.
    pub fn bvneg(&mut self, a: ExprRef) -> ExprRef {
        self.app(Op::BvNeg, vec![a])
    }

    /// Bitwise and.
    pub fn bvand(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.app(Op::BvAnd, vec![a, b])
    }

    /// Bitwise or.
    pub fn bvor(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.app(Op::BvOr, vec![a, b])
    }

    /// Bitwise xor.
    pub fn bvxor(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.app(Op::BvXor, vec![a, b])
    }

    /// Wrapping addition.
    pub fn bvadd(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.app(Op::BvAdd, vec![a, b])
    }

    /// Wrapping subtraction.
    pub fn bvsub(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.app(Op::BvSub, vec![a, b])
    }

    /// Wrapping multiplication.
    pub fn bvmul(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.app(Op::BvMul, vec![a, b])
    }

    /// Unsigned division.
    pub fn bvudiv(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.app(Op::BvUdiv, vec![a, b])
    }

    /// Unsigned remainder.
    pub fn bvurem(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.app(Op::BvUrem, vec![a, b])
    }

    /// Logical shift left.
    pub fn bvshl(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.app(Op::BvShl, vec![a, b])
    }

    /// Logical shift right.
    pub fn bvlshr(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.app(Op::BvLshr, vec![a, b])
    }

    /// Arithmetic shift right.
    pub fn bvashr(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.app(Op::BvAshr, vec![a, b])
    }

    /// Concatenation (`a` high, `b` low).
    pub fn concat(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.app(Op::BvConcat, vec![a, b])
    }

    /// Extraction of bits `[hi:lo]` inclusive.
    pub fn extract(&mut self, a: ExprRef, hi: u32, lo: u32) -> ExprRef {
        self.app(Op::BvExtract { hi, lo }, vec![a])
    }

    /// Zero extension.
    pub fn zext(&mut self, a: ExprRef, to: u32) -> ExprRef {
        if self.sort_of(a).bv_width() == Some(to) {
            return a;
        }
        self.app(Op::BvZext { to }, vec![a])
    }

    /// Sign extension.
    pub fn sext(&mut self, a: ExprRef, to: u32) -> ExprRef {
        if self.sort_of(a).bv_width() == Some(to) {
            return a;
        }
        self.app(Op::BvSext { to }, vec![a])
    }

    /// Unsigned less-than.
    pub fn ult(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.app(Op::BvUlt, vec![a, b])
    }

    /// Unsigned less-or-equal.
    pub fn ule(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.app(Op::BvUle, vec![a, b])
    }

    /// Unsigned greater-than.
    pub fn ugt(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.app(Op::BvUlt, vec![b, a])
    }

    /// Unsigned greater-or-equal.
    pub fn uge(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.app(Op::BvUle, vec![b, a])
    }

    /// Signed less-than.
    pub fn slt(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.app(Op::BvSlt, vec![a, b])
    }

    /// Signed less-or-equal.
    pub fn sle(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.app(Op::BvSle, vec![a, b])
    }

    /// Memory read.
    pub fn mem_read(&mut self, mem: ExprRef, addr: ExprRef) -> ExprRef {
        self.app(Op::MemRead, vec![mem, addr])
    }

    /// Memory write (functional: returns the updated memory).
    pub fn mem_write(&mut self, mem: ExprRef, addr: ExprRef, data: ExprRef) -> ExprRef {
        self.app(Op::MemWrite, vec![mem, addr, data])
    }

    /// Boolean to 1-bit vector conversion.
    pub fn bool_to_bv(&mut self, a: ExprRef) -> ExprRef {
        self.app(Op::BoolToBv, vec![a])
    }

    /// 1-bit (or wider) vector to boolean: true iff nonzero.
    pub fn bv_to_bool(&mut self, a: ExprRef) -> ExprRef {
        let w = self
            .sort_of(a)
            .bv_width()
            .unwrap_or_else(|| panic!("bv_to_bool expects a bit-vector, got {}", self.sort_of(a)));
        let zero = self.bv_u64(0, w);
        self.ne(a, zero)
    }

    /// Convenience: `a == (u64 constant)`.
    pub fn eq_u64(&mut self, a: ExprRef, x: u64) -> ExprRef {
        let w = self
            .sort_of(a)
            .bv_width()
            .unwrap_or_else(|| panic!("eq_u64 expects a bit-vector, got {}", self.sort_of(a)));
        let c = self.bv_u64(x, w);
        self.eq(a, c)
    }

    // ------------------------------------------------------------------
    // Traversal
    // ------------------------------------------------------------------

    /// Argument handles of an application node (empty for leaves).
    pub fn args(&self, e: ExprRef) -> &[ExprRef] {
        match self.node(e) {
            ExprNode::App { args, .. } => args,
            _ => &[],
        }
    }

    /// Returns all nodes reachable from `roots` in post-order
    /// (children before parents), each exactly once.
    pub fn post_order(&self, roots: &[ExprRef]) -> Vec<ExprRef> {
        let mut order = Vec::new();
        let mut state = vec![0u8; self.nodes.len()]; // 0 unseen, 1 open, 2 done
        let mut stack: Vec<ExprRef> = roots.to_vec();
        while let Some(&top) = stack.last() {
            match state[top.index()] {
                0 => {
                    state[top.index()] = 1;
                    for &a in self.args(top) {
                        if state[a.index()] == 0 {
                            stack.push(a);
                        }
                    }
                }
                1 => {
                    state[top.index()] = 2;
                    order.push(top);
                    stack.pop();
                }
                _ => {
                    stack.pop();
                }
            }
        }
        order
    }

    /// Collects the free variables reachable from `roots`, in first-seen order.
    pub fn vars_of(&self, roots: &[ExprRef]) -> Vec<ExprRef> {
        self.post_order(roots)
            .into_iter()
            .filter(|&e| matches!(self.node(e), ExprNode::Var { .. }))
            .collect()
    }

    /// Number of DAG nodes reachable from `roots`.
    pub fn dag_size(&self, roots: &[ExprRef]) -> usize {
        self.post_order(roots).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_shares_nodes() {
        let mut ctx = ExprCtx::new();
        let x = ctx.var("x", Sort::Bv(8));
        let y = ctx.var("y", Sort::Bv(8));
        let a = ctx.bvadd(x, y);
        let b = ctx.bvadd(x, y);
        assert_eq!(a, b);
        let c = ctx.bvadd(y, x);
        assert_ne!(a, c); // structural, not AC
    }

    #[test]
    fn constant_folding() {
        let mut ctx = ExprCtx::new();
        let a = ctx.bv_u64(3, 8);
        let b = ctx.bv_u64(4, 8);
        let s = ctx.bvadd(a, b);
        assert_eq!(ctx.as_bv_const(s), Some(&BitVecValue::from_u64(7, 8)));
        let cmp = ctx.ult(a, b);
        assert_eq!(ctx.as_bool_const(cmp), Some(true));
    }

    #[test]
    fn identity_rules() {
        let mut ctx = ExprCtx::new();
        let p = ctx.var("p", Sort::Bool);
        let t = ctx.tt();
        let f = ctx.ff();
        assert_eq!(ctx.and(p, t), p);
        assert_eq!(ctx.and(p, f), f);
        assert_eq!(ctx.or(p, f), p);
        let np = ctx.not(p);
        assert_eq!(ctx.not(np), p);
        let x = ctx.var("x", Sort::Bv(4));
        let y = ctx.var("y", Sort::Bv(4));
        assert_eq!(ctx.ite(t, x, y), x);
        assert_eq!(ctx.ite(f, x, y), y);
        assert_eq!(ctx.ite(p, x, x), x);
        let e = ctx.eq(x, x);
        assert_eq!(ctx.as_bool_const(e), Some(true));
    }

    #[test]
    fn bool_bv_roundtrip_folds() {
        let mut ctx = ExprCtx::new();
        let p = ctx.var("p", Sort::Bool);
        let b = ctx.bool_to_bv(p);
        let one = ctx.bv_u64(1, 1);
        let zero = ctx.bv_u64(0, 1);
        assert_eq!(ctx.eq(b, one), p);
        let np = ctx.not(p);
        assert_eq!(ctx.eq(b, zero), np);
        assert_eq!(ctx.eq(one, b), p);
        // bv_to_bool(bool_to_bv(p)) collapses to p.
        assert_eq!(ctx.bv_to_bool(b), p);
    }

    #[test]
    fn sort_errors() {
        let mut ctx = ExprCtx::new();
        let x = ctx.var("x", Sort::Bv(8));
        let y = ctx.var("y", Sort::Bv(9));
        assert!(ctx.try_app(Op::BvAdd, vec![x, y]).is_err());
        assert!(ctx.try_app(Op::And, vec![x, y]).is_err());
        assert!(ctx.try_app(Op::BvExtract { hi: 8, lo: 0 }, vec![x]).is_err());
        assert!(ctx.try_app(Op::BvExtract { hi: 0, lo: 1 }, vec![x]).is_err());
    }

    #[test]
    #[should_panic(expected = "redeclared")]
    fn var_redeclaration_panics() {
        let mut ctx = ExprCtx::new();
        ctx.var("x", Sort::Bv(8));
        ctx.var("x", Sort::Bool);
    }

    #[test]
    fn post_order_children_first() {
        let mut ctx = ExprCtx::new();
        let x = ctx.var("x", Sort::Bv(8));
        let y = ctx.var("y", Sort::Bv(8));
        let s = ctx.bvadd(x, y);
        let p = ctx.bvmul(s, x);
        let order = ctx.post_order(&[p]);
        let pos = |e: ExprRef| order.iter().position(|&o| o == e).unwrap();
        assert!(pos(x) < pos(s));
        assert!(pos(y) < pos(s));
        assert!(pos(s) < pos(p));
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn vars_of_collects_leaves() {
        let mut ctx = ExprCtx::new();
        let x = ctx.var("x", Sort::Bv(8));
        let y = ctx.var("y", Sort::Bv(8));
        let c = ctx.bv_u64(1, 8);
        let e1 = ctx.bvadd(x, c);
        let e = ctx.bvadd(e1, y);
        let vars = ctx.vars_of(&[e]);
        assert_eq!(vars.len(), 2);
        assert!(vars.contains(&x) && vars.contains(&y));
    }

    #[test]
    fn mem_sorts() {
        let mut ctx = ExprCtx::new();
        let m = ctx.var(
            "m",
            Sort::Mem {
                addr_width: 4,
                data_width: 8,
            },
        );
        let a = ctx.var("a", Sort::Bv(4));
        let d = ctx.var("d", Sort::Bv(8));
        let r = ctx.mem_read(m, a);
        assert_eq!(ctx.sort_of(r), Sort::Bv(8));
        let w = ctx.mem_write(m, a, d);
        assert_eq!(ctx.sort_of(w), ctx.sort_of(m));
        assert!(ctx.try_app(Op::MemRead, vec![m, d]).is_err());
    }
}
