//! A bottom-up rewriting simplifier.
//!
//! Construction-time folding in [`ExprCtx`] already handles fully-constant
//! applications and a few boolean identities. This pass adds algebraic
//! rules that need to look at operand structure (additive/multiplicative
//! identities, xor/sub cancellation, extract-of-concat, nested
//! extensions) and applies them to a whole DAG at once.

use std::collections::HashMap;

use crate::ctx::{ExprCtx, ExprNode, ExprRef, Op};

/// Simplifies `root` bottom-up, returning an equivalent expression.
///
/// The result is semantically equal to the input for every assignment of
/// the free variables (a property checked by randomized tests in this
/// crate and by SAT-based equivalence checks in `gila-smt`).
///
/// The `memo` table maps already-simplified sub-expressions to their
/// rewrites and is shared across roots: the verification engine keeps
/// one table per port plan so every conjunct of every instruction reuses
/// earlier work. A context only ever grows and hash-consing makes
/// structurally equal nodes pointer-equal, so entries never go stale.
///
/// # Examples
///
/// ```
/// use std::collections::HashMap;
/// use gila_expr::{simplify_cached, ExprCtx, Sort};
///
/// let mut ctx = ExprCtx::new();
/// let mut memo = HashMap::new();
/// let x = ctx.var("x", Sort::Bv(8));
/// let zero = ctx.bv_u64(0, 8);
/// let e = ctx.bvadd(x, zero);
/// assert_eq!(simplify_cached(&mut ctx, e, &mut memo), x);
/// ```
pub fn simplify_cached(
    ctx: &mut ExprCtx,
    root: ExprRef,
    memo: &mut HashMap<ExprRef, ExprRef>,
) -> ExprRef {
    let order = ctx.post_order(&[root]);
    for e in order {
        if memo.contains_key(&e) {
            continue;
        }
        let out = match ctx.node(e).clone() {
            ExprNode::App { op, args, .. } => {
                let new_args: Vec<ExprRef> = args.iter().map(|a| memo[a]).collect();
                let mut cur = ctx.app(op, new_args);
                // Rules can cascade (e.g. extract-of-concat producing a
                // full-range extract); iterate to a local fixpoint.
                for _ in 0..8 {
                    match rewrite(ctx, cur) {
                        Some(next) if next != cur => cur = next,
                        _ => break,
                    }
                }
                cur
            }
            _ => e,
        };
        memo.insert(e, out);
    }
    memo[&root]
}

/// One top-level rewrite step; `None` means no rule applied.
fn rewrite(ctx: &mut ExprCtx, e: ExprRef) -> Option<ExprRef> {
    let (op, args) = match ctx.node(e) {
        ExprNode::App { op, args, .. } => (*op, args.clone()),
        _ => return None,
    };
    let is_zero = |ctx: &ExprCtx, a: ExprRef| ctx.as_bv_const(a).is_some_and(|v| v.is_zero());
    let is_ones = |ctx: &ExprCtx, a: ExprRef| ctx.as_bv_const(a).is_some_and(|v| v.is_ones());
    let is_one =
        |ctx: &ExprCtx, a: ExprRef| ctx.as_bv_const(a).is_some_and(|v| v.try_to_u64() == Some(1));
    match op {
        // Boolean connectives: constant cases fold at construction time;
        // these are the structural identities the folder cannot see.
        Op::And | Op::Or => {
            if args[0] == args[1] {
                return Some(args[0]);
            }
            None
        }
        Op::Xor => {
            if args[0] == args[1] {
                return Some(ctx.ff());
            }
            for (c, other) in [(args[0], args[1]), (args[1], args[0])] {
                if let Some(b) = ctx.as_bool_const(c) {
                    return Some(if b { ctx.not(other) } else { other });
                }
            }
            None
        }
        Op::Iff => {
            if args[0] == args[1] {
                return Some(ctx.tt());
            }
            for (c, other) in [(args[0], args[1]), (args[1], args[0])] {
                if let Some(b) = ctx.as_bool_const(c) {
                    return Some(if b { other } else { ctx.not(other) });
                }
            }
            None
        }
        Op::Implies => {
            if args[0] == args[1] {
                return Some(ctx.tt());
            }
            None
        }
        Op::Ite => {
            let (c, t, f) = (args[0], args[1], args[2]);
            // ite(c, true, false) = c and ite(c, false, true) = ¬c.
            if ctx.sort_of(t).is_bool() {
                match (ctx.as_bool_const(t), ctx.as_bool_const(f)) {
                    (Some(true), Some(false)) => return Some(c),
                    (Some(false), Some(true)) => return Some(ctx.not(c)),
                    _ => {}
                }
            }
            // ite(¬c, t, f) = ite(c, f, t) — normalizes double branches
            // so equal-branch folding can fire on the inner condition.
            if let ExprNode::App {
                op: Op::Not,
                args: nargs,
                ..
            } = ctx.node(c).clone()
            {
                return Some(ctx.ite(nargs[0], f, t));
            }
            None
        }
        Op::BvNot => match ctx.node(args[0]).clone() {
            ExprNode::App {
                op: Op::BvNot,
                args: iargs,
                ..
            } => Some(iargs[0]),
            _ => None,
        },
        Op::BvNeg => match ctx.node(args[0]).clone() {
            ExprNode::App {
                op: Op::BvNeg,
                args: iargs,
                ..
            } => Some(iargs[0]),
            _ => None,
        },
        Op::BvAdd => {
            if is_zero(ctx, args[0]) {
                return Some(args[1]);
            }
            if is_zero(ctx, args[1]) {
                return Some(args[0]);
            }
            None
        }
        Op::BvSub => {
            if is_zero(ctx, args[1]) {
                return Some(args[0]);
            }
            if args[0] == args[1] {
                let w = ctx.sort_of(e).bv_width()?;
                return Some(ctx.bv_u64(0, w));
            }
            None
        }
        Op::BvMul => {
            let w = ctx.sort_of(e).bv_width()?;
            for (c, other) in [(args[0], args[1]), (args[1], args[0])] {
                if let Some(v) = ctx.as_bv_const(c) {
                    if v.is_zero() {
                        return Some(ctx.bv_u64(0, w));
                    }
                    if v.to_u64() == 1 && v.try_to_u64() == Some(1) {
                        return Some(other);
                    }
                }
            }
            None
        }
        Op::BvAnd => {
            if is_zero(ctx, args[0]) || is_zero(ctx, args[1]) {
                let w = ctx.sort_of(e).bv_width()?;
                return Some(ctx.bv_u64(0, w));
            }
            if is_ones(ctx, args[0]) {
                return Some(args[1]);
            }
            if is_ones(ctx, args[1]) {
                return Some(args[0]);
            }
            if args[0] == args[1] {
                return Some(args[0]);
            }
            None
        }
        Op::BvOr => {
            if is_ones(ctx, args[0]) || is_ones(ctx, args[1]) {
                let w = ctx.sort_of(e).bv_width()?;
                return Some(ctx.bv(crate::BitVecValue::ones(w)));
            }
            if is_zero(ctx, args[0]) {
                return Some(args[1]);
            }
            if is_zero(ctx, args[1]) {
                return Some(args[0]);
            }
            if args[0] == args[1] {
                return Some(args[0]);
            }
            None
        }
        Op::BvXor => {
            if args[0] == args[1] {
                let w = ctx.sort_of(e).bv_width()?;
                return Some(ctx.bv_u64(0, w));
            }
            if is_zero(ctx, args[0]) {
                return Some(args[1]);
            }
            if is_zero(ctx, args[1]) {
                return Some(args[0]);
            }
            None
        }
        Op::BvShl | Op::BvLshr | Op::BvAshr => {
            // Shift by zero, or of a zero value, is the identity/zero
            // (ashr of zero included: the sign of zero is zero).
            if is_zero(ctx, args[1]) || is_zero(ctx, args[0]) {
                return Some(args[0]);
            }
            // shl/lshr by a constant >= width collapse to zero; ashr
            // does not (it fills with the sign bit).
            if op != Op::BvAshr {
                let w = ctx.sort_of(e).bv_width()?;
                if let Some(v) = ctx.as_bv_const(args[1]) {
                    if v.try_to_u64().is_none_or(|n| n >= u64::from(w)) {
                        return Some(ctx.bv_u64(0, w));
                    }
                }
            }
            None
        }
        Op::BvUdiv => {
            if is_one(ctx, args[1]) {
                return Some(args[0]);
            }
            None
        }
        Op::BvUrem => {
            if is_one(ctx, args[1]) {
                let w = ctx.sort_of(e).bv_width()?;
                return Some(ctx.bv_u64(0, w));
            }
            None
        }
        Op::BvConcat => {
            // Adjacent extracts of the same source fuse back into one:
            // concat(x[hi:m+1], x[m:lo]) = x[hi:lo].
            if let (
                ExprNode::App {
                    op: Op::BvExtract { hi: h1, lo: l1 },
                    args: a1,
                    ..
                },
                ExprNode::App {
                    op: Op::BvExtract { hi: h2, lo: l2 },
                    args: a2,
                    ..
                },
            ) = (ctx.node(args[0]).clone(), ctx.node(args[1]).clone())
            {
                if a1[0] == a2[0] && l1 == h2 + 1 {
                    return Some(ctx.extract(a1[0], h1, l2));
                }
            }
            None
        }
        Op::BvExtract { hi, lo } => {
            let arg = args[0];
            let arg_w = ctx.sort_of(arg).bv_width()?;
            // Full-range extraction is the identity.
            if lo == 0 && hi + 1 == arg_w {
                return Some(arg);
            }
            match ctx.node(arg).clone() {
                // extract over concat: select from the matching half if possible.
                ExprNode::App {
                    op: Op::BvConcat,
                    args: cargs,
                    ..
                } => {
                    let lo_w = ctx.sort_of(cargs[1]).bv_width()?;
                    if hi < lo_w {
                        return Some(ctx.extract(cargs[1], hi, lo));
                    }
                    if lo >= lo_w {
                        return Some(ctx.extract(cargs[0], hi - lo_w, lo - lo_w));
                    }
                    None
                }
                // extract over extract composes.
                ExprNode::App {
                    op: Op::BvExtract { lo: lo2, .. },
                    args: iargs,
                    ..
                } => Some(ctx.extract(iargs[0], hi + lo2, lo + lo2)),
                // extract of an extension that stays within the original
                // width (both extensions preserve the low bits).
                ExprNode::App {
                    op: Op::BvZext { .. } | Op::BvSext { .. },
                    args: iargs,
                    ..
                } => {
                    let inner_w = ctx.sort_of(iargs[0]).bv_width()?;
                    if hi < inner_w {
                        return Some(ctx.extract(iargs[0], hi, lo));
                    }
                    None
                }
                _ => None,
            }
        }
        Op::BvZext { to } => match ctx.node(args[0]).clone() {
            ExprNode::App {
                op: Op::BvZext { .. },
                args: iargs,
                ..
            } => Some(ctx.zext(iargs[0], to)),
            _ => None,
        },
        Op::BvSext { to } => match ctx.node(args[0]).clone() {
            ExprNode::App {
                op: Op::BvSext { .. },
                args: iargs,
                ..
            } => Some(ctx.sext(iargs[0], to)),
            _ => None,
        },
        Op::Eq => {
            // eq of bool constants against expressions -> the expression or its negation
            let sa = ctx.sort_of(args[0]);
            if sa.is_bool() {
                if let Some(b) = ctx.as_bool_const(args[0]) {
                    return Some(if b { args[1] } else { ctx.not(args[1]) });
                }
                if let Some(b) = ctx.as_bool_const(args[1]) {
                    return Some(if b { args[0] } else { ctx.not(args[0]) });
                }
            }
            None
        }
        Op::MemRead => {
            // read(write(m, a, d), a) = d ; read(write(m, a, d), b) with
            // distinct constant addresses = read(m, b).
            if let ExprNode::App {
                op: Op::MemWrite,
                args: wargs,
                ..
            } = ctx.node(args[0]).clone()
            {
                if wargs[1] == args[1] {
                    return Some(wargs[2]);
                }
                if let (Some(wa), Some(ra)) =
                    (ctx.as_bv_const(wargs[1]), ctx.as_bv_const(args[1]))
                {
                    if wa != ra {
                        return Some(ctx.mem_read(wargs[0], args[1]));
                    }
                }
            }
            None
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{eval, Env, Sort};

    fn bv_var(ctx: &mut ExprCtx, n: &str, w: u32) -> ExprRef {
        ctx.var(n, Sort::Bv(w))
    }

    /// Fresh-memo convenience wrapper for the identity tests below.
    fn simplify(ctx: &mut ExprCtx, root: ExprRef) -> ExprRef {
        simplify_cached(ctx, root, &mut HashMap::new())
    }

    #[test]
    fn additive_identities() {
        let mut ctx = ExprCtx::new();
        let x = bv_var(&mut ctx, "x", 8);
        let z = ctx.bv_u64(0, 8);
        let e = ctx.bvadd(z, x);
        assert_eq!(simplify(&mut ctx, e), x);
        let e = ctx.bvsub(x, z);
        assert_eq!(simplify(&mut ctx, e), x);
        let e = ctx.bvsub(x, x);
        assert_eq!(simplify(&mut ctx, e), z);
    }

    #[test]
    fn bitwise_identities() {
        let mut ctx = ExprCtx::new();
        let x = bv_var(&mut ctx, "x", 8);
        let z = ctx.bv_u64(0, 8);
        let ones = ctx.bv(crate::BitVecValue::ones(8));
        let e = ctx.bvand(x, ones);
        assert_eq!(simplify(&mut ctx, e), x);
        let e = ctx.bvand(x, z);
        assert_eq!(simplify(&mut ctx, e), z);
        let e = ctx.bvor(x, z);
        assert_eq!(simplify(&mut ctx, e), x);
        let e = ctx.bvxor(x, x);
        assert_eq!(simplify(&mut ctx, e), z);
    }

    #[test]
    fn extract_of_concat() {
        let mut ctx = ExprCtx::new();
        let hi = bv_var(&mut ctx, "h", 8);
        let lo = bv_var(&mut ctx, "l", 8);
        let c = ctx.concat(hi, lo);
        let e = ctx.extract(c, 7, 0);
        assert_eq!(simplify(&mut ctx, e), lo);
        let e = ctx.extract(c, 15, 8);
        assert_eq!(simplify(&mut ctx, e), hi);
        let e = ctx.extract(c, 15, 0);
        assert_eq!(simplify(&mut ctx, e), c);
    }

    #[test]
    fn extract_of_extract() {
        let mut ctx = ExprCtx::new();
        let x = bv_var(&mut ctx, "x", 16);
        let inner = ctx.extract(x, 11, 4);
        let e = ctx.extract(inner, 5, 2);
        let expected = ctx.extract(x, 9, 6);
        assert_eq!(simplify(&mut ctx, e), expected);
    }

    #[test]
    fn read_over_write() {
        let mut ctx = ExprCtx::new();
        let m = ctx.var(
            "m",
            Sort::Mem {
                addr_width: 4,
                data_width: 8,
            },
        );
        let a = ctx.var("a", Sort::Bv(4));
        let d = ctx.var("d", Sort::Bv(8));
        let w = ctx.mem_write(m, a, d);
        let r = ctx.mem_read(w, a);
        assert_eq!(simplify(&mut ctx, r), d);

        let a1 = ctx.bv_u64(1, 4);
        let a2 = ctx.bv_u64(2, 4);
        let w = ctx.mem_write(m, a1, d);
        let r = ctx.mem_read(w, a2);
        let expected = ctx.mem_read(m, a2);
        assert_eq!(simplify(&mut ctx, r), expected);
    }

    #[test]
    fn boolean_identities() {
        let mut ctx = ExprCtx::new();
        let p = ctx.var("p", Sort::Bool);
        let q = ctx.var("q", Sort::Bool);
        let tt = ctx.tt();
        let ff = ctx.ff();
        let e = ctx.xor(p, p);
        assert_eq!(simplify(&mut ctx, e), ff);
        let e = ctx.xor(p, ff);
        assert_eq!(simplify(&mut ctx, e), p);
        let e = ctx.xor(tt, p);
        let not_p = ctx.not(p);
        assert_eq!(simplify(&mut ctx, e), not_p);
        let e = ctx.iff(p, p);
        assert_eq!(simplify(&mut ctx, e), tt);
        let e = ctx.iff(p, tt);
        assert_eq!(simplify(&mut ctx, e), p);
        let e = ctx.implies(p, p);
        assert_eq!(simplify(&mut ctx, e), tt);
        let e = ctx.and(q, q);
        assert_eq!(simplify(&mut ctx, e), q);
        let e = ctx.or(q, q);
        assert_eq!(simplify(&mut ctx, e), q);
    }

    #[test]
    fn ite_identities() {
        let mut ctx = ExprCtx::new();
        let p = ctx.var("p", Sort::Bool);
        let x = bv_var(&mut ctx, "x", 8);
        let y = bv_var(&mut ctx, "y", 8);
        let tt = ctx.tt();
        let ff = ctx.ff();
        let e = ctx.ite(p, tt, ff);
        assert_eq!(simplify(&mut ctx, e), p);
        let e = ctx.ite(p, ff, tt);
        let not_p = ctx.not(p);
        assert_eq!(simplify(&mut ctx, e), not_p);
        // ite(¬p, x, y) normalizes to ite(p, y, x).
        let np = ctx.not(p);
        let e = ctx.ite(np, x, y);
        let expected = ctx.ite(p, y, x);
        assert_eq!(simplify(&mut ctx, e), expected);
    }

    #[test]
    fn involutions_cancel() {
        let mut ctx = ExprCtx::new();
        let x = bv_var(&mut ctx, "x", 8);
        let nn = ctx.bvnot(x);
        let e = ctx.bvnot(nn);
        assert_eq!(simplify(&mut ctx, e), x);
        let ng = ctx.bvneg(x);
        let e = ctx.bvneg(ng);
        assert_eq!(simplify(&mut ctx, e), x);
    }

    #[test]
    fn shift_and_division_identities() {
        let mut ctx = ExprCtx::new();
        let x = bv_var(&mut ctx, "x", 8);
        let z = ctx.bv_u64(0, 8);
        let one = ctx.bv_u64(1, 8);
        let big = ctx.bv_u64(9, 8);
        for f in [ExprCtx::bvshl, ExprCtx::bvlshr, ExprCtx::bvashr] {
            let e = f(&mut ctx, x, z);
            assert_eq!(simplify(&mut ctx, e), x);
            let e = f(&mut ctx, z, x);
            assert_eq!(simplify(&mut ctx, e), z);
        }
        // Over-shifting collapses to zero for the logical shifts only.
        let e = ctx.bvshl(x, big);
        assert_eq!(simplify(&mut ctx, e), z);
        let e = ctx.bvlshr(x, big);
        assert_eq!(simplify(&mut ctx, e), z);
        let e = ctx.bvashr(x, big);
        assert_ne!(simplify(&mut ctx, e), z);
        let e = ctx.bvudiv(x, one);
        assert_eq!(simplify(&mut ctx, e), x);
        let e = ctx.bvurem(x, one);
        assert_eq!(simplify(&mut ctx, e), z);
    }

    #[test]
    fn concat_of_adjacent_extracts_fuses() {
        let mut ctx = ExprCtx::new();
        let x = bv_var(&mut ctx, "x", 16);
        let hi = ctx.extract(x, 11, 6);
        let lo = ctx.extract(x, 5, 2);
        let e = ctx.concat(hi, lo);
        let expected = ctx.extract(x, 11, 2);
        assert_eq!(simplify(&mut ctx, e), expected);
        // Full reassembly is the identity.
        let hi = ctx.extract(x, 15, 8);
        let lo = ctx.extract(x, 7, 0);
        let e = ctx.concat(hi, lo);
        assert_eq!(simplify(&mut ctx, e), x);
    }

    #[test]
    fn extensions_compose() {
        let mut ctx = ExprCtx::new();
        let x = bv_var(&mut ctx, "x", 8);
        let z1 = ctx.sext(x, 12);
        let e = ctx.sext(z1, 16);
        let expected = ctx.sext(x, 16);
        assert_eq!(simplify(&mut ctx, e), expected);
        // Extracting below the original width sees through either
        // extension.
        let e = ctx.extract(z1, 5, 1);
        let expected = ctx.extract(x, 5, 1);
        assert_eq!(simplify(&mut ctx, e), expected);
    }

    #[test]
    fn simplify_preserves_semantics_randomized() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let mut ctx = ExprCtx::new();
            let x = bv_var(&mut ctx, "x", 8);
            let y = bv_var(&mut ctx, "y", 8);
            // Build a random expression.
            let mut pool = vec![x, y, ctx.bv_u64(0, 8), ctx.bv_u64(0xFF, 8)];
            for _ in 0..10 {
                let a = pool[rng.gen_range(0..pool.len())];
                let b = pool[rng.gen_range(0..pool.len())];
                let e = match rng.gen_range(0..6) {
                    0 => ctx.bvadd(a, b),
                    1 => ctx.bvsub(a, b),
                    2 => ctx.bvand(a, b),
                    3 => ctx.bvor(a, b),
                    4 => ctx.bvxor(a, b),
                    _ => ctx.bvmul(a, b),
                };
                pool.push(e);
            }
            let root = *pool.last().unwrap();
            let simplified = simplify(&mut ctx, root);
            for _ in 0..16 {
                let mut env = Env::new();
                env.bind_u64(&ctx, "x", rng.gen_range(0..256));
                env.bind_u64(&ctx, "y", rng.gen_range(0..256));
                assert_eq!(
                    eval(&ctx, root, &env).unwrap(),
                    eval(&ctx, simplified, &env).unwrap()
                );
            }
        }
    }
}
