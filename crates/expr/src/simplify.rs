//! A bottom-up rewriting simplifier.
//!
//! Construction-time folding in [`ExprCtx`] already handles fully-constant
//! applications and a few boolean identities. This pass adds algebraic
//! rules that need to look at operand structure (additive/multiplicative
//! identities, xor/sub cancellation, extract-of-concat, nested
//! extensions) and applies them to a whole DAG at once.

use std::collections::HashMap;

use crate::ctx::{ExprCtx, ExprNode, ExprRef, Op};

/// Simplifies `root` bottom-up, returning an equivalent expression.
///
/// The result is semantically equal to the input for every assignment of
/// the free variables (a property checked by randomized tests in this
/// crate and by SAT-based equivalence checks in `gila-smt`).
///
/// # Examples
///
/// ```
/// use gila_expr::{simplify, ExprCtx, Sort};
///
/// let mut ctx = ExprCtx::new();
/// let x = ctx.var("x", Sort::Bv(8));
/// let zero = ctx.bv_u64(0, 8);
/// let e = ctx.bvadd(x, zero);
/// assert_eq!(simplify(&mut ctx, e), x);
/// ```
pub fn simplify(ctx: &mut ExprCtx, root: ExprRef) -> ExprRef {
    let mut memo = HashMap::new();
    simplify_cached(ctx, root, &mut memo)
}

/// Like [`simplify`] but shares a memo table across multiple roots.
pub fn simplify_cached(
    ctx: &mut ExprCtx,
    root: ExprRef,
    memo: &mut HashMap<ExprRef, ExprRef>,
) -> ExprRef {
    let order = ctx.post_order(&[root]);
    for e in order {
        if memo.contains_key(&e) {
            continue;
        }
        let out = match ctx.node(e).clone() {
            ExprNode::App { op, args, .. } => {
                let new_args: Vec<ExprRef> = args.iter().map(|a| memo[a]).collect();
                let mut cur = ctx.app(op, new_args);
                // Rules can cascade (e.g. extract-of-concat producing a
                // full-range extract); iterate to a local fixpoint.
                for _ in 0..8 {
                    match rewrite(ctx, cur) {
                        Some(next) if next != cur => cur = next,
                        _ => break,
                    }
                }
                cur
            }
            _ => e,
        };
        memo.insert(e, out);
    }
    memo[&root]
}

/// One top-level rewrite step; `None` means no rule applied.
fn rewrite(ctx: &mut ExprCtx, e: ExprRef) -> Option<ExprRef> {
    let (op, args) = match ctx.node(e) {
        ExprNode::App { op, args, .. } => (*op, args.clone()),
        _ => return None,
    };
    let is_zero = |ctx: &ExprCtx, a: ExprRef| ctx.as_bv_const(a).is_some_and(|v| v.is_zero());
    let is_ones = |ctx: &ExprCtx, a: ExprRef| ctx.as_bv_const(a).is_some_and(|v| v.is_ones());
    match op {
        Op::BvAdd => {
            if is_zero(ctx, args[0]) {
                return Some(args[1]);
            }
            if is_zero(ctx, args[1]) {
                return Some(args[0]);
            }
            None
        }
        Op::BvSub => {
            if is_zero(ctx, args[1]) {
                return Some(args[0]);
            }
            if args[0] == args[1] {
                let w = ctx.sort_of(e).bv_width()?;
                return Some(ctx.bv_u64(0, w));
            }
            None
        }
        Op::BvMul => {
            let w = ctx.sort_of(e).bv_width()?;
            for (c, other) in [(args[0], args[1]), (args[1], args[0])] {
                if let Some(v) = ctx.as_bv_const(c) {
                    if v.is_zero() {
                        return Some(ctx.bv_u64(0, w));
                    }
                    if v.to_u64() == 1 && v.try_to_u64() == Some(1) {
                        return Some(other);
                    }
                }
            }
            None
        }
        Op::BvAnd => {
            if is_zero(ctx, args[0]) || is_zero(ctx, args[1]) {
                let w = ctx.sort_of(e).bv_width()?;
                return Some(ctx.bv_u64(0, w));
            }
            if is_ones(ctx, args[0]) {
                return Some(args[1]);
            }
            if is_ones(ctx, args[1]) {
                return Some(args[0]);
            }
            if args[0] == args[1] {
                return Some(args[0]);
            }
            None
        }
        Op::BvOr => {
            if is_ones(ctx, args[0]) || is_ones(ctx, args[1]) {
                let w = ctx.sort_of(e).bv_width()?;
                return Some(ctx.bv(crate::BitVecValue::ones(w)));
            }
            if is_zero(ctx, args[0]) {
                return Some(args[1]);
            }
            if is_zero(ctx, args[1]) {
                return Some(args[0]);
            }
            if args[0] == args[1] {
                return Some(args[0]);
            }
            None
        }
        Op::BvXor => {
            if args[0] == args[1] {
                let w = ctx.sort_of(e).bv_width()?;
                return Some(ctx.bv_u64(0, w));
            }
            if is_zero(ctx, args[0]) {
                return Some(args[1]);
            }
            if is_zero(ctx, args[1]) {
                return Some(args[0]);
            }
            None
        }
        Op::BvExtract { hi, lo } => {
            let arg = args[0];
            let arg_w = ctx.sort_of(arg).bv_width()?;
            // Full-range extraction is the identity.
            if lo == 0 && hi + 1 == arg_w {
                return Some(arg);
            }
            match ctx.node(arg).clone() {
                // extract over concat: select from the matching half if possible.
                ExprNode::App {
                    op: Op::BvConcat,
                    args: cargs,
                    ..
                } => {
                    let lo_w = ctx.sort_of(cargs[1]).bv_width()?;
                    if hi < lo_w {
                        return Some(ctx.extract(cargs[1], hi, lo));
                    }
                    if lo >= lo_w {
                        return Some(ctx.extract(cargs[0], hi - lo_w, lo - lo_w));
                    }
                    None
                }
                // extract over extract composes.
                ExprNode::App {
                    op: Op::BvExtract { lo: lo2, .. },
                    args: iargs,
                    ..
                } => Some(ctx.extract(iargs[0], hi + lo2, lo + lo2)),
                // extract of a zext that stays within the original width.
                ExprNode::App {
                    op: Op::BvZext { .. },
                    args: iargs,
                    ..
                } => {
                    let inner_w = ctx.sort_of(iargs[0]).bv_width()?;
                    if hi < inner_w {
                        return Some(ctx.extract(iargs[0], hi, lo));
                    }
                    None
                }
                _ => None,
            }
        }
        Op::BvZext { to } => match ctx.node(args[0]).clone() {
            ExprNode::App {
                op: Op::BvZext { .. },
                args: iargs,
                ..
            } => Some(ctx.zext(iargs[0], to)),
            _ => None,
        },
        Op::Eq => {
            // eq of bool constants against expressions -> the expression or its negation
            let sa = ctx.sort_of(args[0]);
            if sa.is_bool() {
                if let Some(b) = ctx.as_bool_const(args[0]) {
                    return Some(if b { args[1] } else { ctx.not(args[1]) });
                }
                if let Some(b) = ctx.as_bool_const(args[1]) {
                    return Some(if b { args[0] } else { ctx.not(args[0]) });
                }
            }
            None
        }
        Op::MemRead => {
            // read(write(m, a, d), a) = d ; read(write(m, a, d), b) with
            // distinct constant addresses = read(m, b).
            if let ExprNode::App {
                op: Op::MemWrite,
                args: wargs,
                ..
            } = ctx.node(args[0]).clone()
            {
                if wargs[1] == args[1] {
                    return Some(wargs[2]);
                }
                if let (Some(wa), Some(ra)) =
                    (ctx.as_bv_const(wargs[1]), ctx.as_bv_const(args[1]))
                {
                    if wa != ra {
                        return Some(ctx.mem_read(wargs[0], args[1]));
                    }
                }
            }
            None
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{eval, Env, Sort};

    fn bv_var(ctx: &mut ExprCtx, n: &str, w: u32) -> ExprRef {
        ctx.var(n, Sort::Bv(w))
    }

    #[test]
    fn additive_identities() {
        let mut ctx = ExprCtx::new();
        let x = bv_var(&mut ctx, "x", 8);
        let z = ctx.bv_u64(0, 8);
        let e = ctx.bvadd(z, x);
        assert_eq!(simplify(&mut ctx, e), x);
        let e = ctx.bvsub(x, z);
        assert_eq!(simplify(&mut ctx, e), x);
        let e = ctx.bvsub(x, x);
        assert_eq!(simplify(&mut ctx, e), z);
    }

    #[test]
    fn bitwise_identities() {
        let mut ctx = ExprCtx::new();
        let x = bv_var(&mut ctx, "x", 8);
        let z = ctx.bv_u64(0, 8);
        let ones = ctx.bv(crate::BitVecValue::ones(8));
        let e = ctx.bvand(x, ones);
        assert_eq!(simplify(&mut ctx, e), x);
        let e = ctx.bvand(x, z);
        assert_eq!(simplify(&mut ctx, e), z);
        let e = ctx.bvor(x, z);
        assert_eq!(simplify(&mut ctx, e), x);
        let e = ctx.bvxor(x, x);
        assert_eq!(simplify(&mut ctx, e), z);
    }

    #[test]
    fn extract_of_concat() {
        let mut ctx = ExprCtx::new();
        let hi = bv_var(&mut ctx, "h", 8);
        let lo = bv_var(&mut ctx, "l", 8);
        let c = ctx.concat(hi, lo);
        let e = ctx.extract(c, 7, 0);
        assert_eq!(simplify(&mut ctx, e), lo);
        let e = ctx.extract(c, 15, 8);
        assert_eq!(simplify(&mut ctx, e), hi);
        let e = ctx.extract(c, 15, 0);
        assert_eq!(simplify(&mut ctx, e), c);
    }

    #[test]
    fn extract_of_extract() {
        let mut ctx = ExprCtx::new();
        let x = bv_var(&mut ctx, "x", 16);
        let inner = ctx.extract(x, 11, 4);
        let e = ctx.extract(inner, 5, 2);
        let expected = ctx.extract(x, 9, 6);
        assert_eq!(simplify(&mut ctx, e), expected);
    }

    #[test]
    fn read_over_write() {
        let mut ctx = ExprCtx::new();
        let m = ctx.var(
            "m",
            Sort::Mem {
                addr_width: 4,
                data_width: 8,
            },
        );
        let a = ctx.var("a", Sort::Bv(4));
        let d = ctx.var("d", Sort::Bv(8));
        let w = ctx.mem_write(m, a, d);
        let r = ctx.mem_read(w, a);
        assert_eq!(simplify(&mut ctx, r), d);

        let a1 = ctx.bv_u64(1, 4);
        let a2 = ctx.bv_u64(2, 4);
        let w = ctx.mem_write(m, a1, d);
        let r = ctx.mem_read(w, a2);
        let expected = ctx.mem_read(m, a2);
        assert_eq!(simplify(&mut ctx, r), expected);
    }

    #[test]
    fn simplify_preserves_semantics_randomized() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let mut ctx = ExprCtx::new();
            let x = bv_var(&mut ctx, "x", 8);
            let y = bv_var(&mut ctx, "y", 8);
            // Build a random expression.
            let mut pool = vec![x, y, ctx.bv_u64(0, 8), ctx.bv_u64(0xFF, 8)];
            for _ in 0..10 {
                let a = pool[rng.gen_range(0..pool.len())];
                let b = pool[rng.gen_range(0..pool.len())];
                let e = match rng.gen_range(0..6) {
                    0 => ctx.bvadd(a, b),
                    1 => ctx.bvsub(a, b),
                    2 => ctx.bvand(a, b),
                    3 => ctx.bvor(a, b),
                    4 => ctx.bvxor(a, b),
                    _ => ctx.bvmul(a, b),
                };
                pool.push(e);
            }
            let root = *pool.last().unwrap();
            let simplified = simplify(&mut ctx, root);
            for _ in 0..16 {
                let mut env = Env::new();
                env.bind_u64(&ctx, "x", rng.gen_range(0..256));
                env.bind_u64(&ctx, "y", rng.gen_range(0..256));
                assert_eq!(
                    eval(&ctx, root, &env).unwrap(),
                    eval(&ctx, simplified, &env).unwrap()
                );
            }
        }
    }
}
