//! Concrete evaluation of expressions under a variable assignment.

use std::collections::HashMap;
use std::fmt;

use crate::ctx::{ExprCtx, ExprNode, ExprRef, Op};
use crate::value::{BitVecValue, Value};

/// A variable assignment for evaluation.
///
/// # Examples
///
/// ```
/// use gila_expr::{eval, Env, ExprCtx, Sort, Value};
///
/// let mut ctx = ExprCtx::new();
/// let x = ctx.var("x", Sort::Bv(8));
/// let one = ctx.bv_u64(1, 8);
/// let e = ctx.bvadd(x, one);
/// let mut env = Env::new();
/// env.bind_u64(&ctx, "x", 41);
/// assert_eq!(eval(&ctx, e, &env).unwrap().as_bv().to_u64(), 42);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Env {
    bindings: HashMap<ExprRef, Value>,
}

impl Env {
    /// Creates an empty assignment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds a variable handle to a value.
    pub fn bind(&mut self, var: ExprRef, value: impl Into<Value>) {
        self.bindings.insert(var, value.into());
    }

    /// Binds a variable by name to a bit-vector value of the variable's width.
    ///
    /// # Panics
    ///
    /// Panics if no variable with that name exists in `ctx` or it is not a
    /// bit-vector variable.
    pub fn bind_u64(&mut self, ctx: &ExprCtx, name: &str, value: u64) {
        let var = ctx
            .find_var(name)
            .unwrap_or_else(|| panic!("unknown variable {name:?}"));
        let width = ctx
            .sort_of(var)
            .bv_width()
            .unwrap_or_else(|| panic!("variable {name:?} is not a bit-vector"));
        self.bind(var, BitVecValue::from_u64(value, width));
    }

    /// Binds a boolean variable by name.
    ///
    /// # Panics
    ///
    /// Panics if no variable with that name exists in `ctx`.
    pub fn bind_bool(&mut self, ctx: &ExprCtx, name: &str, value: bool) {
        let var = ctx
            .find_var(name)
            .unwrap_or_else(|| panic!("unknown variable {name:?}"));
        self.bind(var, value);
    }

    /// Looks up the value of a variable.
    pub fn get(&self, var: ExprRef) -> Option<&Value> {
        self.bindings.get(&var)
    }

    /// Iterates over all bindings.
    pub fn iter(&self) -> impl Iterator<Item = (ExprRef, &Value)> {
        self.bindings.iter().map(|(k, v)| (*k, v))
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// True if no variables are bound.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }
}

impl FromIterator<(ExprRef, Value)> for Env {
    fn from_iter<I: IntoIterator<Item = (ExprRef, Value)>>(iter: I) -> Self {
        Env {
            bindings: iter.into_iter().collect(),
        }
    }
}

impl Extend<(ExprRef, Value)> for Env {
    fn extend<I: IntoIterator<Item = (ExprRef, Value)>>(&mut self, iter: I) {
        self.bindings.extend(iter);
    }
}

/// An error during evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// A free variable was not bound in the environment.
    UnboundVar {
        /// The variable's name.
        name: String,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVar { name } => write!(f, "unbound variable {name:?}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Evaluates `root` under `env`.
///
/// Evaluation is iterative over the DAG, so arbitrarily deep expressions
/// are handled without stack overflow. Shared sub-expressions are
/// evaluated once.
///
/// # Errors
///
/// Returns [`EvalError::UnboundVar`] if a reachable variable has no
/// binding in `env`.
pub fn eval(ctx: &ExprCtx, root: ExprRef, env: &Env) -> Result<Value, EvalError> {
    let order = ctx.post_order(&[root]);
    let mut memo: HashMap<ExprRef, Value> = HashMap::with_capacity(order.len());
    for e in order {
        let value = match ctx.node(e) {
            ExprNode::BoolConst(b) => Value::Bool(*b),
            ExprNode::BvConst(v) => Value::Bv(v.clone()),
            ExprNode::MemConst(m) => Value::Mem(m.clone()),
            ExprNode::Var { name, .. } => match env.get(e) {
                Some(v) => v.clone(),
                None => {
                    return Err(EvalError::UnboundVar {
                        name: name.clone(),
                    })
                }
            },
            ExprNode::App { op, args, .. } => {
                let a = |i: usize| &memo[&args[i]];
                apply(*op, &(0..args.len()).map(a).collect::<Vec<_>>())
            }
        };
        memo.insert(e, value);
    }
    Ok(memo.remove(&root).expect("root evaluated"))
}

/// Concrete semantics of one operator application. Shared with the
/// compiled tape's generic fallback instruction (`crate::lower`), so the
/// interpreter and the tape agree by construction off the word fast path.
pub(crate) fn apply(op: Op, args: &[&Value]) -> Value {
    use Op::*;
    match op {
        Not => Value::Bool(!args[0].as_bool()),
        And => Value::Bool(args[0].as_bool() && args[1].as_bool()),
        Or => Value::Bool(args[0].as_bool() || args[1].as_bool()),
        Xor => Value::Bool(args[0].as_bool() ^ args[1].as_bool()),
        Implies => Value::Bool(!args[0].as_bool() || args[1].as_bool()),
        Iff => Value::Bool(args[0].as_bool() == args[1].as_bool()),
        Ite => {
            if args[0].as_bool() {
                args[1].clone()
            } else {
                args[2].clone()
            }
        }
        Eq => Value::Bool(args[0] == args[1]),
        BvNot => Value::Bv(args[0].as_bv().not()),
        BvNeg => Value::Bv(args[0].as_bv().neg()),
        BvAnd => Value::Bv(args[0].as_bv().and(args[1].as_bv())),
        BvOr => Value::Bv(args[0].as_bv().or(args[1].as_bv())),
        BvXor => Value::Bv(args[0].as_bv().xor(args[1].as_bv())),
        BvAdd => Value::Bv(args[0].as_bv().add(args[1].as_bv())),
        BvSub => Value::Bv(args[0].as_bv().sub(args[1].as_bv())),
        BvMul => Value::Bv(args[0].as_bv().mul(args[1].as_bv())),
        BvUdiv => Value::Bv(args[0].as_bv().udiv(args[1].as_bv())),
        BvUrem => Value::Bv(args[0].as_bv().urem(args[1].as_bv())),
        BvShl => Value::Bv(args[0].as_bv().shl(args[1].as_bv())),
        BvLshr => Value::Bv(args[0].as_bv().lshr(args[1].as_bv())),
        BvAshr => Value::Bv(args[0].as_bv().ashr(args[1].as_bv())),
        BvConcat => Value::Bv(args[0].as_bv().concat(args[1].as_bv())),
        BvExtract { hi, lo } => Value::Bv(args[0].as_bv().extract(hi, lo)),
        BvZext { to } => Value::Bv(args[0].as_bv().zext(to)),
        BvSext { to } => Value::Bv(args[0].as_bv().sext(to)),
        BvUlt => Value::Bool(args[0].as_bv().ult(args[1].as_bv())),
        BvUle => Value::Bool(args[0].as_bv().ule(args[1].as_bv())),
        BvSlt => Value::Bool(args[0].as_bv().slt(args[1].as_bv())),
        BvSle => Value::Bool(args[0].as_bv().sle(args[1].as_bv())),
        MemRead => Value::Bv(args[0].as_mem().read(args[1].as_bv())),
        MemWrite => Value::Mem(args[0].as_mem().write(args[1].as_bv(), args[2].as_bv())),
        BoolToBv => Value::Bv(BitVecValue::from_bool(args[0].as_bool())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sort;

    #[test]
    fn eval_arith() {
        let mut ctx = ExprCtx::new();
        let x = ctx.var("x", Sort::Bv(8));
        let y = ctx.var("y", Sort::Bv(8));
        let s = ctx.bvadd(x, y);
        let p = ctx.bvmul(s, x);
        let mut env = Env::new();
        env.bind_u64(&ctx, "x", 3);
        env.bind_u64(&ctx, "y", 4);
        assert_eq!(eval(&ctx, p, &env).unwrap().as_bv().to_u64(), 21);
    }

    #[test]
    fn eval_ite_and_bool() {
        let mut ctx = ExprCtx::new();
        let p = ctx.var("p", Sort::Bool);
        let x = ctx.bv_u64(1, 4);
        let y = ctx.bv_u64(2, 4);
        let e = ctx.ite(p, x, y);
        let mut env = Env::new();
        env.bind_bool(&ctx, "p", true);
        assert_eq!(eval(&ctx, e, &env).unwrap().as_bv().to_u64(), 1);
        env.bind_bool(&ctx, "p", false);
        assert_eq!(eval(&ctx, e, &env).unwrap().as_bv().to_u64(), 2);
    }

    #[test]
    fn eval_memory() {
        let mut ctx = ExprCtx::new();
        let m = ctx.var(
            "m",
            Sort::Mem {
                addr_width: 4,
                data_width: 8,
            },
        );
        let a = ctx.bv_u64(5, 4);
        let d = ctx.bv_u64(0xAB, 8);
        let w = ctx.mem_write(m, a, d);
        let r = ctx.mem_read(w, a);
        let mut env = Env::new();
        env.bind(m, crate::MemValue::zeroed(4, 8));
        assert_eq!(eval(&ctx, r, &env).unwrap().as_bv().to_u64(), 0xAB);
    }

    #[test]
    fn unbound_var_error() {
        let mut ctx = ExprCtx::new();
        let x = ctx.var("x", Sort::Bv(8));
        let err = eval(&ctx, x, &Env::new()).unwrap_err();
        assert_eq!(
            err,
            EvalError::UnboundVar {
                name: "x".to_string()
            }
        );
    }

    #[test]
    fn eval_deep_chain_no_overflow() {
        let mut ctx = ExprCtx::new();
        let x = ctx.var("x", Sort::Bv(32));
        let one = ctx.bv_u64(1, 32);
        let mut e = x;
        for _ in 0..100_000 {
            e = ctx.bvadd(e, one);
        }
        let mut env = Env::new();
        env.bind_u64(&ctx, "x", 0);
        assert_eq!(eval(&ctx, e, &env).unwrap().as_bv().to_u64(), 100_000);
    }
}
