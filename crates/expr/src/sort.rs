//! Sorts (types) of expressions: booleans, fixed-width bit-vectors, and
//! memories (arrays from bit-vector addresses to bit-vector words).

use std::fmt;

/// The sort of an expression.
///
/// # Examples
///
/// ```
/// use gila_expr::Sort;
///
/// assert!(Sort::Bv(8).is_bv());
/// assert_eq!(Sort::Bv(8).bv_width(), Some(8));
/// assert_eq!(Sort::Mem { addr_width: 4, data_width: 8 }.to_string(), "mem[4 -> 8]");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sort {
    /// Boolean.
    Bool,
    /// Bit-vector of the given width (>= 1).
    Bv(u32),
    /// Memory: `2^addr_width` words of `data_width` bits each.
    Mem {
        /// Address width in bits.
        addr_width: u32,
        /// Data word width in bits.
        data_width: u32,
    },
}

impl Sort {
    /// True if this is the boolean sort.
    pub fn is_bool(self) -> bool {
        matches!(self, Sort::Bool)
    }

    /// True if this is a bit-vector sort.
    pub fn is_bv(self) -> bool {
        matches!(self, Sort::Bv(_))
    }

    /// True if this is a memory sort.
    pub fn is_mem(self) -> bool {
        matches!(self, Sort::Mem { .. })
    }

    /// The bit-vector width, if this is a bit-vector sort.
    pub fn bv_width(self) -> Option<u32> {
        match self {
            Sort::Bv(w) => Some(w),
            _ => None,
        }
    }

    /// The number of state bits needed to store a value of this sort.
    ///
    /// Booleans count as 1 bit; a memory counts as `2^addr_width * data_width`
    /// bits. This matches how the paper counts "state bits" in Table I.
    pub fn bit_count(self) -> u64 {
        match self {
            Sort::Bool => 1,
            Sort::Bv(w) => w as u64,
            Sort::Mem {
                addr_width,
                data_width,
            } => (1u64 << addr_width) * data_width as u64,
        }
    }
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sort::Bool => write!(f, "bool"),
            Sort::Bv(w) => write!(f, "bv{w}"),
            Sort::Mem {
                addr_width,
                data_width,
            } => write!(f, "mem[{addr_width} -> {data_width}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_counts() {
        assert_eq!(Sort::Bool.bit_count(), 1);
        assert_eq!(Sort::Bv(13).bit_count(), 13);
        assert_eq!(
            Sort::Mem {
                addr_width: 8,
                data_width: 8
            }
            .bit_count(),
            2048
        );
    }

    #[test]
    fn display() {
        assert_eq!(Sort::Bool.to_string(), "bool");
        assert_eq!(Sort::Bv(32).to_string(), "bv32");
    }
}
