//! Abstract values and an abstract evaluator over expressions.
//!
//! This module is the word-level abstract-interpretation counterpart of
//! [`crate::eval`]: where `eval` maps an expression and a concrete
//! environment to one [`Value`], [`abs_eval`] maps an expression and an
//! abstract environment ([`AbsEnv`]) to a *set* of values, represented
//! by an [`AbsValue`]. Three reduced-product domains describe a
//! bit-vector set ([`AbsBv`]):
//!
//! * **known bits** (ternary): two masks, `known_zero` and `known_one`,
//!   recording the positions whose value is fixed;
//! * **unsigned intervals**: an inclusive range `[lo, hi]` under the
//!   unsigned order;
//! * **congruence on constants** (a flat lattice, [`Flat`]): either a
//!   single known constant, or no information.
//!
//! After every transfer function the product is *reduced*
//! ([`AbsBv::reduce`]): each component tightens the others (a singleton
//! interval becomes a constant, agreeing leading bits of `lo`/`hi`
//! become known bits, known bits clamp the interval), and any empty
//! component collapses the whole product to a canonical bottom.
//!
//! The contract linking the two evaluators is *over-approximation*: for
//! every expression `e` and concrete environment `env`,
//! `eval(e, env) ∈ γ(abs_eval(e, abs(env)))` — see
//! `tests/absint_props.rs` for the property test. Transfer functions
//! that would be complex to make precise simply return top; that is
//! always sound.

use std::collections::HashMap;

use crate::ctx::{ExprCtx, ExprNode, ExprRef, Op};
use crate::sort::Sort;
use crate::value::{BitVecValue, Value};

/// Abstract boolean: the four-point lattice `Bot < {False, True} < Top`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbsBool {
    /// No boolean (unreachable).
    Bot,
    /// Exactly `false`.
    False,
    /// Exactly `true`.
    True,
    /// Either boolean.
    Top,
}

impl AbsBool {
    /// Abstracts a concrete boolean.
    pub fn from_bool(b: bool) -> AbsBool {
        if b {
            AbsBool::True
        } else {
            AbsBool::False
        }
    }

    /// γ-membership: is `b` described by this abstract boolean?
    pub fn contains(self, b: bool) -> bool {
        match self {
            AbsBool::Bot => false,
            AbsBool::False => !b,
            AbsBool::True => b,
            AbsBool::Top => true,
        }
    }

    /// Least upper bound.
    pub fn join(self, other: AbsBool) -> AbsBool {
        use AbsBool::*;
        match (self, other) {
            (Bot, x) | (x, Bot) => x,
            (Top, _) | (_, Top) => Top,
            (a, b) if a == b => a,
            _ => Top,
        }
    }

    /// Greatest lower bound.
    pub fn meet(self, other: AbsBool) -> AbsBool {
        use AbsBool::*;
        match (self, other) {
            (Top, x) | (x, Top) => x,
            (Bot, _) | (_, Bot) => Bot,
            (a, b) if a == b => a,
            _ => Bot,
        }
    }

    /// Widening. The lattice has finite height, so widening is join.
    pub fn widen(self, other: AbsBool) -> AbsBool {
        self.join(other)
    }

    /// The concrete boolean, if exactly one is described.
    pub fn as_const(self) -> Option<bool> {
        match self {
            AbsBool::False => Some(false),
            AbsBool::True => Some(true),
            _ => None,
        }
    }

    fn not(self) -> AbsBool {
        match self {
            AbsBool::Bot => AbsBool::Bot,
            AbsBool::False => AbsBool::True,
            AbsBool::True => AbsBool::False,
            AbsBool::Top => AbsBool::Top,
        }
    }

    fn and(self, other: AbsBool) -> AbsBool {
        use AbsBool::*;
        match (self, other) {
            (Bot, _) | (_, Bot) => Bot,
            (False, _) | (_, False) => False,
            (True, True) => True,
            _ => Top,
        }
    }

    fn or(self, other: AbsBool) -> AbsBool {
        self.not().and(other.not()).not()
    }
}

/// The flat constant lattice: `Bot < Const(c) < Top`.
///
/// This is the "congruence on constants" component of the reduced
/// product: it records when a value is one single known constant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Flat {
    /// No value.
    Bot,
    /// Exactly this constant.
    Const(BitVecValue),
    /// Any value.
    Top,
}

impl Flat {
    fn join(&self, other: &Flat) -> Flat {
        match (self, other) {
            (Flat::Bot, x) | (x, Flat::Bot) => x.clone(),
            (Flat::Const(a), Flat::Const(b)) if a == b => self.clone(),
            _ => Flat::Top,
        }
    }

    fn meet(&self, other: &Flat) -> Flat {
        match (self, other) {
            (Flat::Top, x) | (x, Flat::Top) => x.clone(),
            (Flat::Const(a), Flat::Const(b)) if a == b => self.clone(),
            _ => Flat::Bot,
        }
    }
}

/// Abstract bit-vector: the reduced product of known bits, an unsigned
/// interval, and the flat constant lattice.
///
/// The representation is kept canonical by [`AbsBv::reduce`]; an empty
/// set is always the canonical [`AbsBv::bottom`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AbsBv {
    width: u32,
    /// Mask of bit positions known to be 0.
    known_zero: BitVecValue,
    /// Mask of bit positions known to be 1.
    known_one: BitVecValue,
    /// Inclusive unsigned lower bound.
    lo: BitVecValue,
    /// Inclusive unsigned upper bound.
    hi: BitVecValue,
    /// Flat constant component.
    flat: Flat,
}

fn umin(a: &BitVecValue, b: &BitVecValue) -> BitVecValue {
    if a.ult(b) {
        a.clone()
    } else {
        b.clone()
    }
}

fn umax(a: &BitVecValue, b: &BitVecValue) -> BitVecValue {
    if a.ult(b) {
        b.clone()
    } else {
        a.clone()
    }
}

/// Number of significant bits of `v` (position of the highest set bit
/// plus one; 0 for the zero value).
fn sig_bits(v: &BitVecValue) -> u32 {
    (0..v.width()).rev().find(|&i| v.bit(i)).map_or(0, |i| i + 1)
}

/// Shifts mask bits left by `s`, filling vacated low positions with `fill`.
fn mask_shl(v: &BitVecValue, s: u32, fill: bool) -> BitVecValue {
    let w = v.width();
    let bits: Vec<bool> = (0..w)
        .map(|i| if i < s { fill } else { v.bit(i - s) })
        .collect();
    BitVecValue::from_bits(&bits)
}

/// Shifts mask bits right by `s`, filling vacated high positions with `fill`.
fn mask_lshr(v: &BitVecValue, s: u32, fill: bool) -> BitVecValue {
    let w = v.width();
    let bits: Vec<bool> = (0..w)
        .map(|i| if i + s < w { v.bit(i + s) } else { fill })
        .collect();
    BitVecValue::from_bits(&bits)
}

impl AbsBv {
    /// The set of all values of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn top(width: u32) -> AbsBv {
        AbsBv {
            width,
            known_zero: BitVecValue::zero(width),
            known_one: BitVecValue::zero(width),
            lo: BitVecValue::zero(width),
            hi: BitVecValue::ones(width),
            flat: Flat::Top,
        }
    }

    /// The empty set of values of the given width (canonical form).
    pub fn bottom(width: u32) -> AbsBv {
        AbsBv {
            width,
            known_zero: BitVecValue::ones(width),
            known_one: BitVecValue::ones(width),
            lo: BitVecValue::ones(width),
            hi: BitVecValue::zero(width),
            flat: Flat::Bot,
        }
    }

    /// Abstracts one concrete value exactly.
    pub fn from_const(v: &BitVecValue) -> AbsBv {
        AbsBv {
            width: v.width(),
            known_zero: v.not(),
            known_one: v.clone(),
            lo: v.clone(),
            hi: v.clone(),
            flat: Flat::Const(v.clone()),
        }
    }

    /// The interval `[lo, hi]` with no known-bits information (reduced).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn from_range(lo: &BitVecValue, hi: &BitVecValue) -> AbsBv {
        assert_eq!(lo.width(), hi.width(), "interval endpoint widths differ");
        AbsBv {
            width: lo.width(),
            known_zero: BitVecValue::zero(lo.width()),
            known_one: BitVecValue::zero(lo.width()),
            lo: lo.clone(),
            hi: hi.clone(),
            flat: Flat::Top,
        }
        .reduce()
    }

    /// The set of values with the given known-zero / known-one masks
    /// (reduced).
    ///
    /// # Panics
    ///
    /// Panics if the mask widths differ.
    pub fn from_masks(known_zero: &BitVecValue, known_one: &BitVecValue) -> AbsBv {
        assert_eq!(known_zero.width(), known_one.width(), "mask widths differ");
        let w = known_zero.width();
        AbsBv {
            width: w,
            known_zero: known_zero.clone(),
            known_one: known_one.clone(),
            lo: BitVecValue::zero(w),
            hi: BitVecValue::ones(w),
            flat: Flat::Top,
        }
        .reduce()
    }

    /// Bit width of the described values.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Mask of positions known to be 0.
    pub fn known_zero(&self) -> &BitVecValue {
        &self.known_zero
    }

    /// Mask of positions known to be 1.
    pub fn known_one(&self) -> &BitVecValue {
        &self.known_one
    }

    /// Inclusive unsigned lower bound.
    pub fn lo(&self) -> &BitVecValue {
        &self.lo
    }

    /// Inclusive unsigned upper bound.
    pub fn hi(&self) -> &BitVecValue {
        &self.hi
    }

    /// The flat constant component.
    pub fn flat(&self) -> &Flat {
        &self.flat
    }

    /// True if this is the empty set.
    pub fn is_bottom(&self) -> bool {
        self.flat == Flat::Bot
            || !self.known_zero.and(&self.known_one).is_zero()
            || self.hi.ult(&self.lo)
    }

    /// The single described constant, if the set is a singleton.
    pub fn as_const(&self) -> Option<&BitVecValue> {
        match &self.flat {
            Flat::Const(c) => Some(c),
            _ => None,
        }
    }

    /// γ-membership: is the concrete value `v` described?
    ///
    /// # Panics
    ///
    /// Panics if `v` has a different width.
    pub fn contains(&self, v: &BitVecValue) -> bool {
        assert_eq!(v.width(), self.width, "contains width mismatch");
        if self.is_bottom() {
            return false;
        }
        v.and(&self.known_zero).is_zero()
            && v.and(&self.known_one) == self.known_one
            && self.lo.ule(v)
            && v.ule(&self.hi)
    }

    /// Reduces the product to canonical form: each component tightens
    /// the others, and an empty component collapses to bottom.
    pub fn reduce(mut self) -> AbsBv {
        // Two rounds propagate any one-step tightening to a fixpoint
        // for this product (each rule only moves information one hop).
        for _ in 0..2 {
            if self.is_bottom() {
                return AbsBv::bottom(self.width);
            }
            // Constant component pins everything exactly.
            if let Flat::Const(c) = &self.flat {
                let c = c.clone();
                if !c.and(&self.known_zero).is_zero()
                    || c.and(&self.known_one) != self.known_one
                    || c.ult(&self.lo)
                    || self.hi.ult(&c)
                {
                    return AbsBv::bottom(self.width);
                }
                self.known_zero = c.not();
                self.known_one = c.clone();
                self.lo = c.clone();
                self.hi = c;
                continue;
            }
            // Known bits clamp the interval: every member has at least
            // the known-one bits set (>= known_one as a number) and no
            // known-zero bits set (<= !known_zero).
            self.lo = umax(&self.lo, &self.known_one);
            self.hi = umin(&self.hi, &self.known_zero.not());
            if self.hi.ult(&self.lo) {
                return AbsBv::bottom(self.width);
            }
            // Interval endpoints agreeing on their leading bits fix
            // those bits for every member of [lo, hi].
            let diff = self.lo.xor(&self.hi);
            let split = sig_bits(&diff);
            if split < self.width {
                let lead: Vec<bool> = (0..self.width).map(|i| i >= split).collect();
                let lead = BitVecValue::from_bits(&lead);
                self.known_one = self.known_one.or(&self.lo.and(&lead));
                self.known_zero = self.known_zero.or(&self.lo.not().and(&lead));
            }
            // Singleton interval becomes a constant.
            if self.lo == self.hi {
                self.flat = self.flat.meet(&Flat::Const(self.lo.clone()));
            }
        }
        if self.is_bottom() {
            return AbsBv::bottom(self.width);
        }
        self
    }

    /// Least upper bound (then reduced).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn join(&self, other: &AbsBv) -> AbsBv {
        assert_eq!(self.width, other.width, "join width mismatch");
        if self.is_bottom() {
            return other.clone().reduce();
        }
        if other.is_bottom() {
            return self.clone().reduce();
        }
        AbsBv {
            width: self.width,
            known_zero: self.known_zero.and(&other.known_zero),
            known_one: self.known_one.and(&other.known_one),
            lo: umin(&self.lo, &other.lo),
            hi: umax(&self.hi, &other.hi),
            flat: self.flat.join(&other.flat),
        }
        .reduce()
    }

    /// Greatest lower bound (then reduced; may be bottom).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn meet(&self, other: &AbsBv) -> AbsBv {
        assert_eq!(self.width, other.width, "meet width mismatch");
        if self.is_bottom() || other.is_bottom() {
            return AbsBv::bottom(self.width);
        }
        AbsBv {
            width: self.width,
            known_zero: self.known_zero.or(&other.known_zero),
            known_one: self.known_one.or(&other.known_one),
            lo: umax(&self.lo, &other.lo),
            hi: umin(&self.hi, &other.hi),
            flat: self.flat.meet(&other.flat),
        }
        .reduce()
    }

    /// Widening: `self ∇ next`. Interval bounds that moved jump straight
    /// to the extreme; the finite-height components use join. Guarantees
    /// a finite ascending chain for any sequence of `next`s.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn widen(&self, next: &AbsBv) -> AbsBv {
        assert_eq!(self.width, next.width, "widen width mismatch");
        if self.is_bottom() {
            return next.clone().reduce();
        }
        if next.is_bottom() {
            return self.clone().reduce();
        }
        let lo = if next.lo.ult(&self.lo) {
            BitVecValue::zero(self.width)
        } else {
            self.lo.clone()
        };
        let hi = if self.hi.ult(&next.hi) {
            BitVecValue::ones(self.width)
        } else {
            self.hi.clone()
        };
        AbsBv {
            width: self.width,
            known_zero: self.known_zero.and(&next.known_zero),
            known_one: self.known_one.and(&next.known_one),
            lo,
            hi,
            flat: self.flat.join(&next.flat),
        }
        .reduce()
    }

    /// Partial-order test: does `self` describe every value `other` does?
    pub fn includes(&self, other: &AbsBv) -> bool {
        if other.is_bottom() {
            return true;
        }
        if self.is_bottom() {
            return false;
        }
        self.join(other) == self.clone().reduce()
    }
}

/// An abstract value of any sort.
///
/// Memories are abstracted to a single top element: precise memory
/// tracking is out of scope, and top is always sound.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AbsValue {
    /// An abstract boolean.
    Bool(AbsBool),
    /// An abstract bit-vector.
    Bv(AbsBv),
    /// Any memory (the memory domain has only this element).
    Mem,
}

impl AbsValue {
    /// The top element of the given sort.
    pub fn top_of(sort: &Sort) -> AbsValue {
        match sort {
            Sort::Bool => AbsValue::Bool(AbsBool::Top),
            Sort::Bv(w) => AbsValue::Bv(AbsBv::top(*w)),
            Sort::Mem { .. } => AbsValue::Mem,
        }
    }

    /// The bottom element of the given sort. Memories have no bottom;
    /// top is returned instead (which is always sound).
    pub fn bottom_of(sort: &Sort) -> AbsValue {
        match sort {
            Sort::Bool => AbsValue::Bool(AbsBool::Bot),
            Sort::Bv(w) => AbsValue::Bv(AbsBv::bottom(*w)),
            Sort::Mem { .. } => AbsValue::Mem,
        }
    }

    /// Abstracts a concrete value exactly.
    pub fn from_value(v: &Value) -> AbsValue {
        match v {
            Value::Bool(b) => AbsValue::Bool(AbsBool::from_bool(*b)),
            Value::Bv(bv) => AbsValue::Bv(AbsBv::from_const(bv)),
            Value::Mem(_) => AbsValue::Mem,
        }
    }

    /// γ-membership: is the concrete value described?
    pub fn contains(&self, v: &Value) -> bool {
        match (self, v) {
            (AbsValue::Bool(a), Value::Bool(b)) => a.contains(*b),
            (AbsValue::Bv(a), Value::Bv(b)) => a.contains(b),
            (AbsValue::Mem, Value::Mem(_)) => true,
            _ => false,
        }
    }

    /// True if this is an empty set (memories are never empty).
    pub fn is_bottom(&self) -> bool {
        match self {
            AbsValue::Bool(b) => *b == AbsBool::Bot,
            AbsValue::Bv(bv) => bv.is_bottom(),
            AbsValue::Mem => false,
        }
    }

    /// The exact concrete value, if the set is a singleton.
    pub fn as_exact(&self) -> Option<Value> {
        match self {
            AbsValue::Bool(b) => b.as_const().map(Value::Bool),
            AbsValue::Bv(bv) => bv.as_const().map(|c| Value::Bv(c.clone())),
            AbsValue::Mem => None,
        }
    }

    /// Least upper bound.
    ///
    /// # Panics
    ///
    /// Panics if the sorts differ.
    pub fn join(&self, other: &AbsValue) -> AbsValue {
        match (self, other) {
            (AbsValue::Bool(a), AbsValue::Bool(b)) => AbsValue::Bool(a.join(*b)),
            (AbsValue::Bv(a), AbsValue::Bv(b)) => AbsValue::Bv(a.join(b)),
            (AbsValue::Mem, AbsValue::Mem) => AbsValue::Mem,
            _ => panic!("join across sorts"),
        }
    }

    /// Greatest lower bound.
    ///
    /// # Panics
    ///
    /// Panics if the sorts differ.
    pub fn meet(&self, other: &AbsValue) -> AbsValue {
        match (self, other) {
            (AbsValue::Bool(a), AbsValue::Bool(b)) => AbsValue::Bool(a.meet(*b)),
            (AbsValue::Bv(a), AbsValue::Bv(b)) => AbsValue::Bv(a.meet(b)),
            (AbsValue::Mem, AbsValue::Mem) => AbsValue::Mem,
            _ => panic!("meet across sorts"),
        }
    }

    /// Widening: `self ∇ other`.
    ///
    /// # Panics
    ///
    /// Panics if the sorts differ.
    pub fn widen(&self, other: &AbsValue) -> AbsValue {
        match (self, other) {
            (AbsValue::Bool(a), AbsValue::Bool(b)) => AbsValue::Bool(a.widen(*b)),
            (AbsValue::Bv(a), AbsValue::Bv(b)) => AbsValue::Bv(a.widen(b)),
            (AbsValue::Mem, AbsValue::Mem) => AbsValue::Mem,
            _ => panic!("widen across sorts"),
        }
    }

    /// Partial-order test: does `self` describe every value `other` does?
    pub fn includes(&self, other: &AbsValue) -> bool {
        match (self, other) {
            (AbsValue::Bool(a), AbsValue::Bool(b)) => a.join(*b) == *a,
            (AbsValue::Bv(a), AbsValue::Bv(b)) => a.includes(b),
            (AbsValue::Mem, AbsValue::Mem) => true,
            _ => false,
        }
    }

    fn as_abool(&self) -> AbsBool {
        match self {
            AbsValue::Bool(b) => *b,
            _ => panic!("expected abstract boolean"),
        }
    }

    fn as_abv(&self) -> &AbsBv {
        match self {
            AbsValue::Bv(bv) => bv,
            _ => panic!("expected abstract bit-vector"),
        }
    }
}

/// An abstract variable assignment for [`abs_eval`].
///
/// Unlike the concrete [`crate::Env`], unbound variables do not fail
/// evaluation: they evaluate to the top element of their sort, which is
/// the sound "no information" default for fixpoint analyses.
#[derive(Clone, Debug, Default)]
pub struct AbsEnv {
    bindings: HashMap<ExprRef, AbsValue>,
}

impl AbsEnv {
    /// Creates an empty abstract assignment (every variable is top).
    pub fn new() -> AbsEnv {
        AbsEnv::default()
    }

    /// Binds a variable handle to an abstract value.
    pub fn bind(&mut self, var: ExprRef, value: AbsValue) {
        self.bindings.insert(var, value);
    }

    /// Looks up a binding.
    pub fn get(&self, var: ExprRef) -> Option<&AbsValue> {
        self.bindings.get(&var)
    }

    /// Iterates over all bindings.
    pub fn iter(&self) -> impl Iterator<Item = (ExprRef, &AbsValue)> {
        self.bindings.iter().map(|(k, v)| (*k, v))
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// True if no variables are bound.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// Abstracts a concrete environment exactly.
    pub fn from_env(env: &crate::Env) -> AbsEnv {
        AbsEnv {
            bindings: env
                .iter()
                .map(|(k, v)| (k, AbsValue::from_value(v)))
                .collect(),
        }
    }
}

impl FromIterator<(ExprRef, AbsValue)> for AbsEnv {
    fn from_iter<I: IntoIterator<Item = (ExprRef, AbsValue)>>(iter: I) -> Self {
        AbsEnv {
            bindings: iter.into_iter().collect(),
        }
    }
}

/// Abstractly evaluates `root` under `env`.
///
/// Mirrors [`crate::eval`] over the abstract domains; see the module
/// docs for the over-approximation contract. Never fails: unbound
/// variables are top, and imprecise operators degrade to top.
pub fn abs_eval(ctx: &ExprCtx, root: ExprRef, env: &AbsEnv) -> AbsValue {
    abs_eval_nodes(ctx, &[root], env)
        .remove(&root)
        .expect("root evaluated")
}

/// Abstractly evaluates every node reachable from `roots`, returning
/// the per-node abstract values.
///
/// This is the bulk interface used by fixpoint engines and lint passes
/// that need sub-expression values (e.g. truncation analysis), sharing
/// one traversal and memo table across all roots.
pub fn abs_eval_nodes(
    ctx: &ExprCtx,
    roots: &[ExprRef],
    env: &AbsEnv,
) -> HashMap<ExprRef, AbsValue> {
    let order = ctx.post_order(roots);
    let mut memo: HashMap<ExprRef, AbsValue> = HashMap::with_capacity(order.len());
    for e in order {
        let value = match ctx.node(e) {
            ExprNode::BoolConst(b) => AbsValue::Bool(AbsBool::from_bool(*b)),
            ExprNode::BvConst(v) => AbsValue::Bv(AbsBv::from_const(v)),
            ExprNode::MemConst(_) => AbsValue::Mem,
            ExprNode::Var { sort, .. } => match env.get(e) {
                Some(v) => v.clone(),
                None => AbsValue::top_of(sort),
            },
            ExprNode::App { op, args, .. } => {
                let argv: Vec<&AbsValue> = args.iter().map(|a| &memo[a]).collect();
                abs_apply(*op, &argv, &ctx.sort_of(e))
            }
        };
        memo.insert(e, value);
    }
    memo
}

/// Abstract semantics of one operator application.
///
/// `result` is the sort of the application (needed for e.g. the width
/// of a memory read). When every argument is a singleton the concrete
/// [`crate::eval`] semantics are used, so the abstract evaluator agrees
/// with the interpreter on constants by construction.
pub fn abs_apply(op: Op, args: &[&AbsValue], result: &Sort) -> AbsValue {
    use Op::*;
    // Strictness: an unreachable argument makes the result unreachable.
    // Ite is the exception — a decided condition ignores one branch.
    if op != Ite && args.iter().any(|a| a.is_bottom()) {
        return AbsValue::bottom_of(result);
    }
    if op == Ite {
        return match args[0].as_abool() {
            AbsBool::Bot => AbsValue::bottom_of(result),
            AbsBool::True => args[1].clone(),
            AbsBool::False => args[2].clone(),
            AbsBool::Top => {
                if args[1].is_bottom() {
                    args[2].clone()
                } else if args[2].is_bottom() {
                    args[1].clone()
                } else {
                    args[1].join(args[2])
                }
            }
        };
    }
    // Singleton arguments: defer to the concrete semantics.
    if let Some(vals) = args.iter().map(|a| a.as_exact()).collect::<Option<Vec<_>>>() {
        let refs: Vec<&Value> = vals.iter().collect();
        return AbsValue::from_value(&crate::eval::apply(op, &refs));
    }
    match op {
        Not => AbsValue::Bool(args[0].as_abool().not()),
        And => AbsValue::Bool(args[0].as_abool().and(args[1].as_abool())),
        Or => AbsValue::Bool(args[0].as_abool().or(args[1].as_abool())),
        Xor => AbsValue::Bool(abs_xor(args[0].as_abool(), args[1].as_abool())),
        Implies => AbsValue::Bool(args[0].as_abool().not().or(args[1].as_abool())),
        Iff => AbsValue::Bool(abs_xor(args[0].as_abool(), args[1].as_abool()).not()),
        Eq => AbsValue::Bool(abs_eq(args[0], args[1])),
        Ite => unreachable!("handled above"),
        BvNot => {
            let a = args[0].as_abv();
            AbsValue::Bv(
                AbsBv {
                    width: a.width,
                    known_zero: a.known_one.clone(),
                    known_one: a.known_zero.clone(),
                    lo: a.hi.not(),
                    hi: a.lo.not(),
                    flat: Flat::Top,
                }
                .reduce(),
            )
        }
        BvNeg => AbsValue::Bv(abs_neg(args[0].as_abv())),
        BvAnd => {
            let (a, b) = (args[0].as_abv(), args[1].as_abv());
            AbsValue::Bv(AbsBv::from_masks(
                &a.known_zero.or(&b.known_zero),
                &a.known_one.and(&b.known_one),
            ))
        }
        BvOr => {
            let (a, b) = (args[0].as_abv(), args[1].as_abv());
            AbsValue::Bv(AbsBv::from_masks(
                &a.known_zero.and(&b.known_zero),
                &a.known_one.or(&b.known_one),
            ))
        }
        BvXor => {
            let (a, b) = (args[0].as_abv(), args[1].as_abv());
            AbsValue::Bv(AbsBv::from_masks(
                &a.known_zero.and(&b.known_zero).or(&a.known_one.and(&b.known_one)),
                &a.known_zero.and(&b.known_one).or(&a.known_one.and(&b.known_zero)),
            ))
        }
        BvAdd => AbsValue::Bv(abs_add(args[0].as_abv(), args[1].as_abv())),
        BvSub => AbsValue::Bv(abs_sub(args[0].as_abv(), args[1].as_abv())),
        BvMul => AbsValue::Bv(abs_mul(args[0].as_abv(), args[1].as_abv())),
        BvUdiv => AbsValue::Bv(abs_udiv(args[0].as_abv(), args[1].as_abv())),
        BvUrem => AbsValue::Bv(abs_urem(args[0].as_abv(), args[1].as_abv())),
        BvShl => AbsValue::Bv(abs_shl(args[0].as_abv(), args[1].as_abv())),
        BvLshr => AbsValue::Bv(abs_lshr(args[0].as_abv(), args[1].as_abv())),
        BvAshr => AbsValue::Bv(abs_ashr(args[0].as_abv(), args[1].as_abv())),
        BvConcat => {
            let (a, b) = (args[0].as_abv(), args[1].as_abv());
            AbsValue::Bv(AbsBv::from_masks(
                &a.known_zero.concat(&b.known_zero),
                &a.known_one.concat(&b.known_one),
            ))
        }
        BvExtract { hi, lo } => {
            let a = args[0].as_abv();
            AbsValue::Bv(AbsBv::from_masks(
                &a.known_zero.extract(hi, lo),
                &a.known_one.extract(hi, lo),
            ))
        }
        BvZext { to } => {
            let a = args[0].as_abv();
            // The extension bits are known zero: extend the known-zero
            // mask with ones and the known-one mask with zeros.
            let kz = a.known_zero.not().zext(to).not();
            AbsValue::Bv(
                AbsBv {
                    width: to,
                    known_zero: kz,
                    known_one: a.known_one.zext(to),
                    lo: a.lo.zext(to),
                    hi: a.hi.zext(to),
                    flat: Flat::Top,
                }
                .reduce(),
            )
        }
        BvSext { to } => {
            let a = args[0].as_abv();
            // sext replicates each mask's top bit, which is set exactly
            // when the sign bit is known on that side.
            AbsValue::Bv(AbsBv::from_masks(
                &a.known_zero.sext(to),
                &a.known_one.sext(to),
            ))
        }
        BvUlt => AbsValue::Bool(abs_ult(args[0].as_abv(), args[1].as_abv())),
        BvUle => AbsValue::Bool(abs_ule(args[0].as_abv(), args[1].as_abv())),
        BvSlt | BvSle => AbsValue::Bool(AbsBool::Top),
        MemRead => AbsValue::top_of(result),
        MemWrite => AbsValue::Mem,
        BoolToBv => AbsValue::Bv(AbsBv::top(1)),
    }
}

fn abs_xor(a: AbsBool, b: AbsBool) -> AbsBool {
    match (a.as_const(), b.as_const()) {
        (Some(x), Some(y)) => AbsBool::from_bool(x ^ y),
        _ => {
            if a == AbsBool::Bot || b == AbsBool::Bot {
                AbsBool::Bot
            } else {
                AbsBool::Top
            }
        }
    }
}

fn abs_eq(a: &AbsValue, b: &AbsValue) -> AbsBool {
    match (a, b) {
        (AbsValue::Bool(x), AbsValue::Bool(y)) => match (x.as_const(), y.as_const()) {
            (Some(p), Some(q)) => AbsBool::from_bool(p == q),
            _ => AbsBool::Top,
        },
        (AbsValue::Bv(x), AbsValue::Bv(y)) => {
            if let (Some(p), Some(q)) = (x.as_const(), y.as_const()) {
                AbsBool::from_bool(p == q)
            } else if x.meet(y).is_bottom() {
                // Disjoint sets: the operands can never be equal.
                AbsBool::False
            } else {
                AbsBool::Top
            }
        }
        _ => AbsBool::Top,
    }
}

fn abs_neg(a: &AbsBv) -> AbsBv {
    // -x = 2^w - x for x != 0; monotone decreasing away from zero.
    if !a.lo.is_zero() {
        AbsBv::from_range(&a.hi.neg(), &a.lo.neg())
    } else {
        AbsBv::top(a.width)
    }
}

fn abs_add(a: &AbsBv, b: &AbsBv) -> AbsBv {
    let hi = a.hi.add(&b.hi);
    // Unsigned wrap check: a single add overflowed iff the sum dropped
    // below either operand. lo cannot overflow if hi did not.
    if hi.ult(&a.hi) {
        AbsBv::top(a.width)
    } else {
        AbsBv::from_range(&a.lo.add(&b.lo), &hi)
    }
}

fn abs_sub(a: &AbsBv, b: &AbsBv) -> AbsBv {
    if b.hi.ule(&a.lo) {
        AbsBv::from_range(&a.lo.sub(&b.hi), &a.hi.sub(&b.lo))
    } else {
        AbsBv::top(a.width)
    }
}

fn abs_mul(a: &AbsBv, b: &AbsBv) -> AbsBv {
    // No overflow possible when the operands' significant bits fit the
    // width: (2^p - 1)(2^q - 1) < 2^(p+q).
    if sig_bits(&a.hi) + sig_bits(&b.hi) <= a.width {
        AbsBv::from_range(&a.lo.mul(&b.lo), &a.hi.mul(&b.hi))
    } else {
        AbsBv::top(a.width)
    }
}

fn abs_udiv(a: &AbsBv, b: &AbsBv) -> AbsBv {
    if !b.lo.is_zero() {
        AbsBv::from_range(&a.lo.udiv(&b.hi), &a.hi.udiv(&b.lo))
    } else {
        // The divisor may be zero and x/0 = ones; give up.
        AbsBv::top(a.width)
    }
}

fn abs_urem(a: &AbsBv, b: &AbsBv) -> AbsBv {
    // x % y <= x always (y = 0 yields x, y > x yields x, else < y).
    let mut hi = a.hi.clone();
    if !b.lo.is_zero() {
        hi = umin(&hi, &b.hi.sub(&BitVecValue::one(b.width)));
    }
    AbsBv::from_range(&BitVecValue::zero(a.width), &hi)
}

fn abs_shl(a: &AbsBv, b: &AbsBv) -> AbsBv {
    match b.as_const().map(|s| s.try_to_u64().unwrap_or(u64::MAX)) {
        Some(s) if s < a.width as u64 => {
            let s = s as u32;
            AbsBv::from_masks(
                &mask_shl(&a.known_zero, s, true),
                &mask_shl(&a.known_one, s, false),
            )
        }
        Some(_) => AbsBv::from_const(&BitVecValue::zero(a.width)),
        None => AbsBv::top(a.width),
    }
}

fn abs_lshr(a: &AbsBv, b: &AbsBv) -> AbsBv {
    match b.as_const().map(|s| s.try_to_u64().unwrap_or(u64::MAX)) {
        Some(s) if s < a.width as u64 => {
            let s = s as u32;
            AbsBv::from_masks(
                &mask_lshr(&a.known_zero, s, true),
                &mask_lshr(&a.known_one, s, false),
            )
        }
        Some(_) => AbsBv::from_const(&BitVecValue::zero(a.width)),
        // Unknown shift: x >> s <= x, and an over-shift yields zero.
        None => AbsBv::from_range(&BitVecValue::zero(a.width), &a.hi),
    }
}

fn abs_ashr(a: &AbsBv, b: &AbsBv) -> AbsBv {
    match b.as_const().map(|s| s.try_to_u64().unwrap_or(u64::MAX)) {
        Some(s) => {
            // An over-shift fills with the sign bit, which equals a
            // shift by width-1 for any width >= 1.
            let s = (s.min(a.width as u64 - 1)) as u32;
            // Shifting each mask right and filling with its own top
            // bit replicates the result's sign bits exactly when the
            // operand's sign is known on that side.
            AbsBv::from_masks(
                &mask_lshr(&a.known_zero, s, a.known_zero.bit(a.width - 1)),
                &mask_lshr(&a.known_one, s, a.known_one.bit(a.width - 1)),
            )
        }
        None => {
            if a.known_zero.bit(a.width - 1) {
                // Sign known zero: behaves like a logical shift.
                AbsBv::from_range(&BitVecValue::zero(a.width), &a.hi)
            } else {
                AbsBv::top(a.width)
            }
        }
    }
}

fn abs_ult(a: &AbsBv, b: &AbsBv) -> AbsBool {
    if a.hi.ult(&b.lo) {
        AbsBool::True
    } else if b.hi.ule(&a.lo) {
        AbsBool::False
    } else {
        AbsBool::Top
    }
}

fn abs_ule(a: &AbsBv, b: &AbsBv) -> AbsBool {
    if a.hi.ule(&b.lo) {
        AbsBool::True
    } else if b.hi.ult(&a.lo) {
        AbsBool::False
    } else {
        AbsBool::Top
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{eval, Env, Sort};

    fn bv(x: u64, w: u32) -> BitVecValue {
        BitVecValue::from_u64(x, w)
    }

    #[test]
    fn reduce_singleton_interval_becomes_const() {
        let a = AbsBv::from_range(&bv(7, 8), &bv(7, 8));
        assert_eq!(a.as_const(), Some(&bv(7, 8)));
    }

    #[test]
    fn reduce_leading_bits_from_interval() {
        // [0x40, 0x43]: the top six bits agree.
        let a = AbsBv::from_range(&bv(0x40, 8), &bv(0x43, 8));
        assert_eq!(a.known_one(), &bv(0x40, 8));
        assert_eq!(a.known_zero(), &bv(0xBC, 8));
        assert!(a.contains(&bv(0x41, 8)));
        assert!(!a.contains(&bv(0x44, 8)));
    }

    #[test]
    fn masks_clamp_interval() {
        // Bit 0 known one: lo rises to 1.
        let a = AbsBv::from_masks(&bv(0, 8), &bv(1, 8));
        assert_eq!(a.lo(), &bv(1, 8));
        assert!(!a.contains(&bv(2, 8)));
        assert!(a.contains(&bv(3, 8)));
    }

    #[test]
    fn meet_of_disjoint_is_bottom() {
        let a = AbsBv::from_range(&bv(0, 8), &bv(3, 8));
        let b = AbsBv::from_range(&bv(4, 8), &bv(9, 8));
        assert!(a.meet(&b).is_bottom());
        assert!(!a.join(&b).is_bottom());
    }

    #[test]
    fn widen_jumps_to_extremes() {
        let a = AbsBv::from_range(&bv(2, 8), &bv(5, 8));
        let b = AbsBv::from_range(&bv(2, 8), &bv(6, 8));
        let w = a.widen(&b);
        assert_eq!(w.lo(), &bv(2, 8));
        // The interval jumps toward the extreme but the reduction
        // clamps it back under the surviving known-zero bits.
        assert_eq!(w.hi(), &bv(7, 8));
        // Stable input stays put.
        assert_eq!(w.widen(&b), w);
    }

    #[test]
    fn abs_eval_tracks_concrete_on_arith() {
        let mut ctx = ExprCtx::new();
        let x = ctx.var("x", Sort::Bv(8));
        let three = ctx.bv_u64(3, 8);
        let e = ctx.bvadd(x, three);
        let mut aenv = AbsEnv::new();
        aenv.bind(x, AbsValue::Bv(AbsBv::from_range(&bv(0, 8), &bv(10, 8))));
        let out = abs_eval(&ctx, e, &aenv);
        let mut env = Env::new();
        for v in 0..=10u64 {
            env.bind_u64(&ctx, "x", v);
            assert!(out.contains(&eval(&ctx, e, &env).unwrap()));
        }
        match &out {
            AbsValue::Bv(b) => {
                assert_eq!(b.lo(), &bv(3, 8));
                assert_eq!(b.hi(), &bv(13, 8));
            }
            other => panic!("expected bv, got {other:?}"),
        }
    }

    #[test]
    fn abs_eval_decides_comparison() {
        let mut ctx = ExprCtx::new();
        let x = ctx.var("x", Sort::Bv(8));
        let lim = ctx.bv_u64(100, 8);
        let e = ctx.ult(x, lim);
        let mut aenv = AbsEnv::new();
        aenv.bind(x, AbsValue::Bv(AbsBv::from_range(&bv(0, 8), &bv(20, 8))));
        assert_eq!(abs_eval(&ctx, e, &aenv), AbsValue::Bool(AbsBool::True));
        aenv.bind(x, AbsValue::Bv(AbsBv::from_range(&bv(100, 8), &bv(200, 8))));
        assert_eq!(abs_eval(&ctx, e, &aenv), AbsValue::Bool(AbsBool::False));
    }

    #[test]
    fn bottom_propagates_through_apps() {
        let mut ctx = ExprCtx::new();
        let x = ctx.var("x", Sort::Bv(8));
        let y = ctx.var("y", Sort::Bv(8));
        let e = ctx.bvadd(x, y);
        let mut aenv = AbsEnv::new();
        aenv.bind(x, AbsValue::Bv(AbsBv::bottom(8)));
        assert!(abs_eval(&ctx, e, &aenv).is_bottom());
    }

    #[test]
    fn unbound_vars_are_top() {
        let mut ctx = ExprCtx::new();
        let x = ctx.var("x", Sort::Bv(4));
        let v = abs_eval(&ctx, x, &AbsEnv::new());
        for i in 0..16u64 {
            assert!(v.contains(&Value::Bv(bv(i, 4))));
        }
    }
}
