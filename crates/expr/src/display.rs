//! Human-readable printing of expressions in an S-expression style.

use std::fmt;

use crate::ctx::{ExprCtx, ExprNode, ExprRef, Op};

/// A displayable view of an expression; created via [`ExprCtx::display`].
pub struct ExprDisplay<'a> {
    ctx: &'a ExprCtx,
    root: ExprRef,
}

impl ExprCtx {
    /// Returns a value that renders the expression as an S-expression.
    ///
    /// # Examples
    ///
    /// ```
    /// use gila_expr::{ExprCtx, Sort};
    ///
    /// let mut ctx = ExprCtx::new();
    /// let x = ctx.var("x", Sort::Bv(8));
    /// let one = ctx.bv_u64(1, 8);
    /// let e = ctx.bvadd(x, one);
    /// assert_eq!(ctx.display(e).to_string(), "(bvadd x 8'h01)");
    /// ```
    pub fn display(&self, root: ExprRef) -> ExprDisplay<'_> {
        ExprDisplay { ctx: self, root }
    }
}

fn op_name(op: Op) -> String {
    match op {
        Op::Not => "not".into(),
        Op::And => "and".into(),
        Op::Or => "or".into(),
        Op::Xor => "xor".into(),
        Op::Implies => "=>".into(),
        Op::Iff => "<=>".into(),
        Op::Ite => "ite".into(),
        Op::Eq => "=".into(),
        Op::BvNot => "bvnot".into(),
        Op::BvNeg => "bvneg".into(),
        Op::BvAnd => "bvand".into(),
        Op::BvOr => "bvor".into(),
        Op::BvXor => "bvxor".into(),
        Op::BvAdd => "bvadd".into(),
        Op::BvSub => "bvsub".into(),
        Op::BvMul => "bvmul".into(),
        Op::BvUdiv => "bvudiv".into(),
        Op::BvUrem => "bvurem".into(),
        Op::BvShl => "bvshl".into(),
        Op::BvLshr => "bvlshr".into(),
        Op::BvAshr => "bvashr".into(),
        Op::BvConcat => "concat".into(),
        Op::BvExtract { hi, lo } => format!("extract[{hi}:{lo}]"),
        Op::BvZext { to } => format!("zext[{to}]"),
        Op::BvSext { to } => format!("sext[{to}]"),
        Op::BvUlt => "bvult".into(),
        Op::BvUle => "bvule".into(),
        Op::BvSlt => "bvslt".into(),
        Op::BvSle => "bvsle".into(),
        Op::MemRead => "read".into(),
        Op::MemWrite => "write".into(),
        Op::BoolToBv => "bool2bv".into(),
    }
}

impl fmt::Display for ExprDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Iterative rendering with an explicit work stack to stay safe on
        // deep expressions.
        enum Work {
            Open(ExprRef),
            Text(&'static str),
        }
        let mut stack = vec![Work::Open(self.root)];
        while let Some(w) = stack.pop() {
            match w {
                Work::Text(t) => f.write_str(t)?,
                Work::Open(e) => match self.ctx.node(e) {
                    ExprNode::BoolConst(b) => write!(f, "{b}")?,
                    ExprNode::BvConst(v) => write!(f, "{v}")?,
                    ExprNode::MemConst(m) => write!(
                        f,
                        "(mem[{}->{}] default {})",
                        m.addr_width(),
                        m.data_width(),
                        m.default_word()
                    )?,
                    ExprNode::Var { name, .. } => f.write_str(name)?,
                    ExprNode::App { op, args, .. } => {
                        write!(f, "({}", op_name(*op))?;
                        stack.push(Work::Text(")"));
                        for &a in args.iter().rev() {
                            stack.push(Work::Open(a));
                            stack.push(Work::Text(" "));
                        }
                    }
                },
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sort;

    #[test]
    fn renders_nested() {
        let mut ctx = ExprCtx::new();
        let x = ctx.var("x", Sort::Bv(4));
        let y = ctx.var("y", Sort::Bv(4));
        let p = ctx.var("p", Sort::Bool);
        let s = ctx.bvadd(x, y);
        let e = ctx.ite(p, s, x);
        assert_eq!(ctx.display(e).to_string(), "(ite p (bvadd x y) x)");
    }

    #[test]
    fn renders_extract() {
        let mut ctx = ExprCtx::new();
        let x = ctx.var("x", Sort::Bv(8));
        let e = ctx.extract(x, 7, 4);
        assert_eq!(ctx.display(e).to_string(), "(extract[7:4] x)");
    }
}
