//! SMT-LIB 2 export: render expressions as scripts an external solver
//! (Z3, CVC5, Bitwuzla, ...) can check, for cross-validation of the
//! built-in decision procedure.

use std::collections::HashSet;
use std::fmt::Write as _;

use crate::ctx::{ExprCtx, ExprNode, ExprRef, Op};
use crate::Sort;

fn sort_to_smtlib(sort: Sort) -> String {
    match sort {
        Sort::Bool => "Bool".to_string(),
        Sort::Bv(w) => format!("(_ BitVec {w})"),
        Sort::Mem {
            addr_width,
            data_width,
        } => format!("(Array (_ BitVec {addr_width}) (_ BitVec {data_width}))"),
    }
}

/// Quotes identifiers that are not plain SMT-LIB symbols.
fn symbol(name: &str) -> String {
    // '@' and '.' are reserved for solver-internal names, so quote them
    // even though the grammar technically allows them in simple symbols.
    let plain = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || "~!$%^&*_-+=<>?/".contains(c))
        && !name.chars().next().expect("non-empty").is_ascii_digit();
    if plain {
        name.to_string()
    } else {
        format!("|{name}|")
    }
}

/// Renders one expression as an SMT-LIB term (no declarations).
///
/// # Examples
///
/// ```
/// use gila_expr::{to_smtlib_term, ExprCtx, Sort};
///
/// let mut ctx = ExprCtx::new();
/// let x = ctx.var("x", Sort::Bv(8));
/// let one = ctx.bv_u64(1, 8);
/// let e = ctx.bvadd(x, one);
/// assert_eq!(to_smtlib_term(&ctx, e), "(bvadd x #x01)");
/// ```
pub fn to_smtlib_term(ctx: &ExprCtx, root: ExprRef) -> String {
    let mut out = String::new();
    render(ctx, root, &mut out);
    out
}

fn render(ctx: &ExprCtx, e: ExprRef, out: &mut String) {
    // Iterative rendering with an explicit stack (deep DAGs are common).
    enum Work {
        Open(ExprRef),
        Text(String),
    }
    let mut stack = vec![Work::Open(e)];
    while let Some(w) = stack.pop() {
        match w {
            Work::Text(t) => out.push_str(&t),
            Work::Open(e) => match ctx.node(e) {
                ExprNode::BoolConst(b) => {
                    let _ = write!(out, "{b}");
                }
                ExprNode::BvConst(v) => {
                    if v.width() % 4 == 0 {
                        let _ = write!(out, "#x{v:x}");
                    } else {
                        let _ = write!(out, "#b{v:b}");
                    }
                }
                ExprNode::MemConst(m) => {
                    // ((as const (Array ...)) default) with nested stores.
                    let sort = ctx.sort_of(e);
                    let mut term = format!(
                        "((as const {}) {})",
                        sort_to_smtlib(sort),
                        bv_literal(m.default_word())
                    );
                    for (addr, word) in m.iter_written() {
                        let a = crate::BitVecValue::from_u64(addr, m.addr_width());
                        term = format!("(store {term} {} {})", bv_literal(&a), bv_literal(word));
                    }
                    out.push_str(&term);
                }
                ExprNode::Var { name, .. } => out.push_str(&symbol(name)),
                ExprNode::App { op, args, .. } => {
                    let head = match op {
                        Op::Not => "not".to_string(),
                        Op::And => "and".to_string(),
                        Op::Or => "or".to_string(),
                        Op::Xor => "xor".to_string(),
                        Op::Implies => "=>".to_string(),
                        Op::Iff => "=".to_string(),
                        Op::Ite => "ite".to_string(),
                        Op::Eq => "=".to_string(),
                        Op::BvNot => "bvnot".to_string(),
                        Op::BvNeg => "bvneg".to_string(),
                        Op::BvAnd => "bvand".to_string(),
                        Op::BvOr => "bvor".to_string(),
                        Op::BvXor => "bvxor".to_string(),
                        Op::BvAdd => "bvadd".to_string(),
                        Op::BvSub => "bvsub".to_string(),
                        Op::BvMul => "bvmul".to_string(),
                        Op::BvUdiv => "bvudiv".to_string(),
                        Op::BvUrem => "bvurem".to_string(),
                        Op::BvShl => "bvshl".to_string(),
                        Op::BvLshr => "bvlshr".to_string(),
                        Op::BvAshr => "bvashr".to_string(),
                        Op::BvConcat => "concat".to_string(),
                        Op::BvExtract { hi, lo } => format!("(_ extract {hi} {lo})"),
                        Op::BvZext { to } => {
                            let w = ctx.sort_of(args[0]).bv_width().expect("bv");
                            format!("(_ zero_extend {})", to - w)
                        }
                        Op::BvSext { to } => {
                            let w = ctx.sort_of(args[0]).bv_width().expect("bv");
                            format!("(_ sign_extend {})", to - w)
                        }
                        Op::BvUlt => "bvult".to_string(),
                        Op::BvUle => "bvule".to_string(),
                        Op::BvSlt => "bvslt".to_string(),
                        Op::BvSle => "bvsle".to_string(),
                        Op::MemRead => "select".to_string(),
                        Op::MemWrite => "store".to_string(),
                        Op::BoolToBv => {
                            // (ite b #b1 #b0)
                            out.push_str("(ite ");
                            stack.push(Work::Text(" #b1 #b0)".to_string()));
                            stack.push(Work::Open(args[0]));
                            continue;
                        }
                    };
                    let _ = write!(out, "({head}");
                    stack.push(Work::Text(")".to_string()));
                    for &a in args.iter().rev() {
                        stack.push(Work::Open(a));
                        stack.push(Work::Text(" ".to_string()));
                    }
                }
            },
        }
    }
}

fn bv_literal(v: &crate::BitVecValue) -> String {
    if v.width().is_multiple_of(4) {
        format!("#x{v:x}")
    } else {
        format!("#b{v:b}")
    }
}

/// Renders a complete SMT-LIB 2 script asserting the given boolean
/// expressions: logic declaration, one `declare-const` per free
/// variable, the assertions, and `(check-sat)`.
///
/// # Panics
///
/// Panics if any assertion is not boolean-sorted.
///
/// # Examples
///
/// ```
/// use gila_expr::{to_smtlib_script, ExprCtx, Sort};
///
/// let mut ctx = ExprCtx::new();
/// let x = ctx.var("x", Sort::Bv(8));
/// let c = ctx.bv_u64(200, 8);
/// let a = ctx.ugt(x, c);
/// let script = to_smtlib_script(&ctx, &[a]);
/// assert!(script.contains("(declare-const x (_ BitVec 8))"));
/// assert!(script.contains("(check-sat)"));
/// ```
pub fn to_smtlib_script(ctx: &ExprCtx, assertions: &[ExprRef]) -> String {
    for &a in assertions {
        assert!(
            ctx.sort_of(a).is_bool(),
            "assertions must be boolean, got {}",
            ctx.sort_of(a)
        );
    }
    let mut out = String::new();
    let uses_arrays = ctx
        .post_order(assertions)
        .iter()
        .any(|&e| ctx.sort_of(e).is_mem());
    let logic = if uses_arrays { "QF_ABV" } else { "QF_BV" };
    let _ = writeln!(out, "(set-logic {logic})");
    let mut seen: HashSet<String> = HashSet::new();
    for v in ctx.vars_of(assertions) {
        let name = ctx.var_name(v).expect("var node").to_string();
        if seen.insert(name.clone()) {
            let _ = writeln!(
                out,
                "(declare-const {} {})",
                symbol(&name),
                sort_to_smtlib(ctx.sort_of(v))
            );
        }
    }
    for &a in assertions {
        let _ = writeln!(out, "(assert {})", to_smtlib_term(ctx, a));
    }
    out.push_str("(check-sat)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terms_render() {
        let mut ctx = ExprCtx::new();
        let x = ctx.var("x", Sort::Bv(8));
        let y = ctx.var("y", Sort::Bv(8));
        let s = ctx.bvadd(x, y);
        let c = ctx.bv_u64(0xAB, 8);
        let e = ctx.eq(s, c);
        assert_eq!(to_smtlib_term(&ctx, e), "(= (bvadd x y) #xab)");
        let ext = ctx.extract(x, 7, 4);
        assert_eq!(to_smtlib_term(&ctx, ext), "((_ extract 7 4) x)");
        let z = ctx.zext(x, 12);
        assert_eq!(to_smtlib_term(&ctx, z), "((_ zero_extend 4) x)");
        let odd = ctx.bv_u64(5, 3);
        assert_eq!(to_smtlib_term(&ctx, odd), "#b101");
    }

    #[test]
    fn memory_ops_render_as_arrays() {
        let mut ctx = ExprCtx::new();
        let m = ctx.var(
            "m",
            Sort::Mem {
                addr_width: 4,
                data_width: 8,
            },
        );
        let a = ctx.var("a", Sort::Bv(4));
        let d = ctx.var("d", Sort::Bv(8));
        let w = ctx.mem_write(m, a, d);
        let r = ctx.mem_read(w, a);
        assert_eq!(to_smtlib_term(&ctx, r), "(select (store m a d) a)");
    }

    #[test]
    fn script_declares_and_sets_logic() {
        let mut ctx = ExprCtx::new();
        let x = ctx.var("x", Sort::Bv(8));
        let p = ctx.var("p", Sort::Bool);
        let c = ctx.eq_u64(x, 3);
        let a = ctx.and(p, c);
        let script = to_smtlib_script(&ctx, &[a]);
        assert!(script.starts_with("(set-logic QF_BV)"));
        assert!(script.contains("(declare-const x (_ BitVec 8))"));
        assert!(script.contains("(declare-const p Bool)"));
        assert!(script.contains("(assert (and p (= x #x03)))"));
        assert!(script.ends_with("(check-sat)\n"));
    }

    #[test]
    fn arrays_switch_the_logic() {
        let mut ctx = ExprCtx::new();
        let m = ctx.var(
            "m",
            Sort::Mem {
                addr_width: 2,
                data_width: 4,
            },
        );
        let a = ctx.bv_u64(1, 2);
        let r = ctx.mem_read(m, a);
        let p = ctx.eq_u64(r, 0);
        let script = to_smtlib_script(&ctx, &[p]);
        assert!(script.starts_with("(set-logic QF_ABV)"));
        assert!(script.contains("(Array (_ BitVec 2) (_ BitVec 4))"));
    }

    #[test]
    fn odd_identifiers_are_quoted() {
        let mut ctx = ExprCtx::new();
        let v = ctx.var("cnt@0", Sort::Bv(4));
        let p = ctx.eq_u64(v, 1);
        let script = to_smtlib_script(&ctx, &[p]);
        assert!(script.contains("(declare-const |cnt@0| (_ BitVec 4))"));
    }

    #[test]
    fn bool_to_bv_renders_as_ite() {
        let mut ctx = ExprCtx::new();
        let p = ctx.var("p", Sort::Bool);
        let b = ctx.bool_to_bv(p);
        assert_eq!(to_smtlib_term(&ctx, b), "(ite p #b1 #b0)");
    }
}
