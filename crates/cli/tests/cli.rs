//! End-to-end tests of the `gila` binary: exit codes, output shape, and
//! the VCD side artifact.

use std::io::Write as _;
use std::process::Command;

struct Workspace {
    dir: std::path::PathBuf,
}

impl Workspace {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("gila_cli_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        Workspace { dir }
    }

    fn file(&self, name: &str, contents: &str) -> String {
        let path = self.dir.join(name);
        let mut f = std::fs::File::create(&path).expect("create");
        f.write_all(contents.as_bytes()).expect("write");
        path.to_string_lossy().into_owned()
    }

    fn path(&self, name: &str) -> String {
        self.dir.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for Workspace {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

const SPEC: &str = r#"
port counter {
  input en : bv1
  output state cnt : bv8 init 0

  instr inc when en == 1 { cnt := cnt + 1 }
  instr hold when en == 0 { }
}
"#;

const RTL_GOOD: &str = r#"
module counter(clk, en_in);
  input clk; input en_in;
  reg [7:0] count;
  always @(posedge clk) if (en_in) count <= count + 8'd1;
endmodule
"#;

const RTL_BAD: &str = r#"
module counter(clk, en_in);
  input clk; input en_in;
  reg [7:0] count;
  always @(posedge clk) if (en_in) count <= count + 8'd2;
endmodule
"#;

const MAP: &str = r#"
{
  "name": "counter",
  "state_map": { "cnt": "count" },
  "interface_map": { "en": "en_in" }
}
"#;

fn gila() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gila"))
}

#[test]
fn verify_succeeds_on_correct_rtl() {
    let ws = Workspace::new("ok");
    let out = gila()
        .args([
            "verify",
            "--ila",
            &ws.file("c.ila", SPEC),
            "--rtl",
            &ws.file("c.v", RTL_GOOD),
            "--map",
            &ws.file("m.json", MAP),
        ])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("HOLDS"));
    assert!(stdout.contains("the RTL refines the ILA"));
}

#[test]
fn verify_with_jobs_pool_succeeds_on_correct_rtl() {
    let ws = Workspace::new("jobs");
    let out = gila()
        .args([
            "verify",
            "--ila",
            &ws.file("c.ila", SPEC),
            "--rtl",
            &ws.file("c.v", RTL_GOOD),
            "--map",
            &ws.file("m.json", MAP),
            "--jobs",
            "4",
        ])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("HOLDS"));
    assert!(stdout.contains("the RTL refines the ILA"));
}

#[test]
fn verify_rejects_conflicting_options_with_exit_code_2() {
    let ws = Workspace::new("conflict");
    let spec = ws.file("c.ila", SPEC);
    let rtl = ws.file("c.v", RTL_GOOD);
    let map = ws.file("m.json", MAP);
    // Each conflicting pair must exit 2 and name both offending flags on
    // stderr, so the user knows exactly what to drop.
    for (extra, named) in [
        (
            ["--parallel", "--stop-at-first-cex"].as_slice(),
            ["parallel", "stop_at_first_cex"].as_slice(),
        ),
        (
            ["--parallel", "--incremental"].as_slice(),
            ["parallel", "incremental"].as_slice(),
        ),
        (
            ["--parallel", "--jobs", "4"].as_slice(),
            ["parallel", "jobs"].as_slice(),
        ),
        (
            ["--jobs", "4", "--incremental"].as_slice(),
            ["incremental", "jobs"].as_slice(),
        ),
    ] {
        let out = gila()
            .args(["verify", "--ila", &spec, "--rtl", &rtl, "--map", &map])
            .args(extra)
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "{extra:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("conflicting options"), "{stderr}");
        for flag in named {
            assert!(stderr.contains(flag), "{extra:?}: {flag} not named in {stderr}");
        }
    }
    // jobs = 1 with --incremental is NOT a conflict: a one-worker pool
    // degenerates to the shared sequential incremental engine.
    let out = gila()
        .args([
            "verify", "--ila", &spec, "--rtl", &rtl, "--map", &map, "--jobs", "1",
            "--incremental",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    // A malformed worker count is a usage error, not a crash.
    let out = gila()
        .args([
            "verify", "--ila", &spec, "--rtl", &rtl, "--map", &map, "--jobs", "many",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn verify_spec_self_check_writes_trace_and_stats() {
    let ws = Workspace::new("trace");
    let trace_path = ws.path("t.jsonl");
    // --spec with no --rtl/--map verifies the spec against its own
    // synthesized RTL; --trace dumps JSONL telemetry; --stats prints
    // the summary table.
    let out = gila()
        .args([
            "verify",
            "--spec",
            &ws.file("c.ila", SPEC),
            "--trace",
            &trace_path,
            "--stats",
        ])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("TELEMETRY"), "{stdout}");
    assert!(stdout.contains("TOTAL"), "{stdout}");
    let trace = std::fs::read_to_string(&trace_path).expect("trace written");
    // Every line is valid compact JSON with a kind, and both
    // instructions of the counter port got a span with solver counters.
    let mut instr_spans = 0;
    for line in trace.lines() {
        let v = gila_json::parse(line).unwrap_or_else(|e| {
            panic!("bad JSONL line {line:?}: {e}");
        });
        assert!(v.get("kind").is_some(), "{line}");
        if v.get("kind").and_then(|k| k.as_str()) == Some("instruction") {
            instr_spans += 1;
            assert!(v.get("solves").and_then(|s| s.as_u64()).unwrap() >= 1, "{line}");
            assert!(v.get("cnf_clauses").is_some(), "{line}");
        }
    }
    assert_eq!(instr_spans, 2, "one span per (port, instruction):\n{trace}");
}

#[test]
fn verify_fails_with_exit_code_1_and_writes_vcd() {
    let ws = Workspace::new("bad");
    let prefix = ws.path("bug");
    let out = gila()
        .args([
            "verify",
            "--ila",
            &ws.file("c.ila", SPEC),
            "--rtl",
            &ws.file("c.v", RTL_BAD),
            "--map",
            &ws.file("m.json", MAP),
            "--vcd",
            &prefix,
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FAILS (cnt)"), "{stdout}");
    let vcd = std::fs::read_to_string(format!("{prefix}_inc.vcd")).expect("vcd written");
    assert!(vcd.contains("$enddefinitions $end"));
}

#[test]
fn describe_and_props_print_the_model() {
    let ws = Workspace::new("desc");
    let spec = ws.file("c.ila", SPEC);
    let out = gila()
        .args(["describe", "--ila", &spec])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2 atomic instructions"));

    let out = gila()
        .args(["props", "--ila", &spec, "--map", &ws.file("m.json", MAP)])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ila.cnt == rtl.count"));
    assert!(stdout.contains("X^1"));
}

#[test]
fn synth_emits_verilog_that_verifies() {
    let ws = Workspace::new("synth");
    let spec = ws.file("c.ila", SPEC);
    let out_v = ws.path("out.v");
    let out = gila()
        .args(["synth", "--ila", &spec, "-o", &out_v])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    // The synthesized Verilog verifies against the spec with an
    // identity map (state/input names carry over).
    let id_map = ws.file(
        "id.json",
        r#"{ "name": "counter", "state_map": {"cnt": "cnt"}, "interface_map": {"en": "en"} }"#,
    );
    let out = gila()
        .args(["verify", "--ila", &spec, "--rtl", &out_v, "--map", &id_map])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stdout));
}

#[test]
fn check_inv_proves_and_refutes() {
    let ws = Workspace::new("inv");
    let rtl = ws.file("c.v", RTL_GOOD);
    // Trivially true invariant.
    let out = gila()
        .args(["check-inv", "--rtl", &rtl, "--invariant", "count >= 8'd0"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("PROVED"));
    // Refutable invariant (count reaches 3 after three enabled cycles).
    let out = gila()
        .args([
            "check-inv",
            "--rtl",
            &rtl,
            "--invariant",
            "count < 8'd3",
            "--depth",
            "4",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("REFUTED"));
}

#[test]
fn usage_errors_exit_2() {
    let out = gila().args(["verify"]).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let out = gila().args(["frobnicate"]).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn export_produces_btor2() {
    let ws = Workspace::new("btor");
    let rtl = ws.file("c.v", RTL_GOOD);
    let out_path = ws.path("c.btor2");
    let out = gila()
        .args([
            "export",
            "--rtl",
            &rtl,
            "--prop",
            "count < 8'd255",
            "-o",
            &out_path,
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let doc = std::fs::read_to_string(&out_path).expect("file written");
    assert!(doc.contains("sort bitvec 8"));
    assert!(doc.contains(" next "));
    assert!(doc.contains(" bad "));
}

#[test]
fn verify_undecided_exits_3() {
    // A zero wall-clock budget expires before any solve: every
    // instruction comes back UNKNOWN (deadline), exit code 3.
    let ws = Workspace::new("unknown");
    let out = gila()
        .args([
            "verify",
            "--ila",
            &ws.file("c.ila", SPEC),
            "--rtl",
            &ws.file("c.v", RTL_GOOD),
            "--map",
            &ws.file("m.json", MAP),
            "--timeout-ms",
            "0",
            "--retries",
            "0",
            "--stats",
        ])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(3), "{stdout}");
    assert!(stdout.contains("UNKNOWN (deadline"), "{stdout}");
    assert!(stdout.contains("RESULT: UNDECIDED"), "{stdout}");
    // The robustness telemetry line reports the unknowns.
    assert!(stdout.contains("unknown: 2"), "{stdout}");
}

#[test]
fn verify_panicked_job_exits_4_without_aborting() {
    // An injected panic in one job must not kill the process: the other
    // instruction still gets its verdict, and the run exits 4.
    let ws = Workspace::new("panic");
    for jobs in ["1", "4"] {
        let out = gila()
            .env("GILA_FAULT_PLAN", "panic:injected boom@counter/inc")
            .args([
                "verify",
                "--ila",
                &ws.file("c.ila", SPEC),
                "--rtl",
                &ws.file("c.v", RTL_GOOD),
                "--map",
                &ws.file("m.json", MAP),
                "--jobs",
                jobs,
            ])
            .output()
            .expect("binary runs");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert_eq!(out.status.code(), Some(4), "jobs={jobs}: {stdout}");
        assert!(stdout.contains("PANICKED (injected fault: injected boom"), "{stdout}");
        assert!(stdout.contains("HOLDS"), "jobs={jobs}: other job lost\n{stdout}");
        assert!(stdout.contains("RESULT: INTERNAL ERROR"), "{stdout}");
    }
    // A malformed plan is a usage error.
    let out = gila()
        .env("GILA_FAULT_PLAN", "explode@counter")
        .args(["verify", "--ila", &ws.file("c.ila", SPEC)])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("GILA_FAULT_PLAN"));
}

#[test]
fn verify_checkpoint_resume_round_trips() {
    let ws = Workspace::new("resume");
    let spec = ws.file("c.ila", SPEC);
    let rtl = ws.file("c.v", RTL_GOOD);
    let map = ws.file("m.json", MAP);
    let ckpt = ws.path("run.jsonl");
    // First run: force `inc` UNKNOWN once while checkpointing.
    let out = gila()
        .env("GILA_FAULT_PLAN", "unknown@counter/inc*1")
        .args([
            "verify", "--ila", &spec, "--rtl", &rtl, "--map", &map, "--checkpoint", &ckpt,
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(3), "{}", String::from_utf8_lossy(&out.stdout));
    let ckpt_text = std::fs::read_to_string(&ckpt).expect("checkpoint written");
    assert!(ckpt_text.lines().count() >= 2, "{ckpt_text}");
    for line in ckpt_text.lines() {
        gila_json::parse(line).unwrap_or_else(|e| panic!("bad checkpoint line {line:?}: {e}"));
    }
    // Resume: only `inc` is re-verified (now for real), `hold` replays.
    let out = gila()
        .args(["verify", "--ila", &spec, "--rtl", &rtl, "--map", &map, "--resume", &ckpt])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("the RTL refines the ILA"), "{stdout}");
}

#[test]
fn verify_budget_retries_converge() {
    // A 1-conflict budget with escalating retries still decides the
    // counter (it needs few conflicts), and bad flag values exit 2.
    let ws = Workspace::new("budget");
    let spec = ws.file("c.ila", SPEC);
    let rtl = ws.file("c.v", RTL_GOOD);
    let map = ws.file("m.json", MAP);
    let out = gila()
        .args([
            "verify", "--ila", &spec, "--rtl", &rtl, "--map", &map, "--conflict-budget",
            "1000000", "--retries", "3",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stdout));
    let out = gila()
        .args([
            "verify", "--ila", &spec, "--rtl", &rtl, "--map", &map, "--conflict-budget", "lots",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn sim_drives_both_specs_and_rtl() {
    let ws = Workspace::new("sim");
    let stim = ws.file("stim.txt", "en=1\nen=1\nen=0\n");
    let out = gila()
        .args(["sim", "--ila", &ws.file("c.ila", SPEC), "--stimulus", &stim])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cycle 0: [inc] cnt=Bv(8'h01)"), "{stdout}");
    assert!(stdout.contains("cycle 2: [hold] cnt=Bv(8'h02)"), "{stdout}");

    let stim = ws.file("stim2.txt", "en_in=1\n# comment\nen_in=0x01\n");
    let out = gila()
        .args(["sim", "--rtl", &ws.file("c.v", RTL_GOOD), "--stimulus", &stim])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("count=Bv(8'h02)"), "{stdout}");
}

/// `gila hunt` round-trip: a divergence found on the bug-injected AXI
/// Slave is written as a command stream, and feeding that stream back
/// through `gila hunt --replay` reproduces the same divergence (exit 1)
/// while the fixed RTL replays clean (exit 0).
#[test]
fn hunt_command_stream_round_trips_through_replay() {
    let ws = Workspace::new("hunt");
    let out = gila()
        .args([
            "hunt", "--design", "AXI Slave", "--buggy", "--seeds", "1", "--cycles", "256",
            "--out", &ws.path(""), "--json",
        ])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "seeded bug must be found:\n{stdout}");
    let doc = gila_json::parse(&stdout).unwrap_or_else(|e| panic!("bad JSON: {e}\n{stdout}"));
    let findings = doc.get("findings").and_then(|f| f.as_array()).expect("findings array");
    let f = findings
        .iter()
        .find(|f| f.get("port").and_then(|p| p.as_str()) == Some("READ-PORT"))
        .expect("the documented READ-PORT bug");
    let state = f.get("state").and_then(|s| s.as_str()).expect("state").to_string();
    let cycle = f.get("cycle").and_then(|c| c.as_u64()).expect("cycle");
    assert!(f.get("shrunk").is_some(), "shrinking is on by default:\n{stdout}");

    // Default seed base 0xB06 with --seeds 1 runs exactly seed 2822;
    // sanitize() maps '-' and ' ' to '_' in the stim filename.
    let stim = ws.path("AXI_Slave_READ_PORT_2822.stim");
    let stream = std::fs::read_to_string(&stim).expect("stim file written by --out");
    assert!(stream.contains("# cycle 0"), "{stream}");

    let out = gila()
        .args(["hunt", "--replay", &stim, "--design", "AXI Slave", "--buggy", "--json"])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "replay must reproduce:\n{stdout}");
    let doc = gila_json::parse(&stdout).unwrap_or_else(|e| panic!("bad JSON: {e}\n{stdout}"));
    assert_eq!(doc.get("state").and_then(|s| s.as_str()), Some(state.as_str()));
    assert_eq!(doc.get("cycle").and_then(|c| c.as_u64()), Some(cycle));
    assert_eq!(doc.get("port").and_then(|p| p.as_str()), Some("READ-PORT"));

    // Same stream against the fixed RTL: no divergence, exit 0.
    let out = gila()
        .args(["hunt", "--replay", &stim, "--design", "AXI Slave"])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "fixed RTL must replay clean:\n{stdout}");
    assert!(stdout.contains("no divergence reproduced"), "{stdout}");
}
