//! The `gila serve` / `gila client` subcommands.
//!
//! `serve` runs the verification daemon until SIGTERM/SIGINT (or a
//! client `shutdown` op), then drains gracefully. Exit codes:
//!
//! | code | meaning                                                  |
//! |------|----------------------------------------------------------|
//! | 0    | clean drain: in-flight work finished, journal compacted  |
//! | 2    | usage error                                              |
//! | 4    | startup failure (bind error, unreadable cache journal)   |
//! | 5    | drain timed out: stragglers were cancelled; the journal  |
//! |      | is still consistent (it flushes per record)              |
//!
//! `client` speaks the daemon's protocol with retries and maps
//! verdicts onto the same exit codes as local `gila verify`: 0 all
//! hold, 1 a property failed (or a replayed divergence reproduced),
//! 3 undecided, 4 daemon-side error.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use gila_json::Value;
use gila_serve::{
    CacheConfig, Client, ClientConfig, DrainOutcome, Endpoint, Listen, ServeConfig, Server,
};
use gila_trace::Tracer;
use gila_verify::FaultPlan;

use crate::commands::{flag, flag_all, CmdResult, EXIT_INTERNAL, EXIT_UNKNOWN};

/// Exit code when the daemon's drain budget expired with work still
/// in flight.
const EXIT_DRAIN_TIMEOUT: u8 = 5;

#[cfg(unix)]
mod sig {
    //! Minimal signal handling without a libc crate: the handler is
    //! `extern "C"` and only stores to an atomic (async-signal-safe);
    //! the main thread polls the flag.
    use std::sync::atomic::AtomicBool;

    pub static SHUTDOWN: AtomicBool = AtomicBool::new(false);

    extern "C" fn handle(_sig: i32) {
        SHUTDOWN.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, handle);
            signal(SIGTERM, handle);
        }
    }
}

fn parse_u64(flags: &[(String, String)], name: &str) -> Result<Option<u64>, String> {
    match flag(flags, name) {
        None => Ok(None),
        Some(v) => v
            .parse::<u64>()
            .map(Some)
            .map_err(|_| format!("--{name} expects a number, got {v:?}")),
    }
}

/// `gila serve`: run the daemon until a signal or `shutdown` op.
pub fn serve(flags: &[(String, String)]) -> CmdResult {
    let mut listeners = Vec::new();
    for addr in flag_all(flags, "listen") {
        listeners.push(Listen::Tcp(addr.to_string()));
    }
    for path in flag_all(flags, "socket") {
        listeners.push(Listen::Unix(path.into()));
    }
    if listeners.is_empty() {
        return Err("serve needs --listen HOST:PORT and/or --socket PATH".into());
    }
    let mut cache = CacheConfig {
        path: flag(flags, "cache").map(Into::into),
        ..CacheConfig::default()
    };
    if let Some(b) = parse_u64(flags, "cache-bytes")? {
        cache.max_bytes = b;
    }
    if let Some(n) = parse_u64(flags, "cache-entries")? {
        cache.max_entries = n as usize;
    }
    let tracer = match flag(flags, "trace") {
        Some(path) => Tracer::jsonl_file(std::path::Path::new(path))
            .map_err(|e| format!("opening --trace {path}: {e}"))?,
        None => Tracer::disabled(),
    };
    let fault_plan = match flag(flags, "fault") {
        Some(spec) => Some(Arc::new(
            FaultPlan::parse(spec).map_err(|e| format!("--fault: {e}"))?,
        )),
        None => None,
    };
    let mut cfg = ServeConfig {
        listeners,
        cache,
        tracer,
        fault_plan,
        ..ServeConfig::default()
    };
    if let Some(n) = parse_u64(flags, "queue-cap")? {
        cfg.queue_cap = n.max(1) as usize;
    }
    if let Some(n) = parse_u64(flags, "workers")? {
        cfg.workers = n.max(1) as usize;
    }
    if let Some(n) = parse_u64(flags, "jobs")? {
        cfg.verify_jobs = Some(n as usize);
    }
    if let Some(ms) = parse_u64(flags, "deadline-ms")? {
        cfg.default_deadline = Some(Duration::from_millis(ms));
    }
    if let Some(f) = parse_u64(flags, "watchdog-factor")? {
        cfg.watchdog_factor = f.max(1) as u32;
    }
    if let Some(ms) = parse_u64(flags, "drain-ms")? {
        cfg.drain_budget = Duration::from_millis(ms);
    }

    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: startup failed: {e}");
            return Ok(EXIT_INTERNAL);
        }
    };
    // Announce bound endpoints on stdout — tests and scripts binding
    // an ephemeral port (`--listen 127.0.0.1:0`) discover it here.
    for addr in &server.tcp_addrs {
        println!("listening on {addr}");
    }
    for path in &server.unix_paths {
        println!("listening on {}", path.display());
    }
    use std::io::Write;
    let _ = std::io::stdout().flush();

    let handle = server.handle();
    #[cfg(unix)]
    sig::install();
    loop {
        #[cfg(unix)]
        if sig::SHUTDOWN.load(Ordering::SeqCst) {
            handle.shutdown();
        }
        if handle.is_shutting_down() {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("serve: draining");
    match server.shutdown_and_wait() {
        DrainOutcome::Clean => {
            eprintln!("serve: drained cleanly");
            Ok(0)
        }
        DrainOutcome::TimedOut => {
            eprintln!("serve: drain timed out; in-flight work was cancelled");
            Ok(EXIT_DRAIN_TIMEOUT)
        }
    }
}

fn endpoint(flags: &[(String, String)]) -> Result<Endpoint, String> {
    match (flag(flags, "connect"), flag(flags, "socket")) {
        (Some(addr), None) => Ok(Endpoint::Tcp(addr.to_string())),
        (None, Some(path)) => Ok(Endpoint::Unix(path.into())),
        _ => Err("client needs exactly one of --connect HOST:PORT or --socket PATH".into()),
    }
}

/// `gila client`: one shot against a running daemon.
pub fn client(flags: &[(String, String)]) -> CmdResult {
    let mut cfg = ClientConfig::new(endpoint(flags)?);
    if let Some(n) = parse_u64(flags, "retries")? {
        cfg.retries = n as u32;
    }
    // Vary jitter across concurrent invocations, deterministically
    // overridable for tests.
    cfg.seed = match parse_u64(flags, "seed")? {
        Some(s) => s,
        None => std::process::id() as u64,
    };
    if let Some(spec) = flag(flags, "fault") {
        cfg.fault_plan = Some(Arc::new(
            FaultPlan::parse(spec).map_err(|e| format!("--fault: {e}"))?,
        ));
    }
    let json = flag(flags, "json").is_some();
    let mut client = Client::connect(cfg);

    if flag(flags, "shutdown").is_some() {
        let resp = client.request("shutdown", vec![]).map_err(|e| e.to_string())?;
        print_response(&resp, json);
        return Ok(0);
    }
    if flag(flags, "ping").is_some() {
        let resp = client.request("ping", vec![]).map_err(|e| e.to_string())?;
        print_response(&resp, json);
        return Ok(0);
    }
    if flag(flags, "stats").is_some() && flag_all(flags, "design").is_empty() {
        let resp = client.request("stats", vec![]).map_err(|e| e.to_string())?;
        print_response(&resp, json);
        return Ok(0);
    }

    let mut worst: u8 = 0;
    let mut rank = |code: u8| {
        // 4 beats 1 beats 3 beats 0, matching `gila verify`.
        let sev = |c: u8| match c {
            EXIT_INTERNAL => 3,
            1 => 2,
            EXIT_UNKNOWN => 1,
            _ => 0,
        };
        if sev(code) > sev(worst) {
            worst = code;
        }
    };

    // Replay mode: ship a recorded command stream to the daemon.
    if let Some(path) = flag(flags, "stim") {
        let designs = flag_all(flags, "design");
        if designs.len() != 1 {
            return Err("--stim needs exactly one --design".into());
        }
        let stim = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let mut fields = vec![
            ("design".to_string(), Value::String(designs[0].to_string())),
            ("stim".to_string(), Value::String(stim)),
        ];
        if flag(flags, "buggy").is_some() {
            fields.push(("buggy".to_string(), Value::Bool(true)));
        }
        let resp = client.request("hunt-replay", fields).map_err(|e| e.to_string())?;
        print_response(&resp, json);
        let reproduced = resp
            .get("result")
            .and_then(|r| r.get("reproduced"))
            .and_then(Value::as_bool)
            .unwrap_or(false);
        return Ok(if reproduced { 1 } else { 0 });
    }

    let designs = flag_all(flags, "design");
    if designs.is_empty() {
        return Err("client needs --design NAME (repeatable), --stim, --stats, --ping, or --shutdown".into());
    }
    for name in designs {
        let mut fields = vec![("design".to_string(), Value::String(name.to_string()))];
        if flag(flags, "buggy").is_some() {
            fields.push(("buggy".to_string(), Value::Bool(true)));
        }
        if flag(flags, "no-cache").is_some() {
            fields.push(("no_cache".to_string(), Value::Bool(true)));
        }
        if let Some(ms) = parse_u64(flags, "deadline-ms")? {
            fields.push(("deadline_ms".to_string(), (ms as f64).into()));
        }
        match client.request("verify", fields) {
            Err(e) => return Err(e.to_string().into()),
            Ok(resp) => {
                print_response(&resp, json);
                match resp.get("status").and_then(Value::as_str) {
                    Some("ok") => {
                        let result = resp.get("result");
                        let all_hold = result
                            .and_then(|r| r.get("all_hold"))
                            .and_then(Value::as_bool)
                            .unwrap_or(false);
                        let unknown = result
                            .and_then(|r| r.get("unknown"))
                            .and_then(Value::as_u64)
                            .unwrap_or(0);
                        if all_hold {
                            rank(0);
                        } else if unknown > 0 {
                            rank(EXIT_UNKNOWN);
                        } else {
                            rank(1);
                        }
                    }
                    _ => rank(EXIT_INTERNAL),
                }
            }
        }
    }
    if flag(flags, "stats").is_some() {
        let resp = client.request("stats", vec![]).map_err(|e| e.to_string())?;
        print_response(&resp, json);
    }
    Ok(worst)
}

fn print_response(resp: &Value, json: bool) {
    if json {
        println!("{}", resp.to_compact());
        return;
    }
    match resp.get("status").and_then(Value::as_str) {
        Some("ok") => match resp.get("result") {
            Some(Value::String(s)) => println!("{s}"),
            Some(result) => {
                // Human mode: the headline numbers, one per line.
                if let Some(obj) = result.as_object() {
                    let line: Vec<String> = obj
                        .iter()
                        .filter(|(k, _)| {
                            matches!(
                                k.as_str(),
                                "module"
                                    | "all_hold"
                                    | "solves"
                                    | "cache_hits"
                                    | "cache_misses"
                                    | "cache_hit_rate"
                                    | "unknown"
                                    | "wall_ms"
                                    | "reproduced"
                                    | "design"
                                    | "port"
                                    | "cycle"
                                    | "instruction"
                            )
                        })
                        .map(|(k, v)| format!("{k}={}", v.to_compact()))
                        .collect();
                    println!("{}", line.join(" "));
                } else {
                    println!("{}", result.to_compact());
                }
            }
            None => println!("ok"),
        },
        Some(status) => {
            let detail = resp
                .get("error")
                .and_then(Value::as_str)
                .unwrap_or("");
            println!("{status} {detail}");
        }
        None => println!("{}", resp.to_compact()),
    }
}
