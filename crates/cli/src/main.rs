//! `gila` — the command-line front end of the platform.
//!
//! ```text
//! gila verify    --ila SPEC.ila --rtl IMPL.v --map MAP.json [--map MAP2.json ...]
//! gila describe  --ila SPEC.ila
//! gila synth     --ila SPEC.ila [-o OUT.v]
//! gila check-inv --rtl IMPL.v --invariant EXPR [--depth K]
//! gila props     --ila SPEC.ila --map MAP.json
//! ```

use std::process::ExitCode;

mod commands;
mod serve_cmd;

fn usage() -> ! {
    eprintln!(
        "gila — instruction-level modeling and verification of hardware modules

USAGE:
  gila verify    --ila SPEC.ila --rtl IMPL.v --map MAP.json [--map MAP2.json ...]
                 [--stop-at-first-cex] [--parallel] [--incremental] [--jobs N]
                 [--conflict-budget N] [--timeout-ms N] [--retries N]
                 [--checkpoint FILE] [--resume FILE] [--no-preprocess]
                 [--no-absint] [--no-batch-ports] [--par-threshold N]
                 [--share-clauses] [--vcd PREFIX] [--trace OUT.jsonl] [--stats]
  gila describe  --ila SPEC.ila [--format ila]
  gila synth     --ila SPEC.ila [-o OUT.v]
  gila check-inv --rtl IMPL.v --invariant EXPR [--invariant EXPR ...] [--depth K]
  gila props     --ila SPEC.ila --map MAP.json [--map MAP2.json ...]
  gila export    --rtl IMPL.v [--prop EXPR] [-o OUT.btor2]
  gila sim       (--rtl IMPL.v | --ila SPEC.ila) --stimulus FILE
  gila lint      (SPEC.ila | --all-designs) [--rtl IMPL.v] [--json]
                 [--deny CODE ...] [--jobs N] [--no-absint] [--trace OUT.jsonl]
  gila hunt      (--design NAME ... | --all-designs) [--buggy] [--seeds N]
                 [--cycles N] [--jobs N] [--seed-base N] [--no-shrink]
                 [--out DIR] [--json] [--trace OUT.jsonl]
  gila hunt      --replay FILE --design NAME [--buggy] [--json]
  gila serve     (--listen HOST:PORT ... | --socket PATH ...) [--cache FILE]
                 [--cache-bytes N] [--cache-entries N] [--queue-cap N]
                 [--workers N] [--jobs N] [--deadline-ms N]
                 [--watchdog-factor N] [--drain-ms N] [--trace OUT.jsonl]
  gila client    (--connect HOST:PORT | --socket PATH) [--design NAME ...]
                 [--buggy] [--no-cache] [--deadline-ms N] [--retries N]
                 [--stim FILE] [--stats] [--ping] [--shutdown] [--json]

EXIT CODES:
  0  success (all properties hold / invariants proved / lint clean)
  1  a property failed, an invariant was refuted, or lint found an
     error-class or --deny'ed diagnostic
  2  usage or input error
  3  undecided: at least one verdict is UNKNOWN (solve budget exhausted)
  4  internal error (a verification job panicked, or a checkpoint/
     scheduler failure); 4 beats 1 beats 3 when a run mixes outcomes
  5  (serve only) the drain budget expired with work still in flight;
     stragglers were cancelled, the cache journal stayed consistent

SERVE OPTIONS:
  --listen HOST:PORT   accept TCP connections (repeatable; port 0 binds
                       an ephemeral port, announced on stdout)
  --socket PATH        accept Unix-domain connections (repeatable; a
                       stale socket file is removed and re-bound)
  --cache FILE         persist the content-addressed proof cache as an
                       append-only JSONL journal at FILE; on restart the
                       journal is replayed, dropping torn/corrupt records
  --cache-bytes N      resident-cache byte budget (LRU eviction)
  --cache-entries N    resident-cache entry budget
  --queue-cap N        admission-queue bound; requests beyond it are shed
                       immediately with an 'overloaded' + retry hint
  --workers N          request-executing worker threads (default 2)
  --jobs N             verification pool size per request
  --deadline-ms N      default per-request deadline; the watchdog cancels
                       requests overrunning it and recycles stuck workers
  --drain-ms N         how long a SIGTERM/SIGINT drain waits for in-flight
                       work before cancelling it (default 30000)

CLIENT OPTIONS:
  --design NAME        verify a bundled case study (repeatable)
  --buggy              verify the bug-injected RTL variant
  --no-cache           bypass the daemon's proof cache for this request
  --deadline-ms N      per-request deadline, enforced daemon-side
  --retries N          retry budget for 'overloaded' sheds and transport
                       errors; a delivered response is never retried
  --stim FILE          ship a recorded hunt command stream for replay
                       (exit 1 iff the divergence reproduces)
  --stats              fetch daemon + cache counters
  --shutdown           ask the daemon to drain and exit

HUNT OPTIONS:
  --design NAME        hunt one bundled case study (repeatable); names as
                       in Table I, case-insensitive (e.g. 'AXI Slave')
  --all-designs        hunt every bundled case study
  --buggy              hunt the bug-injected RTL variants instead of the
                       fixed implementations (skips designs without one;
                       exit 1 proves the hunter finds the seeded bugs)
  --seeds N            random seeds per (design, port) target (default 256)
  --cycles N           maximum commands per seed (default 1024)
  --jobs N             worker threads compiling and co-simulating targets
                       (default 1); findings are identical at any count
  --seed-base N        first seed; task i runs seed N+i (default 2822)
  --no-shrink          report divergences as found, skipping delta-debug
                       minimization of the reproducing command stream
  --out DIR            write each finding's (shrunk) command stream to
                       DIR/design_port_seed.stim
  --replay FILE        re-run a recorded command stream (the format that
                       findings print) instead of hunting; exit 1 iff the
                       divergence reproduces
  --trace OUT          write one compile span per (worker, design, port)
                       and one eval span per task to OUT (JSONL)

LINT OPTIONS:
  --all-designs        lint the ILA model and RTL of all eight bundled
                       case studies instead of a spec file
  --rtl IMPL.v         also run the RTL passes (GL011-GL013) on IMPL.v
  --json               emit a machine-readable report on stdout
  --deny CODE          exit 1 if CODE (e.g. GL001) was reported, even if
                       it is warning-class; repeatable
  --jobs N             lint ports on N worker threads; output is
                       identical at any job count
  --no-absint          disable the abstract-interpretation fast path that
                       discharges decode checks without SAT calls; the
                       reported diagnostics are identical either way
  --trace OUT          write one lint_pass telemetry span per pass per
                       target to OUT (JSONL)

VERIFY OPTIONS:
  --jobs N             check instructions on a work-stealing pool of N
                       workers, each with a persistent incremental solver
                       (0 = one per CPU, 1 = sequential); conflicts with
                       --parallel
  --spec SPEC.ila      alias for --ila; without --rtl/--map the spec is
                       checked against its own synthesized RTL (self-check)
  --conflict-budget N  give up on a solve after N SAT conflicts and report
                       the instruction UNKNOWN instead of running forever
  --timeout-ms N       wall-clock budget per solve attempt, milliseconds
  --retries N          re-attempt exhausted instructions up to N times,
                       quadrupling the budget each attempt (default 0)
  --checkpoint FILE    stream every decided verdict to FILE (JSONL), one
                       flushed line per instruction, crash-safe
  --resume FILE        replay decided verdicts from FILE and re-verify
                       only undecided (unknown/panicked/missing) jobs;
                       combine with --checkpoint to keep extending FILE
  --no-preprocess      disable the formula preprocessing pipeline
                       (cone-of-influence slicing, cached simplification,
                       SAT inprocessing) for A/B comparison; preprocessing
                       is on by default and never changes verdicts
  --no-absint          skip the abstract-interpretation fixpoint and the
                       invariant lemmas it asserts before BMC; on by
                       default, proven-sound, and verdict-preserving
  --batch-ports        batch pool jobs per port so one worker amortizes a
                       single unrolling + blast across the whole port;
                       on by default, --no-batch-ports reverts to one job
                       per instruction for A/B comparison
  --par-threshold N    route a pooled run to the persistent sequential
                       engine when its estimated blast work is below N
                       (0 = always pool; default tuned from bench data)
  --share-clauses      exchange short learnt clauses between pool workers
                       serving chunks of the same port; changes solver
                       effort but never verdicts (off by default)
  --trace OUT          write a JSONL telemetry trace: one span per port,
                       instruction, SAT solve, CNF blast, and unroll event
  --stats              print a per-port solver/CNF/scheduling summary table"
    );
    std::process::exit(2)
}

/// Minimal flag parser: returns (positional, flags) where repeated flags
/// accumulate.
fn parse_args(args: &[String]) -> (Vec<String>, Vec<(String, String)>) {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            // Boolean flags have no value; value flags consume the next arg.
            if matches!(
                name,
                "stop-at-first-cex"
                    | "parallel"
                    | "incremental"
                    | "stats"
                    | "json"
                    | "all-designs"
                    | "buggy"
                    | "no-shrink"
                    | "no-preprocess"
                    | "no-absint"
                    | "batch-ports"
                    | "no-batch-ports"
                    | "share-clauses"
                    | "no-cache"
                    | "shutdown"
                    | "ping"
            ) {
                flags.push((name.to_string(), String::new()));
            } else {
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!("flag --{name} needs a value");
                    std::process::exit(2);
                };
                flags.push((name.to_string(), v.clone()));
            }
        } else if let Some(name) = a.strip_prefix('-') {
            i += 1;
            let Some(v) = args.get(i) else {
                eprintln!("flag -{name} needs a value");
                std::process::exit(2);
            };
            flags.push((name.to_string(), v.clone()));
        } else {
            positional.push(a.clone());
        }
        i += 1;
    }
    (positional, flags)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let (positional, flags) = parse_args(&args[1..]);
    let result = match cmd.as_str() {
        "verify" => commands::verify(&flags),
        "lint" => commands::lint(&positional, &flags),
        "describe" => commands::describe(&flags),
        "synth" => commands::synth(&flags),
        "check-inv" => commands::check_inv(&flags),
        "props" => commands::props(&flags),
        "export" => commands::export(&flags),
        "sim" => commands::sim(&flags),
        "hunt" => commands::hunt(&flags),
        "serve" => serve_cmd::serve(&flags),
        "client" => serve_cmd::client(&flags),
        "help" | "--help" | "-h" => usage(),
        other => {
            eprintln!("unknown command {other:?}");
            usage()
        }
    };
    match result {
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
