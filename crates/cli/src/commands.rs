//! Implementations of the `gila` subcommands.

use std::error::Error;
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use gila_core::ModuleIla;
use gila_lang::parse_ila;
use gila_mc::InductionOutcome;
use gila_rtl::{parse_verilog, RtlModule};
use gila_trace::Tracer;
use gila_verify::{
    cex_to_vcd, identity_refmaps, render_all_properties, synthesize_module, validate_invariants,
    verify_module, CheckResult, FaultPlan, ModuleReport, RefinementMap, SolveBudget,
    VerifyError, VerifyOptions,
};

/// Commands return the process exit code; `Err` means a usage or input
/// error (exit 2, mapped in `main`).
pub(crate) type CmdResult = Result<u8, Box<dyn Error>>;

/// Exit code for internal faults: a panicked verification job or a
/// checkpoint/scheduler failure. Distinct from "property failed" so
/// scripts can tell a refuted design from a broken run.
pub(crate) const EXIT_INTERNAL: u8 = 4;
/// Exit code when at least one verdict is Unknown (budget exhausted).
pub(crate) const EXIT_UNKNOWN: u8 = 3;

pub(crate) fn flag<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

pub(crate) fn flag_all<'a>(flags: &'a [(String, String)], name: &str) -> Vec<&'a str> {
    flags
        .iter()
        .filter(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
        .collect()
}

pub(crate) fn require<'a>(flags: &'a [(String, String)], name: &str) -> Result<&'a str, Box<dyn Error>> {
    flag(flags, name).ok_or_else(|| format!("missing required flag --{name}").into())
}

fn load_ila(path: &str) -> Result<ModuleIla, Box<dyn Error>> {
    let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    Ok(parse_ila(&text).map_err(|e| format!("{path}: {e}"))?)
}

fn load_rtl(path: &str) -> Result<RtlModule, Box<dyn Error>> {
    let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    Ok(parse_verilog(&text).map_err(|e| format!("{path}: {e}"))?)
}

fn load_maps(flags: &[(String, String)]) -> Result<Vec<RefinementMap>, Box<dyn Error>> {
    let paths = flag_all(flags, "map");
    if paths.is_empty() {
        return Err("at least one --map MAP.json is required".into());
    }
    paths
        .into_iter()
        .map(|p| {
            let text = fs::read_to_string(p).map_err(|e| format!("reading {p}: {e}"))?;
            RefinementMap::from_json(&text).map_err(|e| format!("{p}: {e}").into())
        })
        .collect()
}

/// `gila verify`: the full refinement check.
///
/// `--spec` is an alias for `--ila`; when `--rtl`/`--map` are omitted
/// the spec is checked against its own synthesized RTL with identity
/// refinement maps (a self-check that exercises the whole pipeline).
pub fn verify(flags: &[(String, String)]) -> CmdResult {
    let ila_path = flag(flags, "ila")
        .or_else(|| flag(flags, "spec"))
        .ok_or("missing required flag --ila (or --spec)")?;
    let ila = load_ila(ila_path)?;
    let rtl = match flag(flags, "rtl") {
        Some(path) => load_rtl(path)?,
        None => synthesize_module(&ila)?,
    };
    let maps = if flag_all(flags, "map").is_empty() {
        identity_refmaps(&ila)
    } else {
        load_maps(flags)?
    };
    let jobs = flag(flags, "jobs")
        .map(|v| {
            v.parse::<usize>()
                .map_err(|_| format!("--jobs expects a worker count, got {v:?}"))
        })
        .transpose()?;
    let tracer = match flag(flags, "trace") {
        Some(path) => Tracer::jsonl_file(std::path::Path::new(path))
            .map_err(|e| format!("opening --trace {path}: {e}"))?,
        None => Tracer::disabled(),
    };
    let parse_u64 = |name: &str| -> Result<Option<u64>, Box<dyn Error>> {
        flag(flags, name)
            .map(|v| {
                v.parse::<u64>()
                    .map_err(|_| format!("--{name} expects a non-negative integer, got {v:?}").into())
            })
            .transpose()
    };
    let budget = SolveBudget {
        conflicts: parse_u64("conflict-budget")?,
        timeout: parse_u64("timeout-ms")?.map(Duration::from_millis),
    };
    let retries = parse_u64("retries")?.unwrap_or(0);
    let retries = u32::try_from(retries).map_err(|_| "--retries is out of range")?;
    // Fault injection is test-only and env-driven: the library never
    // reads the environment, the CLI forwards it explicitly.
    let fault_plan = FaultPlan::from_env()
        .map_err(|e| format!("GILA_FAULT_PLAN: {e}"))?
        .map(Arc::new);
    let defaults = VerifyOptions::default();
    if flag(flags, "batch-ports").is_some() && flag(flags, "no-batch-ports").is_some() {
        return Err("--batch-ports conflicts with --no-batch-ports".into());
    }
    let par_threshold = parse_u64("par-threshold")?.unwrap_or(defaults.par_threshold);
    let opts = VerifyOptions {
        stop_at_first_cex: flag(flags, "stop-at-first-cex").is_some(),
        parallel: flag(flags, "parallel").is_some(),
        incremental: flag(flags, "incremental").is_some(),
        jobs,
        tracer,
        budget,
        retries,
        fault_plan,
        checkpoint: flag(flags, "checkpoint").map(PathBuf::from),
        resume: flag(flags, "resume").map(PathBuf::from),
        preprocess: flag(flags, "no-preprocess").is_none(),
        batch_ports: flag(flags, "no-batch-ports").is_none(),
        par_threshold,
        share_clauses: flag(flags, "share-clauses").is_some(),
        absint: flag(flags, "no-absint").is_none(),
        ..VerifyOptions::default()
    };
    let report = match verify_module(&ila, &rtl, &maps, &opts) {
        Ok(report) => report,
        Err(e @ (VerifyError::Internal { .. } | VerifyError::Checkpoint { .. })) => {
            eprintln!("error: {e}");
            return Ok(EXIT_INTERNAL);
        }
        Err(e) => return Err(e.into()),
    };
    opts.tracer.flush();
    if let Some(path) = flag(flags, "trace") {
        eprintln!("telemetry trace written to {path}");
    }
    let mut vcd_count = 0usize;
    for port in &report.ports {
        println!("port {}:", port.port);
        for v in &port.verdicts {
            let status = match &v.result {
                CheckResult::Holds => "HOLDS".to_string(),
                CheckResult::CounterExample(cex) => {
                    format!("FAILS ({})", cex.mismatched_states.join(", "))
                }
                CheckResult::FinishNotReached { max_cycles } => {
                    format!("VACUOUS (finish not reached within {max_cycles} cycles)")
                }
                CheckResult::Unknown {
                    reason,
                    budget_spent,
                } => format!(
                    "UNKNOWN ({} budget exhausted after {} conflicts, {} attempt(s))",
                    reason.as_str(),
                    budget_spent.conflicts,
                    budget_spent.attempts
                ),
                CheckResult::JobPanicked { message } => format!("PANICKED ({message})"),
            };
            println!(
                "  {:<28} {status:<32} {:>9.2?}  {:>8} clauses",
                v.instruction, v.time, v.stats.clauses
            );
            if let CheckResult::CounterExample(cex) = &v.result {
                if let Some(prefix) = flag(flags, "vcd") {
                    let path = format!("{prefix}_{}.vcd", sanitize(&v.instruction));
                    fs::write(&path, cex_to_vcd(cex, &port.port))?;
                    println!("    trace written to {path}");
                    vcd_count += 1;
                }
            }
        }
    }
    let _ = vcd_count;
    println!(
        "\n{} instructions checked in {:.2?}; peak CNF ~{:.1} MB",
        report.instructions_checked(),
        report.total_time(),
        report.peak_stats().estimated_mb()
    );
    if flag(flags, "stats").is_some() {
        print_stats_table(&report);
    }
    // Exit-code priority: internal faults trump counterexamples trump
    // resource exhaustion — a panicked or undecided run is never
    // reported as a clean pass or a clean refutation.
    let counts = report.counts();
    if counts.panicked > 0 {
        println!(
            "RESULT: INTERNAL ERROR ({} job(s) panicked; other verdicts above are valid)",
            counts.panicked
        );
        Ok(EXIT_INTERNAL)
    } else if counts.cex > 0 || counts.unreached > 0 {
        println!("RESULT: refinement FAILS");
        Ok(1)
    } else if counts.unknown > 0 {
        println!(
            "RESULT: UNDECIDED ({} instruction(s) ran out of budget; \
             raise --conflict-budget/--timeout-ms/--retries or --resume a checkpoint)",
            counts.unknown
        );
        Ok(EXIT_UNKNOWN)
    } else {
        println!("RESULT: the RTL refines the ILA (all properties hold)");
        Ok(0)
    }
}

/// The `--stats` table: one row per port plus a TOTAL row, fed from
/// the same [`gila_trace::Telemetry`] totals tests and benches consume.
fn print_stats_table(report: &ModuleReport) {
    let header = format!(
        "{:<24} {:>7} {:>7} {:>10} {:>12} {:>9} {:>9} {:>11} {:>10}",
        "port", "instrs", "solves", "decisions", "propagation", "conflicts", "cnf vars", "cnf clauses", "wall"
    );
    println!("\nTELEMETRY:\n  {header}");
    println!("  {}", "-".repeat(header.len()));
    let row = |name: &str, t: &gila_trace::Telemetry| {
        format!(
            "{:<24} {:>7} {:>7} {:>10} {:>12} {:>9} {:>9} {:>11} {:>10.2?}",
            name,
            t.instructions,
            t.solves,
            t.decisions,
            t.propagations,
            t.conflicts,
            t.cnf_vars,
            t.cnf_clauses,
            std::time::Duration::from_nanos(t.wall_ns)
        )
    };
    for p in &report.ports {
        println!("  {}", row(&p.port, &p.telemetry));
    }
    println!("  {}", "-".repeat(header.len()));
    println!("  {}", row("TOTAL", &report.telemetry));
    println!(
        "  workers: {}   batches: {}   stolen batches: {}   queue wait: {:.2?}",
        report.telemetry.workers,
        report.telemetry.batches,
        report.telemetry.steals,
        std::time::Duration::from_nanos(report.telemetry.queue_ns)
    );
    if report.telemetry.batches > 0 {
        println!(
            "  avg batch size: {:.1}   clauses shared: {} exported / {} imported / {} deduped",
            report.telemetry.instructions as f64 / report.telemetry.batches as f64,
            report.telemetry.clauses_exported,
            report.telemetry.clauses_imported,
            report.telemetry.clauses_deduped
        );
    }
    println!(
        "  unknown: {}   panicked: {}   retries: {}   conflicts spent on exhausted budgets: {}",
        report.telemetry.unknown,
        report.telemetry.panicked,
        report.telemetry.retries,
        report.telemetry.budget_spent_conflicts
    );
    println!(
        "  preprocessing: coi dropped {} state(s) + {} input(s);   inprocessing \
         removed {} clause(s), {} literal(s), learned {} failed literal(s)",
        report.telemetry.coi_states_dropped,
        report.telemetry.coi_inputs_dropped,
        report.telemetry.inprocess_clauses_removed,
        report.telemetry.inprocess_lits_removed,
        report.telemetry.inprocess_failed_literals
    );
    println!(
        "  absint: {} invariant(s) proved and asserted as step-implication lemmas",
        report.telemetry.invariants_proved
    );
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// `gila describe`: print the model sketch (Figs. 1-3 style), or the
/// canonical `.ila` text with `--format ila`.
pub fn describe(flags: &[(String, String)]) -> CmdResult {
    let ila = load_ila(require(flags, "ila")?)?;
    if flag(flags, "format") == Some("ila") {
        println!("{}", gila_lang::to_ila_text(&ila)?);
        return Ok(0);
    }
    println!("{}", ila.describe());
    let stats = ila.stats();
    println!(
        "{} port(s), {} atomic instructions, {} architectural state bits",
        stats.ports, stats.instructions, stats.arch_state_bits
    );
    Ok(0)
}

/// `gila synth`: generate Verilog from the specification.
pub fn synth(flags: &[(String, String)]) -> CmdResult {
    let ila = load_ila(require(flags, "ila")?)?;
    let rtl = gila_verify::synthesize_module(&ila)?;
    let verilog = rtl.to_verilog()?;
    match flag(flags, "o") {
        Some(path) => {
            fs::write(path, &verilog)?;
            println!("wrote {path} ({} lines)", verilog.lines().count());
        }
        None => print!("{verilog}"),
    }
    Ok(0)
}

/// `gila check-inv`: prove or refute RTL invariants by k-induction.
pub fn check_inv(flags: &[(String, String)]) -> CmdResult {
    let rtl = load_rtl(require(flags, "rtl")?)?;
    let invariants: Vec<String> = flag_all(flags, "invariant")
        .into_iter()
        .map(String::from)
        .collect();
    if invariants.is_empty() {
        return Err("at least one --invariant EXPR is required".into());
    }
    let depth: usize = flag(flags, "depth").unwrap_or("3").parse()?;
    match validate_invariants(&rtl, &invariants, depth)? {
        InductionOutcome::Proved { k } => {
            println!("PROVED: invariants are {k}-inductive");
            Ok(0)
        }
        InductionOutcome::Violated(cex) => {
            println!(
                "REFUTED: violated {} step(s) from reset:",
                cex.violation_step
            );
            for (i, step) in cex.steps.iter().enumerate() {
                println!("  step {i}:");
                for (name, value) in &step.states {
                    println!("    {name:<20} = {value:?}");
                }
            }
            Ok(1)
        }
        InductionOutcome::Unknown { max_k } => {
            println!(
                "UNKNOWN: neither proved nor refuted with induction depth <= {max_k}; \
                 raise --depth or strengthen the invariants"
            );
            Ok(1)
        }
        InductionOutcome::ResourceOut { reason, at_k } => {
            println!(
                "UNDECIDED: the solver ran out of {} at induction depth {at_k}",
                reason.as_str()
            );
            Ok(EXIT_UNKNOWN)
        }
    }
}

/// `gila export`: serialize an RTL module as a BTOR2 model-checking
/// problem (with an optional safety property) for external checkers.
pub fn export(flags: &[(String, String)]) -> CmdResult {
    let rtl = load_rtl(require(flags, "rtl")?)?;
    let mut rtl_scratch = rtl.clone();
    let (mut ts, _signals) = gila_verify::rtl_to_ts(&rtl)?;
    let prop = match flag(flags, "prop") {
        Some(expr) => {
            let e = gila_rtl::parse_rtl_expr(&mut rtl_scratch, expr)
                .map_err(|e| format!("--prop: {e}"))?;
            let mut memo = std::collections::HashMap::new();
            let e = gila_expr::import(ts.ctx_mut(), rtl_scratch.ctx(), e, &mut memo);
            ts.ctx_mut().bv_to_bool(e)
        }
        None => ts.ctx_mut().tt(),
    };
    let doc = gila_mc::to_btor2(&ts, prop)?;
    match flag(flags, "o") {
        Some(path) => {
            fs::write(path, &doc)?;
            println!("wrote {path} ({} lines)", doc.lines().count());
        }
        None => print!("{doc}"),
    }
    Ok(0)
}

/// `gila sim`: scripted simulation of an RTL module or an `.ila` port.
///
/// The stimulus file has one cycle per line: `name=value` pairs
/// separated by whitespace (values decimal or 0x-hex). States print
/// after every cycle.
pub fn sim(flags: &[(String, String)]) -> CmdResult {
    let stim_path = require(flags, "stimulus")?;
    let stim = fs::read_to_string(stim_path).map_err(|e| format!("reading {stim_path}: {e}"))?;
    let parse_line = |line: &str| -> Result<Vec<(String, u64)>, Box<dyn Error>> {
        line.split_whitespace()
            .map(|tok| {
                let (name, value) = tok
                    .split_once('=')
                    .ok_or_else(|| format!("bad stimulus token {tok:?}"))?;
                let value = if let Some(hex) = value.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16).map_err(|e| format!("{tok:?}: {e}"))?
                } else {
                    value.parse().map_err(|e| format!("{tok:?}: {e}"))?
                };
                Ok((name.to_string(), value))
            })
            .collect()
    };
    if let Some(rtl_path) = flag(flags, "rtl") {
        let rtl = load_rtl(rtl_path)?;
        let mut sim = gila_rtl::RtlSimulator::new(&rtl);
        for (cycle, line) in stim.lines().enumerate() {
            if line.trim().is_empty() || line.trim_start().starts_with('#') {
                continue;
            }
            let mut inputs = std::collections::BTreeMap::new();
            for i in rtl.inputs() {
                inputs.insert(i.name.clone(), gila_expr::BitVecValue::zero(i.width));
            }
            inputs.insert(
                "clk".to_string(),
                gila_expr::BitVecValue::from_u64(1, 1),
            );
            for (name, value) in parse_line(line)? {
                let width = rtl
                    .find_input(&name)
                    .map(|i| i.width)
                    .ok_or_else(|| format!("unknown input {name:?}"))?;
                inputs.insert(name, gila_expr::BitVecValue::from_u64(value, width));
            }
            sim.step(&inputs).map_err(|e| e.to_string())?;
            print!("cycle {cycle}:");
            for (name, v) in sim.state() {
                print!(" {name}={v:?}");
            }
            println!();
        }
        return Ok(0);
    }
    let ila = load_ila(require(flags, "ila")?)?;
    let port = &ila.ports()[0];
    let mut sim = gila_core::PortSimulator::new(port);
    for (cycle, line) in stim.lines().enumerate() {
        if line.trim().is_empty() || line.trim_start().starts_with('#') {
            continue;
        }
        let mut inputs = std::collections::BTreeMap::new();
        for i in port.inputs() {
            let v: gila_expr::Value = match i.sort {
                gila_expr::Sort::Bool => gila_expr::Value::Bool(false),
                gila_expr::Sort::Bv(w) => gila_expr::BitVecValue::zero(w).into(),
                gila_expr::Sort::Mem {
                    addr_width,
                    data_width,
                } => gila_expr::MemValue::zeroed(addr_width, data_width).into(),
            };
            inputs.insert(i.name.clone(), v);
        }
        for (name, value) in parse_line(line)? {
            let sort = port
                .find_input(&name)
                .map(|i| i.sort)
                .ok_or_else(|| format!("unknown input {name:?}"))?;
            let v: gila_expr::Value = match sort {
                gila_expr::Sort::Bool => gila_expr::Value::Bool(value != 0),
                gila_expr::Sort::Bv(w) => gila_expr::BitVecValue::from_u64(value, w).into(),
                gila_expr::Sort::Mem { .. } => {
                    return Err(format!("cannot drive memory input {name:?} from stimulus").into())
                }
            };
            inputs.insert(name, v);
        }
        let fired = sim.step(&inputs).map_err(|e| e.to_string())?;
        print!("cycle {cycle}: [{fired}]");
        for (name, v) in sim.state() {
            print!(" {name}={v:?}");
        }
        println!();
    }
    Ok(0)
}

/// `gila lint`: SAT-backed static analysis over specs and RTL.
///
/// Exit codes: 0 = no error-class or denied findings, 1 = at least one
/// error-class or `--deny`ed finding, 2 = usage or parse error.
pub fn lint(positional: &[String], flags: &[(String, String)]) -> CmdResult {
    use gila_lint::{lint_module, lint_rtl, lint_spec, Code, LintOptions, LintReport};

    let json = flag(flags, "json").is_some();
    let mut deny = Vec::new();
    for d in flag_all(flags, "deny") {
        deny.push(
            Code::parse(d).ok_or_else(|| format!("--deny expects a GL0xx code, got {d:?}"))?,
        );
    }
    let jobs = match flag(flags, "jobs") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| format!("--jobs expects a worker count, got {v:?}"))?,
        None => 1,
    };
    let opts = LintOptions {
        jobs: jobs.max(1),
        absint: flag(flags, "no-absint").is_none(),
    };
    let tracer = match flag(flags, "trace") {
        Some(path) => Tracer::jsonl_file(std::path::Path::new(path))
            .map_err(|e| format!("opening --trace {path}: {e}"))?,
        None => Tracer::disabled(),
    };
    let mut reports: Vec<LintReport> = Vec::new();
    if flag(flags, "all-designs").is_some() {
        for cs in gila_designs::all_case_studies() {
            let mut report = lint_module(cs.name, &cs.ila, &opts, &tracer);
            report
                .diagnostics
                .extend(lint_rtl(cs.name, &cs.rtl, &tracer));
            reports.push(report);
        }
    } else if let Some(path) = positional.first() {
        let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let spec = gila_lang::parse_spec(&text).map_err(|e| format!("{path}: {e}"))?;
        reports.push(lint_spec(path, &spec, &opts, &tracer));
    } else if flag(flags, "rtl").is_none() {
        return Err("lint needs a SPEC.ila argument, --rtl IMPL.v, or --all-designs".into());
    }
    if let Some(path) = flag(flags, "rtl") {
        let rtl = load_rtl(path)?;
        let mut report = LintReport::new(path);
        report.diagnostics = lint_rtl(path, &rtl, &tracer);
        reports.push(report);
    }
    let errors: usize = reports.iter().map(LintReport::errors).sum();
    let warnings: usize = reports.iter().map(LintReport::warnings).sum();
    let denied: usize = reports.iter().map(|r| r.denied(&deny)).sum();
    if json {
        let doc = gila_json::Value::object(vec![
            ("tool".into(), "gila-lint".into()),
            ("version".into(), 1u64.into()),
            (
                "targets".into(),
                gila_json::Value::Array(reports.iter().map(LintReport::to_json).collect()),
            ),
            (
                "summary".into(),
                gila_json::Value::object(vec![
                    ("targets".into(), reports.len().into()),
                    ("errors".into(), errors.into()),
                    ("warnings".into(), warnings.into()),
                    ("denied".into(), denied.into()),
                ]),
            ),
        ]);
        println!("{}", doc.pretty());
    } else {
        for r in &reports {
            print!("{}", r.render_human());
        }
    }
    Ok(u8::from(errors > 0 || denied > 0))
}

/// `gila props`: print the auto-generated refinement properties.
pub fn props(flags: &[(String, String)]) -> CmdResult {
    let ila = load_ila(require(flags, "ila")?)?;
    let maps = load_maps(flags)?;
    for port in ila.ports() {
        let Some(map) = maps
            .iter()
            .find(|m| m.name == port.name())
            .or_else(|| maps.iter().find(|m| m.name == "*"))
        else {
            return Err(format!("no refinement map for port {:?}", port.name()).into());
        };
        println!("{}", render_all_properties(port, map));
    }
    Ok(0)
}

/// Parses a number-valued flag with a default.
fn num_flag<T: std::str::FromStr>(
    flags: &[(String, String)],
    name: &str,
    default: T,
) -> Result<T, Box<dyn Error>> {
    match flag(flags, name) {
        Some(v) => v
            .parse::<T>()
            .map_err(|_| format!("--{name} expects a number, got {v:?}").into()),
        None => Ok(default),
    }
}

/// Parses a recorded command stream (`Divergence::command_stream`
/// format): `# start name=value` lines pin the RTL start state, other
/// `#` lines are comments, and every remaining line is one cycle of
/// `pin=0xHEX` input assignments.
fn parse_stream(
    text: &str,
    rtl: &RtlModule,
) -> Result<
    (
        std::collections::BTreeMap<String, gila_expr::Value>,
        Vec<std::collections::BTreeMap<String, gila_expr::BitVecValue>>,
    ),
    Box<dyn Error>,
> {
    use gila_expr::Sort;
    let state_sort = |name: &str| -> Option<Sort> {
        rtl.regs()
            .iter()
            .find(|r| r.name == name)
            .map(|r| Sort::Bv(r.width))
            .or_else(|| {
                rtl.mems().iter().find(|m| m.name == name).map(|m| Sort::Mem {
                    addr_width: m.addr_width,
                    data_width: m.data_width,
                })
            })
    };
    let mut start = std::collections::BTreeMap::new();
    let mut inputs = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("# start ") {
            let (name, v) = rest
                .split_once('=')
                .ok_or_else(|| format!("line {}: bad start entry {rest:?}", ln + 1))?;
            let name = name.trim();
            let sort = state_sort(name)
                .ok_or_else(|| format!("line {}: unknown RTL state {name:?}", ln + 1))?;
            let v = gila_verify::parse_value(v.trim(), sort)
                .ok_or_else(|| format!("line {}: bad value for {name:?}", ln + 1))?;
            start.insert(name.to_string(), v);
        } else if t.is_empty() || t.starts_with('#') {
            continue;
        } else {
            let mut vec = std::collections::BTreeMap::new();
            for tok in t.split_whitespace() {
                let (name, v) = tok
                    .split_once('=')
                    .ok_or_else(|| format!("line {}: bad stimulus token {tok:?}", ln + 1))?;
                let width = rtl
                    .find_input(name)
                    .map(|i| i.width)
                    .ok_or_else(|| format!("line {}: unknown RTL input {name:?}", ln + 1))?;
                let v = gila_verify::parse_bv(v, width)
                    .ok_or_else(|| format!("line {}: bad literal in {tok:?}", ln + 1))?;
                vec.insert(name.to_string(), v);
            }
            inputs.push(vec);
        }
    }
    Ok((start, inputs))
}

/// `gila hunt`: mass randomized bug hunting on the compiled simulation
/// backend, with auto-shrunk reproducers.
///
/// Exit codes: 0 = every task clean, 1 = at least one divergence found
/// (or a `--replay` stream reproduced one), 2 = usage or input error.
pub fn hunt(flags: &[(String, String)]) -> CmdResult {
    use gila_verify::{HuntConfig, HuntTarget};

    let all = gila_designs::all_case_studies();
    let explicit = flag(flags, "all-designs").is_none();
    let mut selected: Vec<&gila_designs::CaseStudy> = Vec::new();
    if explicit {
        let wanted = flag_all(flags, "design");
        if wanted.is_empty() {
            return Err("hunt needs --design NAME (repeatable) or --all-designs".into());
        }
        for w in wanted {
            let cs = all
                .iter()
                .find(|c| c.name.eq_ignore_ascii_case(w))
                .ok_or_else(|| {
                    format!(
                        "unknown design {w:?}; known: {}",
                        all.iter().map(|c| c.name).collect::<Vec<_>>().join(", ")
                    )
                })?;
            selected.push(cs);
        }
    } else {
        selected.extend(all.iter());
    }
    let buggy = flag(flags, "buggy").is_some();
    let json = flag(flags, "json").is_some();
    fn pick_rtl(cs: &gila_designs::CaseStudy, buggy: bool) -> Option<&RtlModule> {
        if buggy {
            cs.buggy_rtl.as_ref()
        } else {
            Some(&cs.rtl)
        }
    }

    // Replay mode: deterministically re-run a recorded command stream.
    if let Some(path) = flag(flags, "replay") {
        if selected.len() != 1 || !explicit {
            return Err("--replay needs exactly one --design".into());
        }
        let cs = selected[0];
        let rtl = pick_rtl(cs, buggy)
            .ok_or_else(|| format!("{} has no bug-injected RTL variant", cs.name))?;
        let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let (start, inputs) = parse_stream(&text, rtl)?;
        for port in cs.ila.ports() {
            let Some(map) = cs.refmaps.iter().find(|m| m.name == port.name()) else {
                continue;
            };
            // A stream recorded at another port may simply not decode
            // here; that is not an error for replay.
            match gila_verify::replay_compiled(port, rtl, map, &start, &inputs) {
                Ok(Some(d)) => {
                    if json {
                        let doc = gila_json::Value::object(vec![
                            ("design".into(), cs.name.into()),
                            ("port".into(), port.name().into()),
                            ("cycle".into(), (d.cycle as u64).into()),
                            ("instruction".into(), d.instruction.clone().into()),
                            ("state".into(), d.state.clone().into()),
                            (
                                "ila".into(),
                                gila_verify::render_value(&d.ila_value).into(),
                            ),
                            (
                                "rtl".into(),
                                gila_verify::render_value(&d.rtl_value).into(),
                            ),
                            ("command_stream".into(), d.command_stream().into()),
                        ]);
                        println!("{}", doc.pretty());
                    } else {
                        println!("[{}/{}] {d}", cs.name, port.name());
                    }
                    return Ok(1);
                }
                Ok(None) | Err(_) => {}
            }
        }
        println!(
            "replay: no divergence reproduced on {} over {} cycles",
            cs.name,
            inputs.len()
        );
        return Ok(0);
    }

    let config = HuntConfig {
        seeds: num_flag(flags, "seeds", 256u64)?,
        cycles: num_flag(flags, "cycles", 1024usize)?,
        jobs: num_flag(flags, "jobs", 1usize)?,
        seed_base: num_flag(flags, "seed-base", 0xB06u64)?,
        shrink: flag(flags, "no-shrink").is_none(),
    };
    let tracer = match flag(flags, "trace") {
        Some(path) => Tracer::jsonl_file(std::path::Path::new(path))
            .map_err(|e| format!("opening --trace {path}: {e}"))?,
        None => Tracer::disabled(),
    };
    let mut targets = Vec::new();
    for cs in &selected {
        let Some(rtl) = pick_rtl(cs, buggy) else {
            if explicit {
                return Err(format!("{} has no bug-injected RTL variant", cs.name).into());
            }
            continue;
        };
        for port in cs.ila.ports() {
            let Some(map) = cs.refmaps.iter().find(|m| m.name == port.name()) else {
                continue;
            };
            targets.push(HuntTarget {
                design: cs.name,
                port,
                rtl,
                map,
            });
        }
    }
    if targets.is_empty() {
        return Err(
            "no hunt targets (with --buggy only designs with a bug-injected variant qualify)"
                .into(),
        );
    }
    let report = gila_verify::hunt(&targets, &config, &tracer).map_err(|e| e.to_string())?;

    if let Some(dir) = flag(flags, "out") {
        fs::create_dir_all(dir).map_err(|e| format!("creating --out {dir}: {e}"))?;
        for f in &report.findings {
            let stream = f
                .shrunk
                .as_ref()
                .map(|s| s.divergence.command_stream())
                .unwrap_or_else(|| f.divergence.command_stream());
            let path = PathBuf::from(dir).join(format!(
                "{}_{}_{}.stim",
                sanitize(&f.design),
                sanitize(&f.port),
                f.seed
            ));
            fs::write(&path, stream).map_err(|e| format!("writing {}: {e}", path.display()))?;
        }
    }

    if json {
        let findings: Vec<gila_json::Value> = report
            .findings
            .iter()
            .map(|f| {
                let d = f.shrunk.as_ref().map(|s| &s.divergence).unwrap_or(&f.divergence);
                let mut fields = vec![
                    ("design".into(), f.design.clone().into()),
                    ("port".into(), f.port.clone().into()),
                    ("seed".into(), f.seed.into()),
                    ("state".into(), d.state.clone().into()),
                    ("instruction".into(), d.instruction.clone().into()),
                    ("cycle".into(), (d.cycle as u64).into()),
                    ("ila".into(), gila_verify::render_value(&d.ila_value).into()),
                    ("rtl".into(), gila_verify::render_value(&d.rtl_value).into()),
                    ("command_stream".into(), d.command_stream().into()),
                ];
                if let Some(s) = &f.shrunk {
                    fields.push((
                        "shrunk".into(),
                        gila_json::Value::object(vec![
                            ("commands".into(), (s.divergence.inputs.len() as u64).into()),
                            ("original_cycles".into(), (s.original_cycles as u64).into()),
                            ("replays".into(), (s.replays as u64).into()),
                        ]),
                    ));
                }
                gila_json::Value::object(fields)
            })
            .collect();
        let errors: Vec<gila_json::Value> = report
            .errors
            .iter()
            .map(|(design, port, seed, error)| {
                gila_json::Value::object(vec![
                    ("design".into(), design.clone().into()),
                    ("port".into(), port.clone().into()),
                    ("seed".into(), (*seed).into()),
                    ("error".into(), error.clone().into()),
                ])
            })
            .collect();
        let doc = gila_json::Value::object(vec![
            ("tool".into(), "gila-hunt".into()),
            ("version".into(), 1u64.into()),
            ("tasks".into(), (report.tasks as u64).into()),
            ("clean_tasks".into(), (report.clean_tasks as u64).into()),
            ("cycles_run".into(), report.cycles_run.into()),
            ("findings".into(), gila_json::Value::Array(findings)),
            ("errors".into(), gila_json::Value::Array(errors)),
        ]);
        println!("{}", doc.pretty());
    } else {
        println!(
            "hunt: {} tasks over {} targets ({} seeds x {} cycles, jobs={}), {} cycles co-simulated",
            report.tasks,
            targets.len(),
            config.seeds,
            config.cycles,
            config.jobs,
            report.cycles_run,
        );
        for f in &report.findings {
            let d = f.shrunk.as_ref().map(|s| &s.divergence).unwrap_or(&f.divergence);
            println!(
                "\n[{}/{} seed {}] state {:?} diverged at cycle {} after {:?}: ila = {}, rtl = {}",
                f.design,
                f.port,
                f.seed,
                d.state,
                d.cycle,
                d.instruction,
                gila_verify::render_value(&d.ila_value),
                gila_verify::render_value(&d.rtl_value),
            );
            if let Some(s) = &f.shrunk {
                println!(
                    "  shrunk to {} command(s) from {} cycle(s) in {} replay(s)",
                    s.divergence.inputs.len(),
                    s.original_cycles,
                    s.replays
                );
            }
            print!("{}", d.command_stream());
        }
        for (design, port, seed, error) in &report.errors {
            println!("\n[{design}/{port} seed {seed}] error: {error}");
        }
        println!(
            "\n{} clean, {} divergence(s), {} error(s)",
            report.clean_tasks,
            report.findings.len(),
            report.errors.len()
        );
    }
    Ok(u8::from(!report.findings.is_empty()))
}
