//! Daemon robustness: cold→warm over the wire, load shedding,
//! disconnect cancellation, deadline watchdog, graceful drain, and
//! client retry behavior under injected socket faults.
//!
//! Every test runs a real [`Server`] on an ephemeral TCP port (plus
//! one Unix-socket case) inside the test process, so assertions can
//! inspect server counters directly instead of scraping output.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use gila_json::Value;
use gila_serve::{
    CacheConfig, Client, ClientConfig, DrainOutcome, Endpoint, Listen, ServeConfig, Server,
};
use gila_verify::FaultPlan;

fn tmp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("gila-serve-daemon-{}-{name}", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

fn start(cfg: ServeConfig) -> (Server, String) {
    let server = Server::start(cfg).expect("server starts");
    let addr = server.tcp_addrs[0].to_string();
    (server, addr)
}

fn base_cfg() -> ServeConfig {
    ServeConfig {
        listeners: vec![Listen::Tcp("127.0.0.1:0".into())],
        cache: CacheConfig::default(),
        drain_budget: Duration::from_secs(10),
        ..ServeConfig::default()
    }
}

fn client_for(addr: &str) -> Client {
    let mut cfg = ClientConfig::new(Endpoint::Tcp(addr.to_string()));
    cfg.retries = 8;
    cfg.base_delay = Duration::from_millis(20);
    cfg.seed = 7;
    Client::connect(cfg)
}

fn verify_fields(design: &str) -> Vec<(String, Value)> {
    vec![("design".to_string(), Value::String(design.to_string()))]
}

fn result_u64(resp: &Value, name: &str) -> u64 {
    resp.get("result")
        .and_then(|r| r.get(name))
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("response lacks result.{name}: {}", resp.to_compact()))
}

/// Raw pipelined frames on one socket, for tests that need to control
/// framing and connection lifetime below the Client abstraction.
fn raw_send(stream: &mut TcpStream, id: u64, op: &str, extra: &str) {
    let frame = format!("{{\"gila\":1,\"id\":{id},\"op\":\"{op}\"{extra}}}\n");
    stream.write_all(frame.as_bytes()).unwrap();
    stream.flush().unwrap();
}

#[test]
fn cold_then_warm_over_the_wire_does_zero_solver_work() {
    let (server, addr) = start(base_cfg());
    let mut client = client_for(&addr);

    let cold = client.request("verify", verify_fields("Decoder")).unwrap();
    assert_eq!(cold.get("status").and_then(Value::as_str), Some("ok"));
    assert!(result_u64(&cold, "solves") > 0);
    assert_eq!(result_u64(&cold, "cache_hits"), 0);

    let warm = client.request("verify", verify_fields("Decoder")).unwrap();
    assert_eq!(result_u64(&warm, "solves"), 0, "warm request: zero solver work");
    assert_eq!(result_u64(&warm, "cache_misses"), 0);
    assert!(result_u64(&warm, "cache_hits") > 0);

    let handle = server.handle();
    handle.shutdown();
    assert_eq!(server.shutdown_and_wait(), DrainOutcome::Clean);
}

#[test]
fn unix_socket_speaks_the_same_protocol() {
    let sock = tmp_path("unix.sock");
    let mut cfg = base_cfg();
    cfg.listeners = vec![Listen::Unix(sock.clone())];
    let server = Server::start(cfg).expect("unix server starts");
    let mut client = Client::connect(ClientConfig::new(Endpoint::Unix(sock.clone())));
    let pong = client.request("ping", vec![]).unwrap();
    assert_eq!(
        pong.get("result").and_then(Value::as_str),
        Some("pong"),
        "unix transport carries frames"
    );
    server.handle().shutdown();
    assert_eq!(server.shutdown_and_wait(), DrainOutcome::Clean);
    assert!(!sock.exists(), "socket file removed on clean drain");
}

#[test]
fn full_queue_sheds_immediately_and_backoff_recovers() {
    let mut cfg = base_cfg();
    cfg.workers = 1;
    cfg.queue_cap = 1;
    // Every job of the first request sleeps, pinning the one worker
    // long enough for the flood behind it to hit a full queue.
    cfg.fault_plan = Some(Arc::new(FaultPlan::parse("delay:300@*/**1").unwrap()));
    let (server, addr) = start(cfg);
    let handle = server.handle();

    let mut stream = TcpStream::connect(&addr).unwrap();
    for id in 1..=4 {
        raw_send(&mut stream, id, "verify", ",\"design\":\"Decoder\"");
    }
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut ok = 0;
    let mut overloaded = 0;
    for _ in 0..4 {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let resp = gila_json::parse(&line).unwrap();
        match resp.get("status").and_then(Value::as_str) {
            Some("ok") => ok += 1,
            Some("overloaded") => {
                overloaded += 1;
                assert!(
                    resp.get("retry_after_ms").and_then(Value::as_u64).unwrap() > 0,
                    "shed responses carry a backoff hint"
                );
            }
            other => panic!("unexpected status {other:?}"),
        }
    }
    assert!(ok >= 1, "admitted work completes");
    assert!(overloaded >= 1, "excess load is shed, not queued");
    let stats = handle.stats();
    assert!(stats.get("shed").and_then(Value::as_u64).unwrap() >= 1);

    // A retrying client gets through once the backlog clears: the shed
    // is back-pressure, not an outage.
    let mut client = client_for(&addr);
    let resp = client.request("verify", verify_fields("Decoder")).unwrap();
    assert_eq!(resp.get("status").and_then(Value::as_str), Some("ok"));

    handle.shutdown();
    assert_eq!(server.shutdown_and_wait(), DrainOutcome::Clean);
}

#[test]
fn disconnecting_client_cancels_its_outstanding_work() {
    let mut cfg = base_cfg();
    cfg.workers = 1;
    cfg.queue_cap = 8;
    cfg.fault_plan = Some(Arc::new(FaultPlan::parse("delay:400@*/**1").unwrap()));
    let (server, addr) = start(cfg);
    let handle = server.handle();

    {
        let mut stream = TcpStream::connect(&addr).unwrap();
        // One request occupies the worker (sleeping in the fault
        // delay), one sits queued behind it.
        raw_send(&mut stream, 1, "verify", ",\"design\":\"Decoder\"");
        raw_send(&mut stream, 2, "verify", ",\"design\":\"Decoder\"");
        std::thread::sleep(Duration::from_millis(100));
        // Hang up: the daemon must cancel both, not verify into the void.
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let cancelled = handle
            .stats()
            .get("disconnect_cancelled")
            .and_then(Value::as_u64)
            .unwrap();
        if cancelled >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "disconnect never cancelled outstanding work"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    handle.shutdown();
    assert_eq!(server.shutdown_and_wait(), DrainOutcome::Clean);
}

#[test]
fn expired_deadline_yields_unknown_verdicts_not_a_hang() {
    let (server, addr) = start(base_cfg());
    let mut client = client_for(&addr);
    let mut fields = verify_fields("Decoder");
    fields.push(("deadline_ms".to_string(), 0.0.into()));
    fields.push(("no_cache".to_string(), Value::Bool(true)));
    let resp = client.request("verify", fields).unwrap();
    assert_eq!(resp.get("status").and_then(Value::as_str), Some("ok"));
    assert!(
        result_u64(&resp, "unknown") > 0,
        "an already-expired deadline gives up through the budget path"
    );
    // Nothing undecided may have been cached.
    let stats = server.handle().stats();
    assert_eq!(stats.get("cache_inserts").and_then(Value::as_u64), Some(0));
    server.handle().shutdown();
    assert_eq!(server.shutdown_and_wait(), DrainOutcome::Clean);
}

#[test]
fn watchdog_cancels_requests_overrunning_their_deadline() {
    let mut cfg = base_cfg();
    cfg.workers = 1;
    cfg.watchdog_factor = 1;
    cfg.watchdog_poll = Duration::from_millis(10);
    // The job sleeps 500ms *outside* any solver loop while its request
    // deadline is 50ms: only the watchdog can notice the overrun.
    cfg.fault_plan = Some(Arc::new(FaultPlan::parse("delay:500@*/**1").unwrap()));
    let (server, addr) = start(cfg);
    let handle = server.handle();
    let mut client = client_for(&addr);
    let mut fields = verify_fields("Decoder");
    fields.push(("deadline_ms".to_string(), 50.0.into()));
    let resp = client.request("verify", fields).unwrap();
    // The response still arrives (cancellation is cooperative), but
    // carries unknowns and the watchdog counter moved.
    assert_eq!(resp.get("status").and_then(Value::as_str), Some("ok"));
    assert!(result_u64(&resp, "unknown") > 0);
    let stats = handle.stats();
    assert!(
        stats.get("watchdog_cancelled").and_then(Value::as_u64).unwrap() >= 1,
        "watchdog must have fired: {}",
        stats.to_compact()
    );
    handle.shutdown();
    assert_eq!(server.shutdown_and_wait(), DrainOutcome::Clean);
}

#[test]
fn drain_finishes_inflight_work_and_refuses_new_requests() {
    let mut cfg = base_cfg();
    cfg.workers = 1;
    cfg.fault_plan = Some(Arc::new(FaultPlan::parse("delay:300@*/**1").unwrap()));
    let (server, addr) = start(cfg);
    let handle = server.handle();

    let mut stream_a = TcpStream::connect(&addr).unwrap();
    let mut reader_a = BufReader::new(stream_a.try_clone().unwrap());
    raw_send(&mut stream_a, 1, "verify", ",\"design\":\"Decoder\"");

    // Second connection established (and proven live) before drain.
    let mut stream_b = TcpStream::connect(&addr).unwrap();
    let mut reader_b = BufReader::new(stream_b.try_clone().unwrap());
    raw_send(&mut stream_b, 1, "ping", "");
    let mut line = String::new();
    reader_b.read_line(&mut line).unwrap();

    std::thread::sleep(Duration::from_millis(100));
    handle.shutdown();

    // New work is refused with a definite answer during the drain.
    raw_send(&mut stream_b, 2, "verify", ",\"design\":\"Decoder\"");
    line.clear();
    reader_b.read_line(&mut line).unwrap();
    let refused = gila_json::parse(&line).unwrap();
    assert_eq!(
        refused.get("status").and_then(Value::as_str),
        Some("shutting-down")
    );

    // The in-flight request still completes with a real verdict.
    line.clear();
    reader_a.read_line(&mut line).unwrap();
    let finished = gila_json::parse(&line).unwrap();
    assert_eq!(finished.get("status").and_then(Value::as_str), Some("ok"));
    assert_eq!(
        finished
            .get("result")
            .and_then(|r| r.get("all_hold"))
            .and_then(Value::as_bool),
        Some(true)
    );

    assert_eq!(server.shutdown_and_wait(), DrainOutcome::Clean);
}

#[test]
fn client_retries_torn_writes_but_never_a_delivered_response() {
    let (server, addr) = start(base_cfg());
    let handle = server.handle();

    // The client's first write tears mid-frame (disconnect@0*1): the
    // server drops the unsyncable connection, the client reconnects
    // and retries — legal, because no response was ever received.
    let mut cfg = ClientConfig::new(Endpoint::Tcp(addr.clone()));
    cfg.retries = 4;
    cfg.base_delay = Duration::from_millis(10);
    cfg.seed = 3;
    cfg.fault_plan = Some(Arc::new(FaultPlan::parse("disconnect@0*1").unwrap()));
    let mut client = Client::connect(cfg);
    let resp = client.request("verify", verify_fields("Decoder")).unwrap();
    assert_eq!(resp.get("status").and_then(Value::as_str), Some("ok"));

    // Exactly one verify reached a worker: the retry did not duplicate
    // an already-answered request (the torn first attempt never
    // parsed). The responses counter is bumped by the worker after the
    // reply hits the wire, so give it a moment to settle.
    let settle = Instant::now() + Duration::from_secs(2);
    while handle.stats().get("responses").and_then(Value::as_u64) != Some(1) {
        assert!(Instant::now() < settle, "responses counter never reached 1");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(handle.stats().get("requests").and_then(Value::as_u64), Some(1));

    // An injected io-error before any bytes move is equally retryable.
    let mut cfg = ClientConfig::new(Endpoint::Tcp(addr.clone()));
    cfg.retries = 4;
    cfg.base_delay = Duration::from_millis(10);
    cfg.seed = 5;
    cfg.fault_plan = Some(Arc::new(FaultPlan::parse("io-error@0*1").unwrap()));
    let mut client = Client::connect(cfg);
    let resp = client.request("ping", vec![]).unwrap();
    assert_eq!(resp.get("result").and_then(Value::as_str), Some("pong"));

    handle.shutdown();
    assert_eq!(server.shutdown_and_wait(), DrainOutcome::Clean);
}

#[test]
fn slow_client_frames_are_tolerated() {
    let (server, addr) = start(base_cfg());
    let mut cfg = ClientConfig::new(Endpoint::Tcp(addr));
    // Every write from this client stalls 100ms mid-frame; the daemon
    // must reassemble the dribbled frame rather than time out or tear.
    cfg.fault_plan = Some(Arc::new(FaultPlan::parse("slow-client:100@*").unwrap()));
    let mut client = Client::connect(cfg);
    let resp = client.request("verify", verify_fields("Decoder")).unwrap();
    assert_eq!(resp.get("status").and_then(Value::as_str), Some("ok"));
    server.handle().shutdown();
    assert_eq!(server.shutdown_and_wait(), DrainOutcome::Clean);
}

#[test]
fn oversized_and_malformed_frames_get_answers_where_possible() {
    let (server, addr) = start(base_cfg());

    // Malformed JSON: answerable (id 0), connection stays usable.
    let mut stream = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    stream.write_all(b"{not json\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let resp = gila_json::parse(&line).unwrap();
    assert_eq!(resp.get("status").and_then(Value::as_str), Some("error"));
    // Still alive: a valid ping on the same connection works.
    raw_send(&mut stream, 5, "ping", "");
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("pong"));

    // An oversized frame is unrecoverable: the daemon hangs up rather
    // than buffering without bound.
    let mut stream = TcpStream::connect(&addr).unwrap();
    let huge = vec![b'x'; gila_serve::MAX_FRAME_BYTES + 64];
    // Write may fail partway once the server closes its end; both
    // outcomes (short write error or EOF on read) prove the hang-up.
    let write_result = stream.write_all(&huge);
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let read_result = reader.read_line(&mut line);
    assert!(
        write_result.is_err() || matches!(read_result, Ok(0)) || read_result.is_err(),
        "oversized frame must sever the connection"
    );

    server.handle().shutdown();
    assert_eq!(server.shutdown_and_wait(), DrainOutcome::Clean);
}
