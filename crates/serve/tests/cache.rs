//! Proof-cache behavior: content-key semantics, journal recovery
//! edge cases, eviction, compaction, and the end-to-end warm-path
//! invariant (`solves == 0`, incremental re-proving) driven through
//! the [`gila_serve::Service`] layer in-process.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

use gila_json::Value;
use gila_serve::{CacheConfig, ProofCache, Service};
use gila_smt::CancelToken;
use gila_trace::Tracer;
use gila_verify::{slice_keys, CACHE_KEY_VERSION};

fn tmp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "gila-serve-cache-{}-{}-{name}.jsonl",
        std::process::id(),
        std::thread::current().name().unwrap_or("t").replace("::", "-"),
    ));
    let _ = std::fs::remove_file(&p);
    p
}

/// Two independent counters: `inc_a` touches only `cnt_a`, `inc_b`
/// only `cnt_b`. Every instruction's *RTL* slice spans all mapped
/// state (each check compares every correspondence), but the *ILA*
/// semantics are hashed per instruction — so editing one
/// instruction's ILA update perturbs only that instruction's key.
const ILA: &str = r#"
port pair {
  input sel : bv1
  output state cnt_a : bv4 init 0
  output state cnt_b : bv4 init 0

  instr inc_a when sel == 0 { cnt_a := cnt_a + 1 }
  instr inc_b when sel == 1 { cnt_b := cnt_b + 2 }
}
"#;

const RTL: &str = r#"
module pair(clk, sel_in);
  input clk; input sel_in;
  reg [3:0] ra;
  reg [3:0] rb;
  always @(posedge clk) begin
    if (!sel_in) ra <= ra + 4'd1;
    if (sel_in) rb <= rb + 4'd2;
  end
endmodule
"#;

/// Same spec, but `inc_b` now claims to add 3: only `inc_b`'s slice
/// hash may change (and re-proving it against the unchanged RTL,
/// which adds 2, must fail).
const ILA_EDITED: &str = r#"
port pair {
  input sel : bv1
  output state cnt_a : bv4 init 0
  output state cnt_b : bv4 init 0

  instr inc_a when sel == 0 { cnt_a := cnt_a + 1 }
  instr inc_b when sel == 1 { cnt_b := cnt_b + 3 }
}
"#;

fn refmap_json() -> String {
    let mut map = gila_verify::RefinementMap::new("pair");
    map.map_state("cnt_a", "ra");
    map.map_state("cnt_b", "rb");
    map.map_input("sel", "sel_in");
    map.to_json()
}

fn parsed() -> (
    gila_core::ModuleIla,
    gila_rtl::RtlModule,
    Vec<gila_verify::RefinementMap>,
) {
    let ila = gila_lang::parse_ila(ILA).unwrap();
    let rtl = gila_rtl::parse_verilog(RTL).unwrap();
    let map = gila_verify::RefinementMap::from_json(&refmap_json()).unwrap();
    (ila, rtl, vec![map])
}

// ---------------------------------------------------------------
// Content-key semantics.

#[test]
fn slice_keys_are_deterministic_and_distinct_per_instruction() {
    let (ila, rtl, maps) = parsed();
    let k1 = slice_keys(&ila, &rtl, &maps).unwrap();
    let k2 = slice_keys(&ila, &rtl, &maps).unwrap();
    assert_eq!(k1.len(), 2);
    for (a, b) in k1.iter().zip(&k2) {
        assert_eq!((&a.port, &a.instruction, &a.key), (&b.port, &b.instruction, &b.key));
        assert_eq!(a.key.len(), 32, "dual-lane FNV key is 32 hex chars");
    }
    let distinct: BTreeSet<&str> = k1.iter().map(|k| k.key.as_str()).collect();
    assert_eq!(distinct.len(), 2, "different instructions, different keys");
}

#[test]
fn editing_one_instruction_perturbs_only_its_key() {
    let (ila, rtl, maps) = parsed();
    let ila2 = gila_lang::parse_ila(ILA_EDITED).unwrap();
    let before = slice_keys(&ila, &rtl, &maps).unwrap();
    let after = slice_keys(&ila2, &rtl, &maps).unwrap();
    let get = |keys: &[gila_verify::SliceKey], instr: &str| {
        keys.iter().find(|k| k.instruction == instr).unwrap().key.clone()
    };
    assert_eq!(
        get(&before, "inc_a"),
        get(&after, "inc_a"),
        "untouched instruction keeps its key (COI slicing isolates it)"
    );
    assert_ne!(
        get(&before, "inc_b"),
        get(&after, "inc_b"),
        "edited instruction's key must change"
    );
}

// ---------------------------------------------------------------
// Journal recovery edge cases.

fn warm_journal(path: &std::path::Path) -> (Vec<String>, Vec<String>) {
    // Produce a genuine journal by running a cold verify through the
    // service, then return its lines and keys.
    let cache = Arc::new(
        ProofCache::open(CacheConfig {
            path: Some(path.to_path_buf()),
            ..CacheConfig::default()
        })
        .unwrap(),
    );
    let service = Service::new(Arc::clone(&cache), Tracer::disabled(), None, None);
    let resp = service.execute(&inline_verify_request(1), CancelToken::new(), None);
    assert_eq!(resp.get("status").and_then(Value::as_str), Some("ok"));
    cache.flush_and_compact().unwrap();
    let text = std::fs::read_to_string(path).unwrap();
    let lines: Vec<String> = text.lines().map(String::from).collect();
    let keys = lines
        .iter()
        .map(|l| {
            gila_json::parse(l).unwrap().get("key").unwrap().as_str().unwrap().to_string()
        })
        .collect();
    (lines, keys)
}

fn inline_verify_request(id: u64) -> gila_serve::Request {
    let frame = Value::object(vec![
        ("gila".into(), 1.0.into()),
        ("id".into(), (id as f64).into()),
        ("op".into(), "verify".into()),
        ("ila".into(), ILA.into()),
        ("rtl".into(), RTL.into()),
        ("maps".into(), Value::Array(vec![refmap_json().into()])),
    ]);
    gila_serve::protocol::parse_request(frame).unwrap()
}

fn reopen(path: &std::path::Path) -> ProofCache {
    ProofCache::open(CacheConfig {
        path: Some(path.to_path_buf()),
        ..CacheConfig::default()
    })
    .unwrap()
}

#[test]
fn empty_journal_recovers_to_empty_cache() {
    let path = tmp_path("empty");
    std::fs::write(&path, "").unwrap();
    let cache = reopen(&path);
    assert_eq!(cache.recovery().recovered, 0);
    assert_eq!(cache.recovery().dropped, 0);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn torn_final_line_is_dropped_rest_recovered() {
    let path = tmp_path("torn");
    let (lines, _) = warm_journal(&path);
    assert_eq!(lines.len(), 2);
    // Tear the last record mid-line, as kill -9 during a write would.
    let torn = format!("{}\n{}", lines[0], &lines[1][..lines[1].len() / 2]);
    std::fs::write(&path, torn).unwrap();
    let cache = reopen(&path);
    assert_eq!(cache.recovery().recovered, 1, "intact record survives");
    assert_eq!(cache.recovery().dropped, 1, "torn tail dropped, not trusted");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn interior_corrupt_record_is_dropped_not_fatal() {
    let path = tmp_path("corrupt");
    let (lines, _) = warm_journal(&path);
    let corrupted = format!("{}\n{{\"key\": garbage!!\n{}\n", lines[0], lines[1]);
    std::fs::write(&path, corrupted).unwrap();
    let cache = reopen(&path);
    assert_eq!(cache.recovery().recovered, 2, "records around the damage survive");
    assert_eq!(cache.recovery().dropped, 1);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn duplicate_keys_resolve_last_writer_wins_deterministically() {
    let path = tmp_path("dup");
    let (lines, keys) = warm_journal(&path);
    // Append a duplicate of record 0: same key, appears later.
    let duplicated = format!("{}\n{}\n{}\n", lines[0], lines[1], lines[0]);
    std::fs::write(&path, duplicated).unwrap();
    let cache = reopen(&path);
    assert_eq!(
        cache.recovery().recovered, 2,
        "three lines, two keys: the duplicate replaces, never double-counts"
    );
    assert!(cache.lookup(&keys[0]).is_some());
    assert!(cache.lookup(&keys[1]).is_some());
    let stats = cache.stats();
    assert_eq!(stats.entries, 2);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn stale_key_version_records_are_dropped() {
    let path = tmp_path("ckv");
    let (lines, _) = warm_journal(&path);
    let current = format!("\"ckv\":{CACHE_KEY_VERSION}");
    let stale = lines[0].replace(&current, "\"ckv\":999");
    assert_ne!(stale, lines[0], "test must actually rewrite the version");
    std::fs::write(&path, format!("{stale}\n{}\n", lines[1])).unwrap();
    let cache = reopen(&path);
    assert_eq!(cache.recovery().recovered, 1);
    assert_eq!(cache.recovery().dropped, 1, "future key-derivation versions are not trusted");
    let _ = std::fs::remove_file(&path);
}

/// A journal written before the absint lemma pipeline (key-derivation
/// version 1) must miss on recovery, not be credited to the v2
/// pipeline: the version tag is exactly how a stale pre-absint entry
/// is kept from skipping work it never proved.
#[test]
fn pre_absint_v1_journal_entries_are_dropped_on_recovery() {
    assert!(
        CACHE_KEY_VERSION >= 2,
        "the absint lemma pipeline bumped the key version past 1"
    );
    let path = tmp_path("ckv-v1");
    let (lines, keys) = warm_journal(&path);
    let current = format!("\"ckv\":{CACHE_KEY_VERSION}");
    let pre_absint = lines[0].replace(&current, "\"ckv\":1");
    assert_ne!(pre_absint, lines[0], "test must actually rewrite the version");
    std::fs::write(&path, format!("{pre_absint}\n{}\n", lines[1])).unwrap();
    let cache = reopen(&path);
    assert_eq!(cache.recovery().recovered, 1);
    assert_eq!(cache.recovery().dropped, 1, "pre-absint records are not trusted");
    // The downgraded record's key no longer resolves; its sibling does.
    assert!(cache.lookup(&keys[0]).is_none());
    assert!(cache.lookup(&keys[1]).is_some());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn eviction_respects_entry_budget_and_compaction_shrinks_journal() {
    let path = tmp_path("evict");
    let (_, keys) = warm_journal(&path);
    // Reopen with room for one entry: recovery itself must evict.
    let cache = ProofCache::open(CacheConfig {
        path: Some(path.clone()),
        max_entries: 1,
        ..CacheConfig::default()
    })
    .unwrap();
    assert_eq!(cache.stats().entries, 1);
    assert_eq!(cache.stats().evictions, 1);
    cache.flush_and_compact().unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    assert_eq!(text.lines().count(), 1, "compaction rewrites only the resident set");
    // Whichever key survived must still resolve.
    let survivors: Vec<_> = keys.iter().filter(|k| cache.lookup(k).is_some()).collect();
    assert_eq!(survivors.len(), 1);
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------
// The warm-path invariant, end to end through the service.

#[test]
fn warm_verify_does_zero_solver_work_and_edits_reprove_only_changed_slices() {
    let path = tmp_path("warm");
    let cache = Arc::new(
        ProofCache::open(CacheConfig {
            path: Some(path.clone()),
            ..CacheConfig::default()
        })
        .unwrap(),
    );
    let service = Service::new(Arc::clone(&cache), Tracer::disabled(), None, None);

    let field = |resp: &Value, name: &str| -> u64 {
        resp.get("result").unwrap().get(name).unwrap().as_u64().unwrap()
    };

    // Cold: everything is a miss and the solver runs.
    let cold = service.execute(&inline_verify_request(1), CancelToken::new(), None);
    assert_eq!(cold.get("status").and_then(Value::as_str), Some("ok"));
    assert_eq!(field(&cold, "cache_hits"), 0);
    assert_eq!(field(&cold, "cache_misses"), 2);
    assert!(field(&cold, "solves") > 0, "cold run must actually solve");

    // Warm: zero solver work, proven by telemetry.
    let warm = service.execute(&inline_verify_request(2), CancelToken::new(), None);
    assert_eq!(field(&warm, "cache_hits"), 2);
    assert_eq!(field(&warm, "cache_misses"), 0);
    assert_eq!(field(&warm, "solves"), 0, "a fully-warm request costs no solves");
    assert_eq!(
        warm.get("result").unwrap().get("all_hold").and_then(Value::as_bool),
        Some(true)
    );

    // Edit one instruction's ILA semantics: exactly one slice re-proves.
    let edited_frame = Value::object(vec![
        ("gila".into(), 1.0.into()),
        ("id".into(), 3.0.into()),
        ("op".into(), "verify".into()),
        ("ila".into(), ILA_EDITED.into()),
        ("rtl".into(), RTL.into()),
        ("maps".into(), Value::Array(vec![refmap_json().into()])),
    ]);
    let req = gila_serve::protocol::parse_request(edited_frame).unwrap();
    let edited = service.execute(&req, CancelToken::new(), None);
    assert_eq!(field(&edited, "cache_hits"), 1, "untouched slice hits");
    assert_eq!(field(&edited, "cache_misses"), 1, "edited slice re-proves");
    assert!(field(&edited, "solves") > 0);
    // (ILA_EDITED's inc_b claims +3 where the RTL does +2: the
    // re-proved slice must now *fail*, proving the cache didn't mask
    // the edit.)
    assert_eq!(
        edited.get("result").unwrap().get("all_hold").and_then(Value::as_bool),
        Some(false)
    );

    let _ = std::fs::remove_file(&path);
}

#[test]
fn cancelled_request_reports_unknown_not_wrong_answers() {
    let cache = Arc::new(ProofCache::open(CacheConfig::default()).unwrap());
    let service = Service::new(Arc::clone(&cache), Tracer::disabled(), None, None);
    let cancel = CancelToken::new();
    cancel.cancel();
    let resp = service.execute(&inline_verify_request(9), cancel, Some(Duration::from_secs(5)));
    assert_eq!(resp.get("status").and_then(Value::as_str), Some("ok"));
    let result = resp.get("result").unwrap();
    assert_eq!(result.get("all_hold").and_then(Value::as_bool), Some(false));
    assert!(
        result.get("unknown").and_then(Value::as_u64).unwrap() > 0,
        "cancellation yields Unknown verdicts, never fabricated ones"
    );
    // Nothing undecided may have been journaled.
    assert_eq!(cache.stats().inserts, 0);
}
