//! Request execution: design resolution, the cache seam, and the
//! bridge into `gila-verify`.
//!
//! The cache seam is deliberately thin. A `verify` request is keyed
//! per instruction by [`gila_verify::slice_keys`]; hits are injected
//! into [`VerifyOptions::decided`], which the engine's resume
//! machinery treats exactly like checkpointed verdicts — the jobs are
//! *never scheduled*, so a fully-warm request performs zero solver
//! work (provable from telemetry: `solves == 0`). Misses run
//! normally and their decided verdicts are journaled on the way out.
//! Undecided outcomes (`unknown`, `panicked`) are never cached: "the
//! budget was too small" is a property of the request, not of the
//! design.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use gila_core::ModuleIla;
use gila_designs::CaseStudy;
use gila_json::Value;
use gila_rtl::RtlModule;
use gila_smt::CancelToken;
use gila_trace::{Event, SpanKind, Tracer};
use gila_verify::{
    slice_keys, verify_module, FaultPlan, InstrVerdict, ModuleReport, RefinementMap, VerifyOptions,
};

use crate::cache::ProofCache;
use crate::protocol::{response_error, response_ok, Request};

/// The op-dispatch layer shared by the daemon and in-process callers
/// (benches drive it directly to measure cache behavior without
/// socket noise).
pub struct Service {
    /// The proof cache; shared with the server for stats reporting.
    pub cache: Arc<ProofCache>,
    /// Telemetry; `request`/`cache_hit`/`cache_miss` spans are emitted
    /// here alongside the engine's own spans.
    pub tracer: Tracer,
    /// Verification pool size passed through to [`VerifyOptions::jobs`].
    pub jobs: Option<usize>,
    /// Test-only fault plan, forwarded into the engine and the socket
    /// layer.
    pub fault_plan: Option<Arc<FaultPlan>>,
    designs: Vec<CaseStudy>,
}

impl Service {
    /// Builds the service, constructing the bundled design registry
    /// once (case studies are immutable; requests borrow them).
    pub fn new(
        cache: Arc<ProofCache>,
        tracer: Tracer,
        jobs: Option<usize>,
        fault_plan: Option<Arc<FaultPlan>>,
    ) -> Service {
        Service {
            cache,
            tracer,
            jobs,
            fault_plan,
            designs: gila_designs::all_case_studies(),
        }
    }

    /// Executes one request to a response frame. Never panics across
    /// this boundary: op handlers return `Result` and engine panics
    /// are already isolated by the scheduler.
    pub fn execute(&self, req: &Request, cancel: CancelToken, deadline: Option<Duration>) -> Value {
        let started = Instant::now();
        let outcome = match req.op.as_str() {
            "ping" => Ok(Value::String("pong".into())),
            "verify" => self.op_verify(req, cancel, deadline),
            "lint" => self.op_lint(req),
            "hunt-replay" => self.op_hunt_replay(req),
            other => Err(format!("unknown op {other:?}")),
        };
        let status = if outcome.is_ok() { 1 } else { 0 };
        self.tracer.record(|| {
            Event::new(SpanKind::Request)
                .label(&req.op)
                .field("ok", status)
                .field("wall_ns", started.elapsed().as_nanos() as u64)
                .field("id", req.id)
        });
        match outcome {
            Ok(result) => response_ok(req.id, result),
            Err(message) => response_error(req.id, &message),
        }
    }

    fn find_design(&self, name: &str) -> Result<&CaseStudy, String> {
        self.designs
            .iter()
            .find(|cs| cs.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| {
                let known: Vec<&str> = self.designs.iter().map(|cs| cs.name).collect();
                format!("unknown design {name:?}; bundled designs: {}", known.join(", "))
            })
    }

    /// Resolves a request's verification target: a bundled design by
    /// name, or inline `ila` / `rtl` / `maps` sources.
    fn resolve(
        &self,
        req: &Request,
    ) -> Result<(ModuleIla, RtlModule, Vec<RefinementMap>), String> {
        if let Some(name) = req.str_field("design") {
            let cs = self.find_design(name)?;
            let rtl = if req.body.get("buggy").and_then(Value::as_bool).unwrap_or(false) {
                cs.buggy_rtl
                    .clone()
                    .ok_or_else(|| format!("{} has no bug-injected RTL variant", cs.name))?
            } else {
                cs.rtl.clone()
            };
            return Ok((cs.ila.clone(), rtl, cs.refmaps.clone()));
        }
        let ila_src = req.str_field("ila").ok_or("need \"design\" or inline \"ila\"")?;
        let rtl_src = req.str_field("rtl").ok_or("inline request needs \"rtl\"")?;
        let module = gila_lang::parse_ila(ila_src).map_err(|e| format!("ila: {e}"))?;
        let rtl = gila_rtl::parse_verilog(rtl_src).map_err(|e| format!("rtl: {e}"))?;
        let maps_field = req
            .body
            .get("maps")
            .and_then(Value::as_array)
            .ok_or("inline request needs \"maps\" (array of refinement maps)")?;
        let mut maps = Vec::new();
        for (i, m) in maps_field.iter().enumerate() {
            // Maps may arrive as JSON objects or as pre-serialized
            // strings; both funnel through the one parser.
            let text = match m {
                Value::String(s) => s.clone(),
                other => other.to_compact(),
            };
            maps.push(
                RefinementMap::from_json(&text).map_err(|e| format!("maps[{i}]: {e}"))?,
            );
        }
        Ok((module, rtl, maps))
    }

    fn op_verify(
        &self,
        req: &Request,
        cancel: CancelToken,
        deadline: Option<Duration>,
    ) -> Result<Value, String> {
        let started = Instant::now();
        let (module, rtl, maps) = self.resolve(req)?;
        let use_cache = !req
            .body
            .get("no_cache")
            .and_then(Value::as_bool)
            .unwrap_or(false);

        // Content-address every (port, instruction) slice up front.
        let keys = slice_keys(&module, &rtl, &maps).map_err(|e| e.to_string())?;
        let mut key_of: HashMap<(String, String), String> = HashMap::new();
        let mut decided: HashMap<(String, String), InstrVerdict> = HashMap::new();
        let mut cache_hits = 0u64;
        for sk in &keys {
            key_of.insert((sk.port.clone(), sk.instruction.clone()), sk.key.clone());
            if !use_cache {
                continue;
            }
            if let Some((_, mut verdict)) = self.cache.lookup(&sk.key) {
                // The key is semantic: a verdict cached under another
                // name answers this instruction too. Re-label it, and
                // zero the recorded effort: telemetry must describe
                // *this run*, where the hit cost no solver work — the
                // warm-path invariant `solves == 0` is load-bearing
                // for tests and the bench.
                verdict.instruction = sk.instruction.clone();
                verdict.solves = 0;
                verdict.retries = 0;
                verdict.time = Duration::ZERO;
                verdict.stats = Default::default();
                verdict.cnf_growth = Default::default();
                verdict.effort = Default::default();
                verdict.queue_ns = 0;
                verdict.batch_id = None;
                verdict.batch_size = 0;
                verdict.stolen = false;
                verdict.worker = None;
                verdict.clauses_exported = 0;
                verdict.clauses_imported = 0;
                verdict.clauses_deduped = 0;
                verdict.inprocess = Default::default();
                decided.insert((sk.port.clone(), sk.instruction.clone()), verdict);
                cache_hits += 1;
                self.tracer.record(|| {
                    Event::new(SpanKind::CacheHit)
                        .port(&sk.port)
                        .instruction(&sk.instruction)
                        .field("id", req.id)
                });
            } else {
                self.tracer.record(|| {
                    Event::new(SpanKind::CacheMiss)
                        .port(&sk.port)
                        .instruction(&sk.instruction)
                        .field("id", req.id)
                });
            }
        }
        let cache_misses = keys.len() as u64 - cache_hits;

        let mut opts = VerifyOptions {
            jobs: self.jobs,
            tracer: self.tracer.clone(),
            cancel: Some(cancel),
            decided,
            fault_plan: self.fault_plan.clone(),
            ..VerifyOptions::default()
        };
        // The request deadline caps each solve attempt; the CDCL loop
        // checks it, so an expired request stops mid-solve instead of
        // running to completion after its client gave up.
        opts.budget.timeout = deadline;
        if let Some(conflicts) = req.body.get("conflict_budget").and_then(Value::as_u64) {
            opts.budget.conflicts = Some(conflicts);
        }

        let report = verify_module(&module, &rtl, &maps, &opts).map_err(|e| e.to_string())?;

        // Journal freshly decided verdicts (misses only; hits were
        // seeded and came back verbatim).
        if use_cache {
            for port in &report.ports {
                for v in &port.verdicts {
                    let pair = (port.port.clone(), v.instruction.clone());
                    if opts.decided.contains_key(&pair) {
                        continue;
                    }
                    let decided_result = matches!(
                        v.result,
                        gila_verify::CheckResult::Holds
                            | gila_verify::CheckResult::CounterExample(_)
                            | gila_verify::CheckResult::FinishNotReached { .. }
                    );
                    if !decided_result {
                        continue;
                    }
                    if let Some(key) = key_of.get(&pair) {
                        self.cache.insert(key, &port.port, v);
                    }
                }
            }
        }

        Ok(report_to_json(
            &report,
            cache_hits,
            cache_misses,
            started.elapsed(),
        ))
    }

    fn op_lint(&self, req: &Request) -> Result<Value, String> {
        use gila_lint::{lint_module, lint_rtl, LintOptions};
        let opts = LintOptions {
            jobs: self.jobs.unwrap_or(1).max(1),
            ..LintOptions::default()
        };
        let (target, module, rtl) = if let Some(name) = req.str_field("design") {
            let cs = self.find_design(name)?;
            (cs.name.to_string(), cs.ila.clone(), Some(cs.rtl.clone()))
        } else {
            let src = req.str_field("ila").ok_or("need \"design\" or inline \"ila\"")?;
            let module = gila_lang::parse_ila(src).map_err(|e| format!("ila: {e}"))?;
            let rtl = match req.str_field("rtl") {
                Some(text) => Some(gila_rtl::parse_verilog(text).map_err(|e| format!("rtl: {e}"))?),
                None => None,
            };
            ("inline".to_string(), module, rtl)
        };
        let mut report = lint_module(&target, &module, &opts, &self.tracer);
        if let Some(rtl) = &rtl {
            report.diagnostics.extend(lint_rtl(&target, rtl, &self.tracer));
        }
        Ok(report.to_json())
    }

    fn op_hunt_replay(&self, req: &Request) -> Result<Value, String> {
        let name = req.str_field("design").ok_or("hunt-replay needs \"design\"")?;
        let cs = self.find_design(name)?;
        let buggy = req.body.get("buggy").and_then(Value::as_bool).unwrap_or(false);
        let rtl = if buggy {
            cs.buggy_rtl
                .as_ref()
                .ok_or_else(|| format!("{} has no bug-injected RTL variant", cs.name))?
        } else {
            &cs.rtl
        };
        let stim = req.str_field("stim").ok_or("hunt-replay needs \"stim\"")?;
        let (start, inputs) = parse_stream(stim, rtl)?;
        for port in cs.ila.ports() {
            let Some(map) = cs.refmaps.iter().find(|m| m.name == port.name()) else {
                continue;
            };
            // A stream recorded at another port may simply not decode
            // here; that is not an error for replay.
            match gila_verify::replay_compiled(port, rtl, map, &start, &inputs) {
                Ok(Some(d)) => {
                    return Ok(Value::object(vec![
                        ("reproduced".into(), Value::Bool(true)),
                        ("design".into(), cs.name.into()),
                        ("port".into(), port.name().into()),
                        ("cycle".into(), (d.cycle as f64).into()),
                        ("instruction".into(), d.instruction.clone().into()),
                        ("state".into(), d.state.clone().into()),
                        ("ila".into(), gila_verify::render_value(&d.ila_value).into()),
                        ("rtl".into(), gila_verify::render_value(&d.rtl_value).into()),
                    ]));
                }
                Ok(None) | Err(_) => {}
            }
        }
        Ok(Value::object(vec![
            ("reproduced".into(), Value::Bool(false)),
            ("design".into(), cs.name.into()),
            ("cycles".into(), (inputs.len() as f64).into()),
        ]))
    }
}

/// Renders a verification report plus cache accounting as the
/// `verify` op's result object.
fn report_to_json(
    report: &ModuleReport,
    cache_hits: u64,
    cache_misses: u64,
    wall: Duration,
) -> Value {
    let mut unknown = 0u64;
    let ports: Vec<Value> = report
        .ports
        .iter()
        .map(|p| {
            let verdicts: Vec<Value> = p
                .verdicts
                .iter()
                .map(|v| {
                    if v.result.is_unknown() || v.result.is_panicked() {
                        unknown += 1;
                    }
                    Value::object(vec![
                        ("instruction".into(), v.instruction.clone().into()),
                        ("result".into(), v.result.tag().into()),
                        ("solves".into(), (v.solves as f64).into()),
                        ("time_ms".into(), (v.time.as_millis() as f64).into()),
                    ])
                })
                .collect();
            Value::object(vec![
                ("port".into(), p.port.clone().into()),
                ("all_hold".into(), Value::Bool(p.all_hold())),
                ("verdicts".into(), Value::Array(verdicts)),
            ])
        })
        .collect();
    let total = cache_hits + cache_misses;
    let hit_rate = if total == 0 {
        0.0
    } else {
        cache_hits as f64 / total as f64
    };
    Value::object(vec![
        ("module".into(), report.module.clone().into()),
        ("all_hold".into(), Value::Bool(report.all_hold())),
        ("ports".into(), Value::Array(ports)),
        ("solves".into(), (report.telemetry.solves as f64).into()),
        ("conflicts".into(), (report.telemetry.conflicts as f64).into()),
        ("unknown".into(), (unknown as f64).into()),
        ("cache_hits".into(), (cache_hits as f64).into()),
        ("cache_misses".into(), (cache_misses as f64).into()),
        ("cache_hit_rate".into(), hit_rate.into()),
        ("wall_ms".into(), (wall.as_millis() as f64).into()),
    ])
}

/// Parses the hunter's recorded command-stream format: `# start
/// name=value` lines fix the RTL start state, every other non-comment
/// line is one cycle of `input=value` tokens.
fn parse_stream(
    text: &str,
    rtl: &RtlModule,
) -> Result<
    (
        std::collections::BTreeMap<String, gila_expr::Value>,
        Vec<std::collections::BTreeMap<String, gila_expr::BitVecValue>>,
    ),
    String,
> {
    use gila_expr::Sort;
    let state_sort = |name: &str| -> Option<Sort> {
        rtl.regs()
            .iter()
            .find(|r| r.name == name)
            .map(|r| Sort::Bv(r.width))
            .or_else(|| {
                rtl.mems().iter().find(|m| m.name == name).map(|m| Sort::Mem {
                    addr_width: m.addr_width,
                    data_width: m.data_width,
                })
            })
    };
    let mut start = std::collections::BTreeMap::new();
    let mut inputs = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("# start ") {
            let (name, v) = rest
                .split_once('=')
                .ok_or_else(|| format!("line {}: bad start entry {rest:?}", ln + 1))?;
            let name = name.trim();
            let sort = state_sort(name)
                .ok_or_else(|| format!("line {}: unknown RTL state {name:?}", ln + 1))?;
            let v = gila_verify::parse_value(v.trim(), sort)
                .ok_or_else(|| format!("line {}: bad value for {name:?}", ln + 1))?;
            start.insert(name.to_string(), v);
        } else if t.is_empty() || t.starts_with('#') {
            continue;
        } else {
            let mut vec = std::collections::BTreeMap::new();
            for tok in t.split_whitespace() {
                let (name, v) = tok
                    .split_once('=')
                    .ok_or_else(|| format!("line {}: bad stimulus token {tok:?}", ln + 1))?;
                let width = rtl
                    .find_input(name)
                    .map(|i| i.width)
                    .ok_or_else(|| format!("line {}: unknown RTL input {name:?}", ln + 1))?;
                let v = gila_verify::parse_bv(v, width)
                    .ok_or_else(|| format!("line {}: bad literal in {tok:?}", ln + 1))?;
                vec.insert(name.to_string(), v);
            }
            inputs.push(vec);
        }
    }
    Ok((start, inputs))
}
