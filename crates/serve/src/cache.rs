//! The content-addressed proof cache.
//!
//! Verdicts are keyed by [`gila_verify::SliceKey`]: a canonical hash
//! of the COI-sliced transition system, the instruction's ILA
//! semantics, the correspondence obligations, and the
//! semantically-relevant verification directives. Two requests that
//! hash to the same key are asking the *same mathematical question*,
//! so a cached verdict may be returned without solver work — the
//! soundness argument lives with the key derivation in
//! `gila-verify::cache_key` and in `DESIGN.md`.
//!
//! Persistence reuses the checkpoint journal discipline from the
//! resume machinery: one flushed JSONL line per verdict, append-only,
//! torn-tail tolerant. A cache line is exactly a checkpoint entry
//! (via [`gila_verify::verdict_to_json`]) plus two fields: `"key"`
//! (the content hash) and `"ckv"` (the key-derivation version). On
//! startup the journal is replayed: corrupt or torn records are
//! *dropped and counted*, never trusted — a half-written line after
//! `kill -9` costs one cache entry, not the daemon. Later records win
//! over earlier ones for the same key, so the journal is a log, not a
//! map, and appends never need a read-modify-write cycle.
//!
//! The in-memory index is bounded by an entry count and a byte budget
//! with LRU eviction. Eviction only drops the index entry; the
//! journal shrinks at [`ProofCache::flush_and_compact`] (called on
//! graceful drain), which rewrites it to exactly the resident set via
//! a temp-file + rename so a crash mid-compaction leaves either the
//! old journal or the new one, both valid.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use gila_json::Value;
use gila_verify::{parse_journal_entry, verdict_to_json, InstrVerdict, JournalEntry, CACHE_KEY_VERSION};

/// Configuration for [`ProofCache::open`].
#[derive(Clone, Debug)]
pub struct CacheConfig {
    /// Journal path; `None` runs the cache in-memory only.
    pub path: Option<PathBuf>,
    /// Byte budget for the resident index (sum of journal-line sizes).
    pub max_bytes: u64,
    /// Entry budget for the resident index.
    pub max_entries: usize,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            path: None,
            max_bytes: 64 * 1024 * 1024,
            max_entries: 100_000,
        }
    }
}

/// What journal replay found at startup.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Verdicts recovered into the index.
    pub recovered: u64,
    /// Records dropped: torn tail, corrupt JSON, missing/mismatched
    /// key fields, undecided outcomes, stale key-derivation version.
    pub dropped: u64,
}

/// Point-in-time cache counters, for `--stats` and the `stats` op.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Resident entries.
    pub entries: u64,
    /// Resident bytes (journal-line proxy).
    pub bytes: u64,
    /// Lookup hits since open.
    pub hits: u64,
    /// Lookup misses since open.
    pub misses: u64,
    /// Verdicts inserted since open.
    pub inserts: u64,
    /// Entries evicted by the LRU/byte budget since open.
    pub evictions: u64,
    /// Verdicts recovered from the journal at open.
    pub recovered: u64,
    /// Journal records dropped at open.
    pub recovery_dropped: u64,
}

struct CacheEntry {
    port: String,
    verdict: InstrVerdict,
    line_bytes: u64,
    last_used: u64,
}

struct CacheInner {
    map: HashMap<String, CacheEntry>,
    clock: u64,
    bytes: u64,
    journal: Option<BufWriter<File>>,
    hits: u64,
    misses: u64,
    inserts: u64,
    evictions: u64,
}

/// A thread-safe, journal-backed, content-addressed verdict store.
pub struct ProofCache {
    cfg: CacheConfig,
    recovery: RecoveryStats,
    inner: Mutex<CacheInner>,
}

fn entry_line(key: &str, port: &str, verdict: &InstrVerdict) -> String {
    let mut obj = match verdict_to_json(port, verdict) {
        Value::Object(fields) => fields,
        other => vec![("entry".into(), other)],
    };
    obj.push(("key".into(), key.into()));
    obj.push(("ckv".into(), (CACHE_KEY_VERSION as f64).into()));
    let mut line = Value::Object(obj).to_compact();
    line.push('\n');
    line
}

impl ProofCache {
    /// Opens the cache, replaying the journal when `cfg.path` exists.
    pub fn open(cfg: CacheConfig) -> std::io::Result<ProofCache> {
        let mut map: HashMap<String, CacheEntry> = HashMap::new();
        let mut clock = 0u64;
        let mut bytes = 0u64;
        let mut recovery = RecoveryStats::default();
        if let Some(path) = &cfg.path {
            if path.exists() {
                let text = std::fs::read_to_string(path)?;
                for line in text.lines() {
                    if line.trim().is_empty() {
                        continue;
                    }
                    match replay_line(line) {
                        Some((key, port, verdict)) => {
                            let line_bytes = line.len() as u64 + 1;
                            clock += 1;
                            if let Some(old) = map.insert(
                                key,
                                CacheEntry {
                                    port,
                                    verdict,
                                    line_bytes,
                                    last_used: clock,
                                },
                            ) {
                                // Last writer wins; the superseded
                                // record no longer counts as resident.
                                bytes -= old.line_bytes;
                                recovery.recovered -= 1;
                            }
                            bytes += line_bytes;
                            recovery.recovered += 1;
                        }
                        None => recovery.dropped += 1,
                    }
                }
            }
        }
        let journal = match &cfg.path {
            Some(path) => Some(BufWriter::new(
                OpenOptions::new().create(true).append(true).open(path)?,
            )),
            None => None,
        };
        let cache = ProofCache {
            cfg,
            recovery,
            inner: Mutex::new(CacheInner {
                map,
                clock,
                bytes,
                journal,
                hits: 0,
                misses: 0,
                inserts: 0,
                evictions: 0,
            }),
        };
        // Recovered state must respect the budgets too.
        {
            let mut inner = cache.inner.lock().unwrap();
            cache.enforce_budgets(&mut inner);
        }
        Ok(cache)
    }

    fn enforce_budgets(&self, inner: &mut CacheInner) {
        while inner.map.len() > self.cfg.max_entries || inner.bytes > self.cfg.max_bytes {
            // Linear LRU scan: resident sets are small enough (bounded
            // by max_entries) that a heap would be ceremony.
            let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            if let Some(e) = inner.map.remove(&victim) {
                inner.bytes -= e.line_bytes;
                inner.evictions += 1;
            }
        }
    }

    /// Looks up a verdict by content key, refreshing its LRU slot.
    /// The returned verdict's `instruction` field is whatever name it
    /// was cached under; callers re-label it for the current design.
    pub fn lookup(&self, key: &str) -> Option<(String, InstrVerdict)> {
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let clock = inner.clock;
        match inner.map.get_mut(key) {
            Some(e) => {
                e.last_used = clock;
                let hit = (e.port.clone(), e.verdict.clone());
                inner.hits += 1;
                Some(hit)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Inserts a decided verdict, appending one flushed journal line.
    /// Undecided outcomes (`unknown`, `panicked`) are rejected by
    /// construction upstream — caching "I gave up" would make a
    /// too-small budget permanent.
    pub fn insert(&self, key: &str, port: &str, verdict: &InstrVerdict) {
        let mut inner = self.inner.lock().unwrap();
        if inner.map.contains_key(key) {
            // Same content key ⇒ same question ⇒ same answer; just
            // refresh the LRU slot instead of duplicating the line.
            inner.clock += 1;
            let clock = inner.clock;
            if let Some(e) = inner.map.get_mut(key) {
                e.last_used = clock;
            }
            return;
        }
        let line = entry_line(key, port, verdict);
        if let Some(journal) = &mut inner.journal {
            // One write + flush per record: the journal grows by whole
            // lines, so a crash can tear at most the final one.
            let _ = journal.write_all(line.as_bytes());
            let _ = journal.flush();
        }
        inner.clock += 1;
        let clock = inner.clock;
        inner.bytes += line.len() as u64;
        inner.inserts += 1;
        inner.map.insert(
            key.to_string(),
            CacheEntry {
                port: port.to_string(),
                verdict: verdict.clone(),
                line_bytes: line.len() as u64,
                last_used: clock,
            },
        );
        self.enforce_budgets(&mut inner);
    }

    /// Rewrites the journal to exactly the resident set (temp file +
    /// rename, crash-safe) and flushes. Called on graceful drain.
    pub fn flush_and_compact(&self) -> std::io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        let Some(path) = self.cfg.path.clone() else {
            return Ok(());
        };
        if let Some(journal) = &mut inner.journal {
            journal.flush()?;
        }
        let tmp = path.with_extension("jsonl.tmp");
        {
            let mut w = BufWriter::new(File::create(&tmp)?);
            let mut entries: Vec<(&String, &CacheEntry)> = inner.map.iter().collect();
            entries.sort_by_key(|(_, e)| e.last_used);
            for (key, e) in entries {
                w.write_all(entry_line(key, &e.port, &e.verdict).as_bytes())?;
            }
            w.flush()?;
        }
        // Drop the append handle before replacing the file under it.
        inner.journal = None;
        std::fs::rename(&tmp, &path)?;
        inner.journal = Some(BufWriter::new(
            OpenOptions::new().create(true).append(true).open(&path)?,
        ));
        inner.bytes = inner.map.values().map(|e| e.line_bytes).sum();
        Ok(())
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap();
        CacheStats {
            entries: inner.map.len() as u64,
            bytes: inner.bytes,
            hits: inner.hits,
            misses: inner.misses,
            inserts: inner.inserts,
            evictions: inner.evictions,
            recovered: self.recovery.recovered,
            recovery_dropped: self.recovery.dropped,
        }
    }

    /// What journal replay found at open time.
    pub fn recovery(&self) -> RecoveryStats {
        self.recovery
    }

    /// The journal path, if persistent.
    pub fn path(&self) -> Option<&Path> {
        self.cfg.path.as_deref()
    }
}

/// Parses one journal line into `(key, port, verdict)`, or `None` if
/// the record must be dropped (torn, corrupt, undecided, or from a
/// different key-derivation version).
fn replay_line(line: &str) -> Option<(String, String, InstrVerdict)> {
    let value = gila_json::parse(line).ok()?;
    let key = value.get("key")?.as_str()?.to_string();
    let ckv = value.get("ckv")?.as_u64()?;
    if ckv != CACHE_KEY_VERSION as u64 {
        return None;
    }
    match parse_journal_entry(&value).ok()? {
        JournalEntry::Decided { port, verdict, .. } => Some((key, port, *verdict)),
        JournalEntry::Undecided { .. } => None,
    }
}
