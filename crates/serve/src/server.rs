//! The daemon: listeners, admission control, workers, watchdog,
//! graceful drain.
//!
//! Std-only by construction — threads, blocking sockets with accept
//! polling, a `Mutex<VecDeque>` + `Condvar` admission queue. No async
//! runtime: the concurrency story is one reader thread per
//! connection, a fixed worker pool executing requests, and two
//! housekeeping threads (accept loops poll a shutdown flag; the
//! watchdog scans in-flight requests).
//!
//! Robustness envelope:
//!
//! - **Backpressure**: the admission queue is bounded. A request that
//!   arrives when it is full is *shed immediately* with an
//!   `overloaded` response carrying a `retry_after_ms` hint — the
//!   daemon never queues unboundedly and never blocks the reader
//!   thread on a full queue.
//! - **Deadlines & cancellation**: each request carries a
//!   [`CancelToken`] threaded into the SAT core. A disconnecting
//!   client cancels its queued and in-flight requests; the watchdog
//!   cancels requests overrunning their deadline by a configurable
//!   factor and recycles the worker if it still doesn't return.
//! - **Graceful drain**: `shutdown()` (wired to SIGTERM/SIGINT by the
//!   CLI) stops accepting connections, fails new requests with
//!   `shutting-down`, lets in-flight work finish within a drain
//!   budget, then flushes and compacts the proof-cache journal.

use std::collections::{HashMap, VecDeque};
use std::io::BufReader;
use std::net::TcpListener;
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use gila_json::Value;
use gila_smt::CancelToken;
use gila_trace::{Event, SpanKind, Tracer};
use gila_verify::FaultPlan;

use crate::cache::{CacheConfig, ProofCache};
use crate::protocol::{
    parse_frame, parse_request, read_frame, response_error, response_ok, response_overloaded,
    response_shutting_down, write_frame, FrameCounter, Request, Stream,
};
use crate::service::Service;

/// Where the daemon listens.
#[derive(Clone, Debug)]
pub enum Listen {
    /// A TCP address (`host:port`; port 0 binds ephemerally).
    Tcp(String),
    /// A Unix-domain socket path (removed and re-bound if stale).
    Unix(PathBuf),
}

/// Daemon configuration.
#[derive(Clone)]
pub struct ServeConfig {
    /// Listening endpoints; at least one is required.
    pub listeners: Vec<Listen>,
    /// Proof-cache configuration.
    pub cache: CacheConfig,
    /// Admission-queue bound; requests beyond it are shed.
    pub queue_cap: usize,
    /// Request-executing worker threads.
    pub workers: usize,
    /// Verification pool size per request ([`gila_verify::VerifyOptions::jobs`]).
    pub verify_jobs: Option<usize>,
    /// Deadline applied to requests that don't carry their own.
    pub default_deadline: Option<Duration>,
    /// The watchdog cancels a request once it overruns its deadline by
    /// this factor, and recycles the worker at twice that.
    pub watchdog_factor: u32,
    /// Watchdog scan interval.
    pub watchdog_poll: Duration,
    /// How long a drain waits for in-flight work before giving up.
    pub drain_budget: Duration,
    /// Test-only fault plan (solver and socket faults).
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Telemetry tracer.
    pub tracer: Tracer,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            listeners: Vec::new(),
            cache: CacheConfig::default(),
            queue_cap: 64,
            workers: 2,
            verify_jobs: None,
            default_deadline: None,
            watchdog_factor: 4,
            watchdog_poll: Duration::from_millis(25),
            drain_budget: Duration::from_secs(30),
            fault_plan: None,
            tracer: Tracer::disabled(),
        }
    }
}

/// Why the daemon exited; the CLI maps these to exit codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DrainOutcome {
    /// Every in-flight request finished and the journal was compacted.
    Clean,
    /// The drain budget expired with work still in flight; leftovers
    /// were cancelled. The journal still flushed (it flushes per
    /// record), but was not compacted.
    TimedOut,
}

/// One connection's shared write half: responses from workers and the
/// reader thread interleave at frame granularity under the mutex.
struct Conn {
    writer: Mutex<Stream>,
    frames: FrameCounter,
    alive: AtomicBool,
    /// Cancel tokens of this connection's outstanding requests, keyed
    /// by job sequence number; cancelled en masse when the reader sees
    /// EOF or an error, removed as each job completes.
    tokens: Mutex<Vec<(u64, CancelToken)>>,
}

impl Conn {
    fn send(&self, plan: Option<&Arc<FaultPlan>>, value: &Value) {
        if !self.alive.load(Ordering::Relaxed) {
            return;
        }
        let mut w = self.writer.lock().unwrap();
        if write_frame(&mut *w, value, plan, &self.frames).is_err() {
            self.alive.store(false, Ordering::Relaxed);
        }
    }

    fn drop_dead(&self) {
        self.alive.store(false, Ordering::Relaxed);
        for (_, tok) in self.tokens.lock().unwrap().drain(..) {
            tok.cancel();
        }
    }
}

struct QueuedJob {
    /// Server-wide unique sequence number (clients may reuse ids).
    seq: u64,
    req: Request,
    cancel: CancelToken,
    deadline: Option<Duration>,
    conn: Arc<Conn>,
}

struct InFlight {
    cancel: CancelToken,
    started: Instant,
    deadline: Option<Duration>,
    /// Set when the watchdog already cancelled this request.
    watchdog_fired: bool,
    /// The zombie flag of the worker serving this request; setting it
    /// retires that worker after the current job (a replacement is
    /// spawned immediately).
    worker_zombie: Arc<AtomicBool>,
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    shed: AtomicU64,
    rejected_draining: AtomicU64,
    disconnect_cancelled: AtomicU64,
    watchdog_cancelled: AtomicU64,
    workers_recycled: AtomicU64,
    responses: AtomicU64,
}

struct ServerInner {
    service: Service,
    cfg: ServeConfig,
    queue: Mutex<VecDeque<QueuedJob>>,
    queue_signal: Condvar,
    shutdown: AtomicBool,
    in_flight: Mutex<HashMap<u64, InFlight>>,
    next_job: AtomicU64,
    counters: Counters,
}

/// A handle for stopping and inspecting a running [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    inner: Arc<ServerInner>,
}

/// A running daemon. Dropping it does *not* stop it; call
/// [`Server::shutdown_and_wait`] (or let the process exit).
pub struct Server {
    inner: Arc<ServerInner>,
    /// Actual bound TCP addresses (resolved ephemeral ports).
    pub tcp_addrs: Vec<std::net::SocketAddr>,
    /// Bound Unix socket paths.
    pub unix_paths: Vec<PathBuf>,
    accept_threads: Vec<thread::JoinHandle<()>>,
    watchdog: Option<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// Requests shutdown; returns immediately. The accept loops stop,
    /// queued-but-unstarted work is failed, in-flight work drains.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.queue_signal.notify_all();
    }

    /// True once shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// Server + cache counters as a JSON object (the `stats` op).
    pub fn stats(&self) -> Value {
        self.inner.stats()
    }
}

impl ServerInner {
    fn stats(&self) -> Value {
        let c = &self.counters;
        let cache = self.service.cache.stats();
        Value::object(vec![
            ("requests".into(), (c.requests.load(Ordering::Relaxed) as f64).into()),
            ("responses".into(), (c.responses.load(Ordering::Relaxed) as f64).into()),
            ("shed".into(), (c.shed.load(Ordering::Relaxed) as f64).into()),
            (
                "rejected_draining".into(),
                (c.rejected_draining.load(Ordering::Relaxed) as f64).into(),
            ),
            (
                "disconnect_cancelled".into(),
                (c.disconnect_cancelled.load(Ordering::Relaxed) as f64).into(),
            ),
            (
                "watchdog_cancelled".into(),
                (c.watchdog_cancelled.load(Ordering::Relaxed) as f64).into(),
            ),
            (
                "workers_recycled".into(),
                (c.workers_recycled.load(Ordering::Relaxed) as f64).into(),
            ),
            ("queue_depth".into(), (self.queue.lock().unwrap().len() as f64).into()),
            (
                "in_flight".into(),
                (self.in_flight.lock().unwrap().len() as f64).into(),
            ),
            ("cache_entries".into(), (cache.entries as f64).into()),
            ("cache_bytes".into(), (cache.bytes as f64).into()),
            ("cache_hits".into(), (cache.hits as f64).into()),
            ("cache_misses".into(), (cache.misses as f64).into()),
            ("cache_inserts".into(), (cache.inserts as f64).into()),
            ("cache_evictions".into(), (cache.evictions as f64).into()),
            ("cache_recovered".into(), (cache.recovered as f64).into()),
            (
                "cache_recovery_dropped".into(),
                (cache.recovery_dropped as f64).into(),
            ),
        ])
    }

    /// The reader thread calls this for each parsed request.
    fn dispatch(self: &Arc<Self>, req: Request, conn: &Arc<Conn>) {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        let plan = self.cfg.fault_plan.as_ref();
        match req.op.as_str() {
            // Control-plane ops answer inline on the reader thread:
            // they are cheap and must work even when the queue is full.
            "ping" => {
                conn.send(plan, &response_ok(req.id, Value::String("pong".into())));
                self.counters.responses.fetch_add(1, Ordering::Relaxed);
                return;
            }
            "stats" => {
                conn.send(plan, &response_ok(req.id, self.stats()));
                self.counters.responses.fetch_add(1, Ordering::Relaxed);
                return;
            }
            "shutdown" => {
                conn.send(plan, &response_ok(req.id, Value::String("draining".into())));
                self.counters.responses.fetch_add(1, Ordering::Relaxed);
                self.shutdown.store(true, Ordering::SeqCst);
                self.queue_signal.notify_all();
                return;
            }
            _ => {}
        }
        if self.shutdown.load(Ordering::SeqCst) {
            self.counters.rejected_draining.fetch_add(1, Ordering::Relaxed);
            conn.send(plan, &response_shutting_down(req.id));
            return;
        }
        let mut queue = self.queue.lock().unwrap();
        if queue.len() >= self.cfg.queue_cap {
            // Load shedding: answer *now* with a backoff hint scaled
            // to the backlog, instead of stalling the reader.
            drop(queue);
            self.counters.shed.fetch_add(1, Ordering::Relaxed);
            let retry_ms = 100 * (1 + self.cfg.queue_cap as u64 / self.cfg.workers.max(1) as u64);
            self.cfg.tracer.record(|| {
                Event::new(SpanKind::Shed)
                    .label(&req.op)
                    .field("id", req.id)
                    .field("retry_after_ms", retry_ms)
            });
            conn.send(plan, &response_overloaded(req.id, retry_ms));
            return;
        }
        let seq = self.next_job.fetch_add(1, Ordering::Relaxed);
        let cancel = CancelToken::new();
        conn.tokens.lock().unwrap().push((seq, cancel.clone()));
        let deadline = req.deadline.or(self.cfg.default_deadline);
        queue.push_back(QueuedJob {
            seq,
            req,
            cancel,
            deadline,
            conn: Arc::clone(conn),
        });
        drop(queue);
        self.queue_signal.notify_one();
    }

    /// Worker loop: pull, register, execute, respond — until shutdown
    /// empties the queue or this worker is flagged a zombie.
    fn worker_loop(self: &Arc<Self>, zombie: Arc<AtomicBool>) {
        loop {
            let job = {
                let mut queue = self.queue.lock().unwrap();
                loop {
                    if zombie.load(Ordering::SeqCst) {
                        return;
                    }
                    if let Some(job) = queue.pop_front() {
                        break job;
                    }
                    if self.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    let (q, _timeout) = self
                        .queue_signal
                        .wait_timeout(queue, Duration::from_millis(50))
                        .unwrap();
                    queue = q;
                }
            };
            let plan = self.cfg.fault_plan.as_ref();
            if job.cancel.is_cancelled() {
                // Client disconnected while the job sat queued: all
                // its solver work is saved.
                self.counters.disconnect_cancelled.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            self.in_flight.lock().unwrap().insert(
                job.seq,
                InFlight {
                    cancel: job.cancel.clone(),
                    started: Instant::now(),
                    deadline: job.deadline,
                    watchdog_fired: false,
                    worker_zombie: Arc::clone(&zombie),
                },
            );
            let response = self
                .service
                .execute(&job.req, job.cancel.clone(), job.deadline);
            self.in_flight.lock().unwrap().remove(&job.seq);
            // Keep the connection's token list from growing without
            // bound on long-lived connections.
            job.conn
                .tokens
                .lock()
                .unwrap()
                .retain(|(seq, _)| *seq != job.seq);
            if job.cancel.is_cancelled() && !job.conn.alive.load(Ordering::Relaxed) {
                // Nobody is listening; don't write into a dead socket.
                self.counters.disconnect_cancelled.fetch_add(1, Ordering::Relaxed);
            } else {
                job.conn.send(plan, &response);
                self.counters.responses.fetch_add(1, Ordering::Relaxed);
            }
            if zombie.load(Ordering::SeqCst) {
                return;
            }
        }
    }

    /// Watchdog: cancel deadline overruns, recycle stuck workers.
    fn watchdog_loop(self: &Arc<Self>) {
        let mut shutdown_seen: Option<Instant> = None;
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                // Keep policing deadlines through the drain, but never
                // outlive the drain budget (a wedged job must not pin
                // the watchdog, or shutdown would hang on its join).
                let seen = *shutdown_seen.get_or_insert_with(Instant::now);
                if self.in_flight.lock().unwrap().is_empty()
                    || seen.elapsed() > self.cfg.drain_budget
                {
                    return;
                }
            }
            thread::sleep(self.cfg.watchdog_poll);
            let factor = self.cfg.watchdog_factor.max(1);
            let mut recycle: Vec<Arc<AtomicBool>> = Vec::new();
            {
                let mut in_flight = self.in_flight.lock().unwrap();
                for fl in in_flight.values_mut() {
                    let Some(deadline) = fl.deadline else { continue };
                    let elapsed = fl.started.elapsed();
                    if !fl.watchdog_fired && elapsed > deadline * factor {
                        // Budget enforcement inside the solver should
                        // have returned long ago; force the issue.
                        fl.cancel.cancel();
                        fl.watchdog_fired = true;
                        self.counters.watchdog_cancelled.fetch_add(1, Ordering::Relaxed);
                    } else if fl.watchdog_fired
                        && elapsed > deadline * factor * 2
                        && !fl.worker_zombie.swap(true, Ordering::SeqCst)
                    {
                        // Cancelled and *still* stuck (a job wedged
                        // outside any solver loop): retire the worker
                        // when it eventually returns and backfill now
                        // so throughput doesn't decay.
                        recycle.push(Arc::clone(&fl.worker_zombie));
                    }
                }
            }
            for _ in recycle {
                self.counters.workers_recycled.fetch_add(1, Ordering::Relaxed);
                self.spawn_worker();
            }
        }
    }

    fn spawn_worker(self: &Arc<Self>) {
        let inner = Arc::clone(self);
        let zombie = Arc::new(AtomicBool::new(false));
        thread::Builder::new()
            .name("gila-serve-worker".into())
            .spawn(move || inner.worker_loop(zombie))
            .expect("spawning worker thread");
    }

    fn reader_loop(self: &Arc<Self>, stream: Stream) {
        let Ok(write_half) = stream.try_clone() else {
            return;
        };
        let conn = Arc::new(Conn {
            writer: Mutex::new(write_half),
            frames: FrameCounter::new(),
            alive: AtomicBool::new(true),
            tokens: Mutex::new(Vec::new()),
        });
        let mut reader = BufReader::new(stream);
        let plan = self.cfg.fault_plan.as_ref();
        loop {
            match read_frame(&mut reader) {
                Ok(Some(line)) => {
                    let req = parse_frame(&line).and_then(parse_request);
                    match req {
                        Ok(req) => self.dispatch(req, &conn),
                        Err(e) => {
                            // Envelope errors are answerable (id 0 =
                            // "couldn't read yours"); stay connected.
                            conn.send(plan, &response_error(0, &format!("bad request: {e}")));
                        }
                    }
                }
                // EOF or torn/oversized frame: the stream cannot be
                // resynchronized — cancel everything this connection
                // still has outstanding and hang up.
                Ok(None) | Err(_) => {
                    conn.drop_dead();
                    return;
                }
            }
        }
    }
}

impl Server {
    /// Binds every listener, spawns workers, accept loops, and the
    /// watchdog, and returns the running daemon.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        let cache = Arc::new(ProofCache::open(cfg.cache.clone())?);
        let service = Service::new(
            Arc::clone(&cache),
            cfg.tracer.clone(),
            cfg.verify_jobs,
            cfg.fault_plan.clone(),
        );
        let inner = Arc::new(ServerInner {
            service,
            cfg: cfg.clone(),
            queue: Mutex::new(VecDeque::new()),
            queue_signal: Condvar::new(),
            shutdown: AtomicBool::new(false),
            in_flight: Mutex::new(HashMap::new()),
            next_job: AtomicU64::new(0),
            counters: Counters::default(),
        });
        for _ in 0..cfg.workers.max(1) {
            inner.spawn_worker();
        }
        let mut tcp_addrs = Vec::new();
        let mut unix_paths = Vec::new();
        let mut accept_threads = Vec::new();
        for listen in &cfg.listeners {
            match listen {
                Listen::Tcp(addr) => {
                    let listener = TcpListener::bind(addr)?;
                    listener.set_nonblocking(true)?;
                    tcp_addrs.push(listener.local_addr()?);
                    let inner = Arc::clone(&inner);
                    accept_threads.push(
                        thread::Builder::new()
                            .name("gila-serve-accept".into())
                            .spawn(move || accept_tcp(inner, listener))?,
                    );
                }
                #[cfg(unix)]
                Listen::Unix(path) => {
                    // A stale socket file from a killed daemon blocks
                    // rebinding; recovery means removing it.
                    let _ = std::fs::remove_file(path);
                    let listener = UnixListener::bind(path)?;
                    listener.set_nonblocking(true)?;
                    unix_paths.push(path.clone());
                    let inner = Arc::clone(&inner);
                    accept_threads.push(
                        thread::Builder::new()
                            .name("gila-serve-accept".into())
                            .spawn(move || accept_unix(inner, listener))?,
                    );
                }
                #[cfg(not(unix))]
                Listen::Unix(path) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::Unsupported,
                        format!("unix sockets unsupported here: {}", path.display()),
                    ));
                }
            }
        }
        let watchdog = {
            let inner = Arc::clone(&inner);
            Some(
                thread::Builder::new()
                    .name("gila-serve-watchdog".into())
                    .spawn(move || inner.watchdog_loop())?,
            )
        };
        Ok(Server {
            inner,
            tcp_addrs,
            unix_paths,
            accept_threads,
            watchdog,
        })
    }

    /// A cloneable handle for signal threads and tests.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Blocks until shutdown is requested (via [`ServerHandle::shutdown`]
    /// or a client `shutdown` op), then drains: in-flight work gets
    /// [`ServeConfig::drain_budget`] to finish, stragglers are
    /// cancelled, and the journal is flushed and compacted.
    pub fn shutdown_and_wait(self) -> DrainOutcome {
        while !self.inner.shutdown.load(Ordering::SeqCst) {
            thread::sleep(Duration::from_millis(25));
        }
        let drain_started = Instant::now();
        self.inner.queue_signal.notify_all();
        // Fail whatever never reached a worker: clients get a definite
        // answer instead of a hang.
        {
            let mut queue = self.inner.queue.lock().unwrap();
            let plan = self.inner.cfg.fault_plan.as_ref();
            for job in queue.drain(..) {
                self.inner
                    .counters
                    .rejected_draining
                    .fetch_add(1, Ordering::Relaxed);
                job.conn.send(plan, &response_shutting_down(job.req.id));
            }
        }
        let mut outcome = DrainOutcome::Clean;
        loop {
            if self.inner.in_flight.lock().unwrap().is_empty() {
                break;
            }
            if drain_started.elapsed() > self.inner.cfg.drain_budget {
                outcome = DrainOutcome::TimedOut;
                for fl in self.inner.in_flight.lock().unwrap().values() {
                    fl.cancel.cancel();
                }
                break;
            }
            thread::sleep(Duration::from_millis(10));
        }
        for t in self.accept_threads {
            let _ = t.join();
        }
        if let Some(w) = self.watchdog {
            let _ = w.join();
        }
        // Worker threads exit on their own (shutdown flag + empty
        // queue); the cancelled stragglers of a timed-out drain may
        // still be inside a solve, which is why the journal flushes
        // per record and compaction below tolerates their absence.
        self.inner.cfg.tracer.record(|| {
            Event::new(SpanKind::Drain)
                .label(match outcome {
                    DrainOutcome::Clean => "clean",
                    DrainOutcome::TimedOut => "timed-out",
                })
                .field("wall_ns", drain_started.elapsed().as_nanos() as u64)
        });
        self.inner.cfg.tracer.flush();
        if outcome == DrainOutcome::Clean {
            let _ = self.inner.service.cache.flush_and_compact();
        }
        for path in &self.unix_paths {
            let _ = std::fs::remove_file(path);
        }
        outcome
    }
}

fn accept_tcp(inner: Arc<ServerInner>, listener: TcpListener) {
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                let inner = Arc::clone(&inner);
                let _ = thread::Builder::new()
                    .name("gila-serve-conn".into())
                    .spawn(move || inner.reader_loop(Stream::Tcp(stream)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(20));
            }
            Err(_) => thread::sleep(Duration::from_millis(20)),
        }
    }
}

#[cfg(unix)]
fn accept_unix(inner: Arc<ServerInner>, listener: UnixListener) {
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let inner = Arc::clone(&inner);
                let _ = thread::Builder::new()
                    .name("gila-serve-conn".into())
                    .spawn(move || inner.reader_loop(Stream::Unix(stream)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(20));
            }
            Err(_) => thread::sleep(Duration::from_millis(20)),
        }
    }
}
