//! # gila-serve — a crash-safe verification daemon
//!
//! Long-lived verification as a service: `gila serve` keeps the
//! bundled designs, a worker pool, and a **content-addressed proof
//! cache** resident, so repeated verification of unchanged designs
//! costs zero solver work and editing one instruction re-proves only
//! the slices whose canonical hash changed.
//!
//! Std-only by design: threads, blocking `std::net` TCP and
//! Unix-domain sockets, and newline-delimited `gila-json` frames. No
//! async runtime — the protocol is line-oriented and the unit of
//! concurrency is a request, so an executor would add a dependency
//! and an idiom without removing a single thread.
//!
//! The crate is organized as the daemon's robustness envelope:
//!
//! - [`protocol`] — byte- and depth-capped framing; socket-level
//!   fault injection for tests rides the same write path.
//! - [`cache`] — the proof cache: append-only JSONL journal in the
//!   checkpoint format, torn-tail-tolerant recovery, LRU + byte
//!   budget eviction, crash-safe compaction.
//! - [`service`] — op dispatch and the cache seam into
//!   `gila-verify`'s resume machinery.
//! - [`server`] — admission control (bounded queue, load shedding
//!   with retry hints), per-request deadlines and cancellation,
//!   deadline watchdog with worker recycling, graceful drain.
//! - [`client`] — jittered-exponential-backoff retries that never
//!   re-ask an answered question.

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod protocol;
pub mod server;
pub mod service;

pub use cache::{CacheConfig, CacheStats, ProofCache, RecoveryStats};
pub use client::{Client, ClientConfig, ClientError, Endpoint};
pub use protocol::{Request, MAX_FRAME_BYTES, MAX_FRAME_DEPTH, PROTOCOL_VERSION};
pub use server::{DrainOutcome, Listen, ServeConfig, Server, ServerHandle};
pub use service::Service;
