//! The wire protocol: newline-delimited `gila-json` frames.
//!
//! One frame is one JSON value on one line, terminated by `\n`. Both
//! directions use the same format, so the protocol is symmetric and
//! trivially replayable from a text file. Hostile input is bounded on
//! two axes before any allocation-heavy work happens: a byte cap on
//! the raw line ([`MAX_FRAME_BYTES`]) enforced *while reading*, so an
//! attacker cannot make the daemon buffer an unbounded line, and a
//! nesting cap ([`MAX_FRAME_DEPTH`]) enforced by the parser.
//!
//! Requests carry `{"gila": 1, "id": N, "op": "...", ...}`; responses
//! echo the `id` with `{"id": N, "status": "ok" | "error" |
//! "overloaded" | "shutting-down", ...}`. Unknown fields are ignored
//! on both sides so the schema can grow.

use std::io::{self, BufRead, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use gila_json::{parse_with_limits, ParseLimits, Value};
use gila_verify::{FaultPlan, SocketFault};

/// Protocol version stamped into every request (`"gila": 1`).
pub const PROTOCOL_VERSION: u64 = 1;

/// Hard cap on one frame's raw byte length, including the newline.
/// Inline RTL/ILA sources ride inside frames, so this is generous; it
/// exists to bound memory, not to ration bandwidth.
pub const MAX_FRAME_BYTES: usize = 8 * 1024 * 1024;

/// Hard cap on JSON nesting inside one frame. Protocol values are
/// shallow (3–4 levels); 64 leaves headroom without letting a hostile
/// peer probe the parser's recursion limit.
pub const MAX_FRAME_DEPTH: usize = 64;

/// Reads one newline-delimited frame, enforcing [`MAX_FRAME_BYTES`]
/// *during* the read. Returns `Ok(None)` on clean EOF. A frame that
/// overruns the cap is an [`io::ErrorKind::InvalidData`] error; the
/// connection is unusable afterwards (we cannot resynchronize).
pub fn read_frame(reader: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            // EOF. A non-empty partial line without a newline is a torn
            // frame; report it as such rather than parsing a fragment.
            if line.is_empty() {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "torn frame: EOF before newline",
            ));
        }
        let newline = buf.iter().position(|&b| b == b'\n');
        let take = newline.map(|i| i + 1).unwrap_or(buf.len());
        if line.len() + take > MAX_FRAME_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame exceeds {MAX_FRAME_BYTES} byte limit"),
            ));
        }
        line.extend_from_slice(&buf[..take]);
        reader.consume(take);
        if newline.is_some() {
            break;
        }
    }
    while line.last() == Some(&b'\n') || line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))
}

/// Parses a frame body under the protocol's depth limit.
pub fn parse_frame(line: &str) -> Result<Value, String> {
    parse_with_limits(
        line,
        ParseLimits {
            max_depth: MAX_FRAME_DEPTH,
            max_bytes: MAX_FRAME_BYTES,
        },
    )
    .map_err(|e| e.to_string())
}

/// Counts frames written on one connection so [`FaultPlan`] socket
/// rules (`disconnect@FRAME`, `io-error@FRAME`, `slow-client:MS@FRAME`)
/// can target the Nth write.
#[derive(Default)]
pub struct FrameCounter(AtomicU64);

impl FrameCounter {
    /// A counter starting at frame 0.
    pub fn new() -> FrameCounter {
        FrameCounter::default()
    }

    fn next(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed)
    }
}

/// Serializes `value` as one frame and writes it, applying any
/// matching socket fault from `plan` first:
///
/// - `disconnect` — writes *half* the frame (a torn frame on the
///   peer's side) and reports a broken pipe, as if the kernel reset
///   the connection mid-write;
/// - `io-error` — writes nothing and reports a generic I/O error;
/// - `slow-client:MS` — sleeps MS, then writes normally (exercises
///   peers' patience / deadline paths without tc(8)).
pub fn write_frame(
    writer: &mut impl Write,
    value: &Value,
    plan: Option<&Arc<FaultPlan>>,
    counter: &FrameCounter,
) -> io::Result<()> {
    let frame = counter.next();
    let mut bytes = value.to_compact().into_bytes();
    bytes.push(b'\n');
    if let Some(fault) = plan.and_then(|p| p.socket_fault(frame)) {
        match fault {
            SocketFault::Disconnect => {
                let half = bytes.len() / 2;
                writer.write_all(&bytes[..half])?;
                writer.flush()?;
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    format!("fault injection: disconnect at frame {frame}"),
                ));
            }
            SocketFault::IoError => {
                return Err(io::Error::other(format!(
                    "fault injection: io-error at frame {frame}"
                )));
            }
            SocketFault::SlowClient(delay) => {
                // Dribble the frame out in two halves around the stall
                // so the peer sees a genuinely slow writer, not just a
                // late complete frame.
                let half = bytes.len() / 2;
                writer.write_all(&bytes[..half])?;
                writer.flush()?;
                std::thread::sleep(delay);
                writer.write_all(&bytes[half..])?;
                writer.flush()?;
                return Ok(());
            }
        }
    }
    writer.write_all(&bytes)?;
    writer.flush()
}

/// A parsed, validated request envelope. `body` keeps the whole frame
/// so op handlers can pull their own fields.
#[derive(Clone, Debug)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// The operation: `verify`, `lint`, `hunt-replay`, `ping`,
    /// `stats`, `shutdown`.
    pub op: String,
    /// The full request frame.
    pub body: Value,
    /// Per-request deadline, if the client set `deadline_ms`.
    pub deadline: Option<Duration>,
}

/// Validates a request frame's envelope fields.
pub fn parse_request(frame: Value) -> Result<Request, String> {
    let version = frame
        .get("gila")
        .and_then(Value::as_u64)
        .ok_or("missing protocol field \"gila\"")?;
    if version != PROTOCOL_VERSION {
        return Err(format!(
            "unsupported protocol version {version} (this daemon speaks {PROTOCOL_VERSION})"
        ));
    }
    let id = frame
        .get("id")
        .and_then(Value::as_u64)
        .ok_or("missing request field \"id\"")?;
    let op = frame
        .get("op")
        .and_then(Value::as_str)
        .ok_or("missing request field \"op\"")?
        .to_string();
    let deadline = frame
        .get("deadline_ms")
        .and_then(Value::as_u64)
        .map(Duration::from_millis);
    Ok(Request {
        id,
        op,
        body: frame,
        deadline,
    })
}

/// A successful response: `{"id": N, "status": "ok", "result": ...}`.
pub fn response_ok(id: u64, result: Value) -> Value {
    Value::object(vec![
        ("id".into(), (id as f64).into()),
        ("status".into(), "ok".into()),
        ("result".into(), result),
    ])
}

/// An error response for a request that was *accepted but failed*.
/// Terminal: clients must not retry it.
pub fn response_error(id: u64, message: &str) -> Value {
    Value::object(vec![
        ("id".into(), (id as f64).into()),
        ("status".into(), "error".into()),
        ("error".into(), message.into()),
    ])
}

/// A load-shed response: the admission queue is full. Carries a
/// `retry_after_ms` hint; clients may retry after backing off.
pub fn response_overloaded(id: u64, retry_after_ms: u64) -> Value {
    Value::object(vec![
        ("id".into(), (id as f64).into()),
        ("status".into(), "overloaded".into()),
        ("retry_after_ms".into(), (retry_after_ms as f64).into()),
    ])
}

/// A drain-mode response: the daemon is shutting down and refuses new
/// work. Clients should try another endpoint or give up.
pub fn response_shutting_down(id: u64) -> Value {
    Value::object(vec![
        ("id".into(), (id as f64).into()),
        ("status".into(), "shutting-down".into()),
    ])
}

impl Request {
    /// Convenience accessor for a string field of the request body.
    pub fn str_field(&self, name: &str) -> Option<&str> {
        self.body.get(name).and_then(Value::as_str)
    }
}

// Plain `io::Read` adapter so both stream flavors share one reader
// type; see `server.rs` / `client.rs`.
/// Either a TCP or a Unix-domain stream, unified behind `Read`/`Write`.
pub enum Stream {
    /// A TCP connection.
    Tcp(std::net::TcpStream),
    /// A Unix-domain connection.
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

impl Stream {
    /// Clones the underlying socket handle (both halves share state).
    pub fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            #[cfg(unix)]
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
        }
    }

    /// Best-effort full shutdown, unblocking any reader on the peer.
    pub fn shutdown(&self) {
        match self {
            Stream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            #[cfg(unix)]
            Stream::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn frames_roundtrip() {
        let v = Value::object(vec![
            ("gila".into(), 1.0.into()),
            ("id".into(), 7.0.into()),
            ("op".into(), "ping".into()),
        ]);
        let mut buf = Vec::new();
        write_frame(&mut buf, &v, None, &FrameCounter::new()).unwrap();
        let mut r = BufReader::new(&buf[..]);
        let line = read_frame(&mut r).unwrap().unwrap();
        let back = parse_frame(&line).unwrap();
        let req = parse_request(back).unwrap();
        assert_eq!(req.id, 7);
        assert_eq!(req.op, "ping");
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn oversized_frame_is_rejected_while_reading() {
        let mut data = vec![b'x'; MAX_FRAME_BYTES + 10];
        data.push(b'\n');
        let mut r = BufReader::new(&data[..]);
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn torn_frame_at_eof_is_an_error_not_a_value() {
        let data = b"{\"gila\":1,\"id\":3".to_vec();
        let mut r = BufReader::new(&data[..]);
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn request_envelope_is_validated() {
        let missing_id = parse_frame("{\"gila\":1,\"op\":\"ping\"}").unwrap();
        assert!(parse_request(missing_id).unwrap_err().contains("id"));
        let bad_version = parse_frame("{\"gila\":9,\"id\":1,\"op\":\"ping\"}").unwrap();
        assert!(parse_request(bad_version).unwrap_err().contains("version"));
        let ok = parse_frame("{\"gila\":1,\"id\":1,\"op\":\"verify\",\"deadline_ms\":250}").unwrap();
        let req = parse_request(ok).unwrap();
        assert_eq!(req.deadline, Some(Duration::from_millis(250)));
    }

    #[test]
    fn socket_faults_fire_on_the_indexed_frame() {
        let plan = Arc::new(FaultPlan::parse("disconnect@1").unwrap());
        let counter = FrameCounter::new();
        let v = Value::object(vec![("id".into(), 1.0.into())]);
        let mut buf = Vec::new();
        // Frame 0 passes, frame 1 tears mid-write.
        write_frame(&mut buf, &v, Some(&plan), &counter).unwrap();
        let before = buf.len();
        let err = write_frame(&mut buf, &v, Some(&plan), &counter).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert!(buf.len() > before, "disconnect writes a torn half-frame");
        assert!(buf.len() < before * 2, "but not the whole frame");
        // Frame 2: the rule's count is spent, writes pass again.
        write_frame(&mut buf, &v, Some(&plan), &counter).unwrap();
    }
}
