//! The retrying client.
//!
//! Retry policy, in one sentence: a request may be retried only while
//! it is *provably unanswered* — connect failures, transport errors
//! before a response frame arrives, and explicit `overloaded` sheds —
//! and never after a response (any response) has been read, because a
//! delivered verdict re-requested is wasted solver work and a
//! delivered *error* is terminal by contract.
//!
//! Backoff is exponential with full jitter from a deterministic
//! xorshift PRNG (seedable for tests), capped, and respects the
//! server's `retry_after_ms` hint as a floor when shedding.

use std::io::BufReader;
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use gila_json::Value;
use gila_verify::FaultPlan;

use crate::protocol::{parse_frame, read_frame, write_frame, FrameCounter, Stream};

/// Where to connect.
#[derive(Clone, Debug)]
pub enum Endpoint {
    /// A TCP address (`host:port`).
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

/// Client configuration.
#[derive(Clone)]
pub struct ClientConfig {
    /// The daemon's address.
    pub endpoint: Endpoint,
    /// Retry attempts *beyond* the first try.
    pub retries: u32,
    /// First backoff delay; doubles per attempt.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// PRNG seed for jitter (tests pin it; the CLI varies it by pid).
    pub seed: u64,
    /// Test-only socket-fault injection on *writes from this client*.
    pub fault_plan: Option<Arc<FaultPlan>>,
}

impl ClientConfig {
    /// Defaults: 5 retries, 50ms base, 2s cap.
    pub fn new(endpoint: Endpoint) -> ClientConfig {
        ClientConfig {
            endpoint,
            retries: 5,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
            seed: 0x9e37_79b9_7f4a_7c15,
            fault_plan: None,
        }
    }
}

/// Why a request ultimately failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure after all retries.
    Io(String),
    /// The daemon kept shedding; includes its last hint.
    Overloaded {
        /// Attempts made.
        attempts: u32,
        /// The last `retry_after_ms` hint.
        retry_after_ms: u64,
    },
    /// The daemon is draining and refused the request.
    ShuttingDown,
    /// A malformed frame came back.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Overloaded {
                attempts,
                retry_after_ms,
            } => write!(
                f,
                "daemon overloaded after {attempts} attempts (last hint: retry in {retry_after_ms}ms)"
            ),
            ClientError::ShuttingDown => write!(f, "daemon is shutting down"),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A connection-per-need client; reconnects transparently on retry.
pub struct Client {
    cfg: ClientConfig,
    next_id: u64,
    rng: u64,
    conn: Option<(BufReader<Stream>, Stream, FrameCounter)>,
}

impl Client {
    /// Creates a client; no connection is made until the first request.
    pub fn connect(cfg: ClientConfig) -> Client {
        let rng = cfg.seed | 1;
        Client {
            cfg,
            next_id: 1,
            rng,
            conn: None,
        }
    }

    fn rand(&mut self) -> u64 {
        // xorshift64: deterministic jitter without a rand dependency.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    fn backoff(&mut self, attempt: u32, floor_ms: u64) -> Duration {
        let exp = self
            .cfg
            .base_delay
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.cfg.max_delay);
        // Full jitter: uniform in [exp/2, exp], never below the
        // server's hint.
        let half = exp.as_millis() as u64 / 2;
        let jittered = half + self.rand() % (half.max(1));
        Duration::from_millis(jittered.max(floor_ms))
    }

    fn ensure_conn(&mut self) -> Result<(), String> {
        if self.conn.is_some() {
            return Ok(());
        }
        let stream = match &self.cfg.endpoint {
            Endpoint::Tcp(addr) => {
                let s = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
                let _ = s.set_nodelay(true);
                Stream::Tcp(s)
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => Stream::Unix(
                UnixStream::connect(path)
                    .map_err(|e| format!("connect {}: {e}", path.display()))?,
            ),
            #[cfg(not(unix))]
            Endpoint::Unix(path) => {
                return Err(format!("unix sockets unsupported here: {}", path.display()))
            }
        };
        let write_half = stream.try_clone().map_err(|e| e.to_string())?;
        self.conn = Some((BufReader::new(stream), write_half, FrameCounter::new()));
        Ok(())
    }

    /// One attempt: send the frame, read frames until the matching id
    /// comes back. Returns `Err` only for transport-level failures
    /// (which are retry-safe by the policy above); the connection is
    /// torn down on any error so the next attempt starts clean.
    fn attempt(&mut self, frame: &Value, id: u64) -> Result<Value, String> {
        self.ensure_conn()?;
        let mut conn = self.conn.take().expect("ensure_conn established one");
        let plan = self.cfg.fault_plan.clone();
        match Self::attempt_on(&mut conn, frame, id, plan.as_ref()) {
            Ok(v) => {
                self.conn = Some(conn);
                Ok(v)
            }
            Err(e) => {
                conn.0.get_ref().shutdown();
                Err(e)
            }
        }
    }

    fn attempt_on(
        conn: &mut (BufReader<Stream>, Stream, FrameCounter),
        frame: &Value,
        id: u64,
        plan: Option<&Arc<FaultPlan>>,
    ) -> Result<Value, String> {
        let (reader, writer, frames) = conn;
        write_frame(writer, frame, plan, frames).map_err(|e| format!("send: {e}"))?;
        loop {
            let line = match read_frame(reader).map_err(|e| format!("recv: {e}"))? {
                Some(line) => line,
                None => return Err("connection closed before response".into()),
            };
            let value = parse_frame(&line).map_err(|e| format!("bad response frame: {e}"))?;
            // Stale responses (from a cancelled earlier request on a
            // reused connection) are skipped, not errors.
            match value.get("id").and_then(Value::as_u64) {
                Some(got) if got == id => return Ok(value),
                _ => continue,
            }
        }
    }

    /// Sends `op` with the given body fields, retrying per the policy.
    /// On success returns the full response frame (status `ok` or
    /// `error` — both are final).
    pub fn request(
        &mut self,
        op: &str,
        fields: Vec<(String, Value)>,
    ) -> Result<Value, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let mut all = vec![
            ("gila".into(), 1.0.into()),
            ("id".into(), (id as f64).into()),
            ("op".into(), op.into()),
        ];
        all.extend(fields);
        let frame = Value::object(all);
        let mut last_err = String::new();
        let mut last_hint = 0u64;
        let mut sheds = 0u32;
        for attempt in 0..=self.cfg.retries {
            if attempt > 0 {
                let delay = self.backoff(attempt - 1, last_hint);
                std::thread::sleep(delay);
            }
            match self.attempt(&frame, id) {
                Err(e) => {
                    // No response was read: retrying cannot duplicate
                    // a delivered verdict.
                    last_err = e;
                    last_hint = 0;
                    continue;
                }
                Ok(response) => {
                    match response.get("status").and_then(Value::as_str) {
                        Some("overloaded") => {
                            sheds += 1;
                            last_hint = response
                                .get("retry_after_ms")
                                .and_then(Value::as_u64)
                                .unwrap_or(0);
                            last_err = "overloaded".into();
                            continue;
                        }
                        Some("shutting-down") => return Err(ClientError::ShuttingDown),
                        // `ok` and `error` are both terminal: a
                        // response was delivered, never re-ask.
                        Some(_) => return Ok(response),
                        None => {
                            return Err(ClientError::Protocol(
                                "response missing \"status\"".into(),
                            ))
                        }
                    }
                }
            }
        }
        if sheds > 0 && last_err == "overloaded" {
            Err(ClientError::Overloaded {
                attempts: self.cfg.retries + 1,
                retry_after_ms: last_hint,
            })
        } else {
            Err(ClientError::Io(last_err))
        }
    }
}
