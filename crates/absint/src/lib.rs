//! # gila-absint — word-level abstract interpretation
//!
//! A cheap, sound semantic layer above the bit-level model: where
//! `gila-smt` answers questions by SAT solving, this crate answers a
//! useful subset of them by dataflow fixpoint over the abstract domains
//! of [`gila_expr::AbsValue`] (known bits, unsigned intervals, and the
//! flat constant lattice, as a reduced product).
//!
//! Three consumers:
//!
//! * **`gila-verify`** takes [`analyze_ts`]'s *proven inductive
//!   invariants* ([`Invariant`]) and asserts them as solver-level
//!   lemmas before BMC, pruning the search space without changing any
//!   verdict (the lemmas are consequences of the asserted transition
//!   relation — see DESIGN.md).
//! * **`gila-lint`** uses [`DecodeOracle`] to discharge decode
//!   completeness/overlap/dead questions without SAT when the domains
//!   are conclusive, and [`analyze_port`] / [`uninit_reads`] to power
//!   the GL014–GL017 passes.
//! * **`--stats` / bench** report how much work the fixpoint saved.
//!
//! Soundness rests on one contract, tested by proptest in
//! `tests/absint_props.rs`: abstract evaluation over-approximates
//! concrete evaluation. Everything here only ever *prunes* (skips a SAT
//! call whose outcome is proven, or strengthens a solver query with an
//! implied fact); inconclusive domains always fall back to the exact
//! engines.

#![warn(missing_docs)]

mod fixpoint;
mod oracle;

pub use fixpoint::{
    analyze_port, analyze_ts, uninit_reads, PortAnalysis, TsAnalysis, UninitRead,
};
pub use oracle::{assume, assume_with, DecodeOracle};

use gila_expr::ExprRef;

/// Which abstract domain proved an invariant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Ternary known-bits masks.
    KnownBits,
    /// Unsigned value intervals.
    Interval,
    /// The flat constant lattice ("congruence on constants").
    Constant,
}

impl Domain {
    /// Stable lower-case name, for telemetry and display.
    pub fn as_str(self) -> &'static str {
        match self {
            Domain::KnownBits => "known-bits",
            Domain::Interval => "interval",
            Domain::Constant => "constant",
        }
    }
}

/// One proven inductive invariant over a transition system's states.
///
/// The expression is interned in the analyzed system's context and
/// holds in every reachable state; it is *inductive*: true of every
/// abstracted initial state and preserved by every transition (checked
/// explicitly by the fixpoint engine before emission).
#[derive(Clone, Debug)]
pub struct Invariant {
    /// The invariant, a boolean expression over state variables.
    pub expr: ExprRef,
    /// The domain component that supplied the fact.
    pub domain: Domain,
    /// Fixpoint iterations it took to stabilize the analysis.
    pub iterations: u32,
}
