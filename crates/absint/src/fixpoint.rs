//! Widening fixpoints over transition systems and port-ILAs.
//!
//! Both analyses compute an abstract environment `A` mapping each state
//! variable to an [`AbsValue`] such that
//!
//! 1. every initial state is described (`abs(init) ⊑ A`), and
//! 2. `A` is closed under one transition with arbitrary inputs
//!    (`F(A) ⊑ A`),
//!
//! i.e. `A` is an *inductive* over-approximation of the reachable
//! states. The iteration strategy is standard: a handful of precise
//! (join) iterations to let small state machines stabilize exactly,
//! then widening to force convergence, then a bounded narrowing phase
//! (`A ← init ⊔ F(A)`) to claw back precision lost to widening. Because
//! the transfer functions are not formally proven monotone, the final
//! environment is *verified* to satisfy (1) and (2) before anything is
//! emitted — states that fail verification are degraded to top, which
//! trivially satisfies both.

use std::collections::HashMap;

use gila_core::PortIla;
use gila_expr::{
    abs_eval, abs_eval_nodes, AbsBool, AbsEnv, AbsValue, ExprCtx, ExprNode, ExprRef, Op,
};
use gila_mc::TransitionSystem;

use crate::oracle::{assume, assume_with};
use crate::{Domain, Invariant};

/// Recursion budget for branch-conditioned evaluation of `ite` spines.
const COND_DEPTH: u32 = 64;

/// Evaluates `e` with *branch conditioning*: at each `ite` whose
/// condition is undecided, the two branches are evaluated under
/// environments refined by [`assume_with`] on the condition, and the
/// results joined. This is what lets the classic wrap-around update
/// `ite(s == MAX, 0, s + 1)` stay bounded — the else-branch knows
/// `s != MAX`, so incrementing cannot leave the interval.
///
/// Falls back to plain [`abs_eval`] past the depth budget (sound, just
/// less precise).
fn cond_eval(ctx: &ExprCtx, e: ExprRef, env: &AbsEnv, depth: u32) -> AbsValue {
    let ExprNode::App { op: Op::Ite, args, .. } = ctx.node(e) else {
        return abs_eval(ctx, e, env);
    };
    if depth == 0 {
        return abs_eval(ctx, e, env);
    }
    let (c, t, f) = (args[0], args[1], args[2]);
    match abs_eval(ctx, c, env) {
        AbsValue::Bool(AbsBool::True) => return cond_eval(ctx, t, env, depth - 1),
        AbsValue::Bool(AbsBool::False) => return cond_eval(ctx, f, env, depth - 1),
        AbsValue::Bool(AbsBool::Bot) => return AbsValue::bottom_of(&ctx.sort_of(e)),
        _ => {}
    }
    let tv = assume_with(ctx, c, true, env).map(|et| cond_eval(ctx, t, &et, depth - 1));
    let fv = assume_with(ctx, c, false, env).map(|ef| cond_eval(ctx, f, &ef, depth - 1));
    match (tv, fv) {
        (Some(a), Some(b)) => a.join(&b),
        (Some(a), None) => a,
        (None, Some(b)) => b,
        (None, None) => AbsValue::bottom_of(&ctx.sort_of(e)),
    }
}

/// Join-only iterations before widening kicks in.
const PRECISE_ITERS: u32 = 8;
/// Narrowing iterations after the widened fixpoint stabilizes.
const NARROW_ITERS: u32 = 2;
/// Hard iteration cap; hitting it degrades the analysis to top.
const MAX_ITERS: u32 = 64;

/// Result of [`analyze_ts`].
#[derive(Clone, Debug)]
pub struct TsAnalysis {
    /// The inductive abstract environment (state variable → value set).
    pub env: AbsEnv,
    /// Proven inductive invariants, interned in the system's context.
    pub invariants: Vec<Invariant>,
    /// Fixpoint iterations until stabilization.
    pub iterations: u32,
}

/// Result of [`analyze_port`].
#[derive(Clone, Debug)]
pub struct PortAnalysis {
    /// The inductive abstract environment over architectural states.
    pub env: AbsEnv,
    /// Fixpoint iterations until stabilization.
    pub iterations: u32,
}

/// One definite read of a never-initialized state (GL014 evidence).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UninitRead {
    /// The instruction whose decode or update performs the read.
    pub instruction: String,
    /// The init-less state being read.
    pub state: String,
}

/// The generic fixpoint driver. `init` seeds the environment; `step`
/// computes the post-state environment for the bound variables under
/// the current one. Returns the verified inductive environment and the
/// iteration count.
fn fixpoint<F>(vars: &[(ExprRef, gila_expr::Sort)], init: &AbsEnv, step: F) -> (AbsEnv, u32)
where
    F: Fn(&AbsEnv) -> HashMap<ExprRef, AbsValue>,
{
    let mut env = init.clone();
    let mut iterations = 0u32;
    loop {
        iterations += 1;
        let stepped = step(&env);
        let mut next = AbsEnv::new();
        let mut changed = false;
        for (var, sort) in vars {
            let cur = env
                .get(*var)
                .cloned()
                .unwrap_or_else(|| AbsValue::top_of(sort));
            let post = stepped
                .get(var)
                .cloned()
                .unwrap_or_else(|| AbsValue::top_of(sort));
            let joined = cur.join(&post);
            let new = if iterations > PRECISE_ITERS {
                cur.widen(&joined)
            } else {
                joined
            };
            if new != cur {
                changed = true;
            }
            next.bind(*var, new);
        }
        env = next;
        if !changed {
            break;
        }
        if iterations >= MAX_ITERS {
            // Did not converge: degrade to top, which is trivially
            // inductive, rather than emit an unproven environment.
            let mut top = AbsEnv::new();
            for (var, sort) in vars {
                top.bind(*var, AbsValue::top_of(sort));
            }
            return (top, iterations);
        }
    }
    // Narrowing: from a post-fixpoint, `init ⊔ F(A)` stays a
    // post-fixpoint for monotone F and is no less precise.
    for _ in 0..NARROW_ITERS {
        let stepped = step(&env);
        let mut next = AbsEnv::new();
        for (var, sort) in vars {
            let seed = init
                .get(*var)
                .cloned()
                .unwrap_or_else(|| AbsValue::top_of(sort));
            let post = stepped
                .get(var)
                .cloned()
                .unwrap_or_else(|| AbsValue::top_of(sort));
            next.bind(*var, seed.join(&post));
        }
        env = next;
    }
    // Verification: the transfer functions are not formally proven
    // monotone, so check inductiveness explicitly and degrade any
    // failing state to top (top always passes).
    loop {
        let stepped = step(&env);
        let mut failing: Vec<(ExprRef, gila_expr::Sort)> = Vec::new();
        for (var, sort) in vars {
            let cur = env
                .get(*var)
                .cloned()
                .unwrap_or_else(|| AbsValue::top_of(sort));
            let post = stepped
                .get(var)
                .cloned()
                .unwrap_or_else(|| AbsValue::top_of(sort));
            let seed = init
                .get(*var)
                .cloned()
                .unwrap_or_else(|| AbsValue::top_of(sort));
            if !cur.includes(&post) || !cur.includes(&seed) {
                failing.push((*var, *sort));
            }
        }
        if failing.is_empty() {
            break;
        }
        for (var, sort) in failing {
            env.bind(var, AbsValue::top_of(&sort));
        }
    }
    (env, iterations)
}

/// Runs the widening fixpoint over a transition system and emits the
/// facts it proved as invariant expressions, interned in the system's
/// own context (hence `&mut`).
///
/// Inputs are unconstrained (top) at every step, and the system's
/// assumed constraints are deliberately *not* used for refinement, so
/// the returned invariants are consequences of the raw transition
/// relation alone — sound to assert in any solver context that asserts
/// that relation.
pub fn analyze_ts(ts: &mut TransitionSystem) -> TsAnalysis {
    let vars: Vec<(ExprRef, gila_expr::Sort)> =
        ts.states().iter().map(|s| (s.var, s.sort)).collect();
    let mut init = AbsEnv::new();
    for s in ts.states() {
        let v = match ts.init_of(&s.name) {
            Some(v) => AbsValue::from_value(v),
            None => AbsValue::top_of(&s.sort),
        };
        init.bind(s.var, v);
    }
    let nexts: Vec<(ExprRef, Option<ExprRef>)> = ts
        .states()
        .iter()
        .map(|s| (s.var, ts.next_of(&s.name)))
        .collect();
    let ctx = ts.ctx();
    let (env, iterations) = fixpoint(&vars, &init, |cur| {
        nexts
            .iter()
            .map(|(var, next)| {
                let sort = ctx.sort_of(*var);
                let post = match next {
                    Some(n) => cond_eval(ctx, *n, cur, COND_DEPTH),
                    None => AbsValue::top_of(&sort),
                };
                (*var, post)
            })
            .collect()
    });
    let mut invariants = Vec::new();
    for s in ts.states().to_vec() {
        if let Some(v) = env.get(s.var).cloned() {
            emit_invariants(ts.ctx_mut(), s.var, &v, iterations, &mut invariants);
        }
    }
    TsAnalysis {
        env,
        invariants,
        iterations,
    }
}

/// Turns one state's non-trivial abstract value into invariant
/// expressions over its variable.
fn emit_invariants(
    ctx: &mut ExprCtx,
    var: ExprRef,
    v: &AbsValue,
    iterations: u32,
    out: &mut Vec<Invariant>,
) {
    match v {
        AbsValue::Bool(b) => {
            if let Some(c) = b.as_const() {
                let expr = if c { var } else { ctx.not(var) };
                out.push(Invariant {
                    expr,
                    domain: Domain::Constant,
                    iterations,
                });
            }
        }
        AbsValue::Bv(bv) => {
            if bv.is_bottom() {
                // An unreachable state variable proves nothing useful
                // (and cannot arise: the initial seed is non-empty).
                return;
            }
            if let Some(c) = bv.as_const().cloned() {
                let k = ctx.bv(c);
                let expr = ctx.eq(var, k);
                out.push(Invariant {
                    expr,
                    domain: Domain::Constant,
                    iterations,
                });
                return;
            }
            let mask = bv.known_zero().or(bv.known_one());
            if !mask.is_zero() {
                let m = ctx.bv(mask);
                let k = ctx.bv(bv.known_one().clone());
                let masked = ctx.bvand(var, m);
                let expr = ctx.eq(masked, k);
                out.push(Invariant {
                    expr,
                    domain: Domain::KnownBits,
                    iterations,
                });
            }
            if !bv.lo().is_zero() {
                let lo = ctx.bv(bv.lo().clone());
                let expr = ctx.ule(lo, var);
                out.push(Invariant {
                    expr,
                    domain: Domain::Interval,
                    iterations,
                });
            }
            if !bv.hi().is_ones() {
                let hi = ctx.bv(bv.hi().clone());
                let expr = ctx.ule(var, hi);
                out.push(Invariant {
                    expr,
                    domain: Domain::Interval,
                    iterations,
                });
            }
        }
        AbsValue::Mem => {}
    }
}

/// Builds the abstract seed environment of a port: states with a reset
/// value are abstracted exactly, init-less states are unconstrained.
fn port_init_env(port: &PortIla) -> AbsEnv {
    let mut env = AbsEnv::new();
    for s in port.states() {
        let v = match &s.init {
            Some(v) => AbsValue::from_value(v),
            None => AbsValue::top_of(&s.sort),
        };
        env.bind(s.var, v);
    }
    env
}

/// Runs the widening fixpoint over a port-ILA's architectural states.
///
/// The transfer joins over all instructions — each conditioned on its
/// decode via [`assume`] — plus the hold case (no instruction fires,
/// every state keeps its value), so it is sound regardless of decode
/// priority or overlap.
pub fn analyze_port(port: &PortIla) -> PortAnalysis {
    let vars: Vec<(ExprRef, gila_expr::Sort)> =
        port.states().iter().map(|s| (s.var, s.sort)).collect();
    let init = port_init_env(port);
    let ctx = port.ctx();
    let (env, iterations) = fixpoint(&vars, &init, |cur| {
        // Hold case: every state may keep its current value.
        let mut acc: HashMap<ExprRef, AbsValue> = vars
            .iter()
            .map(|(var, sort)| {
                let v = cur
                    .get(*var)
                    .cloned()
                    .unwrap_or_else(|| AbsValue::top_of(sort));
                (*var, v)
            })
            .collect();
        for instr in port.instructions() {
            // Condition on the decode firing; a refuted decode cannot
            // contribute any post-state.
            let Some(cond) = assume(ctx, instr.decode, cur) else {
                continue;
            };
            for s in port.states() {
                if let Some(u) = instr.updates.get(&s.name) {
                    let post = cond_eval(ctx, *u, &cond, COND_DEPTH);
                    let entry = acc.get_mut(&s.var).expect("seeded above");
                    *entry = entry.join(&post);
                }
                // States not updated by this instruction hold, which
                // the hold seed already covers.
            }
        }
        acc
    });
    PortAnalysis { env, iterations }
}

/// Finds states that can be *consumed before they are ever written*
/// on the first step out of reset (GL014 evidence): init-less states
/// that some instruction's update reads unconditionally while that
/// instruction's decode does not itself depend on the state.
///
/// For each candidate state `u`, the state is bound to bottom (no
/// possible value) and every other state to its reset abstraction; an
/// instruction whose decode stays non-bottom (it can trigger without
/// knowing `u`) but whose update evaluates to bottom necessarily
/// consumed `u`. Two deliberate exclusions keep the report signal-dense:
///
/// * States no instruction ever writes are GL005's territory ("read but
///   never written"), not a read-*before*-write.
/// * Instructions whose decode reads `u` are protocol-conditioned — the
///   specification gates the read on a state predicate, the idiom
///   multi-step instructions use — and are not reported.
///
/// At most one read is reported per state: the earliest reading
/// instruction in declaration order.
pub fn uninit_reads(port: &PortIla) -> Vec<UninitRead> {
    let ctx = port.ctx();
    let written: std::collections::BTreeSet<&str> = port
        .instructions()
        .iter()
        .flat_map(|i| i.updates.keys())
        .map(String::as_str)
        .collect();
    let mut out = Vec::new();
    for u in port.states() {
        if u.init.is_some() || !written.contains(u.name.as_str()) {
            continue;
        }
        if matches!(u.sort, gila_expr::Sort::Mem { .. }) {
            // The memory domain has no bottom; tracked reads are
            // word-level only.
            continue;
        }
        let mut env = AbsEnv::new();
        for s in port.states() {
            let v = if s.name == u.name {
                AbsValue::bottom_of(&s.sort)
            } else {
                match &s.init {
                    Some(v) => AbsValue::from_value(v),
                    None => AbsValue::top_of(&s.sort),
                }
            };
            env.bind(s.var, v);
        }
        for instr in port.instructions() {
            let roots: Vec<ExprRef> = std::iter::once(instr.decode)
                .chain(instr.updates.values().copied())
                .collect();
            let vals = abs_eval_nodes(ctx, &roots, &env);
            if vals[&instr.decode].is_bottom() {
                continue;
            }
            if roots[1..].iter().any(|r| vals[r].is_bottom()) {
                out.push(UninitRead {
                    instruction: instr.name.clone(),
                    state: u.name.clone(),
                });
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gila_expr::{abs_eval, BitVecValue, Sort};

    /// counter with a bounded step register: step ∈ {0,1,2}, never 3.
    fn stepper_ts() -> TransitionSystem {
        let mut ts = TransitionSystem::new("stepper");
        let step = ts.state("step", Sort::Bv(4));
        let go = ts.input("go", Sort::Bv(1));
        let c = ts.ctx_mut();
        let two = c.bv_u64(2, 4);
        let zero = c.bv_u64(0, 4);
        let one = c.bv_u64(1, 4);
        let at2 = c.eq(step, two);
        let inc = c.bvadd(step, one);
        let wrapped = c.ite(at2, zero, inc);
        let go1 = c.eq_u64(go, 1);
        let next = c.ite(go1, wrapped, step);
        ts.set_next("step", next).unwrap();
        ts.set_init("step", BitVecValue::from_u64(0, 4)).unwrap();
        ts
    }

    #[test]
    fn ts_fixpoint_bounds_the_step_register() {
        let mut ts = stepper_ts();
        let analysis = analyze_ts(&mut ts);
        let step = ts.ctx().find_var("step").unwrap();
        let v = analysis.env.get(step).unwrap().clone();
        match v {
            AbsValue::Bv(bv) => {
                assert!(bv.hi().to_u64() <= 3, "hi = {}", bv.hi().to_u64());
                // Bits 2..3 of a {0,1,2} register are provably zero.
                assert!(bv.known_zero().bit(3));
                assert!(bv.known_zero().bit(2));
            }
            other => panic!("expected bv, got {other:?}"),
        }
        assert!(
            !analysis.invariants.is_empty(),
            "expected invariants for the bounded step register"
        );
        // Every emitted invariant must hold in the abstract env itself
        // (sanity: the exprs were built from that env).
        for inv in &analysis.invariants {
            let verdict = abs_eval(ts.ctx(), inv.expr, &analysis.env);
            assert_ne!(
                verdict,
                AbsValue::Bool(gila_expr::AbsBool::False),
                "invariant refuted by its own env"
            );
        }
    }

    #[test]
    fn uninit_read_is_reported() {
        let mut p = PortIla::new("p");
        let cmd = p.input("cmd", Sort::Bv(2));
        let ghost = p.state("ghost", Sort::Bv(8), gila_core::StateKind::Internal);
        let out = p.state("out", Sort::Bv(8), gila_core::StateKind::Output);
        let _ = out;
        let c = p.ctx_mut();
        let dec = c.eq_u64(cmd, 1);
        let one = c.bv_u64(1, 8);
        let upd = c.bvadd(ghost, one);
        p.instr("consume").decode(dec).update("out", upd).add().unwrap();
        // `ghost` is never written yet: GL005 territory, not reported.
        assert!(uninit_reads(&p).is_empty());
        let c = p.ctx_mut();
        let dec2 = c.eq_u64(cmd, 2);
        let fill = c.bv_u64(7, 8);
        p.instr("load").decode(dec2).update("ghost", fill).add().unwrap();
        let reads = uninit_reads(&p);
        assert_eq!(
            reads,
            vec![UninitRead {
                instruction: "consume".into(),
                state: "ghost".into()
            }]
        );
        // A decode-guarded read (decode itself tests the state) is the
        // multi-step-protocol idiom and is not reported.
        let c = p.ctx_mut();
        let guard = c.eq_u64(ghost, 7);
        let dec3 = {
            let d = c.eq_u64(cmd, 3);
            c.and(d, guard)
        };
        let upd3 = c.bvadd(ghost, one);
        p.instr("step2").decode(dec3).update("out", upd3).add().unwrap();
        assert_eq!(uninit_reads(&p).len(), 1);
        // Initializing the state silences the report.
        p.set_init("ghost", BitVecValue::from_u64(0, 8)).unwrap();
        assert!(uninit_reads(&p).is_empty());
    }
}
