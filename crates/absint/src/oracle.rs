//! Condition-directed refinement and the decode oracle.
//!
//! [`assume`] refines an abstract environment under the hypothesis that
//! a boolean condition holds — the abstract analogue of asserting a
//! path condition. [`DecodeOracle`] stacks three cheap decision layers
//! on top of it to answer the lint passes' decode questions
//! (satisfiable? disjoint? complete?) without a SAT solver:
//!
//! 1. **abstract evaluation** under the unconstrained environment —
//!    decides tautologies and contradictions the domains can see;
//! 2. **concrete probes** — a handful of representative assignments
//!    (all-zeros, all-ones, reset values) decide satisfiability
//!    positively at the cost of three interpreter runs;
//! 3. **exhaustive enumeration** — when the condition's support fits a
//!    small bit budget, every assignment is evaluated and the question
//!    is decided *exactly*.
//!
//! Every method returns `Option<bool>`: `None` means inconclusive and
//! the caller must fall back to SAT. The oracle never fabricates
//! witnesses — findings that need a model (a gap command, an overlap
//! command) always go to the solver, so diagnostics are byte-identical
//! with the fast path on or off.

use gila_core::PortIla;
use gila_expr::{
    abs_eval, eval, AbsBool, AbsBv, AbsEnv, AbsValue, BitVecValue, Env, ExprCtx, ExprNode,
    ExprRef, MemValue, Op, Sort, Value,
};

/// Support-width budget (total bits) for exhaustive enumeration.
/// 2^12 interpreter runs per question is well under a millisecond.
const ENUM_BITS: u32 = 12;

/// Refines `env` under the hypothesis that `cond` is true.
///
/// Returns `None` when the hypothesis is *refuted* — no environment in
/// γ(`env`) satisfies `cond` — which callers may treat as a proof of
/// unsatisfiability. Otherwise returns an environment at least as
/// precise as `env` that still describes every model of `cond` in
/// γ(`env`).
///
/// Refinement walks the conjunction structure and narrows variables
/// compared against constants (`v == c`, `v < c`, boolean literals);
/// anything else is kept as-is, which is always sound.
pub fn assume(ctx: &ExprCtx, cond: ExprRef, env: &AbsEnv) -> Option<AbsEnv> {
    assume_with(ctx, cond, true, env)
}

/// Like [`assume`], but under the hypothesis `cond == polarity`.
pub fn assume_with(
    ctx: &ExprCtx,
    cond: ExprRef,
    polarity: bool,
    env: &AbsEnv,
) -> Option<AbsEnv> {
    // A decided condition needs no structural walk.
    match abs_eval(ctx, cond, env) {
        AbsValue::Bool(AbsBool::Bot) => return None,
        AbsValue::Bool(b) => {
            if let Some(c) = b.as_const() {
                return (c == polarity).then(|| env.clone());
            }
        }
        _ => {}
    }
    let mut out = env.clone();
    if refine(ctx, cond, polarity, &mut out) {
        Some(out)
    } else {
        None
    }
}

/// Narrows `env` so that `cond == polarity`; false means refuted.
fn refine(ctx: &ExprCtx, cond: ExprRef, polarity: bool, env: &mut AbsEnv) -> bool {
    match ctx.node(cond) {
        ExprNode::BoolConst(b) => *b == polarity,
        ExprNode::Var { .. } => bind_meet(env, cond, AbsValue::Bool(AbsBool::from_bool(polarity))),
        ExprNode::App { op, args, .. } => {
            let args = args.clone();
            match (op, polarity) {
                (Op::Not, _) => refine(ctx, args[0], !polarity, env),
                (Op::And, true) => {
                    refine(ctx, args[0], true, env) && refine(ctx, args[1], true, env)
                }
                (Op::Or, false) => {
                    refine(ctx, args[0], false, env) && refine(ctx, args[1], false, env)
                }
                (Op::Eq, true) => refine_eq(ctx, args[0], args[1], env),
                (Op::Eq, false) => refine_ne(ctx, args[0], args[1], env),
                (Op::BvUlt, true) => refine_cmp(ctx, args[0], args[1], true, env),
                (Op::BvUle, true) => refine_cmp(ctx, args[0], args[1], false, env),
                (Op::BvUlt, false) => refine_cmp(ctx, args[1], args[0], false, env),
                (Op::BvUle, false) => refine_cmp(ctx, args[1], args[0], true, env),
                _ => true,
            }
        }
        _ => true,
    }
}

/// Meets the binding of `var` with `v`; false means the meet is empty.
fn bind_meet(env: &mut AbsEnv, var: ExprRef, v: AbsValue) -> bool {
    let cur = match env.get(var) {
        Some(c) => c.meet(&v),
        None => v,
    };
    let live = !cur.is_bottom();
    env.bind(var, cur);
    live
}

/// Handles `a == b` where one side is a variable and the other is a
/// singleton under the current environment.
fn refine_eq(ctx: &ExprCtx, a: ExprRef, b: ExprRef, env: &mut AbsEnv) -> bool {
    for (var, other) in [(a, b), (b, a)] {
        if !matches!(ctx.node(var), ExprNode::Var { .. }) {
            continue;
        }
        if let Some(value) = abs_eval(ctx, other, env).as_exact() {
            return bind_meet(env, var, AbsValue::from_value(&value));
        }
    }
    true
}

/// Handles `a != b` where one side is a variable and the other is a
/// singleton: an interval can only exclude an *endpoint*, so the bound
/// is clipped when the constant sits exactly on it. This is what makes
/// wrap-around counters (`ite(s == MAX, 0, s + 1)`) converge.
fn refine_ne(ctx: &ExprCtx, a: ExprRef, b: ExprRef, env: &mut AbsEnv) -> bool {
    for (var, other) in [(a, b), (b, a)] {
        if !matches!(ctx.node(var), ExprNode::Var { .. }) {
            continue;
        }
        let Some(value) = abs_eval(ctx, other, env).as_exact() else {
            continue;
        };
        match (env.get(var).cloned(), value) {
            (Some(AbsValue::Bool(_)), Value::Bool(c)) => {
                return bind_meet(env, var, AbsValue::Bool(AbsBool::from_bool(!c)));
            }
            (Some(AbsValue::Bv(cur)), Value::Bv(c)) => {
                if cur.is_bottom() {
                    return false;
                }
                if cur.as_const() == Some(&c) {
                    return false; // v is exactly c: v != c is refuted
                }
                let one = BitVecValue::one(c.width());
                if cur.lo() == &c {
                    let lo = c.add(&one);
                    return bind_meet(
                        env,
                        var,
                        AbsValue::Bv(AbsBv::from_range(&lo, cur.hi())),
                    );
                }
                if cur.hi() == &c {
                    let hi = c.sub(&one);
                    return bind_meet(
                        env,
                        var,
                        AbsValue::Bv(AbsBv::from_range(cur.lo(), &hi)),
                    );
                }
                return true;
            }
            _ => return true,
        }
    }
    true
}

/// Handles `a < b` (strict) / `a <= b` by clamping whichever side is a
/// bit-vector variable against the other side's interval.
fn refine_cmp(ctx: &ExprCtx, a: ExprRef, b: ExprRef, strict: bool, env: &mut AbsEnv) -> bool {
    let bv_of = |v: &AbsValue| match v {
        AbsValue::Bv(bv) => Some(bv.clone()),
        _ => None,
    };
    // Upper-bound `a` by b.hi (minus one if strict).
    if matches!(ctx.node(a), ExprNode::Var { .. }) {
        if let Some(vb) = bv_of(&abs_eval(ctx, b, env)) {
            if !vb.is_bottom() {
                let mut hi = vb.hi().clone();
                if strict {
                    if hi.is_zero() {
                        return false; // a < 0 is unsatisfiable
                    }
                    hi = hi.sub(&BitVecValue::one(hi.width()));
                }
                let clamp = AbsValue::Bv(AbsBv::from_range(&BitVecValue::zero(hi.width()), &hi));
                if !bind_meet(env, a, clamp) {
                    return false;
                }
            }
        }
    }
    // Lower-bound `b` by a.lo (plus one if strict).
    if matches!(ctx.node(b), ExprNode::Var { .. }) {
        if let Some(va) = bv_of(&abs_eval(ctx, a, env)) {
            if !va.is_bottom() {
                let mut lo = va.lo().clone();
                if strict {
                    if lo.is_ones() {
                        return false; // ones < b is unsatisfiable
                    }
                    lo = lo.add(&BitVecValue::one(lo.width()));
                }
                let clamp =
                    AbsValue::Bv(AbsBv::from_range(&lo, &BitVecValue::ones(lo.width())));
                if !bind_meet(env, b, clamp) {
                    return false;
                }
            }
        }
    }
    true
}

/// A decision layer for a port's decode conditions, shared by the
/// GL001/GL002/GL003 fast paths. All questions are answered over the
/// *unconstrained* state space (any state, any command), exactly like
/// the SAT-backed checks in `gila-core::check`, so a decided answer is
/// interchangeable with the solver's.
pub struct DecodeOracle<'a> {
    port: &'a PortIla,
    /// Representative concrete environments for cheap SAT probes.
    probes: Vec<Env>,
    /// Support variables of all decodes, if enumerable (no memories).
    enum_vars: Option<Vec<(ExprRef, Sort)>>,
    /// Total bits across `enum_vars`.
    enum_bits: u32,
}

impl<'a> DecodeOracle<'a> {
    /// Builds the oracle for one port.
    pub fn new(port: &'a PortIla) -> DecodeOracle<'a> {
        let probes = build_probes(port);
        let ctx = port.ctx();
        let roots: Vec<ExprRef> = port.instructions().iter().map(|i| i.decode).collect();
        let mut vars: Vec<(ExprRef, Sort)> = Vec::new();
        let mut bits = 0u32;
        let mut enumerable = true;
        for e in ctx.post_order(&roots) {
            if let ExprNode::Var { sort, .. } = ctx.node(e) {
                match sort {
                    Sort::Bool => bits += 1,
                    Sort::Bv(w) => bits += *w,
                    Sort::Mem { .. } => enumerable = false,
                }
                vars.push((e, *sort));
            }
        }
        let enum_vars = (enumerable && bits <= ENUM_BITS).then_some(vars);
        DecodeOracle {
            port,
            probes,
            enum_vars,
            enum_bits: bits,
        }
    }

    /// Is instruction `idx`'s decode satisfiable? `None` = unknown.
    pub fn decode_satisfiable(&self, idx: usize) -> Option<bool> {
        let ctx = self.port.ctx();
        let decode = self.port.instructions()[idx].decode;
        match abs_eval(ctx, decode, &AbsEnv::new()) {
            AbsValue::Bool(AbsBool::True) => return Some(true),
            AbsValue::Bool(AbsBool::False) | AbsValue::Bool(AbsBool::Bot) => return Some(false),
            _ => {}
        }
        if assume(ctx, decode, &AbsEnv::new()).is_none() {
            return Some(false);
        }
        for probe in &self.probes {
            if let Ok(Value::Bool(true)) = eval(ctx, decode, probe) {
                return Some(true);
            }
        }
        // Satisfiability is existential: decode is satisfiable iff it
        // is NOT false under every assignment.
        self.enumerate(|env| !matches!(eval(ctx, decode, env), Ok(Value::Bool(true))))
            .map(|all_false| !all_false)
    }

    /// Are the decodes of `i` and `j` disjoint (no common command)?
    /// `None` = unknown.
    pub fn pair_disjoint(&self, i: usize, j: usize) -> Option<bool> {
        let ctx = self.port.ctx();
        let (di, dj) = (
            self.port.instructions()[i].decode,
            self.port.instructions()[j].decode,
        );
        // Condition on one decode and evaluate the other under it.
        match assume(ctx, di, &AbsEnv::new()) {
            None => return Some(true), // d_i unsatisfiable: vacuously disjoint
            Some(env) => {
                if matches!(
                    abs_eval(ctx, dj, &env),
                    AbsValue::Bool(AbsBool::False) | AbsValue::Bool(AbsBool::Bot)
                ) {
                    return Some(true);
                }
            }
        }
        for probe in &self.probes {
            if let (Ok(Value::Bool(true)), Ok(Value::Bool(true))) =
                (eval(ctx, di, probe), eval(ctx, dj, probe))
            {
                return Some(false);
            }
        }
        self.enumerate(|env| {
            !(matches!(eval(ctx, di, env), Ok(Value::Bool(true)))
                && matches!(eval(ctx, dj, env), Ok(Value::Bool(true))))
        })
    }

    /// Does some instruction trigger on every command (no decode gap)?
    /// `None` = unknown.
    pub fn no_gap(&self) -> Option<bool> {
        let ctx = self.port.ctx();
        let top = AbsEnv::new();
        for instr in self.port.instructions() {
            if abs_eval(ctx, instr.decode, &top) == AbsValue::Bool(AbsBool::True) {
                return Some(true); // one decode is a tautology
            }
        }
        self.enumerate(|env| {
            self.port
                .instructions()
                .iter()
                .any(|i| matches!(eval(ctx, i.decode, env), Ok(Value::Bool(true))))
        })
    }

    /// True if exhaustive enumeration is available for this port.
    pub fn exhaustive(&self) -> bool {
        self.enum_vars.is_some()
    }

    /// Checks `pred` on every assignment of the support variables;
    /// `Some(true)` iff it holds universally. `None` when the support
    /// exceeds the enumeration budget.
    fn enumerate<F: Fn(&Env) -> bool>(&self, pred: F) -> Option<bool> {
        let vars = self.enum_vars.as_ref()?;
        let total = 1u64 << self.enum_bits;
        let mut env = Env::new();
        for pattern in 0..total {
            let mut cursor = pattern;
            for (var, sort) in vars {
                match sort {
                    Sort::Bool => {
                        env.bind(*var, cursor & 1 == 1);
                        cursor >>= 1;
                    }
                    Sort::Bv(w) => {
                        // Widths here are bounded by ENUM_BITS (< 64).
                        let mask = (1u64 << w) - 1;
                        env.bind(*var, BitVecValue::from_u64(cursor & mask, *w));
                        cursor >>= w;
                    }
                    Sort::Mem { .. } => unreachable!("memories disable enumeration"),
                }
            }
            if !pred(&env) {
                return Some(false);
            }
        }
        Some(true)
    }
}

/// Representative concrete environments: all-zeros, all-ones, and the
/// reset state with zeroed inputs.
fn build_probes(port: &PortIla) -> Vec<Env> {
    let mut probes = Vec::new();
    for kind in 0..3u8 {
        let mut env = Env::new();
        for i in port.inputs() {
            env.bind(i.var, probe_value(&i.sort, kind == 1));
        }
        for s in port.states() {
            let v = match (kind, &s.init) {
                (2, Some(init)) => init.clone(),
                _ => probe_value(&s.sort, kind == 1),
            };
            env.bind(s.var, v);
        }
        probes.push(env);
    }
    probes
}

fn probe_value(sort: &Sort, ones: bool) -> Value {
    match sort {
        Sort::Bool => Value::Bool(ones),
        Sort::Bv(w) => Value::Bv(if ones {
            BitVecValue::ones(*w)
        } else {
            BitVecValue::zero(*w)
        }),
        Sort::Mem {
            addr_width,
            data_width,
        } => Value::Mem(if ones {
            MemValue::filled(*addr_width, *data_width, BitVecValue::ones(*data_width))
        } else {
            MemValue::zeroed(*addr_width, *data_width)
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gila_core::StateKind;

    fn two_instr_port() -> PortIla {
        let mut p = PortIla::new("p");
        let cmd = p.input("cmd", Sort::Bv(2));
        let _out = p.state("out", Sort::Bv(4), StateKind::Output);
        let c = p.ctx_mut();
        let d0 = c.eq_u64(cmd, 0);
        let one = c.bv_u64(1, 2);
        let d1 = c.ne(cmd, one);
        let never = c.ff();
        p.instr("a").decode(d0).add().unwrap();
        p.instr("b").decode(d1).add().unwrap();
        p.instr("dead").decode(never).add().unwrap();
        p
    }

    #[test]
    fn oracle_decides_dead_and_satisfiable() {
        let p = two_instr_port();
        let oracle = DecodeOracle::new(&p);
        assert_eq!(oracle.decode_satisfiable(0), Some(true));
        assert_eq!(oracle.decode_satisfiable(1), Some(true));
        assert_eq!(oracle.decode_satisfiable(2), Some(false));
    }

    /// A decode no probe hits (neither all-zeros, all-ones, nor reset)
    /// must still be decided *satisfiable* by enumeration — the
    /// existential direction, which a universal check would get wrong.
    #[test]
    fn oracle_enumeration_is_existential_for_satisfiability() {
        let mut p = PortIla::new("p");
        let cmd = p.input("cmd", Sort::Bv(3));
        let c = p.ctx_mut();
        let d = c.eq_u64(cmd, 5);
        p.instr("probe_miss").decode(d).add().unwrap();
        let oracle = DecodeOracle::new(&p);
        assert_eq!(oracle.decode_satisfiable(0), Some(true));
    }

    #[test]
    fn oracle_decides_overlap_exactly_when_enumerable() {
        let p = two_instr_port();
        let oracle = DecodeOracle::new(&p);
        assert!(oracle.exhaustive());
        // cmd == 0 also satisfies cmd != 1: the pair overlaps.
        assert_eq!(oracle.pair_disjoint(0, 1), Some(false));
        // The dead decode is vacuously disjoint from everything.
        assert_eq!(oracle.pair_disjoint(0, 2), Some(true));
    }

    #[test]
    fn oracle_decides_gap_exactly_when_enumerable() {
        let p = two_instr_port();
        let oracle = DecodeOracle::new(&p);
        // cmd == 1 triggers neither `a` (0) nor `b` (!= 1): gap exists.
        assert_eq!(oracle.no_gap(), Some(false));
    }

    #[test]
    fn assume_refutes_and_refines() {
        let mut ctx = ExprCtx::new();
        let x = ctx.var("x", Sort::Bv(8));
        let five = ctx.bv_u64(5, 8);
        let cond = ctx.eq(x, five);
        let env = assume(&ctx, cond, &AbsEnv::new()).expect("satisfiable");
        match env.get(x) {
            Some(AbsValue::Bv(bv)) => {
                assert_eq!(bv.as_const(), Some(&BitVecValue::from_u64(5, 8)))
            }
            other => panic!("expected refined bv, got {other:?}"),
        }
        // x == 5 && x == 6 is refuted through the conjunction walk.
        let six = ctx.bv_u64(6, 8);
        let c2 = ctx.eq(x, six);
        let both = ctx.and(cond, c2);
        assert!(assume(&ctx, both, &AbsEnv::new()).is_none());
    }
}
