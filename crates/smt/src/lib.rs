//! # gila-smt — bit-blasting decision procedure
//!
//! Lowers boolean / bit-vector / memory formulas built with
//! [`gila_expr`] into CNF (Tseitin encoding) and decides them with the
//! [`gila_sat`] CDCL solver. Together they replace the commercial model
//! checker used in the original DATE 2021 evaluation.
//!
//! Encodings: ripple-carry adders, shift-add multipliers, restoring
//! dividers, logarithmic barrel shifters, comparison chains, word-vector
//! memories with one-hot address selection. All encodings are validated
//! against the concrete evaluator by randomized tests.
//!
//! # Examples
//!
//! ```
//! use gila_expr::{ExprCtx, Sort};
//! use gila_smt::SmtSolver;
//!
//! // Is x + y == y + x valid for 8-bit vectors? Assert the negation; UNSAT
//! // means the equivalence holds for all inputs.
//! let mut ctx = ExprCtx::new();
//! let x = ctx.var("x", Sort::Bv(8));
//! let y = ctx.var("y", Sort::Bv(8));
//! let l = ctx.bvadd(x, y);
//! let r = ctx.bvadd(y, x);
//! let ne = ctx.ne(l, r);
//! let mut smt = SmtSolver::new();
//! smt.assert(&ctx, ne);
//! assert!(!smt.check().is_sat());
//! ```

#![warn(missing_docs)]

mod blast;

pub use blast::{prove_equiv, BlastStats, SmtResult, SmtSolver};
pub use gila_sat::{
    CancelToken, InprocessConfig, InprocessStats, Lit, ResourceOut, SolveLimits, SolverStats,
};
