//! Tseitin bit-blasting of expression DAGs into CNF.

use std::collections::HashMap;

use gila_expr::{BitVecValue, ExprCtx, ExprNode, ExprRef, MemValue, Op, Value};
use gila_sat::{CancelToken, Lit, ResourceOut, SolveLimits, SolveResult, Solver};

/// The bit-level representation of an expression.
#[derive(Clone, Debug)]
enum Repr {
    Bool(Lit),
    /// Bits, least-significant first.
    Bv(Vec<Lit>),
    /// One word (LSB-first bits) per address, `2^addr_width` words.
    Mem(Vec<Vec<Lit>>),
}

/// Outcome of a satisfiability check, with a model on the SAT side.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SmtResult {
    /// Satisfiable; query the model via [`SmtSolver::model_value`].
    Sat,
    /// Unsatisfiable.
    Unsat,
    /// The check gave up (resource limit or cancellation); no verdict.
    /// See [`SmtSolver::set_limits`] / [`SmtSolver::set_cancel`].
    Unknown(ResourceOut),
}

impl SmtResult {
    /// True for [`SmtResult::Sat`].
    pub fn is_sat(self) -> bool {
        matches!(self, SmtResult::Sat)
    }

    /// True for [`SmtResult::Unknown`].
    pub fn is_unknown(self) -> bool {
        matches!(self, SmtResult::Unknown(_))
    }
}

impl From<SolveResult> for SmtResult {
    fn from(r: SolveResult) -> Self {
        match r {
            SolveResult::Sat => SmtResult::Sat,
            SolveResult::Unsat => SmtResult::Unsat,
            SolveResult::Unknown(out) => SmtResult::Unknown(out),
        }
    }
}

/// Size counters for the generated CNF — the basis of the "memory usage"
/// proxy reported in the Table I reproduction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BlastStats {
    /// CNF variables created.
    pub variables: u64,
    /// Clauses added.
    pub clauses: u64,
}

impl BlastStats {
    /// A rough in-memory size estimate of the CNF, in megabytes, assuming
    /// an average of 3 literals (4 bytes each) plus 16 bytes of clause
    /// overhead, and 32 bytes per variable for watches/activity/assignment.
    pub fn estimated_mb(&self) -> f64 {
        let clause_bytes = self.clauses as f64 * (16.0 + 3.0 * 4.0);
        let var_bytes = self.variables as f64 * 32.0;
        (clause_bytes + var_bytes) / (1024.0 * 1024.0)
    }

    /// Component-wise maximum: the peak variable count *and* the peak
    /// clause count over two measurements. The peak memory over a set of
    /// queries is bounded by the component-wise max, not by whichever
    /// single query had the larger sum.
    pub fn max(self, other: BlastStats) -> BlastStats {
        BlastStats {
            variables: self.variables.max(other.variables),
            clauses: self.clauses.max(other.clauses),
        }
    }

    /// CNF added since an `earlier` snapshot of the same solver's stats
    /// (component-wise saturating difference). Used to attribute CNF
    /// growth to individual queries on a long-lived incremental solver.
    pub fn since(self, earlier: BlastStats) -> BlastStats {
        BlastStats {
            variables: self.variables.saturating_sub(earlier.variables),
            clauses: self.clauses.saturating_sub(earlier.clauses),
        }
    }
}

/// A bit-vector/memory satisfiability solver: blasts expressions from one
/// [`ExprCtx`] into CNF and solves with [`gila_sat::Solver`].
///
/// All expressions passed to one `SmtSolver` must come from the same
/// context (the one passed at each call); representations are cached by
/// expression handle.
///
/// # Examples
///
/// ```
/// use gila_expr::{ExprCtx, Sort};
/// use gila_smt::SmtSolver;
///
/// let mut ctx = ExprCtx::new();
/// let x = ctx.var("x", Sort::Bv(8));
/// let c = ctx.bv_u64(200, 8);
/// let gt = ctx.ugt(x, c);
/// let mut smt = SmtSolver::new();
/// smt.assert(&ctx, gt);
/// assert!(smt.check().is_sat());
/// assert!(smt.model_value(&ctx, x).as_bv().to_u64() > 200);
/// ```
#[derive(Debug, Default)]
pub struct SmtSolver {
    solver: Solver,
    cache: HashMap<ExprRef, Repr>,
    true_lit: Option<Lit>,
    stats: BlastStats,
    /// Activation literals of the open assertion scopes, innermost last.
    /// Asserts made inside a scope are guarded by its literal and are
    /// retracted (by a permanent unit clause on the negation) when the
    /// scope pops; the blasted definitions stay shared across scopes.
    scopes: Vec<Lit>,
    /// Variable index of *every* activation literal this solver ever
    /// created, open or popped. Clause export must filter on this full
    /// history, not just `scopes`: a learnt clause can mention the
    /// activation variable of a long-popped scope, and that variable
    /// means something entirely different (or nothing) in another
    /// solver.
    activation_vars: std::collections::HashSet<usize>,
    /// CNF grown by the most recent `check`/`check_assuming` call
    /// (blasting assumptions can add variables and clauses).
    last_check_cnf: BlastStats,
}

impl SmtSolver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Self::default()
    }

    /// CNF size counters so far.
    pub fn stats(&self) -> BlastStats {
        self.stats
    }

    /// Access to the effort counters of the underlying SAT solver.
    pub fn sat_stats(&self) -> gila_sat::SolverStats {
        self.solver.stats()
    }

    /// Solver effort spent by the most recent `check`/`check_assuming`
    /// call alone (counters are per-call deltas).
    pub fn last_check_effort(&self) -> gila_sat::SolverStats {
        self.solver.last_solve_stats()
    }

    /// Installs per-check resource limits on the underlying SAT solver;
    /// a check that exceeds them returns [`SmtResult::Unknown`].
    /// `SolveLimits::default()` removes all limits.
    pub fn set_limits(&mut self, limits: SolveLimits) {
        self.solver.set_limits(limits);
    }

    /// The currently installed solve limits.
    pub fn limits(&self) -> SolveLimits {
        self.solver.limits()
    }

    /// Installs a shared cancellation token: once cancelled, in-flight
    /// and future checks return [`SmtResult::Unknown`] until it is reset.
    pub fn set_cancel(&mut self, token: CancelToken) {
        self.solver.set_cancel(token);
    }

    /// Incremental CNF growth caused by the most recent
    /// `check`/`check_assuming` call (zero when every assumption was
    /// already blasted — the cache-hit case incremental reuse aims for).
    pub fn last_check_cnf_delta(&self) -> BlastStats {
        self.last_check_cnf
    }

    /// Runs one bounded inprocessing pass on the underlying SAT solver
    /// (see [`gila_sat::Solver::inprocess`]). Sound between
    /// `check`/`check_assuming` calls: activation scopes keep the solver
    /// at decision level 0, and every simplification derives from
    /// permanent clauses only, so open scopes and future assumptions are
    /// unaffected. Clauses guarded by popped scopes are reclaimed.
    pub fn inprocess(&mut self, cfg: &gila_sat::InprocessConfig) -> gila_sat::InprocessStats {
        self.solver.inprocess(cfg)
    }

    fn tt(&mut self) -> Lit {
        if let Some(l) = self.true_lit {
            return l;
        }
        let l = self.fresh();
        self.add_clause(vec![l]);
        self.true_lit = Some(l);
        l
    }

    fn ff(&mut self) -> Lit {
        !self.tt()
    }

    fn fresh(&mut self) -> Lit {
        self.stats.variables += 1;
        self.solver.new_var().positive()
    }

    fn add_clause(&mut self, lits: Vec<Lit>) {
        self.stats.clauses += 1;
        self.solver.add_clause(lits);
    }

    fn const_of(&self, l: Lit) -> Option<bool> {
        match self.true_lit {
            Some(t) if l == t => Some(true),
            Some(t) if l == !t => Some(false),
            _ => None,
        }
    }

    fn lit_of_bool(&mut self, b: bool) -> Lit {
        if b {
            self.tt()
        } else {
            self.ff()
        }
    }

    // ------------------------------------------------------------------
    // Gates (with constant short-circuiting)
    // ------------------------------------------------------------------

    fn gate_not(&mut self, a: Lit) -> Lit {
        !a
    }

    fn gate_and(&mut self, a: Lit, b: Lit) -> Lit {
        match (self.const_of(a), self.const_of(b)) {
            (Some(false), _) | (_, Some(false)) => return self.ff(),
            (Some(true), _) => return b,
            (_, Some(true)) => return a,
            _ => {}
        }
        if a == b {
            return a;
        }
        if a == !b {
            return self.ff();
        }
        let c = self.fresh();
        self.add_clause(vec![!c, a]);
        self.add_clause(vec![!c, b]);
        self.add_clause(vec![c, !a, !b]);
        c
    }

    fn gate_or(&mut self, a: Lit, b: Lit) -> Lit {
        let na = self.gate_not(a);
        let nb = self.gate_not(b);
        let n = self.gate_and(na, nb);
        self.gate_not(n)
    }

    fn gate_xor(&mut self, a: Lit, b: Lit) -> Lit {
        match (self.const_of(a), self.const_of(b)) {
            (Some(false), _) => return b,
            (_, Some(false)) => return a,
            (Some(true), _) => return !b,
            (_, Some(true)) => return !a,
            _ => {}
        }
        if a == b {
            return self.ff();
        }
        if a == !b {
            return self.tt();
        }
        let c = self.fresh();
        self.add_clause(vec![!c, a, b]);
        self.add_clause(vec![!c, !a, !b]);
        self.add_clause(vec![c, !a, b]);
        self.add_clause(vec![c, a, !b]);
        c
    }

    fn gate_iff(&mut self, a: Lit, b: Lit) -> Lit {
        let x = self.gate_xor(a, b);
        self.gate_not(x)
    }

    fn gate_ite(&mut self, c: Lit, t: Lit, e: Lit) -> Lit {
        match self.const_of(c) {
            Some(true) => return t,
            Some(false) => return e,
            None => {}
        }
        if t == e {
            return t;
        }
        match (self.const_of(t), self.const_of(e)) {
            (Some(true), Some(false)) => return c,
            (Some(false), Some(true)) => return !c,
            (Some(true), None) => return self.gate_or(c, e),
            (Some(false), None) => {
                let nc = !c;
                return self.gate_and(nc, e);
            }
            (None, Some(true)) => {
                let nc = !c;
                return self.gate_or(nc, t);
            }
            (None, Some(false)) => return self.gate_and(c, t),
            _ => {}
        }
        let o = self.fresh();
        self.add_clause(vec![!o, !c, t]);
        self.add_clause(vec![!o, c, e]);
        self.add_clause(vec![o, !c, !t]);
        self.add_clause(vec![o, c, !e]);
        o
    }

    /// Full adder: returns (sum, carry).
    fn full_adder(&mut self, a: Lit, b: Lit, cin: Lit) -> (Lit, Lit) {
        let axb = self.gate_xor(a, b);
        let sum = self.gate_xor(axb, cin);
        let ab = self.gate_and(a, b);
        let axb_cin = self.gate_and(axb, cin);
        let cout = self.gate_or(ab, axb_cin);
        (sum, cout)
    }

    fn adder(&mut self, a: &[Lit], b: &[Lit], mut cin: Lit) -> Vec<Lit> {
        let mut out = Vec::with_capacity(a.len());
        for i in 0..a.len() {
            let (s, c) = self.full_adder(a[i], b[i], cin);
            out.push(s);
            cin = c;
        }
        out
    }

    fn negate_bv(&mut self, a: &[Lit]) -> Vec<Lit> {
        // -a = ~a + 1, realized as ~a + 0 with carry-in 1.
        let inv: Vec<Lit> = a.iter().map(|&l| !l).collect();
        let one = self.tt();
        let ff = self.ff();
        let zero = vec![ff; a.len()];
        self.adder(&inv, &zero, one)
    }

    fn sub_bv(&mut self, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        let invb: Vec<Lit> = b.iter().map(|&l| !l).collect();
        let one = self.tt();
        self.adder(a, &invb, one)
    }

    /// Unsigned less-than comparison chain from LSB to MSB.
    fn ult_bv(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        let mut res = self.ff();
        for i in 0..a.len() {
            let eq = self.gate_iff(a[i], b[i]);
            let bi_gt = {
                let na = !a[i];
                self.gate_and(na, b[i])
            };
            let keep = self.gate_and(eq, res);
            res = self.gate_or(bi_gt, keep);
        }
        res
    }

    fn eq_bv(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        let mut res = self.tt();
        for i in 0..a.len() {
            let e = self.gate_iff(a[i], b[i]);
            res = self.gate_and(res, e);
        }
        res
    }

    fn mux_bv(&mut self, c: Lit, t: &[Lit], e: &[Lit]) -> Vec<Lit> {
        t.iter()
            .zip(e)
            .map(|(&ti, &ei)| self.gate_ite(c, ti, ei))
            .collect()
    }

    fn shift_stage(
        &mut self,
        bits: &[Lit],
        amount_bit: Lit,
        shift: usize,
        left: bool,
        fill: Lit,
    ) -> Vec<Lit> {
        let w = bits.len();
        let mut shifted = Vec::with_capacity(w);
        for i in 0..w {
            let src = if left {
                if i >= shift {
                    bits[i - shift]
                } else {
                    fill
                }
            } else if i + shift < w {
                bits[i + shift]
            } else {
                fill
            };
            shifted.push(src);
        }
        self.mux_bv(amount_bit, &shifted, bits)
    }

    fn barrel_shift(&mut self, bits: &[Lit], amount: &[Lit], left: bool, fill: Lit) -> Vec<Lit> {
        let w = bits.len();
        // Stages up to the highest power of two below 2*w cover all useful
        // shifts; any higher amount bit forces the fill value everywhere.
        let mut useful_stages = 0;
        while (1usize << useful_stages) < w {
            useful_stages += 1;
        }
        let mut cur: Vec<Lit> = bits.to_vec();
        for (k, &ab) in amount.iter().enumerate().take(useful_stages) {
            cur = self.shift_stage(&cur, ab, 1 << k, left, fill);
        }
        // If any amount bit >= useful_stages is set, the result saturates
        // to the fill value. (Shift amounts in [w, 2^useful_stages) are
        // already handled by the stages shifting everything out.)
        let mut oversize = self.ff();
        for &ab in amount.iter().skip(useful_stages) {
            oversize = self.gate_or(oversize, ab);
        }
        let fills = vec![fill; w];
        self.mux_bv(oversize, &fills, &cur)
    }

    fn mul_bv(&mut self, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        let w = a.len();
        let ff = self.ff();
        let mut acc = vec![ff; w];
        for i in 0..w {
            // addend = (a << i) AND b[i]
            let mut addend = Vec::with_capacity(w);
            for j in 0..w {
                if j < i {
                    addend.push(ff);
                } else {
                    addend.push(self.gate_and(a[j - i], b[i]));
                }
            }
            acc = self.adder(&acc, &addend, ff);
        }
        acc
    }

    /// Restoring long division: returns (quotient, remainder) for the
    /// division-by-nonzero case; the caller patches in SMT-LIB semantics
    /// for zero divisors.
    fn udivrem_bv(&mut self, a: &[Lit], b: &[Lit]) -> (Vec<Lit>, Vec<Lit>) {
        let w = a.len();
        let ff = self.ff();
        let mut q = vec![ff; w];
        let mut r = vec![ff; w];
        for i in (0..w).rev() {
            // r = (r << 1) | a[i]
            let mut r2 = Vec::with_capacity(w);
            r2.push(a[i]);
            r2.extend_from_slice(&r[..w - 1]);
            // if r2 >= b { r = r2 - b; q[i] = 1 } else { r = r2 }
            let lt = self.ult_bv(&r2, b);
            let ge = !lt;
            let diff = self.sub_bv(&r2, b);
            r = self.mux_bv(ge, &diff, &r2);
            q[i] = ge;
        }
        (q, r)
    }

    fn addr_select(&mut self, addr: &[Lit], value: usize) -> Lit {
        let mut sel = self.tt();
        for (i, &ab) in addr.iter().enumerate() {
            let want = (value >> i) & 1 == 1;
            let bit = if want { ab } else { !ab };
            sel = self.gate_and(sel, bit);
        }
        sel
    }

    // ------------------------------------------------------------------
    // Blasting
    // ------------------------------------------------------------------

    fn bv_const_bits(&mut self, v: &BitVecValue) -> Vec<Lit> {
        (0..v.width())
            .map(|i| {
                let b = v.bit(i);
                self.lit_of_bool(b)
            })
            .collect()
    }

    fn mem_const_words(&mut self, m: &MemValue) -> Vec<Vec<Lit>> {
        let n = 1usize << m.addr_width();
        (0..n)
            .map(|a| {
                let word = m.read(&BitVecValue::from_u64(a as u64, m.addr_width()));
                self.bv_const_bits(&word)
            })
            .collect()
    }

    fn blast(&mut self, ctx: &ExprCtx, root: ExprRef) -> Repr {
        let order = ctx.post_order(&[root]);
        for e in order {
            if self.cache.contains_key(&e) {
                continue;
            }
            let repr = match ctx.node(e).clone() {
                ExprNode::BoolConst(b) => Repr::Bool(self.lit_of_bool(b)),
                ExprNode::BvConst(v) => Repr::Bv(self.bv_const_bits(&v)),
                ExprNode::MemConst(m) => Repr::Mem(self.mem_const_words(&m)),
                ExprNode::Var { sort, .. } => match sort {
                    gila_expr::Sort::Bool => Repr::Bool(self.fresh()),
                    gila_expr::Sort::Bv(w) => {
                        Repr::Bv((0..w).map(|_| self.fresh()).collect())
                    }
                    gila_expr::Sort::Mem {
                        addr_width,
                        data_width,
                    } => {
                        let n = 1usize << addr_width;
                        Repr::Mem(
                            (0..n)
                                .map(|_| (0..data_width).map(|_| self.fresh()).collect())
                                .collect(),
                        )
                    }
                },
                ExprNode::App { op, args, .. } => self.blast_app(op, &args),
            };
            self.cache.insert(e, repr);
        }
        self.cache[&root].clone()
    }

    fn bool_arg(&self, e: ExprRef) -> Lit {
        match &self.cache[&e] {
            Repr::Bool(l) => *l,
            other => panic!("expected bool repr, got {other:?}"),
        }
    }

    fn bv_arg(&self, e: ExprRef) -> Vec<Lit> {
        match &self.cache[&e] {
            Repr::Bv(bits) => bits.clone(),
            other => panic!("expected bv repr, got {other:?}"),
        }
    }

    fn mem_arg(&self, e: ExprRef) -> Vec<Vec<Lit>> {
        match &self.cache[&e] {
            Repr::Mem(words) => words.clone(),
            other => panic!("expected mem repr, got {other:?}"),
        }
    }

    fn blast_app(&mut self, op: Op, args: &[ExprRef]) -> Repr {
        use Op::*;
        match op {
            Not => {
                let a = self.bool_arg(args[0]);
                Repr::Bool(self.gate_not(a))
            }
            And => {
                let (a, b) = (self.bool_arg(args[0]), self.bool_arg(args[1]));
                Repr::Bool(self.gate_and(a, b))
            }
            Or => {
                let (a, b) = (self.bool_arg(args[0]), self.bool_arg(args[1]));
                Repr::Bool(self.gate_or(a, b))
            }
            Xor => {
                let (a, b) = (self.bool_arg(args[0]), self.bool_arg(args[1]));
                Repr::Bool(self.gate_xor(a, b))
            }
            Implies => {
                let (a, b) = (self.bool_arg(args[0]), self.bool_arg(args[1]));
                let na = !a;
                Repr::Bool(self.gate_or(na, b))
            }
            Iff => {
                let (a, b) = (self.bool_arg(args[0]), self.bool_arg(args[1]));
                Repr::Bool(self.gate_iff(a, b))
            }
            Ite => {
                let c = self.bool_arg(args[0]);
                match self.cache[&args[1]].clone() {
                    Repr::Bool(t) => {
                        let e = self.bool_arg(args[2]);
                        Repr::Bool(self.gate_ite(c, t, e))
                    }
                    Repr::Bv(t) => {
                        let e = self.bv_arg(args[2]);
                        Repr::Bv(self.mux_bv(c, &t, &e))
                    }
                    Repr::Mem(t) => {
                        let e = self.mem_arg(args[2]);
                        let words = t
                            .iter()
                            .zip(&e)
                            .map(|(tw, ew)| self.mux_bv(c, tw, ew))
                            .collect();
                        Repr::Mem(words)
                    }
                }
            }
            Eq => match self.cache[&args[0]].clone() {
                Repr::Bool(a) => {
                    let b = self.bool_arg(args[1]);
                    Repr::Bool(self.gate_iff(a, b))
                }
                Repr::Bv(a) => {
                    let b = self.bv_arg(args[1]);
                    Repr::Bool(self.eq_bv(&a, &b))
                }
                Repr::Mem(a) => {
                    let b = self.mem_arg(args[1]);
                    let mut res = self.tt();
                    for (wa, wb) in a.iter().zip(&b) {
                        let we = self.eq_bv(wa, wb);
                        res = self.gate_and(res, we);
                    }
                    Repr::Bool(res)
                }
            },
            BvNot => {
                let a = self.bv_arg(args[0]);
                Repr::Bv(a.iter().map(|&l| !l).collect())
            }
            BvNeg => {
                let a = self.bv_arg(args[0]);
                Repr::Bv(self.negate_bv(&a))
            }
            BvAnd => {
                let (a, b) = (self.bv_arg(args[0]), self.bv_arg(args[1]));
                Repr::Bv(a.iter().zip(&b).map(|(&x, &y)| self.gate_and(x, y)).collect())
            }
            BvOr => {
                let (a, b) = (self.bv_arg(args[0]), self.bv_arg(args[1]));
                Repr::Bv(a.iter().zip(&b).map(|(&x, &y)| self.gate_or(x, y)).collect())
            }
            BvXor => {
                let (a, b) = (self.bv_arg(args[0]), self.bv_arg(args[1]));
                Repr::Bv(a.iter().zip(&b).map(|(&x, &y)| self.gate_xor(x, y)).collect())
            }
            BvAdd => {
                let (a, b) = (self.bv_arg(args[0]), self.bv_arg(args[1]));
                let ff = self.ff();
                Repr::Bv(self.adder(&a, &b, ff))
            }
            BvSub => {
                let (a, b) = (self.bv_arg(args[0]), self.bv_arg(args[1]));
                Repr::Bv(self.sub_bv(&a, &b))
            }
            BvMul => {
                let (a, b) = (self.bv_arg(args[0]), self.bv_arg(args[1]));
                Repr::Bv(self.mul_bv(&a, &b))
            }
            BvUdiv | BvUrem => {
                let (a, b) = (self.bv_arg(args[0]), self.bv_arg(args[1]));
                let (q, r) = self.udivrem_bv(&a, &b);
                let ff = self.ff();
                let zero = vec![ff; b.len()];
                let b_is_zero = self.eq_bv(&b, &zero);
                if op == BvUdiv {
                    let ones = vec![self.tt(); a.len()];
                    Repr::Bv(self.mux_bv(b_is_zero, &ones, &q))
                } else {
                    Repr::Bv(self.mux_bv(b_is_zero, &a, &r))
                }
            }
            BvShl => {
                let (a, b) = (self.bv_arg(args[0]), self.bv_arg(args[1]));
                let ff = self.ff();
                Repr::Bv(self.barrel_shift(&a, &b, true, ff))
            }
            BvLshr => {
                let (a, b) = (self.bv_arg(args[0]), self.bv_arg(args[1]));
                let ff = self.ff();
                Repr::Bv(self.barrel_shift(&a, &b, false, ff))
            }
            BvAshr => {
                let (a, b) = (self.bv_arg(args[0]), self.bv_arg(args[1]));
                let sign = *a.last().expect("non-empty bv");
                Repr::Bv(self.barrel_shift(&a, &b, false, sign))
            }
            BvConcat => {
                let (hi, lo) = (self.bv_arg(args[0]), self.bv_arg(args[1]));
                let mut bits = lo;
                bits.extend(hi);
                Repr::Bv(bits)
            }
            BvExtract { hi, lo } => {
                let a = self.bv_arg(args[0]);
                Repr::Bv(a[lo as usize..=hi as usize].to_vec())
            }
            BvZext { to } => {
                let mut a = self.bv_arg(args[0]);
                let ff = self.ff();
                a.resize(to as usize, ff);
                Repr::Bv(a)
            }
            BvSext { to } => {
                let mut a = self.bv_arg(args[0]);
                let sign = *a.last().expect("non-empty bv");
                a.resize(to as usize, sign);
                Repr::Bv(a)
            }
            BvUlt => {
                let (a, b) = (self.bv_arg(args[0]), self.bv_arg(args[1]));
                Repr::Bool(self.ult_bv(&a, &b))
            }
            BvUle => {
                let (a, b) = (self.bv_arg(args[0]), self.bv_arg(args[1]));
                let gt = self.ult_bv(&b, &a);
                Repr::Bool(!gt)
            }
            BvSlt => {
                let (mut a, mut b) = (self.bv_arg(args[0]), self.bv_arg(args[1]));
                // Flip sign bits to reduce to unsigned comparison.
                let la = a.len();
                a[la - 1] = !a[la - 1];
                let lb = b.len();
                b[lb - 1] = !b[lb - 1];
                Repr::Bool(self.ult_bv(&a, &b))
            }
            BvSle => {
                let (mut a, mut b) = (self.bv_arg(args[0]), self.bv_arg(args[1]));
                let la = a.len();
                a[la - 1] = !a[la - 1];
                let lb = b.len();
                b[lb - 1] = !b[lb - 1];
                let gt = self.ult_bv(&b, &a);
                Repr::Bool(!gt)
            }
            MemRead => {
                let words = self.mem_arg(args[0]);
                let addr = self.bv_arg(args[1]);
                let mut result = words[0].clone();
                for (a, word) in words.iter().enumerate().skip(1) {
                    let sel = self.addr_select(&addr, a);
                    result = self.mux_bv(sel, word, &result);
                }
                Repr::Bv(result)
            }
            MemWrite => {
                let words = self.mem_arg(args[0]);
                let addr = self.bv_arg(args[1]);
                let data = self.bv_arg(args[2]);
                let new_words = words
                    .iter()
                    .enumerate()
                    .map(|(a, word)| {
                        let sel = self.addr_select(&addr, a);
                        self.mux_bv(sel, &data, word)
                    })
                    .collect();
                Repr::Mem(new_words)
            }
            BoolToBv => {
                let a = self.bool_arg(args[0]);
                Repr::Bv(vec![a])
            }
        }
    }

    // ------------------------------------------------------------------
    // Public API
    // ------------------------------------------------------------------

    /// Asserts that the boolean expression `e` holds.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not boolean-sorted or comes from a different
    /// context than earlier calls.
    pub fn assert(&mut self, ctx: &ExprCtx, e: ExprRef) {
        assert!(
            ctx.sort_of(e).is_bool(),
            "assert expects a boolean expression, got {}",
            ctx.sort_of(e)
        );
        // A cancelled/expired solver skips the encoding: every
        // subsequent check fast-fails with `Unknown` (cancellation is
        // never un-done within a run), so the skipped constraint can
        // never be missed by a real verdict. Blasted definitions are
        // conservative, so the partial state stays sound.
        if self.solver.resources_exhausted().is_some() {
            return;
        }
        match self.blast(ctx, e) {
            Repr::Bool(l) => match self.scopes.last() {
                Some(&active) => self.add_clause(vec![!active, l]),
                None => self.add_clause(vec![l]),
            },
            _ => unreachable!("bool expression blasted to non-bool"),
        }
    }

    /// Opens an assertion scope: asserts made until the matching
    /// [`SmtSolver::pop_scope`] are retractable as a group, while the CNF
    /// they blasted — and any clauses the solver learned from it — stay
    /// behind for reuse. Scopes nest (LIFO); returns the new depth.
    ///
    /// This is the MiniSat activation-literal pattern: each scoped assert
    /// of literal `l` becomes the clause `¬a ∨ l` for the scope's fresh
    /// literal `a`, and every `check`/`check_assuming` assumes the `a`s of
    /// all open scopes.
    pub fn push_scope(&mut self) -> usize {
        let activation = self.fresh();
        self.activation_vars.insert(activation.var().index());
        self.scopes.push(activation);
        self.scopes.len()
    }

    /// Closes the innermost scope, permanently retracting its asserts.
    ///
    /// # Panics
    ///
    /// Panics if no scope is open.
    pub fn pop_scope(&mut self) {
        let activation = self.scopes.pop().expect("pop_scope without open scope");
        // The unit clause frees the solver to simplify away everything
        // that only mattered under this scope.
        self.add_clause(vec![!activation]);
    }

    /// Number of currently open assertion scopes.
    pub fn scope_depth(&self) -> usize {
        self.scopes.len()
    }

    /// Number of CNF variables allocated so far. Two solvers that
    /// performed the same construction steps (same [`SmtSolver::encode`]
    /// / [`SmtSolver::assert`] calls in the same order, from fresh) have
    /// identical variable numbering up to this mark — the
    /// `prefix_vars` bound for [`SmtSolver::export_shared_learnts`].
    pub fn cnf_vars(&self) -> usize {
        self.solver.num_vars()
    }

    /// Blasts `e` into the CNF cache — allocating variables and the
    /// Tseitin definitional clauses — *without asserting it*. Used to
    /// build a deterministic shared CNF prefix across solvers: the
    /// definitions constrain nothing on their own (every assignment of
    /// the original variables extends to the defined ones), so encoding
    /// is always sound.
    pub fn encode(&mut self, ctx: &ExprCtx, e: ExprRef) {
        let _ = self.blast(ctx, e);
    }

    /// Raw pass-through to [`gila_sat::Solver::export_learnts`]: the
    /// learnt clauses of length at most `len_cap`, with **no** safety
    /// filtering. Prefer [`SmtSolver::export_shared_learnts`] for
    /// anything that crosses solver boundaries.
    pub fn export_learnts(&self, len_cap: usize) -> Vec<Vec<Lit>> {
        self.solver.export_learnts(len_cap)
    }

    /// Learnt clauses of length at most `len_cap` that are safe to
    /// import into another solver sharing this solver's first
    /// `prefix_vars` CNF variables (see [`SmtSolver::cnf_vars`]).
    ///
    /// Two filters make the export sound:
    ///
    /// * **No activation literals** — a clause mentioning any activation
    ///   variable this solver *ever* created (open or popped scope) is
    ///   dropped. Such clauses are only implied relative to this
    ///   solver's scope bookkeeping; imported elsewhere, a stale
    ///   activation literal could silently disable (or re-enable) the
    ///   importer's own scopes and flip verdicts.
    /// * **Prefix variables only** — every literal must lie below
    ///   `prefix_vars`. A clause over shared-prefix variables that
    ///   contains no activation literal is implied by the prefix's
    ///   definitional clauses alone (scoped asserts all carry an
    ///   activation literal, and definitions added later are
    ///   conservative extensions), so any solver with the same prefix
    ///   may add it.
    pub fn export_shared_learnts(&self, len_cap: usize, prefix_vars: usize) -> Vec<Vec<Lit>> {
        self.solver
            .export_learnts(len_cap)
            .into_iter()
            .filter(|clause| {
                clause.iter().all(|l| {
                    let v = l.var().index();
                    v < prefix_vars && !self.activation_vars.contains(&v)
                })
            })
            .collect()
    }

    /// Imports clauses produced by another solver's
    /// [`SmtSolver::export_shared_learnts`] over an identical CNF
    /// prefix. Returns the number of clauses accepted (they are added as
    /// redundant/learnt clauses, so the clause-DB policy may drop them
    /// again later).
    pub fn import_shared_clauses<'a, I>(&mut self, clauses: I) -> usize
    where
        I: IntoIterator<Item = &'a [Lit]>,
    {
        self.solver.import_clauses(clauses)
    }

    /// Checks satisfiability of all assertions so far.
    pub fn check(&mut self) -> SmtResult {
        self.last_check_cnf = BlastStats::default();
        if self.scopes.is_empty() {
            self.solver.solve().into()
        } else {
            let scopes = self.scopes.clone();
            self.solver.solve_with_assumptions(&scopes).into()
        }
    }

    /// Checks satisfiability of the assertions *plus* the given boolean
    /// expressions, assumed only for this call. Learned clauses persist,
    /// making repeated related queries (e.g. one per instruction over a
    /// shared unrolling) much cheaper than independent solvers.
    ///
    /// # Panics
    ///
    /// Panics if an assumption is not boolean-sorted.
    pub fn check_assuming(&mut self, ctx: &ExprCtx, assumptions: &[ExprRef]) -> SmtResult {
        // Fast-fail before blasting: a cancelled or deadline-expired
        // solver would only report the same `Unknown` after paying for
        // the assumptions' (possibly large) encoding. This is what makes
        // a serve-layer disconnect or watchdog cancellation take effect
        // between properties, not just mid-search.
        if self.solver.resources_exhausted().is_some() {
            self.last_check_cnf = BlastStats::default();
            return self.solver.solve_with_assumptions(&self.scopes.clone()).into();
        }
        let before = self.stats;
        let mut lits: Vec<Lit> = assumptions
            .iter()
            .map(|&e| {
                assert!(
                    ctx.sort_of(e).is_bool(),
                    "assumptions must be boolean, got {}",
                    ctx.sort_of(e)
                );
                match self.blast(ctx, e) {
                    Repr::Bool(l) => l,
                    _ => unreachable!("bool expression blasted to non-bool"),
                }
            })
            .collect();
        lits.extend_from_slice(&self.scopes);
        self.last_check_cnf = self.stats.since(before);
        self.solver.solve_with_assumptions(&lits).into()
    }

    /// Reads the value of an expression from the most recent model.
    ///
    /// Unconstrained bits read as 0. Typically called on variables to
    /// build counterexample traces, but works on any blasted expression.
    ///
    /// # Panics
    ///
    /// Panics if `e` has not been blasted (i.e. was not part of any
    /// assertion); use [`SmtSolver::try_model_value`] to handle that case.
    pub fn model_value(&self, ctx: &ExprCtx, e: ExprRef) -> Value {
        self.try_model_value(ctx, e)
            .unwrap_or_else(|| panic!("expression was not part of any assertion"))
    }

    /// Like [`SmtSolver::model_value`], but returns `None` for
    /// expressions that were never blasted (e.g. variables not mentioned
    /// in any assertion).
    pub fn try_model_value(&self, _ctx: &ExprCtx, e: ExprRef) -> Option<Value> {
        let repr = self.cache.get(&e)?;
        let bit = |l: Lit| self.solver.lit_model_value(l).unwrap_or(false);
        Some(match repr {
            Repr::Bool(l) => Value::Bool(bit(*l)),
            Repr::Bv(bits) => {
                let bools: Vec<bool> = bits.iter().map(|&l| bit(l)).collect();
                Value::Bv(BitVecValue::from_bits(&bools))
            }
            Repr::Mem(words) => {
                let addr_width = words.len().trailing_zeros();
                let data_width = words[0].len() as u32;
                let mut m = MemValue::zeroed(addr_width, data_width);
                for (a, word) in words.iter().enumerate() {
                    let bools: Vec<bool> = word.iter().map(|&l| bit(l)).collect();
                    m = m.write(
                        &BitVecValue::from_u64(a as u64, addr_width),
                        &BitVecValue::from_bits(&bools),
                    );
                }
                Value::Mem(m)
            }
        })
    }
}

/// Convenience check that two expressions are semantically equivalent
/// (for all variable assignments), via one UNSAT query on `a != b`.
///
/// # Examples
///
/// ```
/// use gila_expr::{ExprCtx, Sort};
/// use gila_smt::prove_equiv;
///
/// let mut ctx = ExprCtx::new();
/// let x = ctx.var("x", Sort::Bv(8));
/// let two = ctx.bv_u64(2, 8);
/// let one = ctx.bv_u64(1, 8);
/// let twice = ctx.bvmul(x, two);
/// let shifted = ctx.bvshl(x, one);
/// assert!(prove_equiv(&mut ctx, twice, shifted));
/// ```
pub fn prove_equiv(ctx: &mut ExprCtx, a: ExprRef, b: ExprRef) -> bool {
    let ne = ctx.ne(a, b);
    let mut smt = SmtSolver::new();
    smt.assert(ctx, ne);
    !smt.check().is_sat()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gila_expr::Sort;

    fn check_valid(ctx: &mut ExprCtx, prop: ExprRef) -> bool {
        let neg = ctx.not(prop);
        let mut smt = SmtSolver::new();
        smt.assert(ctx, neg);
        !smt.check().is_sat()
    }

    #[test]
    fn limits_pass_through_and_unknown_surfaces() {
        // A 10-bit multiplication equivalence is hard enough to burn a
        // tiny conflict budget; clearing the limit converges to Unsat.
        let mut ctx = ExprCtx::new();
        let x = ctx.var("x", Sort::Bv(10));
        let y = ctx.var("y", Sort::Bv(10));
        let l = ctx.bvmul(x, y);
        let r = ctx.bvmul(y, x);
        let ne = ctx.ne(l, r);
        let mut smt = SmtSolver::new();
        smt.assert(&ctx, ne);
        smt.set_limits(SolveLimits {
            conflicts: Some(1),
            ..Default::default()
        });
        assert_eq!(smt.check(), SmtResult::Unknown(ResourceOut::Conflicts));
        assert!(smt.check().is_unknown());
        smt.set_limits(SolveLimits::default());
        assert_eq!(smt.check(), SmtResult::Unsat);
    }

    #[test]
    fn cancel_token_passes_through_scoped_checks() {
        let mut ctx = ExprCtx::new();
        let x = ctx.var("x", Sort::Bv(8));
        let c = ctx.bv_u64(7, 8);
        let eq = ctx.eq(x, c);
        let mut smt = SmtSolver::new();
        let tok = CancelToken::new();
        smt.set_cancel(tok.clone());
        smt.push_scope();
        smt.assert(&ctx, eq);
        assert!(smt.check().is_sat());
        tok.cancel();
        assert!(smt.check().is_unknown());
        tok.reset();
        assert!(smt.check().is_sat());
        smt.pop_scope();
    }

    #[test]
    fn add_commutes() {
        let mut ctx = ExprCtx::new();
        let x = ctx.var("x", Sort::Bv(8));
        let y = ctx.var("y", Sort::Bv(8));
        let l = ctx.bvadd(x, y);
        let r = ctx.bvadd(y, x);
        let prop = ctx.eq(l, r);
        assert!(check_valid(&mut ctx, prop));
    }

    #[test]
    fn add_not_idempotent() {
        let mut ctx = ExprCtx::new();
        let x = ctx.var("x", Sort::Bv(8));
        let l = ctx.bvadd(x, x);
        let prop = ctx.eq(l, x);
        assert!(!check_valid(&mut ctx, prop)); // fails for x != 0
    }

    #[test]
    fn sat_model_is_consistent() {
        let mut ctx = ExprCtx::new();
        let x = ctx.var("x", Sort::Bv(8));
        let y = ctx.var("y", Sort::Bv(8));
        let sum = ctx.bvadd(x, y);
        let want = ctx.bv_u64(100, 8);
        let c1 = ctx.eq(sum, want);
        let lim = ctx.bv_u64(10, 8);
        let c2 = ctx.ult(x, lim);
        let mut smt = SmtSolver::new();
        smt.assert(&ctx, c1);
        smt.assert(&ctx, c2);
        assert!(smt.check().is_sat());
        let vx = smt.model_value(&ctx, x).as_bv().to_u64();
        let vy = smt.model_value(&ctx, y).as_bv().to_u64();
        assert!(vx < 10);
        assert_eq!((vx + vy) % 256, 100);
    }

    #[test]
    fn subtraction_inverts_addition() {
        let mut ctx = ExprCtx::new();
        let x = ctx.var("x", Sort::Bv(6));
        let y = ctx.var("y", Sort::Bv(6));
        let s = ctx.bvadd(x, y);
        let d = ctx.bvsub(s, y);
        let prop = ctx.eq(d, x);
        assert!(check_valid(&mut ctx, prop));
    }

    #[test]
    fn neg_is_sub_from_zero() {
        let mut ctx = ExprCtx::new();
        let x = ctx.var("x", Sort::Bv(5));
        let z = ctx.bv_u64(0, 5);
        let a = ctx.bvneg(x);
        let b = ctx.bvsub(z, x);
        let prop = ctx.eq(a, b);
        assert!(check_valid(&mut ctx, prop));
    }

    #[test]
    fn mul_matches_repeated_add() {
        let mut ctx = ExprCtx::new();
        let x = ctx.var("x", Sort::Bv(6));
        let three = ctx.bv_u64(3, 6);
        let m = ctx.bvmul(x, three);
        let xx = ctx.bvadd(x, x);
        let xxx = ctx.bvadd(xx, x);
        let prop = ctx.eq(m, xxx);
        assert!(check_valid(&mut ctx, prop));
    }

    #[test]
    fn divrem_reconstruction() {
        // For b != 0: a = b*q + r and r < b.
        let mut ctx = ExprCtx::new();
        let a = ctx.var("a", Sort::Bv(5));
        let b = ctx.var("b", Sort::Bv(5));
        let zero = ctx.bv_u64(0, 5);
        let b_nonzero = ctx.ne(b, zero);
        let q = ctx.bvudiv(a, b);
        let r = ctx.bvurem(a, b);
        let bq = ctx.bvmul(b, q);
        let sum = ctx.bvadd(bq, r);
        let recon = ctx.eq(sum, a);
        let r_lt_b = ctx.ult(r, b);
        let both = ctx.and(recon, r_lt_b);
        let prop = ctx.implies(b_nonzero, both);
        assert!(check_valid(&mut ctx, prop));
    }

    #[test]
    fn div_by_zero_semantics() {
        let mut ctx = ExprCtx::new();
        let a = ctx.var("a", Sort::Bv(5));
        let zero = ctx.bv_u64(0, 5);
        let q = ctx.bvudiv(a, zero);
        let ones = ctx.bv(BitVecValue::ones(5));
        let p1 = ctx.eq(q, ones);
        let r = ctx.bvurem(a, zero);
        let p2 = ctx.eq(r, a);
        let prop = ctx.and(p1, p2);
        assert!(check_valid(&mut ctx, prop));
    }

    #[test]
    fn shifts_match_mul_div_by_powers() {
        let mut ctx = ExprCtx::new();
        let x = ctx.var("x", Sort::Bv(8));
        let two = ctx.bv_u64(2, 8);
        let one = ctx.bv_u64(1, 8);
        let l = ctx.bvshl(x, one);
        let m = ctx.bvmul(x, two);
        let prop = ctx.eq(l, m);
        assert!(check_valid(&mut ctx, prop));
        // Symbolic shift amount >= width gives zero.
        let amt = ctx.var("amt", Sort::Bv(8));
        let w = ctx.bv_u64(8, 8);
        let big = ctx.uge(amt, w);
        let sh = ctx.bvshl(x, amt);
        let z = ctx.bv_u64(0, 8);
        let is_z = ctx.eq(sh, z);
        let prop = ctx.implies(big, is_z);
        assert!(check_valid(&mut ctx, prop));
    }

    #[test]
    fn ashr_fills_with_sign() {
        let mut ctx = ExprCtx::new();
        let x = ctx.var("x", Sort::Bv(4));
        let amt = ctx.bv_u64(3, 4);
        let sh = ctx.bvashr(x, amt);
        // If MSB set, result is 0b1111 or 0b0001-extended... specifically
        // ashr by 3 of a 4-bit value leaves bit0 = msb copies: result is
        // 0b1111 if msb else 0b000<bit3>=0.. actually bits: [b3,b3,b3,b3]
        // when shifting by 3: out = [b3, s, s, s] where s = sign.
        let c8 = ctx.bv_u64(8, 4);
        let msb_set = ctx.uge(x, c8);
        let ones = ctx.bv(BitVecValue::ones(4));
        let all1 = ctx.eq(sh, ones);
        let prop = ctx.implies(msb_set, all1);
        assert!(check_valid(&mut ctx, prop));
    }

    #[test]
    fn signed_comparisons() {
        let mut ctx = ExprCtx::new();
        let a = ctx.bv_u64(0xFF, 8); // -1 signed
        let b = ctx.bv_u64(1, 8);
        let lt = ctx.slt(a, b);
        let mut smt = SmtSolver::new();
        smt.assert(&ctx, lt);
        assert!(smt.check().is_sat()); // constant-folded true actually
        // Symbolic check: x slt 0 iff msb(x)
        let x = ctx.var("x", Sort::Bv(8));
        let zero = ctx.bv_u64(0, 8);
        let neg = ctx.slt(x, zero);
        let msb = ctx.extract(x, 7, 7);
        let msb1 = ctx.eq_u64(msb, 1);
        let prop = ctx.iff(neg, msb1);
        assert!(check_valid(&mut ctx, prop));
    }

    #[test]
    fn concat_extract_inverse() {
        let mut ctx = ExprCtx::new();
        let x = ctx.var("x", Sort::Bv(12));
        let hi = ctx.extract(x, 11, 8);
        let lo = ctx.extract(x, 7, 0);
        let back = ctx.concat(hi, lo);
        let prop = ctx.eq(back, x);
        assert!(check_valid(&mut ctx, prop));
    }

    #[test]
    fn zext_sext_props() {
        let mut ctx = ExprCtx::new();
        let x = ctx.var("x", Sort::Bv(4));
        let zx = ctx.zext(x, 8);
        let c16 = ctx.bv_u64(16, 8);
        let prop = ctx.ult(zx, c16);
        assert!(check_valid(&mut ctx, prop));
        let sx = ctx.sext(x, 8);
        let sxl = ctx.extract(sx, 3, 0);
        let prop = ctx.eq(sxl, x);
        assert!(check_valid(&mut ctx, prop));
    }

    #[test]
    fn memory_read_after_write() {
        let mut ctx = ExprCtx::new();
        let m = ctx.var(
            "m",
            Sort::Mem {
                addr_width: 3,
                data_width: 4,
            },
        );
        let a = ctx.var("a", Sort::Bv(3));
        let b = ctx.var("b", Sort::Bv(3));
        let d = ctx.var("d", Sort::Bv(4));
        let w = ctx.mem_write(m, a, d);
        let r_same = ctx.mem_read(w, a);
        let prop = ctx.eq(r_same, d);
        assert!(check_valid(&mut ctx, prop));
        // Different address is unchanged.
        let neq = ctx.ne(a, b);
        let r_other = ctx.mem_read(w, b);
        let orig = ctx.mem_read(m, b);
        let same = ctx.eq(r_other, orig);
        let prop = ctx.implies(neq, same);
        assert!(check_valid(&mut ctx, prop));
    }

    #[test]
    fn memory_equality() {
        let mut ctx = ExprCtx::new();
        let sort = Sort::Mem {
            addr_width: 2,
            data_width: 4,
        };
        let m1 = ctx.var("m1", sort);
        let m2 = ctx.var("m2", sort);
        let eq = ctx.eq(m1, m2);
        let a = ctx.var("a", Sort::Bv(2));
        let r1 = ctx.mem_read(m1, a);
        let r2 = ctx.mem_read(m2, a);
        let reads_eq = ctx.eq(r1, r2);
        let prop = ctx.implies(eq, reads_eq);
        assert!(check_valid(&mut ctx, prop));
    }

    #[test]
    fn randomized_blast_matches_eval() {
        use gila_expr::{eval, Env};
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for round in 0..60 {
            let mut ctx = ExprCtx::new();
            let x = ctx.var("x", Sort::Bv(6));
            let y = ctx.var("y", Sort::Bv(6));
            let mut pool = vec![x, y];
            for _ in 0..8 {
                let a = pool[rng.gen_range(0..pool.len())];
                let b = pool[rng.gen_range(0..pool.len())];
                let e = match rng.gen_range(0..10) {
                    0 => ctx.bvadd(a, b),
                    1 => ctx.bvsub(a, b),
                    2 => ctx.bvmul(a, b),
                    3 => ctx.bvand(a, b),
                    4 => ctx.bvor(a, b),
                    5 => ctx.bvxor(a, b),
                    6 => ctx.bvshl(a, b),
                    7 => ctx.bvlshr(a, b),
                    8 => ctx.bvudiv(a, b),
                    _ => ctx.bvurem(a, b),
                };
                pool.push(e);
            }
            let root = *pool.last().unwrap();
            let vx = rng.gen_range(0..64u64);
            let vy = rng.gen_range(0..64u64);
            let mut env = Env::new();
            env.bind_u64(&ctx, "x", vx);
            env.bind_u64(&ctx, "y", vy);
            let expected = eval(&ctx, root, &env).unwrap().as_bv().clone();
            // Constrain x and y to the concrete values; the root must equal
            // the evaluator's answer.
            let cx = ctx.eq_u64(x, vx);
            let cy = ctx.eq_u64(y, vy);
            let cr = ctx.bv(expected.clone());
            let eq_root = ctx.eq(root, cr);
            let mut smt = SmtSolver::new();
            smt.assert(&ctx, cx);
            smt.assert(&ctx, cy);
            assert!(smt.check().is_sat(), "round {round}");
            // And asserting the equality keeps it SAT...
            smt.assert(&ctx, eq_root);
            assert!(smt.check().is_sat(), "round {round}: blast disagrees with eval");
            // ...while asserting the negation instead is UNSAT.
            let mut smt2 = SmtSolver::new();
            smt2.assert(&ctx, cx);
            smt2.assert(&ctx, cy);
            let neq = ctx.ne(root, cr);
            smt2.assert(&ctx, neq);
            assert!(!smt2.check().is_sat(), "round {round}: blast disagrees with eval (neq SAT)");
        }
    }

    #[test]
    fn prove_equiv_helper() {
        let mut ctx = ExprCtx::new();
        let x = ctx.var("x", Sort::Bv(8));
        let a = ctx.bvxor(x, x);
        let b = ctx.bv_u64(0, 8);
        assert!(prove_equiv(&mut ctx, a, b));
        let c = ctx.bvadd(x, x);
        assert!(!prove_equiv(&mut ctx, c, b));
    }

    #[test]
    fn stats_grow() {
        let mut ctx = ExprCtx::new();
        let x = ctx.var("x", Sort::Bv(16));
        let y = ctx.var("y", Sort::Bv(16));
        let p = ctx.bvmul(x, y);
        let c = ctx.bv_u64(12345, 16);
        let e = ctx.eq(p, c);
        let mut smt = SmtSolver::new();
        smt.assert(&ctx, e);
        assert!(smt.stats().variables > 32);
        assert!(smt.stats().clauses > 100);
        assert!(smt.stats().estimated_mb() > 0.0);
    }

    #[test]
    fn stats_max_is_componentwise() {
        let a = BlastStats {
            variables: 10,
            clauses: 1,
        };
        let b = BlastStats {
            variables: 2,
            clauses: 8,
        };
        let m = a.max(b);
        assert_eq!(m.variables, 10);
        assert_eq!(m.clauses, 8);
        let d = m.since(a);
        assert_eq!(d.variables, 0);
        assert_eq!(d.clauses, 7);
    }

    #[test]
    fn popped_scope_asserts_are_retracted() {
        let mut ctx = ExprCtx::new();
        let x = ctx.var("x", Sort::Bv(8));
        let c200 = ctx.bv_u64(200, 8);
        let c10 = ctx.bv_u64(10, 8);
        let hi = ctx.ugt(x, c200);
        let lo = ctx.ult(x, c10);
        let mut smt = SmtSolver::new();
        smt.assert(&ctx, hi);
        assert_eq!(smt.scope_depth(), 0);
        assert_eq!(smt.push_scope(), 1);
        smt.assert(&ctx, lo);
        // x > 200 && x < 10 is contradictory...
        assert!(!smt.check().is_sat());
        smt.pop_scope();
        assert_eq!(smt.scope_depth(), 0);
        // ...but only the scoped half is retracted by the pop.
        assert!(smt.check().is_sat());
        assert!(smt.model_value(&ctx, x).as_bv().to_u64() > 200);
    }

    #[test]
    fn scopes_nest_lifo() {
        let mut ctx = ExprCtx::new();
        let x = ctx.var("x", Sort::Bv(8));
        let is5 = ctx.eq_u64(x, 5);
        let is7 = ctx.eq_u64(x, 7);
        let mut smt = SmtSolver::new();
        smt.push_scope();
        smt.assert(&ctx, is5);
        smt.push_scope();
        smt.assert(&ctx, is7);
        assert!(!smt.check().is_sat());
        smt.pop_scope();
        assert!(smt.check().is_sat());
        assert_eq!(smt.model_value(&ctx, x).as_bv().to_u64(), 5);
        smt.pop_scope();
        assert!(smt.check().is_sat());
    }

    #[test]
    fn successive_scopes_do_not_leak_assumptions() {
        // The shared-worker pattern: one solver, one instruction per
        // scope; verdicts must match what isolated solvers would say.
        let mut ctx = ExprCtx::new();
        let x = ctx.var("x", Sort::Bv(8));
        let mut smt = SmtSolver::new();
        for target in [5u64, 7, 9] {
            smt.push_scope();
            let eq = ctx.eq_u64(x, target);
            smt.assert(&ctx, eq);
            assert!(smt.check().is_sat(), "x == {target} alone must be SAT");
            assert_eq!(smt.model_value(&ctx, x).as_bv().to_u64(), target);
            smt.pop_scope();
        }
    }

    #[test]
    fn scoped_reuse_does_not_reblast() {
        let mut ctx = ExprCtx::new();
        let x = ctx.var("x", Sort::Bv(16));
        let y = ctx.var("y", Sort::Bv(16));
        let p = ctx.bvmul(x, y);
        let c = ctx.bv_u64(12345, 16);
        let e = ctx.eq(p, c);
        let mut smt = SmtSolver::new();
        smt.push_scope();
        smt.assert(&ctx, e);
        assert!(smt.check().is_sat());
        let after_first = smt.stats();
        smt.pop_scope();
        smt.push_scope();
        smt.assert(&ctx, e);
        assert!(smt.check().is_sat());
        let growth = smt.stats().since(after_first);
        // Second scope re-asserts a cached expression: one activation
        // variable and a couple of clauses, no re-blasting of the
        // multiplier.
        assert!(
            growth.variables <= 2 && growth.clauses <= 4,
            "expected cached reuse, grew by {growth:?}"
        );
    }

    #[test]
    fn check_assuming_respects_open_scopes() {
        let mut ctx = ExprCtx::new();
        let x = ctx.var("x", Sort::Bv(8));
        let is5 = ctx.eq_u64(x, 5);
        let is7 = ctx.eq_u64(x, 7);
        let mut smt = SmtSolver::new();
        smt.push_scope();
        smt.assert(&ctx, is5);
        assert!(!smt.check_assuming(&ctx, &[is7]).is_sat());
        assert!(smt.check_assuming(&ctx, &[is5]).is_sat());
        smt.pop_scope();
        assert!(smt.check_assuming(&ctx, &[is7]).is_sat());
    }

    #[test]
    fn inprocess_between_scoped_checks_preserves_verdicts() {
        // The engine's usage pattern: one persistent solver, one
        // instruction per scope, an inprocessing pass between
        // instructions. Verdicts and models must be unaffected.
        let mut ctx = ExprCtx::new();
        let x = ctx.var("x", Sort::Bv(8));
        let y = ctx.var("y", Sort::Bv(8));
        let sum = ctx.bvadd(x, y);
        let mut smt = SmtSolver::new();
        let cfg = gila_sat::InprocessConfig::default();
        let mut reclaimed = 0;
        for target in [5u64, 7, 200, 255] {
            smt.push_scope();
            let eq_t = ctx.eq_u64(sum, target);
            smt.assert(&ctx, eq_t);
            assert!(smt.check().is_sat(), "x + y == {target} must be SAT");
            let model = smt.model_value(&ctx, sum).as_bv().to_u64();
            assert_eq!(model, target);
            let zx = ctx.eq_u64(x, 0);
            let zy = ctx.eq_u64(y, target);
            assert!(smt.check_assuming(&ctx, &[zx, zy]).is_sat());
            smt.pop_scope();
            let st = smt.inprocess(&cfg);
            reclaimed += st.clauses_satisfied;
        }
        // Popped activation scopes leave satisfied clauses behind; at
        // least one pass must have reclaimed some.
        assert!(reclaimed > 0, "expected popped scopes to be reclaimed");
        // The solver is still usable and still correct afterwards.
        let contradiction = ctx.ne(sum, sum);
        assert!(!smt.check_assuming(&ctx, &[contradiction]).is_sat());
    }

    #[test]
    #[should_panic(expected = "pop_scope without open scope")]
    fn pop_without_push_panics() {
        SmtSolver::new().pop_scope();
    }

    /// Demonstrates *why* activation literals must be filtered on export:
    /// a stale `¬a` unit smuggled into another solver disables that
    /// solver's open scope and flips an UNSAT verdict to SAT.
    #[test]
    fn stale_activation_clause_flips_verdict_without_filtering() {
        let mut ctx = ExprCtx::new();
        let x = ctx.var("x", Sort::Bool);

        // Victim solver: encode x first so the activation literal of the
        // scope opened next has a *known* variable index (= cnf_vars()
        // right before push_scope).
        let mut victim = SmtSolver::new();
        victim.encode(&ctx, x);
        let activation_var = victim.cnf_vars();
        victim.push_scope();
        victim.assert(&ctx, x);
        // The scope is consistent: x itself is clearly satisfiable.
        assert!(victim.check_assuming(&ctx, &[x]).is_sat());

        // A "learnt" unit clause ¬a over the victim's *open* activation
        // variable — exactly what another worker's raw export could
        // contain after popping a scope with the same variable numbering
        // (pop_scope records the permanent unit ¬a, and anything learnt
        // from it). The raw import API performs no activation filtering
        // by design.
        let stale = vec![Lit::from_index(2 * activation_var)];
        assert_eq!(victim.import_shared_clauses([stale.as_slice()]), 1);

        // Every check assumes the open scope's activation literal `a`;
        // the imported unit ¬a contradicts the assumption at the root,
        // so a satisfiable query now reports UNSAT — a bogus proof.
        assert!(
            !victim.check_assuming(&ctx, &[x]).is_sat(),
            "stale activation unit should have poisoned the open scope"
        );
    }

    /// The shared-export filter drops every clause touching an
    /// activation variable (open *or popped*) or a variable above the
    /// shared-prefix mark, so the flip above cannot happen between
    /// workers using `export_shared_learnts`.
    #[test]
    fn shared_export_filters_activation_and_out_of_prefix_vars() {
        let mut ctx = ExprCtx::new();
        let p = ctx.var("p", Sort::Bv(6));
        let q = ctx.var("q", Sort::Bv(6));
        let sum = ctx.bvadd(p, q);

        let mut smt = SmtSolver::new();
        // Deterministic shared prefix: definitional CNF only.
        smt.encode(&ctx, sum);
        let mark = smt.cnf_vars();

        // A scoped multiplication-commutativity disequality is UNSAT
        // only after real search, so the solver learns clauses over the
        // scope's fresh (post-prefix) variables; pop afterwards so the
        // activation variable also enters the popped history.
        smt.push_scope();
        let l = ctx.bvmul(p, q);
        let r = ctx.bvmul(q, p);
        let ne = ctx.ne(l, r);
        smt.assert(&ctx, ne);
        assert!(!smt.check().is_sat());
        smt.pop_scope();

        let raw = smt.export_learnts(usize::MAX);
        assert!(
            !raw.is_empty(),
            "a search-heavy UNSAT must leave learnt clauses behind"
        );

        let shared = smt.export_shared_learnts(usize::MAX, mark);
        for clause in &shared {
            for lit in clause {
                let v = lit.var().index();
                assert!(v < mark, "shared clause escapes the prefix: var {v}");
            }
        }
        // The raw export is a strict superset in this setup: conflicts
        // were driven by the scoped disequality, so unfiltered learnts
        // mention activation or post-prefix variables.
        assert!(
            raw.len() > shared.len(),
            "expected raw export ({}) to contain clauses the shared filter drops ({})",
            raw.len(),
            shared.len()
        );
    }

    /// Clauses that do pass the shared filter are sound to import: the
    /// importer's verdicts are unchanged on both SAT and UNSAT queries.
    #[test]
    fn shared_import_preserves_verdicts() {
        let mut ctx = ExprCtx::new();
        let p = ctx.var("p", Sort::Bv(6));
        let q = ctx.var("q", Sort::Bv(6));
        let sum = ctx.bvadd(p, q);

        // Exporter and importer run the identical prefix construction.
        let mut exporter = SmtSolver::new();
        exporter.encode(&ctx, sum);
        let mark = exporter.cnf_vars();
        let mut importer = SmtSolver::new();
        importer.encode(&ctx, sum);
        assert_eq!(importer.cnf_vars(), mark, "prefixes must align");

        for target in [3u64, 17, 40] {
            exporter.push_scope();
            let eq_t = ctx.eq_u64(sum, target);
            exporter.assert(&ctx, eq_t);
            let _ = exporter.check();
            exporter.pop_scope();
        }
        let shared = exporter.export_shared_learnts(8, mark);
        let imported = importer.import_shared_clauses(shared.iter().map(Vec::as_slice));
        assert_eq!(imported, shared.len());

        // UNSAT query stays UNSAT, SAT query stays SAT with a correct model.
        let contradiction = ctx.ne(sum, sum);
        assert!(!importer.check_assuming(&ctx, &[contradiction]).is_sat());
        importer.push_scope();
        let eq = ctx.eq_u64(sum, 21);
        importer.assert(&ctx, eq);
        assert!(importer.check().is_sat());
        assert_eq!(importer.model_value(&ctx, sum).as_bv().to_u64(), 21);
        importer.pop_scope();
    }
}
