//! Time-frame expansion (unrolling) of transition systems.

use std::collections::{BTreeMap, HashMap};

use gila_expr::{substitute_cached, ExprCtx, ExprRef, Value};
use gila_smt::SmtSolver;
use gila_trace::{Event, SpanKind, Tracer};

use crate::ts::TransitionSystem;

/// One time frame of an unrolling: the symbolic state and the fresh
/// input variables for that step.
#[derive(Clone, Debug)]
pub struct Frame {
    /// State name -> expression over frame-0 state and input variables.
    pub states: BTreeMap<String, ExprRef>,
    /// Input name -> the fresh variable for this step.
    pub inputs: BTreeMap<String, ExprRef>,
    /// The instantiated invariant constraints for this step.
    pub constraints: Vec<ExprRef>,
}

/// A saved unrolling depth; see [`Unrolling::snapshot`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UnrollingSnapshot {
    frames: usize,
}

/// An unrolled transition system.
///
/// Frame 0 starts from fresh symbolic state variables (named `name@0`),
/// optionally constrained to declared initial values. Each subsequent
/// frame's state is the previous frame's next-state expressions with
/// inputs replaced by fresh per-step variables (`name@k`). All
/// expressions live in the unroller's own context, importable into SAT.
///
/// # Examples
///
/// ```
/// use gila_mc::{TransitionSystem, Unrolling};
/// use gila_expr::Sort;
///
/// let mut ts = TransitionSystem::new("c");
/// let cnt = ts.state("cnt", Sort::Bv(8));
/// let one = ts.ctx_mut().bv_u64(1, 8);
/// let next = ts.ctx_mut().bvadd(cnt, one);
/// ts.set_next("cnt", next)?;
/// let mut u = Unrolling::new(&ts, false);
/// u.extend_to(3);
/// assert_eq!(u.frames().len(), 4); // frames 0..=3
/// # Ok::<(), gila_mc::TsError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Unrolling {
    ctx: ExprCtx,
    state_names: Vec<String>,
    input_names: Vec<String>,
    next: BTreeMap<String, ExprRef>,
    ts_state_vars: BTreeMap<String, ExprRef>,
    ts_input_vars: BTreeMap<String, ExprRef>,
    ts_constraints: Vec<ExprRef>,
    init_assumptions: Vec<ExprRef>,
    frames: Vec<Frame>,
    tracer: Tracer,
}

impl Unrolling {
    /// Creates an unrolling with frame 0 in place.
    ///
    /// With `constrain_init = true`, states with declared initial values
    /// are pinned to them in frame 0; otherwise frame 0 is fully
    /// symbolic (the mode refinement checking uses: "starting from *any*
    /// pair of equivalent states").
    pub fn new(ts: &TransitionSystem, constrain_init: bool) -> Self {
        // Clone the context so ts expressions remain valid handles.
        let ctx = ts.ctx().clone();
        let mut u = Unrolling {
            ctx,
            state_names: ts.states().iter().map(|v| v.name.clone()).collect(),
            input_names: ts.inputs().iter().map(|v| v.name.clone()).collect(),
            next: ts
                .states()
                .iter()
                .map(|v| {
                    (
                        v.name.clone(),
                        ts.next_of(&v.name).expect("next always present"),
                    )
                })
                .collect(),
            ts_state_vars: ts.states().iter().map(|v| (v.name.clone(), v.var)).collect(),
            ts_input_vars: ts.inputs().iter().map(|v| (v.name.clone(), v.var)).collect(),
            ts_constraints: ts.constraints().to_vec(),
            init_assumptions: Vec::new(),
            frames: Vec::new(),
            tracer: Tracer::disabled(),
        };
        // Frame 0: fresh symbolic state.
        let mut states = BTreeMap::new();
        for name in u.state_names.clone() {
            let sort = u.ctx.sort_of(u.ts_state_vars[&name]);
            let v0 = u.ctx.var(format!("{name}@0"), sort);
            states.insert(name.clone(), v0);
            if constrain_init {
                if let Some(value) = ts.init_of(&name) {
                    let c = match value {
                        Value::Bool(b) => {
                            let bc = u.ctx.bool_const(*b);
                            u.ctx.eq(v0, bc)
                        }
                        Value::Bv(x) => {
                            let xc = u.ctx.bv(x.clone());
                            u.ctx.eq(v0, xc)
                        }
                        Value::Mem(m) => {
                            let mc = u.ctx.mem_const(m.clone());
                            u.ctx.eq(v0, mc)
                        }
                    };
                    u.init_assumptions.push(c);
                }
            }
        }
        let frame0 = u.make_frame(0, states);
        u.frames.push(frame0);
        u
    }

    fn make_frame(&mut self, step: usize, states: BTreeMap<String, ExprRef>) -> Frame {
        let mut inputs = BTreeMap::new();
        for name in &self.input_names {
            let sort = self.ctx.sort_of(self.ts_input_vars[name]);
            let v = self.ctx.var(format!("{name}@{step}"), sort);
            inputs.insert(name.clone(), v);
        }
        // Instantiate the invariant constraints at this step.
        let subst = self.subst_map(&states, &inputs);
        let mut memo = HashMap::new();
        let constraints = self
            .ts_constraints
            .clone()
            .into_iter()
            .map(|c| substitute_cached(&mut self.ctx, c, &subst, &mut memo))
            .collect();
        Frame {
            states,
            inputs,
            constraints,
        }
    }

    fn subst_map(
        &self,
        states: &BTreeMap<String, ExprRef>,
        inputs: &BTreeMap<String, ExprRef>,
    ) -> HashMap<ExprRef, ExprRef> {
        let mut map = HashMap::new();
        for (name, &var) in &self.ts_state_vars {
            map.insert(var, states[name]);
        }
        for (name, &var) in &self.ts_input_vars {
            map.insert(var, inputs[name]);
        }
        map
    }

    /// Attaches a telemetry tracer; extend/snapshot/rollback events are
    /// emitted through it. The default is the disabled (no-op) tracer.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Appends one frame.
    pub fn step(&mut self) {
        let last = self.frames.last().expect("frame 0 exists");
        let subst = self.subst_map(&last.states, &last.inputs);
        let mut memo = HashMap::new();
        let mut states = BTreeMap::new();
        for name in self.state_names.clone() {
            let next = self.next[&name];
            let e = substitute_cached(&mut self.ctx, next, &subst, &mut memo);
            states.insert(name, e);
        }
        let step = self.frames.len();
        let frame = self.make_frame(step, states);
        self.frames.push(frame);
        self.tracer.record(|| {
            Event::new(SpanKind::Unroll)
                .label("extend")
                .field("depth", step as u64)
        });
    }

    /// Extends the unrolling so frames `0..=k` exist.
    pub fn extend_to(&mut self, k: usize) {
        while self.frames.len() <= k {
            self.step();
        }
    }

    /// The deepest unrolled frame index (`frames().len() - 1`).
    pub fn depth(&self) -> usize {
        self.frames.len() - 1
    }

    /// Captures the current unrolling depth so a longer-lived unrolling
    /// can be [rolled back](Unrolling::rollback_to) after serving a
    /// deeper-bounded query.
    pub fn snapshot(&self) -> UnrollingSnapshot {
        self.tracer.record(|| {
            Event::new(SpanKind::Unroll)
                .label("snapshot")
                .field("depth", (self.frames.len() - 1) as u64)
        });
        UnrollingSnapshot {
            frames: self.frames.len(),
        }
    }

    /// Truncates the unrolling back to a snapshot.
    ///
    /// Because frame variables are interned by name (`name@k`) and frame
    /// expressions are hash-consed, re-extending after a rollback
    /// reproduces bit-identical `ExprRef`s — so a solver that already
    /// blasted the dropped frames keeps its CNF valid and cached. This is
    /// what lets one persistent engine serve instructions of differing
    /// bounds.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot is deeper than the current unrolling (i.e.
    /// it was taken from a different `Unrolling`).
    pub fn rollback_to(&mut self, snap: UnrollingSnapshot) {
        assert!(
            snap.frames <= self.frames.len(),
            "rollback_to: snapshot at {} frames is deeper than current {}",
            snap.frames,
            self.frames.len()
        );
        self.tracer.record(|| {
            Event::new(SpanKind::Unroll)
                .label("rollback")
                .field("from", (self.frames.len() - 1) as u64)
                .field("to", (snap.frames - 1) as u64)
        });
        self.frames.truncate(snap.frames);
    }

    /// The frames unrolled so far.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// The unroller's expression context (valid for all frame exprs).
    pub fn ctx(&self) -> &ExprCtx {
        &self.ctx
    }

    /// Mutable access to the context (for building properties).
    pub fn ctx_mut(&mut self) -> &mut ExprCtx {
        &mut self.ctx
    }

    /// Initial-value assumptions (empty when frame 0 is fully symbolic).
    pub fn init_assumptions(&self) -> &[ExprRef] {
        &self.init_assumptions
    }

    /// Maps an expression over the transition system's variables to the
    /// given frame: state and input variables are replaced by that
    /// frame's expressions/fresh variables.
    ///
    /// # Panics
    ///
    /// Panics if `k` is beyond the unrolled frames.
    pub fn map_expr(&mut self, k: usize, e: ExprRef) -> ExprRef {
        let frame = &self.frames[k];
        let subst = self.subst_map(&frame.states.clone(), &frame.inputs.clone());
        let mut memo = HashMap::new();
        substitute_cached(&mut self.ctx, e, &subst, &mut memo)
    }

    /// All invariant-constraint instances over frames `0..=k`.
    pub fn constraints_up_to(&self, k: usize) -> Vec<ExprRef> {
        self.frames[..=k]
            .iter()
            .flat_map(|f| f.constraints.iter().copied())
            .collect()
    }

    /// Reads the concrete state at frame `k` from a satisfying model.
    pub fn concretize_states(&self, smt: &SmtSolver, k: usize) -> BTreeMap<String, Value> {
        self.concretize(smt, self.frames[k].states.clone())
    }

    /// Reads the concrete inputs at frame `k` from a satisfying model.
    pub fn concretize_inputs(&self, smt: &SmtSolver, k: usize) -> BTreeMap<String, Value> {
        self.concretize(smt, self.frames[k].inputs.clone())
    }

    /// Reads concrete values for arbitrary named expressions over this
    /// unrolling's variables from a satisfying model (unconstrained
    /// variables default to zero).
    pub fn concretize(
        &self,
        smt: &SmtSolver,
        exprs: BTreeMap<String, ExprRef>,
    ) -> BTreeMap<String, Value> {
        use gila_expr::{eval, Env};
        // Build an environment for the free variables from the model;
        // unconstrained variables default to zero.
        let roots: Vec<ExprRef> = exprs.values().copied().collect();
        let mut env = Env::new();
        for v in self.ctx.vars_of(&roots) {
            let value = smt.try_model_value(&self.ctx, v).unwrap_or_else(|| {
                match self.ctx.sort_of(v) {
                    gila_expr::Sort::Bool => Value::Bool(false),
                    gila_expr::Sort::Bv(w) => Value::Bv(gila_expr::BitVecValue::zero(w)),
                    gila_expr::Sort::Mem {
                        addr_width,
                        data_width,
                    } => Value::Mem(gila_expr::MemValue::zeroed(addr_width, data_width)),
                }
            });
            env.bind(v, value);
        }
        exprs
            .into_iter()
            .map(|(name, e)| {
                let v = eval(&self.ctx, e, &env).expect("all vars bound");
                (name, v)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gila_expr::{BitVecValue, Sort};

    fn counter_ts() -> TransitionSystem {
        let mut ts = TransitionSystem::new("c");
        let en = ts.input("en", Sort::Bv(1));
        let cnt = ts.state("cnt", Sort::Bv(8));
        let one = ts.ctx_mut().bv_u64(1, 8);
        let inc = ts.ctx_mut().bvadd(cnt, one);
        let c = ts.ctx_mut().eq_u64(en, 1);
        let next = ts.ctx_mut().ite(c, inc, cnt);
        ts.set_next("cnt", next).unwrap();
        ts.set_init("cnt", BitVecValue::from_u64(0, 8)).unwrap();
        ts
    }

    #[test]
    fn frames_have_fresh_inputs() {
        let ts = counter_ts();
        let mut u = Unrolling::new(&ts, true);
        u.extend_to(2);
        assert_eq!(u.frames().len(), 3);
        let i0 = u.frames()[0].inputs["en"];
        let i1 = u.frames()[1].inputs["en"];
        assert_ne!(i0, i1);
        assert_eq!(u.init_assumptions().len(), 1);
    }

    #[test]
    fn unrolled_semantics_via_sat() {
        // After 2 steps with en=1, cnt must be 2 (from init 0).
        let ts = counter_ts();
        let mut u = Unrolling::new(&ts, true);
        u.extend_to(2);
        let mut smt = SmtSolver::new();
        for &a in u.init_assumptions() {
            smt.assert(u.ctx(), a);
        }
        for k in 0..2 {
            let en = u.frames()[k].inputs["en"];
            let c = u.ctx_mut().eq_u64(en, 1);
            smt.assert(u.ctx(), c);
        }
        // Assert cnt@2 != 2 -> must be UNSAT.
        let cnt2 = u.frames()[2].states["cnt"];
        let ne = {
            let two = u.ctx_mut().bv_u64(2, 8);
            u.ctx_mut().ne(cnt2, two)
        };
        smt.assert(u.ctx(), ne);
        assert!(!smt.check().is_sat());
    }

    #[test]
    fn map_expr_instantiates_frames() {
        let mut ts = counter_ts();
        // cnt < 10 over ts vars, built in the ts context *before* unrolling
        // so the handle is valid in the unroller's cloned context.
        let prop = {
            let cnt = ts.ctx().find_var("cnt").unwrap();
            let ten = ts.ctx_mut().bv_u64(10, 8);
            ts.ctx_mut().ult(cnt, ten)
        };
        let mut u = Unrolling::new(&ts, true);
        u.extend_to(1);
        let p0 = u.map_expr(0, prop);
        let p1 = u.map_expr(1, prop);
        assert_ne!(p0, p1);
    }

    #[test]
    fn rollback_and_reextend_is_deterministic() {
        let ts = counter_ts();
        let mut u = Unrolling::new(&ts, false);
        u.extend_to(5);
        assert_eq!(u.depth(), 5);
        let deep: Vec<_> = (0..=5).map(|k| u.frames()[k].states["cnt"]).collect();
        let snap_shallow = u.snapshot();
        u.rollback_to(snap_shallow);
        assert_eq!(u.depth(), 5);
        // Roll back to depth 2, then re-extend: handles must be
        // bit-identical to the first unrolling (interned names +
        // hash-consing), so a solver's blast cache stays valid.
        u.rollback_to(UnrollingSnapshot { frames: 3 });
        assert_eq!(u.depth(), 2);
        u.extend_to(5);
        let again: Vec<_> = (0..=5).map(|k| u.frames()[k].states["cnt"]).collect();
        assert_eq!(deep, again);
        let i3 = u.frames()[3].inputs["en"];
        assert_eq!(u.ctx().find_var("en@3"), Some(i3));
    }

    #[test]
    #[should_panic(expected = "deeper than current")]
    fn rollback_to_foreign_snapshot_panics() {
        let ts = counter_ts();
        let mut deep = Unrolling::new(&ts, false);
        deep.extend_to(4);
        let snap = deep.snapshot();
        let mut shallow = Unrolling::new(&ts, false);
        shallow.rollback_to(snap);
    }

    #[test]
    fn concretize_extracts_model_values() {
        let ts = counter_ts();
        let mut u = Unrolling::new(&ts, false);
        u.extend_to(1);
        let mut smt = SmtSolver::new();
        // Pin cnt@0 = 7 and en@0 = 1; then states at frame 1 must read 8.
        let cnt0 = u.frames()[0].states["cnt"];
        let c = u.ctx_mut().eq_u64(cnt0, 7);
        smt.assert(u.ctx(), c);
        let en0 = u.frames()[0].inputs["en"];
        let c = u.ctx_mut().eq_u64(en0, 1);
        smt.assert(u.ctx(), c);
        // Force frame-1 state into the solver so its vars are blasted.
        let cnt1 = u.frames()[1].states["cnt"];
        let c = {
            let eight = u.ctx_mut().bv_u64(8, 8);
            u.ctx_mut().eq(cnt1, eight)
        };
        smt.assert(u.ctx(), c);
        assert!(smt.check().is_sat());
        let s1 = u.concretize_states(&smt, 1);
        assert_eq!(s1["cnt"].as_bv().to_u64(), 8);
        let i0 = u.concretize_inputs(&smt, 0);
        assert_eq!(i0["en"].as_bv().to_u64(), 1);
    }
}
