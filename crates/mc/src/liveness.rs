//! Liveness checking via the liveness-to-safety transformation
//! (Biere, Artho, Schuppan, 2002) — the extension the paper's §VI
//! sketches for checking liveness properties of RTL implementations.
//!
//! A *justice* property `GF p` ("p holds infinitely often") is violated
//! exactly by a lasso-shaped trace on whose loop `p` never holds. The
//! transformation adds a shadow copy of the state, a save oracle, and a
//! `triggered` flag accumulating `p` since the save; the safety property
//! "no closed loop without `p`" is then checked with plain BMC.

use gila_expr::{BitVecValue, ExprRef, Sort, Value};

use crate::bmc::{bmc_safety, BmcOutcome, Counterexample};
use crate::ts::TransitionSystem;

/// Outcome of a bounded liveness check.
#[derive(Clone, Debug)]
pub enum LivenessOutcome {
    /// No lasso violating the justice property exists within the bound.
    NoLassoUpTo(
        /// The bound checked.
        usize,
    ),
    /// A lasso was found: the justice property is violated.
    LassoFound(
        /// The safety counterexample over the *transformed* system; its
        /// `__saved`/`__triggered` columns expose the loop structure.
        Box<Counterexample>,
    ),
}

impl LivenessOutcome {
    /// True if no violating lasso was found.
    pub fn holds(&self) -> bool {
        matches!(self, LivenessOutcome::NoLassoUpTo(_))
    }
}

/// Transforms `ts` for the justice property `GF justice` and returns
/// the transformed system together with the safety property to check
/// (`true` = no bad loop closed yet).
///
/// The transformed system adds, per original state `x`, a shadow state
/// `__shadow_x`, plus `__saved`, `__triggered` (both 1-bit) and the
/// oracle input `__save`.
///
/// # Panics
///
/// Panics if `justice` is not a boolean expression over `ts`'s context.
pub fn liveness_to_safety(
    ts: &TransitionSystem,
    justice: ExprRef,
) -> (TransitionSystem, ExprRef) {
    assert!(
        ts.ctx().sort_of(justice).is_bool(),
        "justice property must be boolean"
    );
    let mut out = ts.clone();
    let save = out.input("__save", Sort::Bv(1));
    let saved = out.state("__saved", Sort::Bv(1));
    let triggered = out.state("__triggered", Sort::Bv(1));
    out.set_init("__saved", BitVecValue::from_u64(0, 1))
        .expect("declared");
    out.set_init("__triggered", BitVecValue::from_u64(0, 1))
        .expect("declared");

    let original_states: Vec<(String, Sort, ExprRef)> = ts
        .states()
        .iter()
        .map(|v| (v.name.clone(), v.sort, v.var))
        .collect();

    // save_now: the oracle fires and nothing was saved yet.
    let (save_now, saved_next, triggered_next, loop_closed) = {
        let ctx = out.ctx_mut();
        let save_b = ctx.eq_u64(save, 1);
        let not_saved = ctx.eq_u64(saved, 0);
        let save_now = ctx.and(save_b, not_saved);
        let one = ctx.bv_u64(1, 1);
        let saved_next = ctx.ite(save_now, one, saved);
        // triggered accumulates justice while the save is active.
        let was_saved = ctx.eq_u64(saved, 1);
        let active = ctx.or(was_saved, save_now);
        let trig_b = ctx.eq_u64(triggered, 1);
        let seen = ctx.or(trig_b, justice);
        let seen_and_active = ctx.and(active, seen);
        let zero = ctx.bv_u64(0, 1);
        let triggered_next = ctx.ite(seen_and_active, one, zero);
        (save_now, saved_next, triggered_next, was_saved)
    };
    out.set_next("__saved", saved_next).expect("declared");
    out.set_next("__triggered", triggered_next)
        .expect("declared");

    // Shadow states latch the current state at the save point.
    let mut all_equal = loop_closed;
    for (name, sort, var) in &original_states {
        let shadow_name = format!("__shadow_{name}");
        let shadow = out.state(shadow_name.clone(), *sort);
        // Give the shadow a deterministic init so BMC's init constraints
        // stay satisfiable; its value is irrelevant until the save.
        let init: Value = match sort {
            Sort::Bool => Value::Bool(false),
            Sort::Bv(w) => Value::Bv(BitVecValue::zero(*w)),
            Sort::Mem {
                addr_width,
                data_width,
            } => Value::Mem(gila_expr::MemValue::zeroed(*addr_width, *data_width)),
        };
        out.set_init(&shadow_name, init).expect("declared");
        let ctx = out.ctx_mut();
        let latched = ctx.ite(save_now, *var, shadow);
        out.set_next(&shadow_name, latched).expect("declared");
        let ctx = out.ctx_mut();
        let eq = ctx.eq(*var, shadow);
        all_equal = ctx.and(all_equal, eq);
    }

    // Bad: the loop closed (state equals the saved shadow, after a save)
    // without the justice property ever holding on the loop.
    let safety = {
        let ctx = out.ctx_mut();
        let not_triggered = ctx.eq_u64(triggered, 0);
        let bad = ctx.and(all_equal, not_triggered);
        ctx.not(bad)
    };
    (out, safety)
}

/// Checks the justice property `GF justice` on `ts` up to `bound` steps
/// of the transformed system: lassos with stem + loop lengths up to
/// `bound` are found.
pub fn check_justice(ts: &TransitionSystem, justice: ExprRef, bound: usize) -> LivenessOutcome {
    let (lts, safety) = liveness_to_safety(ts, justice);
    match bmc_safety(&lts, safety, bound).0 {
        BmcOutcome::HoldsUpTo(k) => LivenessOutcome::NoLassoUpTo(k),
        BmcOutcome::Violated(cex) => LivenessOutcome::LassoFound(cex),
        // Unreachable: bmc_safety runs with no solve limits installed.
        BmcOutcome::Unknown { reason, at_step } => {
            unreachable!("unbounded BMC gave up ({reason:?} at step {at_step})")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A counter modulo `m`, starting at 0.
    fn mod_counter(m: u64) -> TransitionSystem {
        let mut ts = TransitionSystem::new("modc");
        let cnt = ts.state("cnt", Sort::Bv(4));
        let limit = ts.ctx_mut().bv_u64(m - 1, 4);
        let at_end = ts.ctx_mut().eq(cnt, limit);
        let zero = ts.ctx_mut().bv_u64(0, 4);
        let one = ts.ctx_mut().bv_u64(1, 4);
        let inc = ts.ctx_mut().bvadd(cnt, one);
        let next = ts.ctx_mut().ite(at_end, zero, inc);
        ts.set_next("cnt", next).unwrap();
        ts.set_init("cnt", BitVecValue::from_u64(0, 4)).unwrap();
        ts
    }

    #[test]
    fn justice_that_holds_finds_no_lasso() {
        // GF (cnt == 3) holds on the mod-4 counter.
        let mut ts = mod_counter(4);
        let cnt = ts.ctx().find_var("cnt").unwrap();
        let justice = ts.ctx_mut().eq_u64(cnt, 3);
        let outcome = check_justice(&ts, justice, 10);
        assert!(outcome.holds(), "{outcome:?}");
    }

    #[test]
    fn justice_that_fails_yields_a_lasso() {
        // GF (cnt == 9) fails: 9 is unreachable on the mod-4 counter;
        // the loop 0,1,2,3,0 closes without it.
        let mut ts = mod_counter(4);
        let cnt = ts.ctx().find_var("cnt").unwrap();
        let justice = ts.ctx_mut().eq_u64(cnt, 9);
        let outcome = check_justice(&ts, justice, 10);
        let LivenessOutcome::LassoFound(cex) = outcome else {
            panic!("expected lasso, got {outcome:?}");
        };
        // The loop closes after at least the save step plus 4 steps.
        assert!(cex.violation_step >= 4);
        // The final state equals the shadow (the loop is genuinely closed).
        let last = &cex.steps[cex.violation_step];
        assert_eq!(last.states["cnt"], last.states["__shadow_cnt"]);
        assert_eq!(last.states["__saved"].as_bv().to_u64(), 1);
        assert_eq!(last.states["__triggered"].as_bv().to_u64(), 0);
    }

    #[test]
    fn stuck_machine_violates_progress() {
        // t' = t: GF (t == 1) fails from t = 0 with a self-loop.
        let mut ts = TransitionSystem::new("stuck");
        let t = ts.state("t", Sort::Bv(1));
        ts.set_next("t", t).unwrap();
        ts.set_init("t", BitVecValue::from_u64(0, 1)).unwrap();
        let justice = ts.ctx_mut().eq_u64(t, 1);
        let outcome = check_justice(&ts, justice, 4);
        assert!(!outcome.holds());
    }

    #[test]
    fn toggler_satisfies_progress() {
        // t' = ~t: GF (t == 1) holds.
        let mut ts = TransitionSystem::new("toggle");
        let t = ts.state("t", Sort::Bv(1));
        let next = ts.ctx_mut().bvnot(t);
        ts.set_next("t", next).unwrap();
        ts.set_init("t", BitVecValue::from_u64(0, 1)).unwrap();
        let justice = ts.ctx_mut().eq_u64(t, 1);
        let outcome = check_justice(&ts, justice, 8);
        assert!(outcome.holds(), "{outcome:?}");
    }

    #[test]
    fn input_dependent_liveness() {
        // Counter with enable: GF (cnt == 3) fails because the
        // environment may never assert the enable (en == 0 self-loop).
        let mut ts = TransitionSystem::new("enc");
        let en = ts.input("en", Sort::Bv(1));
        let cnt = ts.state("cnt", Sort::Bv(2));
        let one = ts.ctx_mut().bv_u64(1, 2);
        let inc = ts.ctx_mut().bvadd(cnt, one);
        let c = ts.ctx_mut().eq_u64(en, 1);
        let next = ts.ctx_mut().ite(c, inc, cnt);
        ts.set_next("cnt", next).unwrap();
        ts.set_init("cnt", BitVecValue::from_u64(0, 2)).unwrap();
        let justice = ts.ctx_mut().eq_u64(cnt, 3);
        let outcome = check_justice(&ts, justice, 6);
        assert!(!outcome.holds());
        // Under a fairness assumption (en always 1) it holds.
        let fair = ts.ctx_mut().eq_u64(en, 1);
        ts.add_constraint(fair);
        let outcome = check_justice(&ts, justice, 8);
        assert!(outcome.holds(), "{outcome:?}");
    }
}
