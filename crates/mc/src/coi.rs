//! Cone-of-influence slicing for transition systems.
//!
//! A property over a transition system can only observe the state and
//! input variables in its *cone of influence*: the transitive support
//! of the property expression (and of every invariant constraint)
//! under the next-state relation. Variables outside the cone cannot
//! change the property's truth value in any execution, so dropping
//! them — together with their next-state functions and initial values
//! — yields a smaller system with an identical verdict for that
//! property. [`coi_slice`] computes the cone and returns the sliced
//! system plus a [`CoiStats`] report.
//!
//! Soundness sketch: seed the cone with the free variables of every
//! root expression and every constraint, then close under
//! "state in cone ⇒ support of its next-state expression in cone".
//! Any execution of the sliced system extends to an execution of the
//! full system (assign dropped states/inputs arbitrarily per their
//! own next-state functions; no kept next-state expression or
//! constraint reads them), and restriction works in the other
//! direction, so the two systems agree on every property whose free
//! variables were passed as roots. Constraints are seeded too because
//! an assumption over otherwise-irrelevant variables can still be
//! unsatisfiable and make a property hold vacuously.

use std::collections::BTreeSet;

use gila_expr::{ExprCtx, ExprNode, ExprRef};

use crate::ts::TransitionSystem;

/// What cone-of-influence slicing kept and dropped.
///
/// Surfaced through verification telemetry and `--stats` so the effect
/// of preprocessing on each design is visible.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoiStats {
    /// State variables inside the cone.
    pub states_kept: usize,
    /// State variables sliced away.
    pub states_dropped: usize,
    /// Input variables inside the cone.
    pub inputs_kept: usize,
    /// Input variables sliced away.
    pub inputs_dropped: usize,
}

impl CoiStats {
    /// Total variables dropped (states plus inputs).
    pub fn dropped(&self) -> usize {
        self.states_dropped + self.inputs_dropped
    }

    /// Component-wise sum, for aggregating across ports.
    pub fn merge(&mut self, other: CoiStats) {
        self.states_kept += other.states_kept;
        self.states_dropped += other.states_dropped;
        self.inputs_kept += other.inputs_kept;
        self.inputs_dropped += other.inputs_dropped;
    }
}

/// The free variables of `roots`, as a set of names.
///
/// This is a plain syntactic support computation over the expression
/// DAG; each node is visited at most once.
pub fn support(ctx: &ExprCtx, roots: &[ExprRef]) -> BTreeSet<String> {
    let mut seen = vec![false; ctx.len()];
    let mut stack: Vec<ExprRef> = roots.to_vec();
    let mut names = BTreeSet::new();
    while let Some(e) = stack.pop() {
        if seen[e.index()] {
            continue;
        }
        seen[e.index()] = true;
        match ctx.node(e) {
            ExprNode::Var { name, .. } => {
                names.insert(name.clone());
            }
            ExprNode::App { args, .. } => stack.extend(args.iter().copied()),
            _ => {}
        }
    }
    names
}

/// Slices `ts` to the cone of influence of `roots`.
///
/// `roots` must contain every expression the caller will later
/// instantiate over the sliced system (properties, assumptions,
/// strengthening facts): a variable that is neither a root's free
/// variable, reachable from one through next-state functions, nor
/// mentioned by a constraint is removed. The expression context is
/// shared unchanged, so `ExprRef` handles into `ts.ctx()` stay valid
/// for the sliced system.
pub fn coi_slice(ts: &TransitionSystem, roots: &[ExprRef]) -> (TransitionSystem, CoiStats) {
    let ctx = ts.ctx();
    let mut seeds: Vec<ExprRef> = roots.to_vec();
    seeds.extend(ts.constraints().iter().copied());
    let mut cone = support(ctx, &seeds);

    // Close under the next-state relation: a state in the cone pulls in
    // the support of its next-state expression.
    let mut worklist: Vec<String> = cone.iter().cloned().collect();
    while let Some(name) = worklist.pop() {
        let Some(next) = ts.next_of(&name) else {
            continue; // inputs and undeclared names have no next-state
        };
        for dep in support(ctx, &[next]) {
            if cone.insert(dep.clone()) {
                worklist.push(dep);
            }
        }
    }

    let stats = CoiStats {
        states_kept: ts.states().iter().filter(|v| cone.contains(&v.name)).count(),
        states_dropped: ts.states().iter().filter(|v| !cone.contains(&v.name)).count(),
        inputs_kept: ts.inputs().iter().filter(|v| cone.contains(&v.name)).count(),
        inputs_dropped: ts.inputs().iter().filter(|v| !cone.contains(&v.name)).count(),
    };

    let mut sliced = ts.clone();
    sliced.retain_vars(&cone);
    (sliced, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bmc_safety, Unrolling};
    use gila_expr::{BitVecValue, Sort};

    /// Two independent counters plus an unused input; a property over
    /// one counter should slice away the other and the unused input.
    fn two_counters() -> (TransitionSystem, ExprRef) {
        let mut ts = TransitionSystem::new("two_counters");
        let a = ts.state("a", Sort::Bv(8));
        let b = ts.state("b", Sort::Bv(8));
        let en = ts.input("en", Sort::Bv(1));
        ts.input("unused", Sort::Bv(4));
        let one = ts.ctx_mut().bv_u64(1, 8);
        let a1 = ts.ctx_mut().bvadd(a, one);
        let c = ts.ctx_mut().eq_u64(en, 1);
        let a_next = ts.ctx_mut().ite(c, a1, a);
        ts.set_next("a", a_next).unwrap();
        let b1 = ts.ctx_mut().bvadd(b, one);
        ts.set_next("b", b1).unwrap();
        ts.set_init("a", BitVecValue::from_u64(0, 8)).unwrap();
        ts.set_init("b", BitVecValue::from_u64(0, 8)).unwrap();
        let hi = ts.ctx_mut().bv_u64(200, 8);
        let prop = ts.ctx_mut().ult(a, hi);
        (ts, prop)
    }

    #[test]
    fn slices_away_independent_state_and_inputs() {
        let (ts, prop) = two_counters();
        let (sliced, stats) = coi_slice(&ts, &[prop]);
        let names: Vec<&str> = sliced.states().iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, ["a"]);
        let inputs: Vec<&str> = sliced.inputs().iter().map(|v| v.name.as_str()).collect();
        assert_eq!(inputs, ["en"]);
        assert_eq!(
            stats,
            CoiStats {
                states_kept: 1,
                states_dropped: 1,
                inputs_kept: 1,
                inputs_dropped: 1,
            }
        );
        assert_eq!(stats.dropped(), 2);
    }

    #[test]
    fn closure_follows_next_state_chains() {
        let mut ts = TransitionSystem::new("chain");
        let s1 = ts.state("s1", Sort::Bv(4));
        let s2 = ts.state("s2", Sort::Bv(4));
        ts.state("s3", Sort::Bv(4));
        let i = ts.input("i", Sort::Bv(4));
        ts.input("j", Sort::Bv(4));
        // s1' = s2, s2' = i: the property over s1 needs s2 and i.
        ts.set_next("s1", s2).unwrap();
        ts.set_next("s2", i).unwrap();
        let zero = ts.ctx_mut().bv_u64(0, 4);
        let prop = ts.ctx_mut().eq(s1, zero);
        let (sliced, stats) = coi_slice(&ts, &[prop]);
        let names: Vec<&str> = sliced.states().iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, ["s1", "s2"]);
        let inputs: Vec<&str> = sliced.inputs().iter().map(|v| v.name.as_str()).collect();
        assert_eq!(inputs, ["i"]);
        assert_eq!(stats.states_dropped, 1);
        assert_eq!(stats.inputs_dropped, 1);
    }

    #[test]
    fn constraints_anchor_their_variables() {
        let (mut ts, prop) = two_counters();
        // An environment assumption about the otherwise-unused input
        // must keep it (and can never be silently dropped).
        let unused = ts.ctx().find_var("unused").unwrap();
        let c = ts.ctx_mut().eq_u64(unused, 3);
        ts.add_constraint(c);
        let (sliced, _) = coi_slice(&ts, &[prop]);
        assert!(sliced.inputs().iter().any(|v| v.name == "unused"));
        assert_eq!(sliced.constraints().len(), 1);
    }

    #[test]
    fn sliced_system_has_identical_verdicts() {
        let (ts, prop) = two_counters();
        let (sliced, _) = coi_slice(&ts, &[prop]);
        // Same bound, same outcome, on both a holding and a failing bound.
        for bound in [3, 8] {
            let (full, _) = bmc_safety(&ts, prop, bound);
            let (cut, _) = bmc_safety(&sliced, prop, bound);
            assert_eq!(full.holds(), cut.holds(), "bound {bound}");
        }
    }

    #[test]
    fn handles_stay_valid_and_unrolling_shrinks() {
        let (ts, prop) = two_counters();
        let (sliced, _) = coi_slice(&ts, &[prop]);
        let mut full = Unrolling::new(&ts, true);
        let mut cut = Unrolling::new(&sliced, true);
        full.step();
        cut.step();
        // The property maps through both unrollings (handles valid)...
        let pf = full.map_expr(1, prop);
        let pc = cut.map_expr(1, prop);
        assert_eq!(full.ctx().sort_of(pf), cut.ctx().sort_of(pc));
        // ...and the sliced context materializes fewer frame variables.
        assert!(cut.ctx().len() <= full.ctx().len());
    }

    #[test]
    fn empty_roots_keep_only_constraint_cone() {
        let (ts, _) = two_counters();
        let (sliced, stats) = coi_slice(&ts, &[]);
        assert!(sliced.states().is_empty());
        assert!(sliced.inputs().is_empty());
        assert_eq!(stats.states_dropped, 2);
        assert_eq!(stats.inputs_dropped, 2);
    }
}
