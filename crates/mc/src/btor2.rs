//! BTOR2 export: serialize a [`TransitionSystem`] plus a safety
//! property in the BTOR2 word-level model-checking format, so external
//! checkers (BtorMC, Pono, AVR, ...) can cross-validate results.
//!
//! Booleans are encoded as 1-bit sorts; memories as BTOR2 array sorts.

use std::collections::HashMap;
use std::fmt::Write as _;

use gila_expr::{ExprCtx, ExprNode, ExprRef, Op, Sort};

use crate::ts::TransitionSystem;

/// An error during export: the system uses a form BTOR2 cannot express
/// (none currently; kept for future operators).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Btor2Error {
    message: String,
}

impl std::fmt::Display for Btor2Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "btor2 export: {}", self.message)
    }
}

impl std::error::Error for Btor2Error {}

struct Exporter<'a> {
    ctx: &'a ExprCtx,
    out: String,
    next_id: u64,
    /// node id per expression
    exprs: HashMap<ExprRef, u64>,
    /// sort id per sort
    sorts: HashMap<Sort, u64>,
}

impl Exporter<'_> {
    fn fresh(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn sort(&mut self, s: Sort) -> u64 {
        if let Some(&id) = self.sorts.get(&s) {
            return id;
        }
        let id = match s {
            Sort::Bool | Sort::Bv(1) => {
                // Share the 1-bit sort between bool and bv1.
                if let Some(&id) = self.sorts.get(&Sort::Bv(1)) {
                    self.sorts.insert(s, id);
                    return id;
                }
                let id = self.fresh();
                let _ = writeln!(self.out, "{id} sort bitvec 1");
                self.sorts.insert(Sort::Bool, id);
                self.sorts.insert(Sort::Bv(1), id);
                return id;
            }
            Sort::Bv(w) => {
                let id = self.fresh();
                let _ = writeln!(self.out, "{id} sort bitvec {w}");
                id
            }
            Sort::Mem {
                addr_width,
                data_width,
            } => {
                let idx = self.sort(Sort::Bv(addr_width));
                let elem = self.sort(Sort::Bv(data_width));
                let id = self.fresh();
                let _ = writeln!(self.out, "{id} sort array {idx} {elem}");
                id
            }
        };
        self.sorts.insert(s, id);
        id
    }

    fn emit(&mut self, e: ExprRef) -> Result<u64, Btor2Error> {
        if let Some(&id) = self.exprs.get(&e) {
            return Ok(id);
        }
        for node in self.ctx.post_order(&[e]) {
            if self.exprs.contains_key(&node) {
                continue;
            }
            let id = self.emit_node(node)?;
            self.exprs.insert(node, id);
        }
        Ok(self.exprs[&e])
    }

    fn emit_node(&mut self, e: ExprRef) -> Result<u64, Btor2Error> {
        let sort_id = self.sort(self.ctx.sort_of(e));
        Ok(match self.ctx.node(e) {
            ExprNode::BoolConst(b) => {
                let id = self.fresh();
                let kw = if *b { "one" } else { "zero" };
                let _ = writeln!(self.out, "{id} {kw} {sort_id}");
                id
            }
            ExprNode::BvConst(v) => {
                let id = self.fresh();
                let _ = writeln!(self.out, "{id} constd {sort_id} {}", BigDec(v));
                id
            }
            ExprNode::MemConst(_) => {
                return Err(Btor2Error {
                    message: "memory constants are not supported; use an init state".into(),
                })
            }
            ExprNode::Var { name, .. } => {
                // Free variables reachable only through properties (not
                // declared as state/input) become inputs.
                let id = self.fresh();
                let _ = writeln!(self.out, "{id} input {sort_id} {name}");
                id
            }
            ExprNode::App { op, args, .. } => {
                let a: Vec<u64> = args.iter().map(|x| self.exprs[x]).collect();
                let id = self.fresh();
                let line = match op {
                    Op::Not | Op::BvNot => format!("not {sort_id} {}", a[0]),
                    Op::BvNeg => format!("neg {sort_id} {}", a[0]),
                    Op::And | Op::BvAnd => format!("and {sort_id} {} {}", a[0], a[1]),
                    Op::Or | Op::BvOr => format!("or {sort_id} {} {}", a[0], a[1]),
                    Op::Xor | Op::BvXor => format!("xor {sort_id} {} {}", a[0], a[1]),
                    Op::Implies => format!("implies {sort_id} {} {}", a[0], a[1]),
                    Op::Iff | Op::Eq => format!("eq {sort_id} {} {}", a[0], a[1]),
                    Op::Ite => format!("ite {sort_id} {} {} {}", a[0], a[1], a[2]),
                    Op::BvAdd => format!("add {sort_id} {} {}", a[0], a[1]),
                    Op::BvSub => format!("sub {sort_id} {} {}", a[0], a[1]),
                    Op::BvMul => format!("mul {sort_id} {} {}", a[0], a[1]),
                    Op::BvUdiv => format!("udiv {sort_id} {} {}", a[0], a[1]),
                    Op::BvUrem => format!("urem {sort_id} {} {}", a[0], a[1]),
                    Op::BvShl => format!("sll {sort_id} {} {}", a[0], a[1]),
                    Op::BvLshr => format!("srl {sort_id} {} {}", a[0], a[1]),
                    Op::BvAshr => format!("sra {sort_id} {} {}", a[0], a[1]),
                    Op::BvConcat => format!("concat {sort_id} {} {}", a[0], a[1]),
                    Op::BvExtract { hi, lo } => {
                        format!("slice {sort_id} {} {hi} {lo}", a[0])
                    }
                    Op::BvZext { .. } => {
                        let from = self
                            .ctx
                            .sort_of(self.ctx.args(e)[0])
                            .bv_width()
                            .expect("bv");
                        let to = self.ctx.sort_of(e).bv_width().expect("bv");
                        format!("uext {sort_id} {} {}", a[0], to - from)
                    }
                    Op::BvSext { .. } => {
                        let from = self
                            .ctx
                            .sort_of(self.ctx.args(e)[0])
                            .bv_width()
                            .expect("bv");
                        let to = self.ctx.sort_of(e).bv_width().expect("bv");
                        format!("sext {sort_id} {} {}", a[0], to - from)
                    }
                    Op::BvUlt => format!("ult {sort_id} {} {}", a[0], a[1]),
                    Op::BvUle => format!("ulte {sort_id} {} {}", a[0], a[1]),
                    Op::BvSlt => format!("slt {sort_id} {} {}", a[0], a[1]),
                    Op::BvSle => format!("slte {sort_id} {} {}", a[0], a[1]),
                    Op::MemRead => format!("read {sort_id} {} {}", a[0], a[1]),
                    Op::MemWrite => {
                        format!("write {sort_id} {} {} {}", a[0], a[1], a[2])
                    }
                    // bool -> bv1 is the identity under the shared 1-bit sort.
                    Op::BoolToBv => {
                        return Ok(a[0]);
                    }
                };
                let _ = writeln!(self.out, "{id} {line}");
                id
            }
        })
    }
}

/// Decimal rendering of arbitrary-width values for `constd`.
struct BigDec<'a>(&'a gila_expr::BitVecValue);

impl std::fmt::Display for BigDec<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Values beyond 64 bits fall back to binary-string conversion.
        if let Some(x) = self.0.try_to_u64() {
            return write!(f, "{x}");
        }
        // Repeated division by 10 over the bits (widths here are small).
        let mut digits = Vec::new();
        let mut bits: Vec<bool> = self.0.to_bits();
        while bits.iter().any(|&b| b) {
            let mut rem = 0u32;
            for i in (0..bits.len()).rev() {
                let cur = rem * 2 + bits[i] as u32;
                bits[i] = cur >= 10;
                rem = cur % 10;
            }
            digits.push(char::from_digit(rem, 10).expect("digit"));
        }
        if digits.is_empty() {
            digits.push('0');
        }
        for d in digits.iter().rev() {
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

/// Serializes the system and the safety property `prop` ("always holds")
/// as a BTOR2 document: one `state`/`init`/`next` triple per state, one
/// `input` per input, `constraint` lines for the invariants, and a
/// `bad` line for `!prop`.
///
/// # Errors
///
/// Returns [`Btor2Error`] for inexpressible constructs.
pub fn to_btor2(ts: &TransitionSystem, prop: ExprRef) -> Result<String, Btor2Error> {
    let mut ex = Exporter {
        ctx: ts.ctx(),
        out: String::new(),
        next_id: 1,
        exprs: HashMap::new(),
        sorts: HashMap::new(),
    };
    let _ = writeln!(ex.out, "; btor2 export of transition system {}", ts.name());
    // Inputs first.
    for i in ts.inputs() {
        let sid = ex.sort(i.sort);
        let id = ex.fresh();
        let _ = writeln!(ex.out, "{id} input {sid} {}", i.name);
        ex.exprs.insert(i.var, id);
    }
    // States.
    let mut state_ids = Vec::new();
    for s in ts.states() {
        let sid = ex.sort(s.sort);
        let id = ex.fresh();
        let _ = writeln!(ex.out, "{id} state {sid} {}", s.name);
        ex.exprs.insert(s.var, id);
        state_ids.push((s.name.clone(), s.sort, id));
    }
    // Inits.
    for (name, sort, id) in &state_ids {
        let Some(value) = ts.init_of(name) else {
            continue;
        };
        let sid = ex.sort(*sort);
        let vid = match value {
            gila_expr::Value::Bool(b) => {
                let vid = ex.fresh();
                let kw = if *b { "one" } else { "zero" };
                let _ = writeln!(ex.out, "{vid} {kw} {sid}");
                vid
            }
            gila_expr::Value::Bv(v) => {
                let vid = ex.fresh();
                let _ = writeln!(ex.out, "{vid} constd {sid} {}", BigDec(v));
                vid
            }
            gila_expr::Value::Mem(m) => {
                // A uniform default initializes the whole array; written
                // words beyond the default are not expressible as btor2
                // init (documented limitation).
                let esid = ex.sort(Sort::Bv(m.data_width()));
                let vid = ex.fresh();
                let _ = writeln!(ex.out, "{vid} constd {esid} {}", BigDec(m.default_word()));
                vid
            }
        };
        let iid = ex.fresh();
        let _ = writeln!(ex.out, "{iid} init {sid} {id} {vid}");
    }
    // Next functions.
    for s in ts.states() {
        let next = ts.next_of(&s.name).expect("next always present");
        let nid = ex.emit(next)?;
        let sid = ex.sort(s.sort);
        let id = ex.fresh();
        let _ = writeln!(ex.out, "{id} next {sid} {} {nid}", ex.exprs[&s.var]);
    }
    // Invariant constraints.
    for &c in ts.constraints() {
        let cid = ex.emit(c)?;
        let id = ex.fresh();
        let _ = writeln!(ex.out, "{id} constraint {cid}");
    }
    // Bad state: the negation of the property.
    let pid = ex.emit(prop)?;
    let bool_sid = ex.sort(Sort::Bool);
    let nid = ex.fresh();
    let _ = writeln!(ex.out, "{nid} not {bool_sid} {pid}");
    let bid = ex.fresh();
    let _ = writeln!(ex.out, "{bid} bad {nid}");
    Ok(ex.out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gila_expr::BitVecValue;

    fn counter_ts() -> (TransitionSystem, ExprRef) {
        let mut ts = TransitionSystem::new("c");
        let en = ts.input("en", Sort::Bv(1));
        let cnt = ts.state("cnt", Sort::Bv(8));
        let one = ts.ctx_mut().bv_u64(1, 8);
        let inc = ts.ctx_mut().bvadd(cnt, one);
        let c = ts.ctx_mut().eq_u64(en, 1);
        let next = ts.ctx_mut().ite(c, inc, cnt);
        ts.set_next("cnt", next).unwrap();
        ts.set_init("cnt", BitVecValue::from_u64(0, 8)).unwrap();
        let lim = ts.ctx_mut().bv_u64(200, 8);
        let prop = ts.ctx_mut().ult(cnt, lim);
        (ts, prop)
    }

    #[test]
    fn counter_exports_with_all_sections() {
        let (ts, prop) = counter_ts();
        let doc = to_btor2(&ts, prop).unwrap();
        assert!(doc.contains("sort bitvec 8"));
        assert!(doc.contains("sort bitvec 1"));
        assert!(doc.contains("input"), "{doc}");
        assert!(doc.contains("state"), "{doc}");
        assert!(doc.contains("init"), "{doc}");
        assert!(doc.contains("next"), "{doc}");
        assert!(doc.contains("bad"), "{doc}");
        assert!(doc.contains("constd"), "{doc}");
        // Node ids are unique and ascending.
        let ids: Vec<u64> = doc
            .lines()
            .filter(|l| !l.starts_with(';'))
            .map(|l| l.split_whitespace().next().unwrap().parse().unwrap())
            .collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ids.len(), sorted.len());
    }

    #[test]
    fn memories_export_as_arrays() {
        let mut ts = TransitionSystem::new("m");
        let we = ts.input("we", Sort::Bv(1));
        let addr = ts.input("addr", Sort::Bv(4));
        let din = ts.input("din", Sort::Bv(8));
        let mem = ts.state(
            "mem",
            Sort::Mem {
                addr_width: 4,
                data_width: 8,
            },
        );
        let w = ts.ctx_mut().mem_write(mem, addr, din);
        let c = ts.ctx_mut().eq_u64(we, 1);
        let next = ts.ctx_mut().ite(c, w, mem);
        ts.set_next("mem", next).unwrap();
        let r = ts.ctx_mut().mem_read(mem, addr);
        let z = ts.ctx_mut().bv_u64(0, 8);
        let prop = ts.ctx_mut().uge(r, z); // trivially true
        let doc = to_btor2(&ts, prop).unwrap();
        assert!(doc.contains("sort array"), "{doc}");
        assert!(doc.contains(" read "), "{doc}");
        assert!(doc.contains(" write "), "{doc}");
    }

    #[test]
    fn constraints_and_bool_bridge() {
        let (mut ts, prop) = counter_ts();
        let en = ts.ctx().find_var("en").unwrap();
        let fair = ts.ctx_mut().eq_u64(en, 1);
        ts.add_constraint(fair);
        let doc = to_btor2(&ts, prop).unwrap();
        assert!(doc.contains("constraint"), "{doc}");
    }

    #[test]
    fn wide_constants_render_in_decimal() {
        let v = BitVecValue::ones(80);
        let s = format!("{}", BigDec(&v));
        // 2^80 - 1
        assert_eq!(s, "1208925819614629174706175");
        assert_eq!(format!("{}", BigDec(&BitVecValue::zero(80))), "0");
    }
}
