//! Symbolic transition systems over the gila expression language.

use std::collections::BTreeMap;
use std::fmt;

use gila_expr::{ExprCtx, ExprRef, Sort, Value};

/// An error while building a transition system.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TsError {
    /// A name was declared twice.
    DuplicateName {
        /// The offending name.
        name: String,
    },
    /// A next-state or constraint expression has the wrong sort.
    SortMismatch {
        /// Where the mismatch occurred.
        context: String,
        /// Expected sort.
        expected: Sort,
        /// Found sort.
        found: Sort,
    },
    /// An unknown state was referenced.
    UnknownState {
        /// The state name.
        name: String,
    },
}

impl fmt::Display for TsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsError::DuplicateName { name } => write!(f, "name {name:?} declared twice"),
            TsError::SortMismatch {
                context,
                expected,
                found,
            } => write!(f, "{context}: expected {expected}, found {found}"),
            TsError::UnknownState { name } => write!(f, "unknown state {name:?}"),
        }
    }
}

impl std::error::Error for TsError {}

/// A state or input variable of a transition system.
#[derive(Clone, Debug)]
pub struct TsVar {
    /// Name (unique across states and inputs).
    pub name: String,
    /// Sort.
    pub sort: Sort,
    /// Expression variable (current-cycle value).
    pub var: ExprRef,
}

/// A symbolic transition system: state variables with next-state
/// expressions, input variables, initial values, and invariant
/// constraints assumed at every step.
///
/// # Examples
///
/// ```
/// use gila_mc::TransitionSystem;
/// use gila_expr::Sort;
///
/// let mut ts = TransitionSystem::new("counter");
/// let en = ts.input("en", Sort::Bv(1));
/// let cnt = ts.state("cnt", Sort::Bv(8));
/// let one = ts.ctx_mut().bv_u64(1, 8);
/// let inc = ts.ctx_mut().bvadd(cnt, one);
/// let c = ts.ctx_mut().eq_u64(en, 1);
/// let next = ts.ctx_mut().ite(c, inc, cnt);
/// ts.set_next("cnt", next)?;
/// # Ok::<(), gila_mc::TsError>(())
/// ```
#[derive(Clone, Debug)]
pub struct TransitionSystem {
    name: String,
    ctx: ExprCtx,
    states: Vec<TsVar>,
    inputs: Vec<TsVar>,
    next: BTreeMap<String, ExprRef>,
    init: BTreeMap<String, Value>,
    constraints: Vec<ExprRef>,
}

impl TransitionSystem {
    /// Creates an empty system.
    pub fn new(name: impl Into<String>) -> Self {
        TransitionSystem {
            name: name.into(),
            ctx: ExprCtx::new(),
            states: Vec::new(),
            inputs: Vec::new(),
            next: BTreeMap::new(),
            init: BTreeMap::new(),
            constraints: Vec::new(),
        }
    }

    /// The system's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The expression context.
    pub fn ctx(&self) -> &ExprCtx {
        &self.ctx
    }

    /// Mutable access to the expression context.
    pub fn ctx_mut(&mut self) -> &mut ExprCtx {
        &mut self.ctx
    }

    fn has_name(&self, name: &str) -> bool {
        self.states.iter().any(|v| v.name == name) || self.inputs.iter().any(|v| v.name == name)
    }

    /// Declares a state variable; its next-state defaults to holding.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names.
    pub fn state(&mut self, name: impl Into<String>, sort: Sort) -> ExprRef {
        let name = name.into();
        assert!(!self.has_name(&name), "duplicate declaration {name:?}");
        let var = self.ctx.var(name.clone(), sort);
        self.next.insert(name.clone(), var);
        self.states.push(TsVar { name, sort, var });
        var
    }

    /// Declares an input variable.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names.
    pub fn input(&mut self, name: impl Into<String>, sort: Sort) -> ExprRef {
        let name = name.into();
        assert!(!self.has_name(&name), "duplicate declaration {name:?}");
        let var = self.ctx.var(name.clone(), sort);
        self.inputs.push(TsVar { name, sort, var });
        var
    }

    /// Sets a state's next-state expression.
    ///
    /// # Errors
    ///
    /// Returns [`TsError::UnknownState`] / [`TsError::SortMismatch`].
    pub fn set_next(&mut self, name: &str, next: ExprRef) -> Result<(), TsError> {
        let sv = self
            .states
            .iter()
            .find(|v| v.name == name)
            .ok_or_else(|| TsError::UnknownState {
                name: name.to_string(),
            })?;
        let found = self.ctx.sort_of(next);
        if found != sv.sort {
            return Err(TsError::SortMismatch {
                context: format!("next-state of {name:?}"),
                expected: sv.sort,
                found,
            });
        }
        self.next.insert(name.to_string(), next);
        Ok(())
    }

    /// Sets a state's initial value.
    ///
    /// # Errors
    ///
    /// Returns [`TsError::UnknownState`] / [`TsError::SortMismatch`].
    pub fn set_init(&mut self, name: &str, value: impl Into<Value>) -> Result<(), TsError> {
        let value = value.into();
        let sv = self
            .states
            .iter()
            .find(|v| v.name == name)
            .ok_or_else(|| TsError::UnknownState {
                name: name.to_string(),
            })?;
        if value.sort() != sv.sort {
            return Err(TsError::SortMismatch {
                context: format!("initial value of {name:?}"),
                expected: sv.sort,
                found: value.sort(),
            });
        }
        self.init.insert(name.to_string(), value);
        Ok(())
    }

    /// Adds an invariant constraint assumed at every step (e.g. an
    /// environment assumption on inputs).
    ///
    /// # Panics
    ///
    /// Panics if `c` is not boolean.
    pub fn add_constraint(&mut self, c: ExprRef) {
        assert!(
            self.ctx.sort_of(c).is_bool(),
            "constraints must be boolean, got {}",
            self.ctx.sort_of(c)
        );
        self.constraints.push(c);
    }

    /// Declared states.
    pub fn states(&self) -> &[TsVar] {
        &self.states
    }

    /// Declared inputs.
    pub fn inputs(&self) -> &[TsVar] {
        &self.inputs
    }

    /// Next-state expression of a state.
    pub fn next_of(&self, name: &str) -> Option<ExprRef> {
        self.next.get(name).copied()
    }

    /// Initial value of a state, if declared.
    pub fn init_of(&self, name: &str) -> Option<&Value> {
        self.init.get(name)
    }

    /// Invariant constraints.
    pub fn constraints(&self) -> &[ExprRef] {
        &self.constraints
    }

    /// Drops every state and input whose name is not in `keep`, along
    /// with the associated next-state expressions and initial values.
    /// Constraints and the expression context are untouched, so handles
    /// into [`Self::ctx`] remain valid.
    pub(crate) fn retain_vars(&mut self, keep: &std::collections::BTreeSet<String>) {
        self.states.retain(|v| keep.contains(&v.name));
        self.inputs.retain(|v| keep.contains(&v.name));
        self.next.retain(|name, _| keep.contains(name));
        self.init.retain(|name, _| keep.contains(name));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gila_expr::BitVecValue;

    #[test]
    fn build_and_defaults() {
        let mut ts = TransitionSystem::new("t");
        let s = ts.state("s", Sort::Bv(4));
        assert_eq!(ts.next_of("s"), Some(s)); // default hold
        assert!(ts.init_of("s").is_none());
        ts.set_init("s", BitVecValue::from_u64(3, 4)).unwrap();
        assert!(ts.init_of("s").is_some());
    }

    #[test]
    fn errors() {
        let mut ts = TransitionSystem::new("t");
        ts.state("s", Sort::Bv(4));
        let bad = ts.ctx_mut().bv_u64(0, 8);
        assert!(matches!(
            ts.set_next("s", bad).unwrap_err(),
            TsError::SortMismatch { .. }
        ));
        assert!(matches!(
            ts.set_next("ghost", bad).unwrap_err(),
            TsError::UnknownState { .. }
        ));
        assert!(ts.set_init("s", BitVecValue::from_u64(0, 8)).is_err());
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_panics() {
        let mut ts = TransitionSystem::new("t");
        ts.state("s", Sort::Bv(4));
        ts.input("s", Sort::Bv(4));
    }
}
