//! Bounded model checking and k-induction for safety properties.

use std::collections::BTreeMap;

use gila_expr::{ExprRef, Value};
use gila_smt::{BlastStats, ResourceOut, SmtResult, SmtSolver, SolveLimits};

use crate::ts::TransitionSystem;
use crate::unroll::Unrolling;

/// One step of a counterexample trace.
#[derive(Clone, Debug)]
pub struct TraceStep {
    /// Concrete state at this step.
    pub states: BTreeMap<String, Value>,
    /// Concrete inputs applied at this step.
    pub inputs: BTreeMap<String, Value>,
}

/// A counterexample to a safety property.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The step at which the property fails.
    pub violation_step: usize,
    /// States/inputs from step 0 to the violation step.
    pub steps: Vec<TraceStep>,
}

/// The outcome of a bounded safety check.
#[derive(Clone, Debug)]
pub enum BmcOutcome {
    /// No violation within the bound.
    HoldsUpTo(
        /// The bound checked (inclusive).
        usize,
    ),
    /// A violation was found.
    Violated(
        /// The witnessing trace.
        Box<Counterexample>,
    ),
    /// The check gave up at some step: a solve limit fired or the run
    /// was cancelled (see [`bmc_safety_bounded`]). Steps before
    /// `at_step` were verified violation-free.
    Unknown {
        /// Why the solver gave up.
        reason: ResourceOut,
        /// The step whose check was abandoned.
        at_step: usize,
    },
}

impl BmcOutcome {
    /// True if no violation was found *within the full bound* (an
    /// [`BmcOutcome::Unknown`] outcome does not count as holding).
    pub fn holds(&self) -> bool {
        matches!(self, BmcOutcome::HoldsUpTo(_))
    }
}

/// The outcome of a k-induction proof attempt.
#[derive(Clone, Debug)]
pub enum InductionOutcome {
    /// The property holds for all reachable states (proved).
    Proved {
        /// The induction depth that closed the proof.
        k: usize,
    },
    /// A real counterexample was found in the base case.
    Violated(
        /// The witnessing trace.
        Box<Counterexample>,
    ),
    /// Neither proved nor disproved within the depth limit.
    Unknown {
        /// The maximum depth tried.
        max_k: usize,
    },
    /// A solve limit fired before depth `max_k` was reached (see
    /// [`k_induction_bounded`]); the proof attempt is inconclusive.
    ResourceOut {
        /// Why the solver gave up.
        reason: ResourceOut,
        /// The depth at which it gave up.
        at_k: usize,
    },
}

/// Checks the boolean property `prop` (over the system's state and input
/// variables) at every step `0..=bound`, starting from the declared
/// initial values.
///
/// Returns statistics of the final solver alongside the outcome.
///
/// # Examples
///
/// ```
/// use gila_mc::{bmc_safety, TransitionSystem};
/// use gila_expr::{BitVecValue, Sort};
///
/// let mut ts = TransitionSystem::new("c");
/// let cnt = ts.state("cnt", Sort::Bv(8));
/// let one = ts.ctx_mut().bv_u64(1, 8);
/// let next = ts.ctx_mut().bvadd(cnt, one);
/// ts.set_next("cnt", next)?;
/// ts.set_init("cnt", BitVecValue::from_u64(0, 8))?;
/// let lim = ts.ctx_mut().bv_u64(5, 8);
/// let prop = ts.ctx_mut().ult(cnt, lim);
/// let (outcome, _stats) = bmc_safety(&ts, prop, 10);
/// assert!(!outcome.holds()); // cnt reaches 5 at step 5
/// # Ok::<(), gila_mc::TsError>(())
/// ```
pub fn bmc_safety(
    ts: &TransitionSystem,
    prop: ExprRef,
    bound: usize,
) -> (BmcOutcome, BlastStats) {
    bmc_safety_bounded(ts, prop, bound, SolveLimits::default())
}

/// Like [`bmc_safety`], but every per-step SAT query runs under the
/// given [`SolveLimits`]. A query that exceeds them makes the whole
/// check return [`BmcOutcome::Unknown`] with the offending step, so a
/// pathological depth cannot hang the caller.
pub fn bmc_safety_bounded(
    ts: &TransitionSystem,
    prop: ExprRef,
    bound: usize,
    limits: SolveLimits,
) -> (BmcOutcome, BlastStats) {
    let mut u = Unrolling::new(ts, true);
    u.extend_to(bound);
    let mut last_stats = BlastStats::default();
    for k in 0..=bound {
        let mut smt = SmtSolver::new();
        smt.set_limits(limits);
        for &a in u.init_assumptions() {
            smt.assert(u.ctx(), a);
        }
        for c in u.constraints_up_to(k) {
            smt.assert(u.ctx(), c);
        }
        let p_k = u.map_expr(k, prop);
        let viol = u.ctx_mut().not(p_k);
        smt.assert(u.ctx(), viol);
        let result = smt.check();
        last_stats = smt.stats();
        match result {
            SmtResult::Sat => {
                let steps = (0..=k)
                    .map(|j| TraceStep {
                        states: u.concretize_states(&smt, j),
                        inputs: u.concretize_inputs(&smt, j),
                    })
                    .collect();
                return (
                    BmcOutcome::Violated(Box::new(Counterexample {
                        violation_step: k,
                        steps,
                    })),
                    last_stats,
                );
            }
            SmtResult::Unsat => {}
            SmtResult::Unknown(reason) => {
                return (BmcOutcome::Unknown { reason, at_step: k }, last_stats)
            }
        }
    }
    (BmcOutcome::HoldsUpTo(bound), last_stats)
}

/// Attempts to prove `prop` invariant by k-induction, increasing `k` up
/// to `max_k`:
///
/// * base case: `prop` holds for the first `k` steps from init (BMC);
/// * inductive step: from *any* state, `k` consecutive steps satisfying
///   `prop` imply `prop` at step `k+1`.
pub fn k_induction(ts: &TransitionSystem, prop: ExprRef, max_k: usize) -> InductionOutcome {
    k_induction_bounded(ts, prop, max_k, SolveLimits::default())
}

/// Like [`k_induction`], but every SAT query runs under the given
/// [`SolveLimits`]; exhausting them returns
/// [`InductionOutcome::ResourceOut`] instead of looping deeper.
pub fn k_induction_bounded(
    ts: &TransitionSystem,
    prop: ExprRef,
    max_k: usize,
    limits: SolveLimits,
) -> InductionOutcome {
    for k in 0..=max_k {
        // Base case.
        let (base, _) = bmc_safety_bounded(ts, prop, k, limits);
        match base {
            BmcOutcome::Violated(cex) => return InductionOutcome::Violated(cex),
            BmcOutcome::Unknown { reason, .. } => {
                return InductionOutcome::ResourceOut { reason, at_k: k }
            }
            BmcOutcome::HoldsUpTo(_) => {}
        }
        // Inductive step: symbolic start, frames 0..=k+1.
        let mut u = Unrolling::new(ts, false);
        u.extend_to(k + 1);
        let mut smt = SmtSolver::new();
        smt.set_limits(limits);
        for c in u.constraints_up_to(k + 1) {
            smt.assert(u.ctx(), c);
        }
        for j in 0..=k {
            let p = u.map_expr(j, prop);
            smt.assert(u.ctx(), p);
        }
        let p_last = u.map_expr(k + 1, prop);
        let viol = u.ctx_mut().not(p_last);
        smt.assert(u.ctx(), viol);
        match smt.check() {
            SmtResult::Unsat => return InductionOutcome::Proved { k },
            SmtResult::Sat => {}
            SmtResult::Unknown(reason) => {
                return InductionOutcome::ResourceOut { reason, at_k: k }
            }
        }
    }
    InductionOutcome::Unknown { max_k }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gila_expr::{BitVecValue, Sort};

    fn saturating_counter() -> TransitionSystem {
        // cnt increments until 10, then holds: invariant cnt <= 10.
        let mut ts = TransitionSystem::new("sat");
        let cnt = ts.state("cnt", Sort::Bv(8));
        let ten = ts.ctx_mut().bv_u64(10, 8);
        let lt = ts.ctx_mut().ult(cnt, ten);
        let one = ts.ctx_mut().bv_u64(1, 8);
        let inc = ts.ctx_mut().bvadd(cnt, one);
        let next = ts.ctx_mut().ite(lt, inc, cnt);
        ts.set_next("cnt", next).unwrap();
        ts.set_init("cnt", BitVecValue::from_u64(0, 8)).unwrap();
        ts
    }

    #[test]
    fn bmc_finds_violation_at_exact_step() {
        let mut ts = saturating_counter();
        let cnt = ts.ctx().find_var("cnt").unwrap();
        let five = ts.ctx_mut().bv_u64(5, 8);
        let prop = ts.ctx_mut().ult(cnt, five);
        let (outcome, _) = bmc_safety(&ts, prop, 10);
        match outcome {
            BmcOutcome::Violated(cex) => {
                assert_eq!(cex.violation_step, 5);
                assert_eq!(cex.steps.len(), 6);
                assert_eq!(cex.steps[5].states["cnt"].as_bv().to_u64(), 5);
                assert_eq!(cex.steps[0].states["cnt"].as_bv().to_u64(), 0);
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn bmc_holds_within_bound() {
        let mut ts = saturating_counter();
        let cnt = ts.ctx().find_var("cnt").unwrap();
        let lim = ts.ctx_mut().bv_u64(100, 8);
        let prop = ts.ctx_mut().ult(cnt, lim);
        let (outcome, stats) = bmc_safety(&ts, prop, 8);
        assert!(outcome.holds());
        assert!(stats.clauses > 0);
    }

    #[test]
    fn k_induction_proves_saturation_invariant() {
        let mut ts = saturating_counter();
        let cnt = ts.ctx().find_var("cnt").unwrap();
        let eleven = ts.ctx_mut().bv_u64(11, 8);
        let prop = ts.ctx_mut().ult(cnt, eleven);
        // cnt <= 10 is inductive at k = 0 already.
        match k_induction(&ts, prop, 3) {
            InductionOutcome::Proved { k } => assert_eq!(k, 0),
            other => panic!("expected proof, got {other:?}"),
        }
    }

    #[test]
    fn k_induction_finds_real_violation() {
        let mut ts = saturating_counter();
        let cnt = ts.ctx().find_var("cnt").unwrap();
        let three = ts.ctx_mut().bv_u64(3, 8);
        let prop = ts.ctx_mut().ult(cnt, three);
        match k_induction(&ts, prop, 5) {
            InductionOutcome::Violated(cex) => assert_eq!(cex.violation_step, 3),
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn k_induction_unknown_when_not_inductive_enough() {
        // A free-running counter from 0: "cnt != 200" is true for the
        // first 200 steps but not inductive — the unreachable state 199
        // satisfies the property and steps to 200. Small k cannot close
        // the proof.
        let mut ts = TransitionSystem::new("free");
        let cnt = ts.state("cnt", Sort::Bv(8));
        let one = ts.ctx_mut().bv_u64(1, 8);
        let next = ts.ctx_mut().bvadd(cnt, one);
        ts.set_next("cnt", next).unwrap();
        ts.set_init("cnt", BitVecValue::from_u64(0, 8)).unwrap();
        let c200 = ts.ctx_mut().bv_u64(200, 8);
        let prop = ts.ctx_mut().ne(cnt, c200);
        match k_induction(&ts, prop, 2) {
            InductionOutcome::Unknown { max_k } => assert_eq!(max_k, 2),
            other => panic!("expected unknown, got {other:?}"),
        }
    }

    /// A counter gated by a free input: queries beyond step 0 have free
    /// variables, so they reach the SAT search (a closed system would be
    /// fully decided by level-0 propagation and never consult limits).
    fn enabled_counter() -> TransitionSystem {
        let mut ts = TransitionSystem::new("en_cnt");
        let en = ts.input("en", Sort::Bv(1));
        let cnt = ts.state("cnt", Sort::Bv(8));
        let one = ts.ctx_mut().bv_u64(1, 8);
        let inc = ts.ctx_mut().bvadd(cnt, one);
        let c = ts.ctx_mut().eq_u64(en, 1);
        let next = ts.ctx_mut().ite(c, inc, cnt);
        ts.set_next("cnt", next).unwrap();
        ts.set_init("cnt", BitVecValue::from_u64(0, 8)).unwrap();
        ts
    }

    #[test]
    fn bounded_bmc_reports_unknown_with_step() {
        // An already-expired deadline trips before the very first
        // query: the solver fast-fails ahead of encoding (so external
        // cancellation acts between properties, not only mid-search).
        // Loosening it recovers the ordinary verdict.
        let mut ts = enabled_counter();
        let cnt = ts.ctx().find_var("cnt").unwrap();
        let lim = ts.ctx_mut().bv_u64(100, 8);
        let prop = ts.ctx_mut().ult(cnt, lim);
        let limits = SolveLimits {
            deadline: Some(std::time::Instant::now()),
            ..Default::default()
        };
        let (outcome, _) = bmc_safety_bounded(&ts, prop, 8, limits);
        match outcome {
            BmcOutcome::Unknown { reason, at_step } => {
                assert_eq!(reason, ResourceOut::Deadline);
                assert_eq!(at_step, 0);
            }
            other => panic!("expected unknown, got {other:?}"),
        }
        assert!(!outcome.holds());
        let (outcome, _) = bmc_safety_bounded(&ts, prop, 8, SolveLimits::default());
        assert!(outcome.holds());
    }

    #[test]
    fn bounded_k_induction_reports_resource_out() {
        let mut ts = enabled_counter();
        let cnt = ts.ctx().find_var("cnt").unwrap();
        let lim = ts.ctx_mut().bv_u64(100, 8);
        let prop = ts.ctx_mut().ult(cnt, lim);
        let limits = SolveLimits {
            deadline: Some(std::time::Instant::now()),
            ..Default::default()
        };
        match k_induction_bounded(&ts, prop, 3, limits) {
            InductionOutcome::ResourceOut { reason, .. } => {
                assert_eq!(reason, ResourceOut::Deadline);
            }
            other => panic!("expected resource-out, got {other:?}"),
        }
    }

    #[test]
    fn constraints_restrict_inputs() {
        // Counter with enable; constrain en == 1 and check progress.
        let mut ts = TransitionSystem::new("c");
        let en = ts.input("en", Sort::Bv(1));
        let cnt = ts.state("cnt", Sort::Bv(8));
        let one = ts.ctx_mut().bv_u64(1, 8);
        let inc = ts.ctx_mut().bvadd(cnt, one);
        let c = ts.ctx_mut().eq_u64(en, 1);
        let next = ts.ctx_mut().ite(c, inc, cnt);
        ts.set_next("cnt", next).unwrap();
        ts.set_init("cnt", BitVecValue::from_u64(0, 8)).unwrap();
        let assume = ts.ctx_mut().eq_u64(en, 1);
        ts.add_constraint(assume);
        // Without the constraint cnt could stay 0; with it, cnt == 3 at
        // step 3, so "cnt != 3" is violated at step 3.
        let three = ts.ctx_mut().bv_u64(3, 8);
        let prop = ts.ctx_mut().ne(cnt, three);
        let (outcome, _) = bmc_safety(&ts, prop, 5);
        match outcome {
            BmcOutcome::Violated(cex) => assert_eq!(cex.violation_step, 3),
            other => panic!("expected violation, got {other:?}"),
        }
    }
}
