//! # gila-mc — transition systems and bounded model checking
//!
//! Model-checking substrate for the gila verification flow:
//! [`TransitionSystem`]s over the shared expression language, time-frame
//! expansion ([`Unrolling`]) with per-step fresh inputs, bounded safety
//! checking ([`bmc_safety`]) with counterexample traces, and
//! [`k_induction`] for unbounded proofs of inductive invariants.
//!
//! The refinement-check engine in `gila-verify` builds its per-instruction
//! properties on top of [`Unrolling::map_expr`].
//!
//! # Examples
//!
//! ```
//! use gila_mc::{bmc_safety, TransitionSystem};
//! use gila_expr::{BitVecValue, Sort};
//!
//! let mut ts = TransitionSystem::new("toggler");
//! let t = ts.state("t", Sort::Bv(1));
//! let next = ts.ctx_mut().bvnot(t);
//! ts.set_next("t", next)?;
//! ts.set_init("t", BitVecValue::from_u64(0, 1))?;
//! let one = ts.ctx_mut().bv_u64(1, 1);
//! let prop = ts.ctx_mut().ne(t, one); // fails at odd steps
//! let (outcome, _) = bmc_safety(&ts, prop, 4);
//! assert!(!outcome.holds());
//! # Ok::<(), gila_mc::TsError>(())
//! ```

#![warn(missing_docs)]

mod bmc;
mod btor2;
mod coi;
mod liveness;
mod ts;
mod unroll;

pub use bmc::{
    bmc_safety, bmc_safety_bounded, k_induction, k_induction_bounded, BmcOutcome,
    Counterexample, InductionOutcome, TraceStep,
};
pub use btor2::{to_btor2, Btor2Error};
pub use coi::{coi_slice, support, CoiStats};
pub use liveness::{check_justice, liveness_to_safety, LivenessOutcome};
pub use ts::{TransitionSystem, TsError, TsVar};
pub use unroll::{Frame, Unrolling, UnrollingSnapshot};
