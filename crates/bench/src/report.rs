//! Assembly of Table I rows from case studies and verification reports.

use std::time::Duration;

use gila_designs::CaseStudy;
use gila_verify::{verify_module, ModuleReport, VerifyError, VerifyOptions};

/// One reproduced row of Table I.
#[derive(Clone, Debug)]
pub struct TableRow {
    /// Design name.
    pub design: &'static str,
    /// RTL size in (non-empty) source lines.
    pub rtl_loc: usize,
    /// RTL state bits (registers + memories).
    pub rtl_state_bits: u64,
    /// Ports, as `before` or `before/after integration`.
    pub ports: String,
    /// Atomic instructions across all ports.
    pub instructions: usize,
    /// ILA model size (rendered-description lines).
    pub ila_loc: usize,
    /// ILA architectural state bits.
    pub arch_state_bits: u64,
    /// Refinement-map size (JSON lines, all ports).
    pub refmap_loc: usize,
    /// Time to the first counterexample on the buggy variant, if any.
    pub time_bug: Option<Duration>,
    /// Verification time of the fixed design (all instructions).
    pub time: Duration,
    /// Peak CNF size as a memory-usage proxy (estimated MB).
    pub memory_mb: f64,
    /// Peak CNF clauses (raw proxy value).
    pub peak_clauses: u64,
    /// Whether every instruction of the fixed design verified.
    pub verified: bool,
}

/// Verifies one case study (buggy variant first if present, then the
/// fixed design) and assembles its Table I row.
///
/// # Errors
///
/// Propagates [`VerifyError`] for malformed refinement maps — which
/// would indicate a bug in the case-study definitions, not a property
/// failure.
pub fn run_case_study(cs: &CaseStudy) -> Result<TableRow, VerifyError> {
    // Time (bug): verify the buggy RTL, stopping at the first cex.
    let time_bug = match &cs.buggy_rtl {
        Some(buggy) => {
            let opts = VerifyOptions {
                stop_at_first_cex: true,
                ..Default::default()
            };
            let report = verify_module(&cs.ila, buggy, &cs.refmaps, &opts)?;
            report.time_to_first_counterexample()
        }
        None => None,
    };
    // Full verification of the fixed design.
    let report = verify_module(&cs.ila, &cs.rtl, &cs.refmaps, &VerifyOptions::default())?;
    Ok(assemble_row(cs, &report, time_bug))
}

fn assemble_row(cs: &CaseStudy, report: &ModuleReport, time_bug: Option<Duration>) -> TableRow {
    let stats = cs.ila.stats();
    TableRow {
        design: cs.name,
        rtl_loc: cs.rtl.source_loc().unwrap_or(0),
        rtl_state_bits: cs.rtl.state_bits(),
        ports: cs.ports_cell(),
        instructions: stats.instructions,
        ila_loc: cs.ila.size_loc(),
        arch_state_bits: stats.arch_state_bits,
        refmap_loc: cs.refmaps.iter().map(|m| m.size_loc()).sum(),
        time_bug,
        time: report.total_time(),
        memory_mb: report.peak_stats().estimated_mb(),
        peak_clauses: report.peak_stats().clauses,
        verified: report.all_hold(),
    }
}

fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s < 0.01 {
        format!("{:.2}ms", s * 1000.0)
    } else {
        format!("{s:.2}s")
    }
}

/// Renders rows in the layout of Table I.
pub fn render_table(rows: &[TableRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "| Design          | RTL LoC | RTL bits | ports | insts | ILA LoC | Arch bits | Refmap LoC | Time(bug) | Time     | Mem (MB) | Verified |\n",
    );
    out.push_str(
        "|-----------------|---------|----------|-------|-------|---------|-----------|------------|-----------|----------|----------|----------|\n",
    );
    for r in rows {
        let bug = r
            .time_bug
            .map(fmt_duration)
            .unwrap_or_else(|| "-".to_string());
        out.push_str(&format!(
            "| {:<15} | {:>7} | {:>8} | {:>5} | {:>5} | {:>7} | {:>9} | {:>10} | {:>9} | {:>8} | {:>8.1} | {:>8} |\n",
            r.design,
            r.rtl_loc,
            r.rtl_state_bits,
            r.ports,
            r.instructions,
            r.ila_loc,
            r.arch_state_bits,
            r.refmap_loc,
            bug,
            fmt_duration(r.time),
            r.memory_mb,
            if r.verified { "yes" } else { "NO" },
        ));
    }
    out
}

/// The memory-abstraction ablation (paper §V.B.3 / §V.C.2): full-size
/// vs 16-entry verification of the datapath and store buffer.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Design name.
    pub design: &'static str,
    /// Full-size verification time.
    pub full_time: Duration,
    /// Abstracted (16-entry) verification time.
    pub abstracted_time: Duration,
    /// Full-size peak clauses.
    pub full_clauses: u64,
    /// Abstracted peak clauses.
    pub abstracted_clauses: u64,
}

/// Runs the two ablation experiments.
///
/// # Errors
///
/// Propagates [`VerifyError`] (setup errors only).
pub fn run_ablation() -> Result<Vec<AblationRow>, VerifyError> {
    use gila_designs::i8051::datapath;
    use gila_designs::riscv::store_buffer;
    let opts = VerifyOptions::default();
    let mut rows = Vec::new();
    {
        let full = verify_module(
            &datapath::ila(),
            &datapath::rtl(),
            &datapath::refinement_maps(),
            &opts,
        )?;
        let abst = verify_module(
            &datapath::ila_abstracted(),
            &datapath::rtl_abstracted(),
            &datapath::refinement_maps(),
            &opts,
        )?;
        assert!(full.all_hold() && abst.all_hold());
        rows.push(AblationRow {
            design: "Datapath",
            full_time: full.total_time(),
            abstracted_time: abst.total_time(),
            full_clauses: full.peak_stats().clauses,
            abstracted_clauses: abst.peak_stats().clauses,
        });
    }
    {
        let full = verify_module(
            &store_buffer::ila(),
            &store_buffer::rtl(),
            &store_buffer::refinement_maps(),
            &opts,
        )?;
        let abst = verify_module(
            &store_buffer::ila_abstracted(),
            &store_buffer::rtl_abstracted(),
            &store_buffer::refinement_maps(),
            &opts,
        )?;
        assert!(full.all_hold() && abst.all_hold());
        rows.push(AblationRow {
            design: "Store Buffer",
            full_time: full.total_time(),
            abstracted_time: abst.total_time(),
            full_clauses: full.peak_stats().clauses,
            abstracted_clauses: abst.peak_stats().clauses,
        });
    }
    Ok(rows)
}

/// Renders the ablation rows.
pub fn render_ablation(rows: &[AblationRow]) -> String {
    let mut out = String::new();
    out.push_str("| Design       | Time (full) | Time (16-entry) | Speedup | Clauses (full) | Clauses (16) |\n");
    out.push_str("|--------------|-------------|-----------------|---------|----------------|--------------|\n");
    for r in rows {
        let speedup = r.full_time.as_secs_f64() / r.abstracted_time.as_secs_f64().max(1e-9);
        out.push_str(&format!(
            "| {:<12} | {:>11} | {:>15} | {:>6.1}x | {:>14} | {:>12} |\n",
            r.design,
            fmt_duration(r.full_time),
            fmt_duration(r.abstracted_time),
            speedup,
            r.full_clauses,
            r.abstracted_clauses,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row() -> TableRow {
        TableRow {
            design: "Decoder",
            rtl_loc: 42,
            rtl_state_bits: 17,
            ports: "1".into(),
            instructions: 5,
            ila_loc: 10,
            arch_state_bits: 17,
            refmap_loc: 18,
            time_bug: Some(Duration::from_millis(2)),
            time: Duration::from_millis(321),
            memory_mb: 1.5,
            peak_clauses: 1234,
            verified: true,
        }
    }

    #[test]
    fn table_renders_all_columns() {
        let text = render_table(&[sample_row()]);
        assert!(text.contains("| Decoder"));
        assert!(text.contains("2.00ms"));
        assert!(text.contains("0.32s"));
        assert!(text.contains("yes"));
        let mut failing = sample_row();
        failing.verified = false;
        failing.time_bug = None;
        let text = render_table(&[failing]);
        assert!(text.contains("NO"));
        assert!(text.contains("| -".trim_start()) || text.contains(" - "));
    }

    #[test]
    fn ablation_renders_speedup() {
        let rows = [AblationRow {
            design: "Datapath",
            full_time: Duration::from_secs(10),
            abstracted_time: Duration::from_millis(100),
            full_clauses: 50_000,
            abstracted_clauses: 4_000,
        }];
        let text = render_ablation(&rows);
        assert!(text.contains("100.0x"), "{text}");
        assert!(text.contains("50000"));
    }

    #[test]
    fn run_case_study_produces_a_verified_row() {
        // The decoder is the cheapest full pipeline exercise.
        let cs = gila_designs::all_case_studies().remove(0);
        let row = run_case_study(&cs).expect("well-formed");
        assert!(row.verified);
        assert_eq!(row.instructions, 5);
        assert!(row.time_bug.is_none());
    }
}
