//! Measures sequential vs pooled verification wall-clock per case study
//! and writes the `BENCH_verify.json` artifact.
//!
//! Sequential is `jobs = 1` (fresh engine per instruction); pooled is a
//! four-worker work-stealing pool with persistent incremental engines.
//! Each configuration is run `--runs N` times (default 3) and the best
//! time is kept, so the artifact reflects steady-state cost, not
//! first-run noise. Rows also carry the solver-effort telemetry totals
//! of the sequential run, so regressions in *work done* (not just wall
//! clock) show up in the artifact diff.
//!
//! `bench_verify --check` re-reads `BENCH_verify.json` and validates its
//! schema instead of benchmarking — CI runs this after a `--runs 1`
//! smoke pass to assert the artifact stays machine-readable.

use std::time::Instant;

use gila_designs::{all_case_studies, CaseStudy};
use gila_json::Value;
use gila_lint::{lint_module, lint_rtl, LintOptions};
use gila_trace::Tracer;
use gila_verify::{verify_module, ModuleReport, VerifyOptions};

const POOL_JOBS: usize = 4;
const DEFAULT_RUNS: usize = 3;
const ARTIFACT: &str = "BENCH_verify.json";

fn best_run(cs: &CaseStudy, jobs: usize, runs: usize) -> (f64, ModuleReport) {
    let opts = VerifyOptions {
        jobs: Some(jobs),
        ..Default::default()
    };
    let mut best_s = f64::INFINITY;
    let mut best_report = None;
    for _ in 0..runs {
        let t0 = Instant::now();
        let report = verify_module(&cs.ila, &cs.rtl, &cs.refmaps, &opts).expect("well-formed");
        assert!(report.all_hold(), "{}: {report:#?}", cs.name);
        let s = t0.elapsed().as_secs_f64();
        if s < best_s {
            best_s = s;
            best_report = Some(report);
        }
    }
    (best_s, best_report.expect("runs >= 1"))
}

fn bench(runs: usize) -> Result<(), Box<dyn std::error::Error>> {
    let mut rows = Vec::new();
    for cs in all_case_studies() {
        // The i8051 datapath's memory blast dominates everything else;
        // its scheduling behaviour is identical, so keep the artifact
        // cheap to regenerate.
        if cs.name == "Datapath" {
            continue;
        }
        eprintln!("benchmarking {} ...", cs.name);
        let (sequential_s, seq_report) = best_run(&cs, 1, runs);
        let (pooled_s, _) = best_run(&cs, POOL_JOBS, runs);
        // Static analysis rides along: lint the ILA model and the RTL
        // and record the wall time, proving the whole pass stays
        // sub-second per design.
        let lint_s = {
            let mut best = f64::INFINITY;
            for _ in 0..runs {
                let t0 = Instant::now();
                let report =
                    lint_module(cs.name, &cs.ila, &LintOptions { jobs: 1 }, &Tracer::disabled());
                let _ = lint_rtl(cs.name, &cs.rtl, &Tracer::disabled());
                assert_eq!(report.errors(), 0, "{}: {}", cs.name, report.render_human());
                best = best.min(t0.elapsed().as_secs_f64());
            }
            best
        };
        // Telemetry is taken from the deterministic sequential run, so
        // artifact diffs reflect engine changes, not scheduling noise.
        let t = &seq_report.telemetry;
        rows.push(Value::Object(vec![
            ("design".into(), cs.name.into()),
            ("instructions".into(), cs.ila.stats().instructions.into()),
            ("sequential_s".into(), sequential_s.into()),
            ("pooled_s".into(), pooled_s.into()),
            ("speedup".into(), (sequential_s / pooled_s).into()),
            ("lint_s".into(), lint_s.into()),
            (
                "telemetry".into(),
                Value::Object(vec![
                    ("solves".into(), t.solves.into()),
                    ("decisions".into(), t.decisions.into()),
                    ("propagations".into(), t.propagations.into()),
                    ("conflicts".into(), t.conflicts.into()),
                    ("cnf_vars".into(), t.cnf_vars.into()),
                    ("cnf_clauses".into(), t.cnf_clauses.into()),
                    // Robustness counters: all zero on these unbounded
                    // runs; a nonzero value in a diff means a budget or
                    // panic path fired where none should.
                    ("unknown_count".into(), t.unknown.into()),
                    ("panicked_count".into(), t.panicked.into()),
                    ("retries".into(), t.retries.into()),
                    ("budget_spent_conflicts".into(), t.budget_spent_conflicts.into()),
                ]),
            ),
        ]));
    }
    let doc = Value::Object(vec![
        ("benchmark".into(), "verify: sequential vs pooled".into()),
        ("pool_jobs".into(), POOL_JOBS.into()),
        ("runs_per_config".into(), runs.into()),
        ("rows".into(), Value::Array(rows)),
    ]);
    std::fs::write(ARTIFACT, doc.pretty() + "\n")?;
    eprintln!("wrote {ARTIFACT}");
    Ok(())
}

/// Validates the artifact's schema; returns a description of the first
/// violation, if any.
fn check_artifact(doc: &Value) -> Result<(), String> {
    for key in ["benchmark", "pool_jobs", "runs_per_config"] {
        doc.get(key).ok_or_else(|| format!("missing {key:?}"))?;
    }
    doc.get("pool_jobs")
        .and_then(Value::as_usize)
        .ok_or("pool_jobs must be an integer")?;
    let rows = doc
        .get("rows")
        .and_then(Value::as_array)
        .ok_or("rows must be an array")?;
    if rows.is_empty() {
        return Err("rows is empty".into());
    }
    for row in rows {
        let design = row
            .get("design")
            .and_then(Value::as_str)
            .ok_or("row missing design name")?;
        let ctx = |key: &str| format!("{design}: bad or missing {key:?}");
        row.get("instructions")
            .and_then(Value::as_u64)
            .ok_or_else(|| ctx("instructions"))?;
        for key in ["sequential_s", "pooled_s", "speedup", "lint_s"] {
            let v = row.get(key).and_then(Value::as_f64).ok_or_else(|| ctx(key))?;
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("{design}: {key} = {v} is not a positive time"));
            }
        }
        // The static-analysis pass must stay sub-second per design.
        let lint_s = row.get("lint_s").and_then(Value::as_f64).expect("checked");
        if lint_s >= 1.0 {
            return Err(format!("{design}: lint_s = {lint_s} is not sub-second"));
        }
        let telemetry = row.get("telemetry").ok_or_else(|| ctx("telemetry"))?;
        for key in [
            "solves",
            "decisions",
            "propagations",
            "conflicts",
            "cnf_vars",
            "cnf_clauses",
            "unknown_count",
            "panicked_count",
            "retries",
            "budget_spent_conflicts",
        ] {
            telemetry
                .get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("{design}: telemetry missing counter {key:?}"))?;
        }
        // Unbounded benchmark runs must never exercise the robustness
        // machinery; any nonzero counter is a regression.
        for key in ["unknown_count", "panicked_count", "retries"] {
            let v = telemetry.get(key).and_then(Value::as_u64).expect("checked");
            if v != 0 {
                return Err(format!(
                    "{design}: {key} = {v} on an unbounded benchmark run"
                ));
            }
        }
        let solves = telemetry.get("solves").and_then(Value::as_u64).expect("checked");
        let instrs = row.get("instructions").and_then(Value::as_u64).expect("checked");
        if solves < instrs {
            return Err(format!(
                "{design}: {solves} solves for {instrs} instructions — every \
                 instruction issues at least one SAT check"
            ));
        }
    }
    Ok(())
}

fn check() -> Result<(), Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(ARTIFACT)?;
    let doc = gila_json::parse(&text).map_err(|e| format!("{ARTIFACT}: {e}"))?;
    check_artifact(&doc).map_err(|e| format!("{ARTIFACT}: schema violation: {e}"))?;
    let rows = doc.get("rows").and_then(Value::as_array).expect("checked").len();
    eprintln!("{ARTIFACT}: schema OK ({rows} rows)");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut runs = DEFAULT_RUNS;
    let mut check_only = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => check_only = true,
            "--runs" => {
                i += 1;
                runs = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or("--runs needs a positive integer")?;
            }
            other => return Err(format!("unknown argument {other:?}").into()),
        }
        i += 1;
    }
    if check_only {
        check()
    } else {
        bench(runs)
    }
}
