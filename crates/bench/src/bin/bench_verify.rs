//! Measures sequential vs pooled verification wall-clock per case study
//! and writes the `BENCH_verify.json` artifact.
//!
//! Sequential is `jobs = 1` (fresh engine per instruction); pooled is a
//! four-worker work-stealing pool with persistent incremental engines.
//! Each configuration is run three times and the best time is kept, so
//! the artifact reflects steady-state cost, not first-run noise.

use std::time::Instant;

use gila_designs::{all_case_studies, CaseStudy};
use gila_json::Value;
use gila_verify::{verify_module, VerifyOptions};

const POOL_JOBS: usize = 4;
const RUNS: usize = 3;

fn best_time_s(cs: &CaseStudy, jobs: usize) -> f64 {
    let opts = VerifyOptions {
        jobs: Some(jobs),
        ..Default::default()
    };
    (0..RUNS)
        .map(|_| {
            let t0 = Instant::now();
            let report =
                verify_module(&cs.ila, &cs.rtl, &cs.refmaps, &opts).expect("well-formed");
            assert!(report.all_hold(), "{}: {report:#?}", cs.name);
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rows = Vec::new();
    for cs in all_case_studies() {
        // The i8051 datapath's memory blast dominates everything else;
        // its scheduling behaviour is identical, so keep the artifact
        // cheap to regenerate.
        if cs.name == "Datapath" {
            continue;
        }
        eprintln!("benchmarking {} ...", cs.name);
        let sequential_s = best_time_s(&cs, 1);
        let pooled_s = best_time_s(&cs, POOL_JOBS);
        rows.push(Value::Object(vec![
            ("design".into(), cs.name.into()),
            (
                "instructions".into(),
                cs.ila.stats().instructions.into(),
            ),
            ("sequential_s".into(), sequential_s.into()),
            ("pooled_s".into(), pooled_s.into()),
            ("speedup".into(), (sequential_s / pooled_s).into()),
        ]));
    }
    let doc = Value::Object(vec![
        ("benchmark".into(), "verify: sequential vs pooled".into()),
        ("pool_jobs".into(), POOL_JOBS.into()),
        ("runs_per_config".into(), RUNS.into()),
        ("rows".into(), Value::Array(rows)),
    ]);
    std::fs::write("BENCH_verify.json", doc.pretty() + "\n")?;
    eprintln!("wrote BENCH_verify.json");
    Ok(())
}
