//! Measures sequential vs pooled verification wall-clock per case study
//! and writes the `BENCH_verify.json` artifact.
//!
//! Sequential is `jobs = 1`; pooled is a four-worker work-stealing pool
//! with persistent incremental engines. Each configuration is run
//! `--runs N` times (default 3) and the best time is kept, so the
//! artifact reflects steady-state cost, not first-run noise. Rows also
//! carry the solver-effort telemetry totals of the sequential run, so
//! regressions in *work done* (not just wall clock) show up in the
//! artifact diff.
//!
//! Preprocessing is measured A/B per design: `cnf_vars_pre` /
//! `cnf_clauses_pre` come from a `--no-preprocess` sequential run,
//! `cnf_vars_post` / `cnf_clauses_post` and `coi_dropped` from the
//! preprocessed one, and the artifact's `geomean_cnf_reduction` is the
//! geometric-mean shrink of (vars + clauses) across designs.
//!
//! Modes:
//! * `bench_verify [--runs N]` — benchmark and (re)write the artifact,
//!   recording `geomean_speedup_vs_baseline` against the previously
//!   committed artifact when one exists.
//! * `bench_verify --check` — validate the committed artifact's schema.
//! * `bench_verify --baseline FILE --check-regress TOL` — run a fresh
//!   benchmark (without touching the artifact) and exit non-zero when
//!   the geomean pooled wall-time regressed by more than `TOL` (e.g.
//!   `0.5` = 50%) against `FILE`. CI runs this with a loose tolerance.

use std::sync::Arc;
use std::time::Instant;

use gila_designs::{all_case_studies, CaseStudy};
use gila_json::Value;
use gila_lint::{lint_module, lint_rtl, LintOptions};
use gila_serve::{CacheConfig, ProofCache, Request, Service};
use gila_smt::CancelToken;
use gila_trace::Tracer;
use gila_verify::{cosimulate, cosimulate_compiled, verify_module, ModuleReport, VerifyOptions};

const POOL_JOBS: usize = 4;
const DEFAULT_RUNS: usize = 3;
const ARTIFACT: &str = "BENCH_verify.json";
/// The two slowest-sequential designs must not lose time on the pool
/// beyond this factor (`pooled_s <= tolerance * sequential_s`); see
/// [`check_artifact`].
const POOL_GATE_TOLERANCE: f64 = 1.05;
/// Cycles per port for the co-simulation throughput legs. The
/// interpreter re-walks the DAG per cycle, so it gets a short leash;
/// the compiled tape gets enough cycles to amortize timer noise.
const COSIM_INTERP_CYCLES: usize = 2000;
const COSIM_COMPILED_CYCLES: usize = 100_000;
/// The compiled backend must beat the interpreter by at least this
/// factor in geomean across designs; see [`check_artifact`].
const COSIM_GATE: f64 = 100.0;

fn best_run_with(cs: &CaseStudy, opts: &VerifyOptions, runs: usize) -> (f64, ModuleReport) {
    // One untimed warm-up run first: it pays the one-off costs (thread
    // pool spin-up, allocator growth, cold caches) that otherwise
    // dominate sub-millisecond designs and made tiny pooled runs look
    // slower than sequential ones purely from measurement noise.
    let warmup = verify_module(&cs.ila, &cs.rtl, &cs.refmaps, opts).expect("well-formed");
    assert!(warmup.all_hold(), "{}: {warmup:#?}", cs.name);
    let mut best_s = f64::INFINITY;
    let mut best_report = None;
    for _ in 0..runs {
        let t0 = Instant::now();
        let report = verify_module(&cs.ila, &cs.rtl, &cs.refmaps, opts).expect("well-formed");
        assert!(report.all_hold(), "{}: {report:#?}", cs.name);
        let s = t0.elapsed().as_secs_f64();
        if s < best_s {
            best_s = s;
            best_report = Some(report);
        }
    }
    (best_s, best_report.expect("runs >= 1"))
}

fn best_run(cs: &CaseStudy, jobs: usize, runs: usize, preprocess: bool) -> (f64, ModuleReport) {
    let opts = VerifyOptions {
        jobs: Some(jobs),
        preprocess,
        ..Default::default()
    };
    best_run_with(cs, &opts, runs)
}

/// Best-of-`runs` co-simulation throughput of both backends, in cycles
/// per second summed over the design's ports (fixed RTL — the streams
/// must run clean).
fn cosim_rates(cs: &CaseStudy, runs: usize) -> (f64, f64) {
    let mut best_interp = 0.0f64;
    let mut best_compiled = 0.0f64;
    for _ in 0..runs {
        let mut interp_s = 0.0;
        let mut compiled_s = 0.0;
        let mut interp_cycles = 0u64;
        let mut compiled_cycles = 0u64;
        for port in cs.ila.ports() {
            let map = cs
                .refmaps
                .iter()
                .find(|m| m.name == port.name())
                .expect("one refinement map per port");
            let t0 = Instant::now();
            let d = cosimulate(port, &cs.rtl, map, 7, COSIM_INTERP_CYCLES).expect("cosim runs");
            assert!(d.is_none(), "{}: fixed RTL diverged", cs.name);
            interp_s += t0.elapsed().as_secs_f64();
            interp_cycles += COSIM_INTERP_CYCLES as u64;
            let t0 = Instant::now();
            let d = cosimulate_compiled(port, &cs.rtl, map, 7, COSIM_COMPILED_CYCLES)
                .expect("cosim runs");
            assert!(d.is_none(), "{}: fixed RTL diverged", cs.name);
            compiled_s += t0.elapsed().as_secs_f64();
            compiled_cycles += COSIM_COMPILED_CYCLES as u64;
        }
        best_interp = best_interp.max(interp_cycles as f64 / interp_s);
        best_compiled = best_compiled.max(compiled_cycles as f64 / compiled_s);
    }
    (best_interp, best_compiled)
}

/// Cold and warm daemon-path wall time plus the warm cache hit rate,
/// measured in-process through [`Service`] (a fresh in-memory proof
/// cache per design, no sockets — this isolates the cache, not the
/// transport). The warm leg must report zero solver work: that is the
/// whole point of the content-addressed cache, so it is asserted here
/// and the hit rate lands in the artifact for the schema gate.
fn serve_times(cs: &CaseStudy, runs: usize) -> (f64, f64, f64) {
    let cache = Arc::new(
        ProofCache::open(CacheConfig {
            path: None,
            ..CacheConfig::default()
        })
        .expect("in-memory cache cannot fail to open"),
    );
    let service = Service::new(cache, Tracer::disabled(), None, None);
    let req = Request {
        id: 1,
        op: "verify".into(),
        body: Value::object(vec![("design".into(), Value::String(cs.name.into()))]),
        deadline: None,
    };
    let run = |service: &Service| -> (f64, Value) {
        let t0 = Instant::now();
        let resp = service.execute(&req, CancelToken::default(), None);
        let s = t0.elapsed().as_secs_f64();
        assert_eq!(
            resp.get("status").and_then(Value::as_str),
            Some("ok"),
            "{}: serve verify failed: {}",
            cs.name,
            resp.to_compact()
        );
        (s, resp)
    };
    let (cold_s, _) = run(&service);
    let mut warm_s = f64::INFINITY;
    let mut hit_rate = 0.0;
    for _ in 0..runs {
        let (s, resp) = run(&service);
        let result = resp.get("result").expect("ok response has a result");
        let solves = result.get("solves").and_then(Value::as_u64).unwrap_or(u64::MAX);
        assert_eq!(solves, 0, "{}: warm serve run did solver work", cs.name);
        if s < warm_s {
            warm_s = s;
            hit_rate = result
                .get("cache_hit_rate")
                .and_then(Value::as_f64)
                .unwrap_or(0.0);
        }
    }
    (cold_s, warm_s, hit_rate)
}

fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

fn bench_rows(runs: usize) -> Vec<Value> {
    let mut rows = Vec::new();
    for cs in all_case_studies() {
        // The i8051 datapath's memory blast dominates everything else;
        // its scheduling behaviour is identical, so keep the artifact
        // cheap to regenerate.
        if cs.name == "Datapath" {
            continue;
        }
        eprintln!("benchmarking {} ...", cs.name);
        let (sequential_s, seq_report) = best_run(&cs, 1, runs, true);
        let (pooled_s, pooled_report) = best_run(&cs, POOL_JOBS, runs, true);
        // The clause-sharing leg: same pool, short learnt clauses
        // exchanged between workers of a port. Its wall time rides
        // along for the diff; the exchange counters prove the wiring
        // is live on designs the adaptive threshold routes to the pool
        // (designs below the threshold fall back and report zeros).
        let (pooled_share_s, share_report) = best_run_with(
            &cs,
            &VerifyOptions {
                jobs: Some(POOL_JOBS),
                share_clauses: true,
                ..Default::default()
            },
            runs,
        );
        // The preprocessing A/B leg: CNF counters are deterministic, so
        // one --no-preprocess run is enough for the "pre" columns.
        let (_, pre_report) = best_run(&cs, 1, 1, false);
        // Static analysis rides along: lint the ILA model and the RTL
        // and record the wall time, proving the whole pass stays
        // sub-second per design. The abstract-interpretation fast path
        // reports its own bookkeeping: `absint_s` is the fixpoint's
        // share of the wall time, `absint_discharged` the number of
        // whole (port, code) lint verdicts it decided without a single
        // SAT call. Both are deterministic, so one run's stats stand
        // for all.
        let (lint_s, absint_s, absint_discharged) = {
            let mut best = f64::INFINITY;
            let mut absint_s = 0.0;
            let mut discharged = 0u64;
            for _ in 0..runs {
                let t0 = Instant::now();
                let report =
                    lint_module(cs.name, &cs.ila, &LintOptions::default(), &Tracer::disabled());
                let _ = lint_rtl(cs.name, &cs.rtl, &Tracer::disabled());
                assert_eq!(report.errors(), 0, "{}: {}", cs.name, report.render_human());
                let s = t0.elapsed().as_secs_f64();
                if s < best {
                    best = s;
                    absint_s = report.stats.absint_ns as f64 / 1e9;
                }
                discharged = report.stats.lints_discharged_static;
            }
            (best, absint_s, discharged)
        };
        // The compiled-simulation leg: cosim throughput of both
        // backends over the same designs, feeding the hunt-throughput
        // gate (geomean compiled/interp >= 100x).
        let (cosim_interp, cosim_compiled) = cosim_rates(&cs, runs);
        // The daemon-path leg: cold (cache empty) vs warm (every slice
        // answered from the proof cache, zero solver work).
        let (serve_cold_s, serve_warm_s, cache_hit_rate) = serve_times(&cs, runs);
        // Telemetry is taken from the deterministic sequential run, so
        // artifact diffs reflect engine changes, not scheduling noise.
        let t = &seq_report.telemetry;
        let pre = &pre_report.telemetry;
        rows.push(Value::Object(vec![
            ("design".into(), cs.name.into()),
            ("instructions".into(), cs.ila.stats().instructions.into()),
            ("sequential_s".into(), sequential_s.into()),
            ("pooled_s".into(), pooled_s.into()),
            ("speedup".into(), (sequential_s / pooled_s).into()),
            // Scheduling shape of the pooled run: how many per-port
            // job batches the scheduler cut (0 = the adaptive
            // threshold routed this design to the sequential engine).
            ("batch_count".into(), pooled_report.telemetry.batches.into()),
            ("pooled_share_s".into(), pooled_share_s.into()),
            (
                "clauses_exported".into(),
                share_report.telemetry.clauses_exported.into(),
            ),
            (
                "clauses_imported".into(),
                share_report.telemetry.clauses_imported.into(),
            ),
            (
                "clauses_deduped".into(),
                share_report.telemetry.clauses_deduped.into(),
            ),
            ("lint_s".into(), lint_s.into()),
            ("absint_s".into(), absint_s.into()),
            ("absint_discharged".into(), absint_discharged.into()),
            ("cosim_cycles_per_s_interp".into(), cosim_interp.into()),
            ("cosim_cycles_per_s_compiled".into(), cosim_compiled.into()),
            ("cosim_speedup".into(), (cosim_compiled / cosim_interp).into()),
            ("serve_cold_s".into(), serve_cold_s.into()),
            ("serve_warm_s".into(), serve_warm_s.into()),
            ("cache_hit_rate".into(), cache_hit_rate.into()),
            ("cnf_vars_pre".into(), pre.cnf_vars.into()),
            ("cnf_clauses_pre".into(), pre.cnf_clauses.into()),
            ("cnf_vars_post".into(), t.cnf_vars.into()),
            ("cnf_clauses_post".into(), t.cnf_clauses.into()),
            (
                "coi_dropped".into(),
                (t.coi_states_dropped + t.coi_inputs_dropped).into(),
            ),
            (
                "telemetry".into(),
                Value::Object(vec![
                    ("solves".into(), t.solves.into()),
                    ("decisions".into(), t.decisions.into()),
                    ("propagations".into(), t.propagations.into()),
                    ("conflicts".into(), t.conflicts.into()),
                    ("cnf_vars".into(), t.cnf_vars.into()),
                    ("cnf_clauses".into(), t.cnf_clauses.into()),
                    // Robustness counters: all zero on these unbounded
                    // runs; a nonzero value in a diff means a budget or
                    // panic path fired where none should.
                    ("unknown_count".into(), t.unknown.into()),
                    ("panicked_count".into(), t.panicked.into()),
                    ("retries".into(), t.retries.into()),
                    ("budget_spent_conflicts".into(), t.budget_spent_conflicts.into()),
                ]),
            ),
        ]));
    }
    rows
}

/// Per-row CNF size (vars + clauses) before and after preprocessing.
fn cnf_pre_post(row: &Value) -> Option<(f64, f64)> {
    let get = |k: &str| row.get(k).and_then(Value::as_u64);
    let pre = get("cnf_vars_pre")? + get("cnf_clauses_pre")?;
    let post = get("cnf_vars_post")? + get("cnf_clauses_post")?;
    Some((pre as f64, post as f64))
}

/// Geometric-mean CNF shrink across rows: 1 - geomean(post/pre).
fn geomean_cnf_reduction(rows: &[Value]) -> Option<f64> {
    let ratios: Vec<f64> = rows
        .iter()
        .map(|row| cnf_pre_post(row).map(|(pre, post)| post.max(1.0) / pre.max(1.0)))
        .collect::<Option<_>>()?;
    Some(1.0 - geomean(&ratios))
}

/// Geomean of per-row compiled/interp cosim throughput ratios.
fn geomean_cosim_speedup(rows: &[Value]) -> Option<f64> {
    let ratios: Vec<f64> = rows
        .iter()
        .map(|row| row.get("cosim_speedup").and_then(Value::as_f64))
        .collect::<Option<_>>()?;
    Some(geomean(&ratios))
}

/// Pooled wall-times keyed by design name.
fn pooled_times(doc_rows: &[Value]) -> Vec<(String, f64)> {
    doc_rows
        .iter()
        .filter_map(|row| {
            Some((
                row.get("design")?.as_str()?.to_string(),
                row.get("pooled_s")?.as_f64()?,
            ))
        })
        .collect()
}

/// Geomean of fresh/baseline pooled-time ratios over common designs.
fn geomean_time_ratio(fresh: &[Value], baseline: &[Value]) -> Option<f64> {
    let base = pooled_times(baseline);
    let ratios: Vec<f64> = pooled_times(fresh)
        .iter()
        .filter_map(|(name, s)| {
            let (_, b) = base.iter().find(|(n, _)| n == name)?;
            Some(s / b)
        })
        .collect();
    if ratios.is_empty() {
        None
    } else {
        Some(geomean(&ratios))
    }
}

fn bench(runs: usize) -> Result<(), Box<dyn std::error::Error>> {
    // Read the previously committed artifact first: the speedup-vs-
    // baseline column compares against it before it is overwritten.
    let previous = std::fs::read_to_string(ARTIFACT)
        .ok()
        .and_then(|text| gila_json::parse(&text).ok());
    let rows = bench_rows(runs);
    let mut doc = vec![
        ("benchmark".into(), "verify: sequential vs pooled".into()),
        ("pool_jobs".into(), POOL_JOBS.into()),
        ("runs_per_config".into(), runs.into()),
    ];
    if let Some(reduction) = geomean_cnf_reduction(&rows) {
        eprintln!("geomean CNF reduction (vars+clauses) vs --no-preprocess: {:.1}%", reduction * 100.0);
        doc.push(("geomean_cnf_reduction".into(), reduction.into()));
    }
    if let Some(speedup) = geomean_cosim_speedup(&rows) {
        eprintln!("geomean compiled-cosim speedup vs interpreter: {speedup:.1}x");
        doc.push(("geomean_cosim_speedup".into(), speedup.into()));
    }
    if let Some(prev_rows) = previous
        .as_ref()
        .and_then(|d| d.get("rows"))
        .and_then(Value::as_array)
    {
        if let Some(ratio) = geomean_time_ratio(&rows, prev_rows) {
            let speedup = 1.0 / ratio;
            eprintln!("geomean pooled speedup vs committed baseline: {speedup:.2}x");
            doc.push(("geomean_speedup_vs_baseline".into(), speedup.into()));
        }
    }
    doc.push(("rows".into(), Value::Array(rows)));
    std::fs::write(ARTIFACT, Value::Object(doc).pretty() + "\n")?;
    eprintln!("wrote {ARTIFACT}");
    Ok(())
}

/// Validates the artifact's schema; returns a description of the first
/// violation, if any.
fn check_artifact(doc: &Value) -> Result<(), String> {
    for key in ["benchmark", "pool_jobs", "runs_per_config"] {
        doc.get(key).ok_or_else(|| format!("missing {key:?}"))?;
    }
    doc.get("pool_jobs")
        .and_then(Value::as_usize)
        .ok_or("pool_jobs must be an integer")?;
    // The preprocessing columns must show a real, finite shrink.
    let reduction = doc
        .get("geomean_cnf_reduction")
        .and_then(Value::as_f64)
        .ok_or("missing geomean_cnf_reduction")?;
    if !(reduction.is_finite() && (0.0..1.0).contains(&reduction)) {
        return Err(format!(
            "geomean_cnf_reduction = {reduction} is not a shrink in [0, 1)"
        ));
    }
    let rows = doc
        .get("rows")
        .and_then(Value::as_array)
        .ok_or("rows must be an array")?;
    if rows.is_empty() {
        return Err("rows is empty".into());
    }
    for row in rows {
        let design = row
            .get("design")
            .and_then(Value::as_str)
            .ok_or("row missing design name")?;
        let ctx = |key: &str| format!("{design}: bad or missing {key:?}");
        row.get("instructions")
            .and_then(Value::as_u64)
            .ok_or_else(|| ctx("instructions"))?;
        for key in ["sequential_s", "pooled_s", "speedup", "pooled_share_s", "lint_s"] {
            let v = row.get(key).and_then(Value::as_f64).ok_or_else(|| ctx(key))?;
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("{design}: {key} = {v} is not a positive time"));
            }
        }
        for key in [
            "batch_count",
            "clauses_exported",
            "clauses_imported",
            "clauses_deduped",
        ] {
            row.get(key).and_then(Value::as_u64).ok_or_else(|| ctx(key))?;
        }
        // The static-analysis pass must stay sub-second per design.
        let lint_s = row.get("lint_s").and_then(Value::as_f64).expect("checked");
        if lint_s >= 1.0 {
            return Err(format!("{design}: lint_s = {lint_s} is not sub-second"));
        }
        // The abstract-interpretation columns: the fixpoint's share of
        // the lint time and the whole-verdict discharges it earned.
        let absint_s = row
            .get("absint_s")
            .and_then(Value::as_f64)
            .ok_or_else(|| ctx("absint_s"))?;
        if !(absint_s.is_finite() && (0.0..1.0).contains(&absint_s)) {
            return Err(format!(
                "{design}: absint_s = {absint_s} is not a sub-second time"
            ));
        }
        row.get("absint_discharged")
            .and_then(Value::as_u64)
            .ok_or_else(|| ctx("absint_discharged"))?;
        for key in ["cosim_cycles_per_s_interp", "cosim_cycles_per_s_compiled", "cosim_speedup"] {
            let v = row.get(key).and_then(Value::as_f64).ok_or_else(|| ctx(key))?;
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("{design}: {key} = {v} is not a positive rate"));
            }
        }
        // The daemon-path columns: both legs are real times, and the
        // warm leg must be answered entirely from the proof cache.
        for key in ["serve_cold_s", "serve_warm_s"] {
            let v = row.get(key).and_then(Value::as_f64).ok_or_else(|| ctx(key))?;
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("{design}: {key} = {v} is not a positive time"));
            }
        }
        let hit_rate = row
            .get("cache_hit_rate")
            .and_then(Value::as_f64)
            .ok_or_else(|| ctx("cache_hit_rate"))?;
        if hit_rate != 1.0 {
            return Err(format!(
                "{design}: warm cache_hit_rate = {hit_rate} — the warm serve \
                 leg must be answered entirely from the proof cache"
            ));
        }
        for key in [
            "cnf_vars_pre",
            "cnf_clauses_pre",
            "cnf_vars_post",
            "cnf_clauses_post",
            "coi_dropped",
        ] {
            row.get(key).and_then(Value::as_u64).ok_or_else(|| ctx(key))?;
        }
        let (pre, post) = cnf_pre_post(row).expect("checked");
        if post > pre {
            return Err(format!(
                "{design}: post-preprocessing CNF ({post}) larger than \
                 unpreprocessed ({pre})"
            ));
        }
        let telemetry = row.get("telemetry").ok_or_else(|| ctx("telemetry"))?;
        for key in [
            "solves",
            "decisions",
            "propagations",
            "conflicts",
            "cnf_vars",
            "cnf_clauses",
            "unknown_count",
            "panicked_count",
            "retries",
            "budget_spent_conflicts",
        ] {
            telemetry
                .get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("{design}: telemetry missing counter {key:?}"))?;
        }
        // Unbounded benchmark runs must never exercise the robustness
        // machinery; any nonzero counter is a regression.
        for key in ["unknown_count", "panicked_count", "retries"] {
            let v = telemetry.get(key).and_then(Value::as_u64).expect("checked");
            if v != 0 {
                return Err(format!(
                    "{design}: {key} = {v} on an unbounded benchmark run"
                ));
            }
        }
        let solves = telemetry.get("solves").and_then(Value::as_u64).expect("checked");
        let instrs = row.get("instructions").and_then(Value::as_u64).expect("checked");
        if solves < instrs {
            return Err(format!(
                "{design}: {solves} solves for {instrs} instructions — every \
                 instruction issues at least one SAT check"
            ));
        }
    }
    // The abstract-interpretation fast path must earn its keep: at
    // least one registry design discharges at least one whole lint
    // verdict without any SAT call.
    let discharging = rows
        .iter()
        .filter(|row| {
            row.get("absint_discharged")
                .and_then(Value::as_u64)
                .is_some_and(|n| n >= 1)
        })
        .count();
    if discharging < 1 {
        return Err(
            "no design discharges a lint verdict statically — the absint \
             fast path is dead weight"
                .into(),
        );
    }
    // The compiled simulation backend must deliver the mass-hunting
    // throughput it exists for.
    let cosim = doc
        .get("geomean_cosim_speedup")
        .and_then(Value::as_f64)
        .ok_or("missing geomean_cosim_speedup")?;
    if !(cosim.is_finite() && cosim >= COSIM_GATE) {
        return Err(format!(
            "geomean_cosim_speedup = {cosim:.1} is below the {COSIM_GATE}x              compiled-vs-interpreter gate"
        ));
    }
    // The pool must pay for itself where it matters: on the two
    // slowest-sequential designs, pooled wall time may not exceed
    // sequential by more than the tolerance. Small designs are exempt
    // (the adaptive threshold routes them to the sequential engine, so
    // their ratio is ~1.0 by construction and any gap is noise).
    let mut by_seq: Vec<(&str, f64, f64)> = rows
        .iter()
        .map(|row| {
            (
                row.get("design").and_then(Value::as_str).expect("checked"),
                row.get("sequential_s").and_then(Value::as_f64).expect("checked"),
                row.get("pooled_s").and_then(Value::as_f64).expect("checked"),
            )
        })
        .collect();
    by_seq.sort_by(|a, b| b.1.total_cmp(&a.1));
    for &(design, sequential_s, pooled_s) in by_seq.iter().take(2) {
        if pooled_s > POOL_GATE_TOLERANCE * sequential_s {
            return Err(format!(
                "{design}: pooled_s = {pooled_s:.4} loses to sequential_s = \
                 {sequential_s:.4} beyond the {POOL_GATE_TOLERANCE}x gate — \
                 the pool no longer pays on a design it must win"
            ));
        }
    }
    Ok(())
}

fn check() -> Result<(), Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(ARTIFACT)?;
    let doc = gila_json::parse(&text).map_err(|e| format!("{ARTIFACT}: {e}"))?;
    check_artifact(&doc).map_err(|e| format!("{ARTIFACT}: schema violation: {e}"))?;
    let rows = doc.get("rows").and_then(Value::as_array).expect("checked").len();
    eprintln!("{ARTIFACT}: schema OK ({rows} rows)");
    Ok(())
}

/// Fresh benchmark vs a committed baseline: exits with an error when the
/// geomean pooled wall-time slowed down by more than `tolerance`.
fn check_regress(
    baseline_path: &str,
    tolerance: f64,
    runs: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("reading --baseline {baseline_path}: {e}"))?;
    let baseline = gila_json::parse(&text).map_err(|e| format!("{baseline_path}: {e}"))?;
    let base_rows = baseline
        .get("rows")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{baseline_path}: rows must be an array"))?;
    let fresh = bench_rows(runs);
    let ratio = geomean_time_ratio(&fresh, base_rows)
        .ok_or_else(|| format!("{baseline_path}: no designs in common with this build"))?;
    eprintln!(
        "geomean pooled wall-time vs baseline: {:.2}x ({} = {:.0}% tolerance)",
        ratio,
        baseline_path,
        tolerance * 100.0
    );
    if ratio > 1.0 + tolerance {
        return Err(format!(
            "performance regression: geomean pooled wall-time is {ratio:.2}x the \
             baseline, beyond the {tolerance} tolerance"
        )
        .into());
    }
    eprintln!("within tolerance");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut runs = DEFAULT_RUNS;
    let mut check_only = false;
    let mut baseline: Option<String> = None;
    let mut tolerance: Option<f64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => check_only = true,
            "--runs" => {
                i += 1;
                runs = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or("--runs needs a positive integer")?;
            }
            "--baseline" => {
                i += 1;
                baseline = Some(
                    args.get(i)
                        .ok_or("--baseline needs a file path")?
                        .clone(),
                );
            }
            "--check-regress" => {
                i += 1;
                tolerance = Some(
                    args.get(i)
                        .and_then(|v| v.parse::<f64>().ok())
                        .filter(|t| t.is_finite() && *t >= 0.0)
                        .ok_or("--check-regress needs a non-negative tolerance (e.g. 0.5)")?,
                );
            }
            other => return Err(format!("unknown argument {other:?}").into()),
        }
        i += 1;
    }
    match (check_only, baseline, tolerance) {
        (true, None, None) => check(),
        (false, Some(path), Some(tol)) => check_regress(&path, tol, runs),
        (false, None, None) => bench(runs),
        _ => Err("--baseline and --check-regress go together (and exclude --check)".into()),
    }
}
