//! Regenerates Table I of the paper: statistics and verification
//! results for all eight case studies, plus (with `--ablation`) the
//! small-memory ablation.

use gila_bench::report::{render_ablation, render_table, run_ablation, run_case_study};
use gila_designs::all_case_studies;

fn main() {
    let ablation = std::env::args().any(|a| a == "--ablation");
    println!("Reproducing Table I: Case Studies — Statistics and Verification\n");
    let mut rows = Vec::new();
    for cs in all_case_studies() {
        eprintln!("verifying {} ...", cs.name);
        match run_case_study(&cs) {
            Ok(row) => rows.push(row),
            Err(e) => {
                eprintln!("error in {}: {e}", cs.name);
                std::process::exit(1);
            }
        }
    }
    println!("{}", render_table(&rows));
    println!(
        "Notes: 'Mem (MB)' is the peak CNF size of any single query, as an\n\
         in-process proxy for the paper's model-checker memory column.\n\
         Times are wall-clock on this machine; the paper used JasperGold on\n\
         a 28-core Haswell server, so absolute values differ by design."
    );
    if ablation {
        println!("\nSmall-memory abstraction ablation (paper: Datapath 176s -> 9.5s, Store Buffer 78s -> 1.3s):\n");
        match run_ablation() {
            Ok(rows) => println!("{}", render_ablation(&rows)),
            Err(e) => {
                eprintln!("ablation error: {e}");
                std::process::exit(1);
            }
        }
    }
}
