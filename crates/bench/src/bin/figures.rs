//! Regenerates the paper's figures:
//!
//! * `fig1` — the 8051 decoder ILA sketch,
//! * `fig2` — the AXI slave two-port ILA sketch,
//! * `fig3` — the memory-interface port ILAs, their integration, and
//!   the PC-port,
//! * `fig5` — the decoder refinement map (JSON) and the auto-generated
//!   property for the `stall` instruction.
//!
//! (Fig. 4, the verification flow, is exercised end-to-end by
//! `examples/quickstart.rs`.)

use gila_designs::{axi, i8051};
use gila_verify::render_property;

fn fig1() {
    println!("=== Fig. 1: 8051 decoder ILA (sketch) ===\n");
    println!("{}", i8051::decoder::port_ila().describe());
}

fn fig2() {
    println!("=== Fig. 2: AXI slave ILA (sketch) ===\n");
    println!("{}", axi::slave::read_port().describe());
    println!("{}", axi::slave::write_port().describe());
}

fn fig3() {
    println!("=== Fig. 3: 8051 memory interface ILA (sketch) ===\n");
    println!("--- ROM-port and RAM-port, before integration ---\n");
    println!("{}", i8051::mem_iface::rom_port().describe());
    println!("{}", i8051::mem_iface::ram_port().describe());
    println!("--- integrated ROM-RAM-port (cross product, mem_wait resolved by value priority) ---\n");
    println!("{}", i8051::mem_iface::integrated_rom_ram_port().describe());
    println!("--- PC-port (independent) ---\n");
    println!("{}", i8051::mem_iface::pc_port().describe());
}

fn fig5() {
    println!("=== Fig. 5: refinement map for the 8051 decoder + auto-generated property ===\n");
    let maps = i8051::decoder::refinement_maps();
    println!("--- refinement map (JSON, {} lines) ---\n", maps[0].size_loc());
    println!("{}\n", maps[0].to_json());
    let port = i8051::decoder::port_ila();
    println!("--- auto-generated property for \"stall\" ---\n");
    println!(
        "{}",
        render_property(&port, &maps[0], "stall").expect("stall exists")
    );
    println!("--- auto-generated property for \"process_s1\" ---\n");
    println!(
        "{}",
        render_property(&port, &maps[0], "process_s1").expect("process_s1 exists")
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which: Vec<&str> = if args.is_empty() {
        vec!["fig1", "fig2", "fig3", "fig5"]
    } else {
        args.iter().map(String::as_str).collect()
    };
    for w in which {
        match w {
            "fig1" => fig1(),
            "fig2" => fig2(),
            "fig3" => fig3(),
            "fig4" => println!("Fig. 4 is the verification flow; run examples/quickstart.rs"),
            "fig5" => fig5(),
            other => {
                eprintln!("unknown figure {other:?} (expected fig1|fig2|fig3|fig5)");
                std::process::exit(1);
            }
        }
    }
}
