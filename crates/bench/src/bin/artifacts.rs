//! Writes the reproduction artifacts to `artifacts/`:
//!
//! * `refmaps/<design>.<port>.json` — every refinement map (the JSON
//!   artifact whose line count Table I reports),
//! * `figures/fig{1,2,3,5}.txt` — the regenerated model sketches,
//! * `verilog/<design>.v` — every case-study RTL re-emitted from the IR,
//! * `verilog/<design>_synth.v` — ILA-synthesized implementations,
//! * `properties/<design>.<port>.txt` — the auto-generated refinement
//!   properties in Fig. 5 notation.

use std::fs;
use std::path::Path;

use gila_designs::all_case_studies;
use gila_verify::render_all_properties;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = Path::new("artifacts");
    for sub in ["refmaps", "figures", "verilog", "properties"] {
        fs::create_dir_all(root.join(sub))?;
    }
    for cs in all_case_studies() {
        let slug = cs.name.to_lowercase().replace([' ', '.'], "_");
        // Refinement maps.
        for map in &cs.refmaps {
            let port_slug = map.name.to_lowercase().replace(['-', ' '], "_");
            fs::write(
                root.join("refmaps").join(format!("{slug}.{port_slug}.json")),
                map.to_json(),
            )?;
        }
        // RTL (re-emitted) and synthesized implementations.
        match cs.rtl.to_verilog() {
            Ok(v) => fs::write(root.join("verilog").join(format!("{slug}.v")), v)?,
            Err(e) => eprintln!("note: {slug}: hand-written RTL not re-emittable: {e}"),
        }
        match gila_verify::synthesize_module(&cs.ila) {
            Ok(synth) => match synth.to_verilog() {
                Ok(v) => {
                    fs::write(root.join("verilog").join(format!("{slug}_synth.v")), v)?
                }
                Err(e) => eprintln!("note: {slug}: synthesized RTL not emittable: {e}"),
            },
            Err(e) => eprintln!("note: {slug}: not synthesizable: {e}"),
        }
        // Auto-generated properties per port.
        for (port, map) in cs.ila.ports().iter().zip(&cs.refmaps) {
            let port_slug = map.name.to_lowercase().replace(['-', ' '], "_");
            fs::write(
                root.join("properties")
                    .join(format!("{slug}.{port_slug}.txt")),
                render_all_properties(port, map),
            )?;
        }
    }
    // Figures.
    use gila_designs::{axi, i8051};
    fs::write(
        root.join("figures/fig1.txt"),
        i8051::decoder::port_ila().describe(),
    )?;
    fs::write(
        root.join("figures/fig2.txt"),
        format!(
            "{}\n{}",
            axi::slave::read_port().describe(),
            axi::slave::write_port().describe()
        ),
    )?;
    fs::write(
        root.join("figures/fig3.txt"),
        format!(
            "{}\n{}\n{}\n{}",
            i8051::mem_iface::rom_port().describe(),
            i8051::mem_iface::ram_port().describe(),
            i8051::mem_iface::integrated_rom_ram_port().describe(),
            i8051::mem_iface::pc_port().describe()
        ),
    )?;
    let decoder_maps = i8051::decoder::refinement_maps();
    fs::write(
        root.join("figures/fig5.txt"),
        format!(
            "{}\n\n{}",
            decoder_maps[0].to_json(),
            gila_verify::render_property(
                &i8051::decoder::port_ila(),
                &decoder_maps[0],
                "stall"
            )
            .expect("stall exists")
        ),
    )?;
    println!("artifacts written to {}/", root.display());
    Ok(())
}
