//! # gila-bench — Table I / figure regeneration harness
//!
//! Binaries and Criterion benches that reproduce the evaluation of the
//! DATE 2021 paper:
//!
//! * `cargo run --release -p gila-bench --bin table1` prints the full
//!   Table I reproduction (design stats, ILA stats, refinement-map
//!   sizes, verification times with and without the injected bugs, and
//!   the CNF-size memory proxy); `-- --ablation` adds the small-memory
//!   ablation rows.
//! * `cargo run --release -p gila-bench --bin figures -- fig1|fig2|fig3|fig5`
//!   regenerates the paper's model sketches and the auto-generated
//!   property example.
//! * `cargo bench -p gila-bench` measures per-design verification and
//!   the ablation with Criterion.

#![warn(missing_docs)]

pub mod report;
