//! Criterion bench: full verification time per case study (the "Time"
//! column of Table I).

use criterion::{criterion_group, criterion_main, Criterion};
use gila_designs::all_case_studies;
use gila_verify::{verify_module, VerifyOptions};

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_verification");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(5));
    for cs in all_case_studies() {
        group.bench_function(cs.name, |b| {
            b.iter(|| {
                let report =
                    verify_module(&cs.ila, &cs.rtl, &cs.refmaps, &VerifyOptions::default())
                        .expect("well-formed");
                assert!(report.all_hold());
                report.total_time()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
