//! Criterion bench: frontend throughput — Verilog parsing/elaboration,
//! `.ila` parsing (with integration), synthesis, and emission.

use criterion::{criterion_group, criterion_main, Criterion};
use gila_designs::{axi, i8051, openpiton};
use gila_verify::synthesize_module;

fn bench_frontends(c: &mut Criterion) {
    let mut group = c.benchmark_group("frontends");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));

    group.bench_function("parse_verilog_axi_slave", |b| {
        b.iter(axi::slave::rtl)
    });
    group.bench_function("parse_verilog_noc_router", |b| {
        b.iter(openpiton::noc_router::rtl)
    });
    group.bench_function("build_ila_noc_router_with_round_robin_integration", |b| {
        b.iter(openpiton::noc_router::ila)
    });
    group.bench_function("build_ila_mem_iface_with_value_priority_integration", |b| {
        b.iter(i8051::mem_iface::ila)
    });
    group.bench_function("synthesize_and_emit_mem_iface", |b| {
        let ila = i8051::mem_iface::ila();
        b.iter(|| {
            let rtl = synthesize_module(&ila).expect("synthesizable");
            rtl.to_verilog().expect("emittable")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_frontends);
criterion_main!(benches);
