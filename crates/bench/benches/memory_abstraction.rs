//! Criterion bench: the small-memory-abstraction ablation (paper
//! §V.B.3/§V.C.2: Datapath 176s -> 9.5s, Store Buffer 78s -> 1.3s).

use criterion::{criterion_group, criterion_main, Criterion};
use gila_designs::{i8051::datapath, riscv::store_buffer};
use gila_verify::{verify_module, VerifyOptions};

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("memory_abstraction");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(5));
    let opts = VerifyOptions::default();

    group.bench_function("datapath_full_256B", |b| {
        let (ila, rtl, maps) = (datapath::ila(), datapath::rtl(), datapath::refinement_maps());
        b.iter(|| {
            let r = verify_module(&ila, &rtl, &maps, &opts).expect("well-formed");
            assert!(r.all_hold());
        })
    });
    group.bench_function("datapath_abstracted_16B", |b| {
        let (ila, rtl, maps) = (
            datapath::ila_abstracted(),
            datapath::rtl_abstracted(),
            datapath::refinement_maps(),
        );
        b.iter(|| {
            let r = verify_module(&ila, &rtl, &maps, &opts).expect("well-formed");
            assert!(r.all_hold());
        })
    });
    group.bench_function("store_buffer_full_64B", |b| {
        let (ila, rtl, maps) = (
            store_buffer::ila(),
            store_buffer::rtl(),
            store_buffer::refinement_maps(),
        );
        b.iter(|| {
            let r = verify_module(&ila, &rtl, &maps, &opts).expect("well-formed");
            assert!(r.all_hold());
        })
    });
    group.bench_function("store_buffer_abstracted_16B", |b| {
        let (ila, rtl, maps) = (
            store_buffer::ila_abstracted(),
            store_buffer::rtl_abstracted(),
            store_buffer::refinement_maps(),
        );
        b.iter(|| {
            let r = verify_module(&ila, &rtl, &maps, &opts).expect("well-formed");
            assert!(r.all_hold());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
