//! Criterion bench: time to the first counterexample on the three
//! bug-injected designs (the "Time (bug)" column of Table I; the paper
//! reports 0.01s / 0.7s / 0.61s).

use criterion::{criterion_group, criterion_main, Criterion};
use gila_designs::all_case_studies;
use gila_verify::{verify_module, VerifyOptions};

fn bench_bugs(c: &mut Criterion) {
    let mut group = c.benchmark_group("bug_hunting");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(5));
    let opts = VerifyOptions {
        stop_at_first_cex: true,
        ..Default::default()
    };
    for cs in all_case_studies() {
        let Some(buggy) = cs.buggy_rtl.clone() else {
            continue;
        };
        group.bench_function(cs.name, |b| {
            b.iter(|| {
                let report =
                    verify_module(&cs.ila, &buggy, &cs.refmaps, &opts).expect("well-formed");
                assert!(report.time_to_first_counterexample().is_some());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bugs);
criterion_main!(benches);
