//! Criterion bench: the decision-procedure substrate in isolation —
//! CDCL SAT on pigeonhole instances and bit-blasted bit-vector
//! equivalences. These calibrate where the verification time goes.

use criterion::{criterion_group, criterion_main, Criterion};
use gila_expr::{ExprCtx, Sort};
use gila_sat::{Lit, Solver};
use gila_smt::SmtSolver;

fn pigeonhole(n: usize) -> Solver {
    // n pigeons into n-1 holes: UNSAT, exponential for resolution.
    let m = n - 1;
    let mut s = Solver::new();
    let mut grid = Vec::new();
    for _ in 0..n {
        let row: Vec<Lit> = (0..m).map(|_| s.new_var().positive()).collect();
        grid.push(row);
    }
    for row in &grid {
        s.add_clause(row.iter().copied());
    }
    // Clause order matters for solver timing; keep the conventional
    // hole-major encoding even though clippy prefers an iterator here.
    #[allow(clippy::needless_range_loop)]
    for j in 0..m {
        for a in 0..n {
            for b in (a + 1)..n {
                s.add_clause([!grid[a][j], !grid[b][j]]);
            }
        }
    }
    s
}

fn bench_sat(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat_solver");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(5));
    for n in [6usize, 7, 8] {
        group.bench_function(format!("pigeonhole_{n}_into_{}", n - 1), |b| {
            b.iter(|| {
                let mut s = pigeonhole(n);
                assert!(!s.solve().is_sat());
            })
        });
    }
    group.finish();
}

fn bench_blasting(c: &mut Criterion) {
    let mut group = c.benchmark_group("bit_blasting");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(5));
    // Equivalence of two structurally different multipliers is the
    // classic SAT cliff: bv10 already needs minutes, so the bench stays
    // at widths where the proof is interactive.
    for w in [6u32, 8] {
        group.bench_function(format!("mul_commutes_bv{w}"), |b| {
            b.iter(|| {
                let mut ctx = ExprCtx::new();
                let x = ctx.var("x", Sort::Bv(w));
                let y = ctx.var("y", Sort::Bv(w));
                let l = ctx.bvmul(x, y);
                let r = ctx.bvmul(y, x);
                let ne = ctx.ne(l, r);
                let mut smt = SmtSolver::new();
                smt.assert(&ctx, ne);
                assert!(!smt.check().is_sat());
            })
        });
    }
    for aw in [4u32, 6, 8] {
        group.bench_function(format!("mem_rw_consistency_2e{aw}_words"), |b| {
            b.iter(|| {
                let mut ctx = ExprCtx::new();
                let m = ctx.var(
                    "m",
                    Sort::Mem {
                        addr_width: aw,
                        data_width: 8,
                    },
                );
                let a = ctx.var("a", Sort::Bv(aw));
                let d = ctx.var("d", Sort::Bv(8));
                let wr = ctx.mem_write(m, a, d);
                let rd = ctx.mem_read(wr, a);
                let ne = ctx.ne(rd, d);
                let mut smt = SmtSolver::new();
                smt.assert(&ctx, ne);
                assert!(!smt.check().is_sat());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sat, bench_blasting);
criterion_main!(benches);
