//! Criterion bench: sequential verification vs the work-stealing pool.
//!
//! `seq` is the legacy path (`jobs = 1`, one fresh unrolling + solver
//! per instruction); `jobs4` is a four-worker pool where each worker
//! keeps one incremental engine, so the blasted transition relation is
//! paid at most four times per design instead of once per instruction.

use criterion::{criterion_group, criterion_main, Criterion};
use gila_designs::all_case_studies;
use gila_verify::{verify_module, VerifyOptions};

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(5));
    for cs in all_case_studies() {
        // One i8051 and one AXI design; the rest behave alike and the
        // full sweep lives in `bench_verify` / BENCH_verify.json.
        if !matches!(cs.name, "Decoder" | "AXI Slave") {
            continue;
        }
        for (label, jobs) in [("seq", 1usize), ("jobs4", 4)] {
            let opts = VerifyOptions {
                jobs: Some(jobs),
                ..Default::default()
            };
            group.bench_function(format!("{}/{label}", cs.name), |b| {
                b.iter(|| {
                    let report = verify_module(&cs.ila, &cs.rtl, &cs.refmaps, &opts)
                        .expect("well-formed");
                    assert!(report.all_hold());
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
