//! Scheduler-configuration equivalence on the real case studies.
//!
//! Every way of running the verifier — sequential, pooled, pooled with
//! per-port batching disabled, pooled with learnt-clause sharing — must
//! produce the same verdicts and the same telemetry span set. The span
//! comparison uses [`gila_trace::span_set`], which ignores ordering and
//! volatile timing fields but catches missing or extra work (a port
//! that was never sliced, an instruction that was never solved).

use std::collections::BTreeSet;

use gila_designs::{all_case_studies, CaseStudy};
use gila_rtl::RtlModule;
use gila_trace::{span_set, Tracer};
use gila_verify::{verify_module, VerifyOptions};

/// (port, instruction, holds) triple per verdict, plus the span set of
/// the run's telemetry trace.
type RunShape = (Vec<(String, String, bool)>, BTreeSet<(String, String, String, String)>);

fn run_shape(cs: &CaseStudy, rtl: &RtlModule, opts: VerifyOptions) -> RunShape {
    let (tracer, ring) = Tracer::ring(1 << 16);
    let opts = VerifyOptions { tracer, ..opts };
    let report = verify_module(&cs.ila, rtl, &cs.refmaps, &opts).expect("well-formed");
    let mut verdicts = Vec::new();
    for port in &report.ports {
        for v in &port.verdicts {
            verdicts.push((port.port.clone(), v.instruction.clone(), v.result.holds()));
        }
    }
    verdicts.sort();
    let jsonl: String = ring
        .events()
        .iter()
        .map(|e| e.to_json_line() + "\n")
        .collect();
    (verdicts, span_set(&jsonl).expect("trace is well-formed JSONL"))
}

/// The pool configurations that must be indistinguishable from the
/// sequential baseline.
fn pool_variants() -> Vec<(&'static str, VerifyOptions)> {
    // `par_threshold: 0` forces the pool even on designs the adaptive
    // default would route to the sequential fallback — these tests are
    // about the pool itself.
    let pool = |batch_ports: bool, share_clauses: bool| VerifyOptions {
        jobs: Some(4),
        batch_ports,
        share_clauses,
        par_threshold: 0,
        ..Default::default()
    };
    vec![
        ("jobs=4", pool(true, false)),
        ("jobs=4 --no-batch-ports", pool(false, false)),
        ("jobs=4 --share-clauses", pool(true, true)),
        // And once with the tuned default, so the adaptive fallback
        // itself is also proved verdict- and span-preserving.
        (
            "jobs=4 (adaptive)",
            VerifyOptions {
                jobs: Some(4),
                ..Default::default()
            },
        ),
    ]
}

fn assert_equivalent(cs: &CaseStudy, rtl: &RtlModule, tag: &str) {
    let sequential = run_shape(
        cs,
        rtl,
        VerifyOptions {
            jobs: Some(1),
            ..Default::default()
        },
    );
    for (label, opts) in pool_variants() {
        let pooled = run_shape(cs, rtl, opts);
        assert_eq!(
            sequential.0, pooled.0,
            "{} ({tag}): {label} changed a verdict",
            cs.name
        );
        assert_eq!(
            sequential.1, pooled.1,
            "{} ({tag}): {label} changed the span set",
            cs.name
        );
    }
}

#[test]
fn pool_configurations_match_sequential_on_correct_rtl() {
    for cs in all_case_studies() {
        // One single-port, one multi-port AXI, and the multi-port
        // cache design cover every scheduling shape; the rest behave
        // alike and would only slow the suite down.
        if !matches!(cs.name, "Decoder" | "AXI Slave" | "L2 Cache") {
            continue;
        }
        let rtl = cs.rtl.clone();
        assert_equivalent(&cs, &rtl, "correct");
    }
}

#[test]
fn pool_configurations_match_sequential_on_buggy_rtl() {
    // Failing verdicts (with counterexamples) must also be stable
    // across scheduler configurations, not just passing ones.
    for cs in all_case_studies() {
        if !matches!(cs.name, "Decoder" | "AXI Slave") {
            continue;
        }
        let Some(buggy) = cs.buggy_rtl.clone() else {
            continue;
        };
        assert_equivalent(&cs, &buggy, "buggy");
    }
}
