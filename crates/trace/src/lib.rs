//! Structured verification telemetry.
//!
//! The engine's hot path — unrolling, bit-blasting, SAT solving, and the
//! work-stealing scheduler — emits [`Event`]s through a [`Tracer`] handle.
//! A tracer is either *disabled* (the default: one branch per call site,
//! the event is never even constructed) or carries a shared [`TraceSink`]
//! that decides what to do with each event:
//!
//! * [`RingSink`] — bounded in-memory buffer, for tests and benches;
//! * [`JsonlSink`] — one compact JSON object per line, for `--trace`;
//! * disabled — the no-op case, no sink allocated at all.
//!
//! Events are deliberately flat: a span kind, the (port, instruction)
//! coordinates it belongs to, a short label, an optional worker id, and a
//! list of named integer counters. Flat events are trivially
//! canonicalizable, which is what the golden-trace tests depend on: see
//! [`canonicalize_jsonl`] and [`span_set`].

use std::collections::BTreeSet;
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use gila_json::Value;

/// What phase of the pipeline an event describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// One verified port (a module interface in the refinement map).
    Port,
    /// One (port, instruction) verification job.
    Instruction,
    /// An unrolling operation: extend, snapshot, or rollback.
    Unroll,
    /// Incremental CNF growth from one bit-blasting round.
    Blast,
    /// One SAT check, with the solver effort it cost.
    Solve,
    /// A solve attempt gave up on a resource limit (reason + effort
    /// spent ride as fields/label).
    BudgetExhausted,
    /// A job is being re-run with an escalated budget.
    Retry,
    /// A job panicked and was isolated by the scheduler.
    Panic,
    /// One static-analysis pass of `gila-lint` over one target.
    LintPass,
    /// Cone-of-influence slicing of the transition system for one port
    /// plan (states/inputs kept and dropped ride as fields).
    Coi,
    /// One bounded SAT inprocessing pass between solve calls (clauses
    /// reclaimed, literals removed, failed literals ride as fields).
    Inprocess,
    /// One tape compilation of a co-simulation pair (instruction count
    /// and register-bank sizes ride as fields).
    Compile,
    /// One compiled co-simulation run — a (design, port, seed) hunt
    /// task (cycles executed and divergence count ride as fields).
    Eval,
    /// One request handled by the `gila serve` daemon (op and outcome
    /// ride as label/fields).
    Request,
    /// A (port, instruction) verdict answered from the proof cache with
    /// zero solver work.
    CacheHit,
    /// A (port, instruction) property that missed the proof cache and
    /// was discharged by the solver.
    CacheMiss,
    /// A request rejected by admission control (queue full); the
    /// retry-after hint rides as a field.
    Shed,
    /// A graceful daemon drain: in-flight jobs finished, journal
    /// flushed (drained job count rides as a field).
    Drain,
    /// One abstract-interpretation fixpoint over a port's transition
    /// system or architectural states (invariants proved and fixpoint
    /// iterations ride as fields).
    Absint,
}

impl SpanKind {
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Port => "port",
            SpanKind::Instruction => "instruction",
            SpanKind::Unroll => "unroll",
            SpanKind::Blast => "blast",
            SpanKind::Solve => "solve",
            SpanKind::BudgetExhausted => "budget_exhausted",
            SpanKind::Retry => "retry",
            SpanKind::Panic => "panic",
            SpanKind::LintPass => "lint_pass",
            SpanKind::Coi => "coi",
            SpanKind::Inprocess => "inprocess",
            SpanKind::Compile => "compile",
            SpanKind::Eval => "eval",
            SpanKind::Request => "request",
            SpanKind::CacheHit => "cache_hit",
            SpanKind::CacheMiss => "cache_miss",
            SpanKind::Shed => "shed",
            SpanKind::Drain => "drain",
            SpanKind::Absint => "absint",
        }
    }
}

/// One telemetry event. Construction is cheap and allocation-light; the
/// sink decides whether it is buffered, serialized, or dropped.
#[derive(Clone, Debug)]
pub struct Event {
    pub kind: SpanKind,
    pub port: String,
    pub instruction: String,
    pub label: String,
    pub worker: Option<usize>,
    /// Named integer counters, in emission order.
    pub fields: Vec<(&'static str, u64)>,
}

impl Event {
    pub fn new(kind: SpanKind) -> Event {
        Event {
            kind,
            port: String::new(),
            instruction: String::new(),
            label: String::new(),
            worker: None,
            fields: Vec::new(),
        }
    }

    pub fn port(mut self, port: &str) -> Event {
        self.port = port.to_string();
        self
    }

    pub fn instruction(mut self, instruction: &str) -> Event {
        self.instruction = instruction.to_string();
        self
    }

    pub fn label(mut self, label: &str) -> Event {
        self.label = label.to_string();
        self
    }

    pub fn worker(mut self, worker: Option<usize>) -> Event {
        self.worker = worker;
        self
    }

    pub fn field(mut self, name: &'static str, value: u64) -> Event {
        self.fields.push((name, value));
        self
    }

    /// Look up a counter by name.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.fields.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }

    fn to_value(&self) -> Value {
        let mut obj: Vec<(String, Value)> = vec![("kind".into(), self.kind.as_str().into())];
        if !self.port.is_empty() {
            obj.push(("port".into(), self.port.as_str().into()));
        }
        if !self.instruction.is_empty() {
            obj.push(("instr".into(), self.instruction.as_str().into()));
        }
        if !self.label.is_empty() {
            obj.push(("label".into(), self.label.as_str().into()));
        }
        if let Some(w) = self.worker {
            obj.push(("worker".into(), w.into()));
        }
        for (name, value) in &self.fields {
            obj.push(((*name).into(), (*value).into()));
        }
        Value::Object(obj)
    }

    /// Render as one compact JSON object (no trailing newline).
    pub fn to_json_line(&self) -> String {
        self.to_value().to_compact()
    }
}

/// Where events go. Sinks must be shareable across worker threads.
pub trait TraceSink: Send + Sync {
    fn record(&self, event: Event);
    /// Flush any buffered output. Default: nothing to flush.
    fn flush(&self) {}
}

/// Bounded in-memory sink; oldest events are dropped past `capacity`.
pub struct RingSink {
    capacity: usize,
    events: Mutex<Vec<Event>>,
}

impl RingSink {
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            capacity,
            events: Mutex::new(Vec::new()),
        }
    }

    /// Snapshot of the buffered events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("ring sink poisoned").clone()
    }
}

impl TraceSink for RingSink {
    fn record(&self, event: Event) {
        let mut buf = self.events.lock().expect("ring sink poisoned");
        if buf.len() == self.capacity {
            buf.remove(0);
        }
        buf.push(event);
    }
}

/// Writes one compact JSON object per event, newline-delimited.
pub struct JsonlSink<W: Write + Send> {
    writer: Mutex<BufWriter<W>>,
}

impl JsonlSink<File> {
    pub fn to_file(path: &Path) -> std::io::Result<JsonlSink<File>> {
        Ok(JsonlSink::new(File::create(path)?))
    }
}

impl<W: Write + Send> JsonlSink<W> {
    pub fn new(writer: W) -> JsonlSink<W> {
        JsonlSink {
            writer: Mutex::new(BufWriter::new(writer)),
        }
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn record(&self, event: Event) {
        let mut w = self.writer.lock().expect("jsonl sink poisoned");
        // A failed trace write must never fail the verification run.
        let _ = writeln!(w, "{}", event.to_json_line());
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("jsonl sink poisoned").flush();
    }
}

/// Cheap, cloneable handle threaded through the engine. Disabled is the
/// default and costs one `Option` branch per call site — the event
/// closure is never invoked.
#[derive(Clone, Default)]
pub struct Tracer {
    sink: Option<Arc<dyn TraceSink>>,
}

impl Tracer {
    /// The no-op tracer: records nothing, allocates nothing.
    pub fn disabled() -> Tracer {
        Tracer { sink: None }
    }

    /// Buffer up to `capacity` events in memory.
    pub fn ring(capacity: usize) -> (Tracer, Arc<RingSink>) {
        let sink = Arc::new(RingSink::new(capacity));
        (
            Tracer {
                sink: Some(sink.clone()),
            },
            sink,
        )
    }

    /// Stream JSONL to `path`.
    pub fn jsonl_file(path: &Path) -> std::io::Result<Tracer> {
        Ok(Tracer {
            sink: Some(Arc::new(JsonlSink::to_file(path)?)),
        })
    }

    /// Wrap an arbitrary sink.
    pub fn with_sink(sink: Arc<dyn TraceSink>) -> Tracer {
        Tracer { sink: Some(sink) }
    }

    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Record an event. The closure runs only when a sink is attached,
    /// so disabled tracing skips event construction entirely.
    #[inline]
    pub fn record(&self, make: impl FnOnce() -> Event) {
        if let Some(sink) = &self.sink {
            sink.record(make());
        }
    }

    pub fn flush(&self) {
        if let Some(sink) = &self.sink {
            sink.flush();
        }
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.is_enabled() {
            "Tracer(enabled)"
        } else {
            "Tracer(disabled)"
        })
    }
}

/// Aggregated totals over a set of instruction verdicts — the same
/// numbers the CLI `--stats` table prints and `BENCH_verify.json`
/// records.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Telemetry {
    pub instructions: u64,
    pub solves: u64,
    pub decisions: u64,
    pub propagations: u64,
    pub conflicts: u64,
    pub learnt_clauses: u64,
    pub cnf_vars: u64,
    pub cnf_clauses: u64,
    pub wall_ns: u64,
    pub queue_ns: u64,
    pub steals: u64,
    pub workers: u64,
    /// Jobs whose final verdict was `Unknown` (budget exhausted).
    pub unknown: u64,
    /// Jobs that panicked and were isolated.
    pub panicked: u64,
    /// Budget-escalation re-runs across all jobs.
    pub retries: u64,
    /// Conflicts burned by solve attempts that ended in `Unknown`.
    pub budget_spent_conflicts: u64,
    /// State variables removed by cone-of-influence slicing (summed
    /// over port plans).
    pub coi_states_dropped: u64,
    /// Input variables removed by cone-of-influence slicing.
    pub coi_inputs_dropped: u64,
    /// Clauses reclaimed by inprocessing (satisfied plus subsumed).
    pub inprocess_clauses_removed: u64,
    /// Literals removed by inprocessing strengthening.
    pub inprocess_lits_removed: u64,
    /// Level-0 units learned by failed-literal probing.
    pub inprocess_failed_literals: u64,
    /// Distinct scheduler batches (pooled runs; 0 on the sequential
    /// path, where the notion of a batch does not exist).
    pub batches: u64,
    /// Learnt clauses published to the shared pool across all workers.
    pub clauses_exported: u64,
    /// Shared-pool clauses imported into worker solvers.
    pub clauses_imported: u64,
    /// Shared-pool clauses skipped by per-worker dedup (already seen or
    /// self-published).
    pub clauses_deduped: u64,
    /// Inductive invariants proved by the abstract interpreter and
    /// asserted as solver-level lemmas (summed over port plans).
    pub invariants_proved: u64,
    /// Lint checks fully discharged by the abstract interpreter — the
    /// whole (port, code) verdict was decided without any SAT call.
    pub lints_discharged_static: u64,
    /// Individual SAT queries the lint fast path made unnecessary.
    pub sat_calls_avoided: u64,
}

impl Telemetry {
    /// Component-wise sum; `workers` takes the max (it is a gauge).
    pub fn merge(&self, other: &Telemetry) -> Telemetry {
        Telemetry {
            instructions: self.instructions + other.instructions,
            solves: self.solves + other.solves,
            decisions: self.decisions + other.decisions,
            propagations: self.propagations + other.propagations,
            conflicts: self.conflicts + other.conflicts,
            learnt_clauses: self.learnt_clauses + other.learnt_clauses,
            cnf_vars: self.cnf_vars + other.cnf_vars,
            cnf_clauses: self.cnf_clauses + other.cnf_clauses,
            wall_ns: self.wall_ns + other.wall_ns,
            queue_ns: self.queue_ns + other.queue_ns,
            steals: self.steals + other.steals,
            workers: self.workers.max(other.workers),
            unknown: self.unknown + other.unknown,
            panicked: self.panicked + other.panicked,
            retries: self.retries + other.retries,
            budget_spent_conflicts: self.budget_spent_conflicts
                + other.budget_spent_conflicts,
            coi_states_dropped: self.coi_states_dropped + other.coi_states_dropped,
            coi_inputs_dropped: self.coi_inputs_dropped + other.coi_inputs_dropped,
            inprocess_clauses_removed: self.inprocess_clauses_removed
                + other.inprocess_clauses_removed,
            inprocess_lits_removed: self.inprocess_lits_removed + other.inprocess_lits_removed,
            inprocess_failed_literals: self.inprocess_failed_literals
                + other.inprocess_failed_literals,
            batches: self.batches + other.batches,
            clauses_exported: self.clauses_exported + other.clauses_exported,
            clauses_imported: self.clauses_imported + other.clauses_imported,
            clauses_deduped: self.clauses_deduped + other.clauses_deduped,
            invariants_proved: self.invariants_proved + other.invariants_proved,
            lints_discharged_static: self.lints_discharged_static
                + other.lints_discharged_static,
            sat_calls_avoided: self.sat_calls_avoided + other.sat_calls_avoided,
        }
    }

    pub fn to_json(&self) -> Value {
        Value::Object(vec![
            ("instructions".into(), self.instructions.into()),
            ("solves".into(), self.solves.into()),
            ("decisions".into(), self.decisions.into()),
            ("propagations".into(), self.propagations.into()),
            ("conflicts".into(), self.conflicts.into()),
            ("learnt_clauses".into(), self.learnt_clauses.into()),
            ("cnf_vars".into(), self.cnf_vars.into()),
            ("cnf_clauses".into(), self.cnf_clauses.into()),
            ("wall_ns".into(), self.wall_ns.into()),
            ("queue_ns".into(), self.queue_ns.into()),
            ("steals".into(), self.steals.into()),
            ("workers".into(), self.workers.into()),
            ("unknown".into(), self.unknown.into()),
            ("panicked".into(), self.panicked.into()),
            ("retries".into(), self.retries.into()),
            (
                "budget_spent_conflicts".into(),
                self.budget_spent_conflicts.into(),
            ),
            ("coi_states_dropped".into(), self.coi_states_dropped.into()),
            ("coi_inputs_dropped".into(), self.coi_inputs_dropped.into()),
            (
                "inprocess_clauses_removed".into(),
                self.inprocess_clauses_removed.into(),
            ),
            (
                "inprocess_lits_removed".into(),
                self.inprocess_lits_removed.into(),
            ),
            (
                "inprocess_failed_literals".into(),
                self.inprocess_failed_literals.into(),
            ),
            ("batches".into(), self.batches.into()),
            ("clauses_exported".into(), self.clauses_exported.into()),
            ("clauses_imported".into(), self.clauses_imported.into()),
            ("clauses_deduped".into(), self.clauses_deduped.into()),
            ("invariants_proved".into(), self.invariants_proved.into()),
            (
                "lints_discharged_static".into(),
                self.lints_discharged_static.into(),
            ),
            ("sat_calls_avoided".into(), self.sat_calls_avoided.into()),
        ])
    }
}

/// Keys that vary run to run (timing, scheduling) and must be stripped
/// before a trace can be compared against a golden file.
pub const VOLATILE_KEYS: &[&str] = &["wall_ns", "queue_ns", "worker", "steals"];

/// Canonicalize a JSONL trace for golden comparison: parse each line,
/// drop volatile keys, re-render compactly, and sort the lines. Returns
/// an error string naming the first malformed line.
pub fn canonicalize_jsonl(jsonl: &str) -> Result<String, String> {
    let mut lines = Vec::new();
    for (idx, line) in jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value =
            gila_json::parse(line).map_err(|e| format!("line {}: {e:?}", idx + 1))?;
        let obj = value
            .as_object()
            .ok_or_else(|| format!("line {}: not an object", idx + 1))?;
        let kept: Vec<(String, Value)> = obj
            .iter()
            .filter(|(k, _)| !VOLATILE_KEYS.contains(&k.as_str()))
            .cloned()
            .collect();
        lines.push(Value::Object(kept).to_compact());
    }
    lines.sort();
    Ok(lines.join("\n") + "\n")
}

/// The set of work-identifying spans in a JSONL trace: `(kind, port,
/// instr, label)` for every `instruction`, `solve`, `compile`, and
/// `eval` event. Two runs that performed the same verification (or
/// hunt) work have equal span sets no matter how the scheduler
/// interleaved them — per-worker `compile` duplicates collapse because
/// worker ids are not part of the key.
pub fn span_set(jsonl: &str) -> Result<BTreeSet<(String, String, String, String)>, String> {
    let mut set = BTreeSet::new();
    for (idx, line) in jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value =
            gila_json::parse(line).map_err(|e| format!("line {}: {e:?}", idx + 1))?;
        let key = |k: &str| {
            value
                .get(k)
                .and_then(|v| v.as_str())
                .unwrap_or("")
                .to_string()
        };
        let kind = key("kind");
        if matches!(kind.as_str(), "instruction" | "solve" | "compile" | "eval") {
            set.insert((kind, key("port"), key("instr"), key("label")));
        }
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_never_builds_events() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.record(|| unreachable!("disabled tracer must not construct events"));
    }

    #[test]
    fn ring_sink_buffers_and_caps() {
        let (t, ring) = Tracer::ring(2);
        assert!(t.is_enabled());
        for i in 0..3u64 {
            t.record(|| Event::new(SpanKind::Solve).field("i", i));
        }
        let events = ring.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("i"), Some(1));
        assert_eq!(events[1].get("i"), Some(2));
    }

    #[test]
    fn event_json_shape() {
        let e = Event::new(SpanKind::Instruction)
            .port("counter")
            .instruction("inc")
            .worker(Some(3))
            .field("decisions", 7);
        assert_eq!(
            e.to_json_line(),
            r#"{"kind":"instruction","port":"counter","instr":"inc","worker":3,"decisions":7}"#
        );
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let sink = Arc::new(JsonlSink::new(Vec::new()));
        let t = Tracer::with_sink(sink.clone());
        t.record(|| Event::new(SpanKind::Port).port("p"));
        t.record(|| Event::new(SpanKind::Blast).field("clauses", 12));
        t.flush();
        let w = sink.writer.lock().unwrap();
        let text = String::from_utf8(w.get_ref().clone()).unwrap();
        assert_eq!(
            text,
            "{\"kind\":\"port\",\"port\":\"p\"}\n{\"kind\":\"blast\",\"clauses\":12}\n"
        );
    }

    #[test]
    fn canonicalize_strips_volatile_and_sorts() {
        let raw = concat!(
            "{\"kind\":\"solve\",\"port\":\"b\",\"wall_ns\":981,\"worker\":2}\n",
            "{\"kind\":\"solve\",\"port\":\"a\",\"wall_ns\":12,\"queue_ns\":4,\"steals\":1}\n",
        );
        let canon = canonicalize_jsonl(raw).unwrap();
        assert_eq!(
            canon,
            "{\"kind\":\"solve\",\"port\":\"a\"}\n{\"kind\":\"solve\",\"port\":\"b\"}\n"
        );
    }

    #[test]
    fn span_set_ignores_order_and_timing() {
        let a = concat!(
            "{\"kind\":\"instruction\",\"port\":\"p\",\"instr\":\"i1\",\"wall_ns\":5}\n",
            "{\"kind\":\"solve\",\"port\":\"p\",\"instr\":\"i1\",\"label\":\"violation\"}\n",
            "{\"kind\":\"unroll\",\"label\":\"extend\"}\n",
        );
        let b = concat!(
            "{\"kind\":\"solve\",\"port\":\"p\",\"instr\":\"i1\",\"label\":\"violation\",\"worker\":3}\n",
            "{\"kind\":\"instruction\",\"port\":\"p\",\"instr\":\"i1\",\"wall_ns\":9}\n",
        );
        assert_eq!(span_set(a).unwrap(), span_set(b).unwrap());
    }

    #[test]
    fn robustness_span_kinds_have_stable_names() {
        assert_eq!(SpanKind::BudgetExhausted.as_str(), "budget_exhausted");
        assert_eq!(SpanKind::Retry.as_str(), "retry");
        assert_eq!(SpanKind::Panic.as_str(), "panic");
        let e = Event::new(SpanKind::Retry)
            .port("p")
            .instruction("i")
            .field("attempt", 2)
            .field("conflict_budget", 4000);
        assert_eq!(
            e.to_json_line(),
            r#"{"kind":"retry","port":"p","instr":"i","attempt":2,"conflict_budget":4000}"#
        );
    }

    #[test]
    fn robustness_counters_merge_and_serialize() {
        let a = Telemetry {
            unknown: 1,
            retries: 2,
            budget_spent_conflicts: 100,
            ..Default::default()
        };
        let b = Telemetry {
            unknown: 1,
            panicked: 1,
            retries: 1,
            budget_spent_conflicts: 50,
            ..Default::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.unknown, 2);
        assert_eq!(m.panicked, 1);
        assert_eq!(m.retries, 3);
        assert_eq!(m.budget_spent_conflicts, 150);
        let j = m.to_json();
        assert_eq!(j.get("unknown").and_then(Value::as_u64), Some(2));
        assert_eq!(j.get("panicked").and_then(Value::as_u64), Some(1));
        assert_eq!(j.get("retries").and_then(Value::as_u64), Some(3));
        assert_eq!(
            j.get("budget_spent_conflicts").and_then(Value::as_u64),
            Some(150)
        );
    }

    #[test]
    fn preprocessing_span_kinds_and_counters() {
        assert_eq!(SpanKind::Coi.as_str(), "coi");
        assert_eq!(SpanKind::Inprocess.as_str(), "inprocess");
        let e = Event::new(SpanKind::Coi)
            .port("p")
            .field("states_dropped", 4)
            .field("inputs_dropped", 2);
        assert_eq!(
            e.to_json_line(),
            r#"{"kind":"coi","port":"p","states_dropped":4,"inputs_dropped":2}"#
        );
        let a = Telemetry {
            coi_states_dropped: 4,
            inprocess_clauses_removed: 10,
            ..Default::default()
        };
        let b = Telemetry {
            coi_states_dropped: 1,
            coi_inputs_dropped: 2,
            inprocess_lits_removed: 3,
            inprocess_failed_literals: 1,
            ..Default::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.coi_states_dropped, 5);
        assert_eq!(m.coi_inputs_dropped, 2);
        assert_eq!(m.inprocess_clauses_removed, 10);
        assert_eq!(m.inprocess_lits_removed, 3);
        let j = m.to_json();
        assert_eq!(j.get("coi_states_dropped").and_then(Value::as_u64), Some(5));
        assert_eq!(
            j.get("inprocess_failed_literals").and_then(Value::as_u64),
            Some(1)
        );
    }

    #[test]
    fn telemetry_merge_sums_counters_takes_max_workers() {
        let a = Telemetry {
            instructions: 2,
            decisions: 10,
            workers: 1,
            ..Default::default()
        };
        let b = Telemetry {
            instructions: 3,
            decisions: 5,
            workers: 4,
            ..Default::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.instructions, 5);
        assert_eq!(m.decisions, 15);
        assert_eq!(m.workers, 4);
    }
}
