//! VCD (value change dump) export of counterexample traces, so
//! refinement failures can be inspected in a standard waveform viewer
//! (GTKWave, Surfer, ...).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use gila_expr::Value;

use crate::engine::RefinementCex;

/// One VCD signal: its short identifier code and width.
struct VcdVar {
    code: String,
    width: u32,
}

fn id_code(index: usize) -> String {
    // Printable-ASCII identifier codes, base 94 starting at '!'.
    let mut n = index;
    let mut code = String::new();
    loop {
        code.push((b'!' + (n % 94) as u8) as char);
        n /= 94;
        if n == 0 {
            break;
        }
    }
    code
}

fn value_bits(v: &Value) -> Option<(String, u32)> {
    match v {
        Value::Bool(b) => Some((if *b { "1" } else { "0" }.to_string(), 1)),
        Value::Bv(x) => Some((format!("{x:b}"), x.width())),
        // Memories have no straightforward VCD representation; they are
        // skipped (a comment in the header records this).
        Value::Mem(_) => None,
    }
}

/// Renders a counterexample as VCD text. Inputs appear under the scope
/// `inputs`, state elements under `state`; one timescale unit per clock
/// cycle. Memory-sorted states are omitted (noted in a `$comment`).
///
/// # Examples
///
/// ```no_run
/// use gila_verify::{cex_to_vcd, CheckResult};
/// # fn get_result() -> CheckResult { unimplemented!() }
/// let result = get_result();
/// if let CheckResult::CounterExample(cex) = result {
///     std::fs::write("failure.vcd", cex_to_vcd(&cex, "axi_slave"))?;
/// }
/// # Ok::<(), std::io::Error>(())
/// ```
pub fn cex_to_vcd(cex: &RefinementCex, module_name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "$date gila refinement counterexample $end");
    let _ = writeln!(out, "$version gila-verify $end");
    let _ = writeln!(out, "$timescale 1ns $end");
    let _ = writeln!(out, "$scope module {module_name} $end");

    let mut vars: BTreeMap<(&str, String), VcdVar> = BTreeMap::new();
    let mut next_index = 0usize;
    let mut skipped_mems: Vec<String> = Vec::new();

    // Declare inputs.
    let _ = writeln!(out, "$scope module inputs $end");
    if let Some(first) = cex.rtl_inputs.first() {
        for (name, v) in first {
            if let Some((_, width)) = value_bits(v) {
                let code = id_code(next_index);
                next_index += 1;
                let _ = writeln!(out, "$var wire {width} {code} {name} $end");
                vars.insert(
                    ("in", name.clone()),
                    VcdVar {
                        code,
                        width,
                    },
                );
            }
        }
    }
    let _ = writeln!(out, "$upscope $end");

    // Declare state elements.
    let _ = writeln!(out, "$scope module state $end");
    if let Some(first) = cex.rtl_trace.first() {
        for (name, v) in first {
            match value_bits(v) {
                Some((_, width)) => {
                    let code = id_code(next_index);
                    next_index += 1;
                    let _ = writeln!(out, "$var reg {width} {code} {name} $end");
                    vars.insert(
                        ("st", name.clone()),
                        VcdVar {
                            code,
                            width,
                        },
                    );
                }
                None => skipped_mems.push(name.clone()),
            }
        }
    }
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$upscope $end");
    if !skipped_mems.is_empty() {
        let _ = writeln!(
            out,
            "$comment memory-sorted states omitted: {} $end",
            skipped_mems.join(", ")
        );
    }
    let _ = writeln!(out, "$enddefinitions $end");

    let emit = |out: &mut String, var: &VcdVar, v: &Value| {
        if let Some((bits, _)) = value_bits(v) {
            if var.width == 1 {
                let _ = writeln!(out, "{bits}{}", var.code);
            } else {
                let _ = writeln!(out, "b{bits} {}", var.code);
            }
        }
    };

    for cycle in 0..=cex.finish_cycle {
        let _ = writeln!(out, "#{cycle}");
        if cycle == 0 {
            let _ = writeln!(out, "$dumpvars");
        }
        if let Some(states) = cex.rtl_trace.get(cycle) {
            for (name, v) in states {
                if let Some(var) = vars.get(&("st", name.clone())) {
                    emit(&mut out, var, v);
                }
            }
        }
        if let Some(inputs) = cex.rtl_inputs.get(cycle) {
            for (name, v) in inputs {
                if let Some(var) = vars.get(&("in", name.clone())) {
                    emit(&mut out, var, v);
                }
            }
        }
        if cycle == 0 {
            let _ = writeln!(out, "$end");
        }
    }
    let _ = writeln!(out, "#{}", cex.finish_cycle + 1);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{verify_port, CheckResult, VerifyOptions};
    use crate::refmap::RefinementMap;
    use gila_core::{PortIla, StateKind};
    use gila_expr::Sort;
    use gila_rtl::parse_verilog;

    fn buggy_cex() -> Box<RefinementCex> {
        let mut p = PortIla::new("c");
        let en = p.input("en", Sort::Bv(1));
        let cnt = p.state("cnt", Sort::Bv(4), StateKind::Output);
        let d = p.ctx_mut().eq_u64(en, 1);
        let one = p.ctx_mut().bv_u64(1, 4);
        let nx = p.ctx_mut().bvadd(cnt, one);
        p.instr("inc").decode(d).update("cnt", nx).add().unwrap();
        let d = p.ctx_mut().eq_u64(en, 0);
        p.instr("hold").decode(d).add().unwrap();
        let rtl = parse_verilog(
            r#"
module c(clk, en_in);
  input clk; input en_in;
  reg [3:0] count;
  always @(posedge clk) if (en_in) count <= count + 4'd2;
endmodule
"#,
        )
        .unwrap();
        let mut map = RefinementMap::new("c");
        map.map_state("cnt", "count");
        map.map_input("en", "en_in");
        let report = verify_port(&p, &rtl, &map, &VerifyOptions::default()).unwrap();
        let v = report.first_counterexample().unwrap();
        let CheckResult::CounterExample(cex) = &v.result else {
            panic!()
        };
        cex.clone()
    }

    #[test]
    fn vcd_has_standard_structure() {
        let cex = buggy_cex();
        let vcd = cex_to_vcd(&cex, "counter");
        assert!(vcd.contains("$timescale 1ns $end"));
        assert!(vcd.contains("$scope module counter $end"));
        assert!(vcd.contains("$var reg 4"));
        assert!(vcd.contains("count $end"));
        assert!(vcd.contains("$var wire 1"));
        assert!(vcd.contains("en_in $end"));
        assert!(vcd.contains("$enddefinitions $end"));
        assert!(vcd.contains("$dumpvars"));
        assert!(vcd.contains("#0"));
        assert!(vcd.contains("#1"));
        // Multi-bit values use the b<bits> <code> form.
        assert!(vcd.lines().any(|l| l.starts_with('b')));
    }

    #[test]
    fn trace_values_match_the_counterexample() {
        let cex = buggy_cex();
        let vcd = cex_to_vcd(&cex, "counter");
        let start = cex.rtl_start_state["count"].as_bv();
        let needle = format!("b{start:b} ");
        assert!(
            vcd.contains(&needle),
            "start value {start} missing from VCD:\n{vcd}"
        );
        assert_eq!(cex.rtl_trace.len(), cex.finish_cycle + 1);
        assert_eq!(&cex.rtl_trace[0], &cex.rtl_start_state);
        assert_eq!(
            &cex.rtl_trace[cex.finish_cycle],
            &cex.rtl_finish_state
        );
    }

    #[test]
    fn id_codes_are_printable_and_unique() {
        let codes: Vec<String> = (0..200).map(id_code).collect();
        for c in &codes {
            assert!(c.chars().all(|ch| ('!'..='~').contains(&ch)));
        }
        let unique: std::collections::HashSet<_> = codes.iter().collect();
        assert_eq!(unique.len(), codes.len());
    }
}
