//! ILA-to-RTL synthesis: generating a reference implementation directly
//! from a port-ILA.
//!
//! The paper verifies hand-written RTL against ILA specifications; a
//! natural extension (and a useful oracle for this platform) is the
//! reverse direction: *synthesize* an RTL module whose every register
//! implements its state's combined next-state function
//!
//! ```text
//! s' = ite(D_0, N_0(s), ite(D_1, N_1(s), ... , s))
//! ```
//!
//! The synthesized module is correct by construction, which the test
//! suite confirms by running the refinement check against it with an
//! identity refinement map — for every case-study design.

use std::collections::HashMap;
use std::fmt;

use gila_core::{ModuleIla, PortIla};
use gila_expr::{import, ExprRef, Sort};
use gila_rtl::RtlModule;

use crate::refmap::RefinementMap;

/// An error during synthesis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SynthError {
    /// RTL pins and registers are bit-vectors; boolean-sorted ILA
    /// states/inputs are not representable (model them as `Bv(1)`).
    BoolNotRepresentable {
        /// The offending state or input.
        name: String,
    },
    /// Memory-sorted *inputs* have no RTL pin equivalent.
    MemInput {
        /// The offending input.
        name: String,
    },
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::BoolNotRepresentable { name } => write!(
                f,
                "{name:?} is boolean-sorted; use Bv(1) for synthesizable models"
            ),
            SynthError::MemInput { name } => {
                write!(f, "input {name:?} is memory-sorted and cannot become a pin")
            }
        }
    }
}

impl std::error::Error for SynthError {}

/// Synthesizes an RTL module implementing `port`: one register (or
/// memory) per architectural state, driven by the decode-selected
/// next-state function; instructions are prioritized in declaration
/// order (irrelevant when the decodes are disjoint, which
/// [`gila_core::decode_overlaps`] can confirm).
///
/// State and input names carry over unchanged, so
/// [`identity_refmap`] connects the two for refinement checking.
///
/// # Errors
///
/// See [`SynthError`].
pub fn synthesize_port(port: &PortIla) -> Result<RtlModule, SynthError> {
    let mut rtl = RtlModule::new(format!("{}_synth", port.name()));
    // Declare pins and state elements with the ILA's names.
    for i in port.inputs() {
        match i.sort {
            Sort::Bv(w) => {
                rtl.input(i.name.clone(), w);
            }
            Sort::Bool => {
                return Err(SynthError::BoolNotRepresentable {
                    name: i.name.clone(),
                })
            }
            Sort::Mem { .. } => {
                return Err(SynthError::MemInput {
                    name: i.name.clone(),
                })
            }
        }
    }
    for s in port.states() {
        match s.sort {
            Sort::Bv(w) => {
                let init = s.init.as_ref().map(|v| v.as_bv().to_u64());
                rtl.reg(s.name.clone(), w, init);
            }
            Sort::Mem {
                addr_width,
                data_width,
            } => {
                rtl.mem(s.name.clone(), addr_width, data_width);
            }
            Sort::Bool => {
                return Err(SynthError::BoolNotRepresentable {
                    name: s.name.clone(),
                })
            }
        }
    }
    // Import all decodes once (shared memo keeps the DAG shared).
    let mut memo: HashMap<ExprRef, ExprRef> = HashMap::new();
    let decodes: Vec<ExprRef> = port
        .instructions()
        .iter()
        .map(|i| import(rtl.ctx_mut(), port.ctx(), i.decode, &mut memo))
        .collect();
    // Per state: fold instructions (last = lowest priority) into an
    // if-then-else chain over the decodes.
    for s in port.states() {
        let hold = rtl
            .ctx()
            .find_var(&s.name)
            .expect("state declared above");
        let mut next = hold;
        for (idx, instr) in port.instructions().iter().enumerate().rev() {
            if let Some(&upd) = instr.updates.get(&s.name) {
                let upd = import(rtl.ctx_mut(), port.ctx(), upd, &mut memo);
                next = rtl.ctx_mut().ite(decodes[idx], upd, next);
            }
        }
        rtl.set_next(&s.name, next).expect("sorts carry over");
    }
    rtl.validate().expect("synthesized module is closed");
    Ok(rtl)
}

/// The identity refinement map for a synthesized module: every ILA
/// state and input maps to the RTL element of the same name, and every
/// instruction finishes in one cycle.
pub fn identity_refmap(port: &PortIla) -> RefinementMap {
    let mut m = RefinementMap::new(port.name());
    for s in port.states() {
        m.map_state(s.name.clone(), s.name.clone());
    }
    for i in port.inputs() {
        m.map_input(i.name.clone(), i.name.clone());
    }
    m
}

/// Identity refinement maps for a whole synthesized module: like
/// [`identity_refmap`] per port, but states a port merely *reads* while
/// another port drives them (read-only sharing) are marked as
/// pre-state-only — simultaneous traffic on the owning port may
/// legitimately change them during this port's instruction.
pub fn identity_refmaps(module: &ModuleIla) -> Vec<RefinementMap> {
    module
        .ports()
        .iter()
        .map(|port| {
            let mut m = identity_refmap(port);
            for s in port.states() {
                let updated_here = port
                    .instructions()
                    .iter()
                    .any(|i| i.updates.contains_key(&s.name));
                if updated_here {
                    continue;
                }
                let updated_elsewhere = module.ports().iter().any(|q| {
                    q.name() != port.name()
                        && q.instructions()
                            .iter()
                            .any(|i| i.updates.contains_key(&s.name))
                });
                if updated_elsewhere {
                    m.mark_unchecked(s.name.clone());
                }
            }
            m
        })
        .collect()
}

/// Synthesizes every port of a module-ILA into one RTL module.
///
/// Shared (read-only) states across ports are declared once; the
/// declaring port's next-state chain drives them.
///
/// # Errors
///
/// See [`SynthError`].
pub fn synthesize_module(module: &ModuleIla) -> Result<RtlModule, SynthError> {
    let mut rtl = RtlModule::new(format!("{}_synth", module.name()));
    // Declarations (dedup across ports by name).
    for port in module.ports() {
        for i in port.inputs() {
            if rtl.find_input(&i.name).is_some() {
                continue;
            }
            match i.sort {
                Sort::Bv(w) => {
                    rtl.input(i.name.clone(), w);
                }
                Sort::Bool => {
                    return Err(SynthError::BoolNotRepresentable {
                        name: i.name.clone(),
                    })
                }
                Sort::Mem { .. } => {
                    return Err(SynthError::MemInput {
                        name: i.name.clone(),
                    })
                }
            }
        }
        for s in port.states() {
            if rtl.find_reg(&s.name).is_some() || rtl.find_mem(&s.name).is_some() {
                continue;
            }
            match s.sort {
                Sort::Bv(w) => {
                    let init = s.init.as_ref().map(|v| v.as_bv().to_u64());
                    rtl.reg(s.name.clone(), w, init);
                }
                Sort::Mem {
                    addr_width,
                    data_width,
                } => {
                    rtl.mem(s.name.clone(), addr_width, data_width);
                }
                Sort::Bool => {
                    return Err(SynthError::BoolNotRepresentable {
                        name: s.name.clone(),
                    })
                }
            }
        }
    }
    // Next-state logic: the port that *updates* a state drives it.
    for port in module.ports() {
        let mut memo: HashMap<ExprRef, ExprRef> = HashMap::new();
        let decodes: Vec<ExprRef> = port
            .instructions()
            .iter()
            .map(|i| import(rtl.ctx_mut(), port.ctx(), i.decode, &mut memo))
            .collect();
        for s in port.states() {
            let updated_here = port
                .instructions()
                .iter()
                .any(|i| i.updates.contains_key(&s.name));
            if !updated_here {
                continue;
            }
            let hold = rtl.ctx().find_var(&s.name).expect("declared above");
            let mut next = hold;
            for (idx, instr) in port.instructions().iter().enumerate().rev() {
                if let Some(&upd) = instr.updates.get(&s.name) {
                    let upd = import(rtl.ctx_mut(), port.ctx(), upd, &mut memo);
                    next = rtl.ctx_mut().ite(decodes[idx], upd, next);
                }
            }
            rtl.set_next(&s.name, next).expect("sorts carry over");
        }
    }
    rtl.validate().expect("synthesized module is closed");
    Ok(rtl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{verify_port, VerifyOptions};
    use gila_core::StateKind;
    use gila_rtl::RtlSimulator;

    fn counter_port() -> PortIla {
        let mut p = PortIla::new("counter");
        let en = p.input("en", Sort::Bv(1));
        let cnt = p.state("cnt", Sort::Bv(8), StateKind::Output);
        let d = p.ctx_mut().eq_u64(en, 1);
        let one = p.ctx_mut().bv_u64(1, 8);
        let nx = p.ctx_mut().bvadd(cnt, one);
        p.instr("inc").decode(d).update("cnt", nx).add().unwrap();
        let d = p.ctx_mut().eq_u64(en, 0);
        p.instr("hold").decode(d).add().unwrap();
        p.set_init("cnt", gila_expr::BitVecValue::from_u64(0, 8))
            .unwrap();
        p
    }

    #[test]
    fn synthesized_counter_simulates_correctly() {
        let port = counter_port();
        let rtl = synthesize_port(&port).unwrap();
        assert_eq!(rtl.name(), "counter_synth");
        let mut sim = RtlSimulator::new(&rtl);
        let mut ins = std::collections::BTreeMap::new();
        ins.insert("en".to_string(), gila_expr::BitVecValue::from_u64(1, 1));
        for _ in 0..5 {
            sim.step(&ins).unwrap();
        }
        assert_eq!(sim.state()["cnt"].as_bv().to_u64(), 5);
        ins.insert("en".to_string(), gila_expr::BitVecValue::from_u64(0, 1));
        sim.step(&ins).unwrap();
        assert_eq!(sim.state()["cnt"].as_bv().to_u64(), 5);
    }

    #[test]
    fn synthesized_counter_verifies_with_identity_map() {
        let port = counter_port();
        let rtl = synthesize_port(&port).unwrap();
        let map = identity_refmap(&port);
        let report = verify_port(&port, &rtl, &map, &VerifyOptions::default()).unwrap();
        assert!(report.all_hold(), "{report:#?}");
    }

    #[test]
    fn memory_states_synthesize() {
        let mut p = PortIla::new("scratch");
        let we = p.input("we", Sort::Bv(1));
        let addr = p.input("addr", Sort::Bv(4));
        let din = p.input("din", Sort::Bv(8));
        let mem = p.state(
            "mem",
            Sort::Mem {
                addr_width: 4,
                data_width: 8,
            },
            StateKind::Internal,
        );
        let d = p.ctx_mut().eq_u64(we, 1);
        let w = p.ctx_mut().mem_write(mem, addr, din);
        p.instr("write").decode(d).update("mem", w).add().unwrap();
        let d = p.ctx_mut().eq_u64(we, 0);
        p.instr("idle").decode(d).add().unwrap();

        let rtl = synthesize_port(&p).unwrap();
        assert_eq!(rtl.mems().len(), 1);
        let map = identity_refmap(&p);
        let report = verify_port(&p, &rtl, &map, &VerifyOptions::default()).unwrap();
        assert!(report.all_hold(), "{report:#?}");
    }

    #[test]
    fn bool_states_rejected() {
        let mut p = PortIla::new("b");
        p.input("x", Sort::Bv(1));
        p.state("flag", Sort::Bool, StateKind::Internal);
        let d = p.ctx_mut().tt();
        p.instr("nop").decode(d).add().unwrap();
        assert!(matches!(
            synthesize_port(&p).unwrap_err(),
            SynthError::BoolNotRepresentable { .. }
        ));
    }
}
