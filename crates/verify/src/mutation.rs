//! Mutation testing for property-set completeness.
//!
//! The paper's central claim is that checking one property per
//! instruction yields a *complete* functional specification. This module
//! provides the standard empirical probe of that claim: systematically
//! corrupt the implementation (one state element at a time) and confirm
//! the property set kills every mutant.

use std::fmt;

use gila_expr::ExprRef;
use gila_rtl::RtlModule;

/// A systematic single-point mutation of a register's next-state
/// function.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// `next' = next + 1` — an off-by-one in the update logic.
    IncrementNext,
    /// `next' = ~next` — inverted update logic.
    InvertNext,
    /// `next' = reg` — the register never updates (a lost enable).
    StuckAtHold,
}

impl Mutation {
    /// All mutation kinds.
    pub fn all() -> [Mutation; 3] {
        [
            Mutation::IncrementNext,
            Mutation::InvertNext,
            Mutation::StuckAtHold,
        ]
    }
}

impl fmt::Display for Mutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mutation::IncrementNext => write!(f, "next+1"),
            Mutation::InvertNext => write!(f, "~next"),
            Mutation::StuckAtHold => write!(f, "stuck-at-hold"),
        }
    }
}

/// An error applying a mutation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MutateError {
    message: String,
}

impl fmt::Display for MutateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot mutate: {}", self.message)
    }
}

impl std::error::Error for MutateError {}

/// Returns a copy of `rtl` with `mutation` applied to the named
/// register's next-state function.
///
/// # Errors
///
/// Returns an error for unknown registers (memories are not mutated;
/// corrupt their write data via a register feeding them instead).
pub fn mutate_register(
    rtl: &RtlModule,
    reg: &str,
    mutation: Mutation,
) -> Result<RtlModule, MutateError> {
    let r = rtl.find_reg(reg).ok_or_else(|| MutateError {
        message: format!("no register named {reg:?}"),
    })?;
    let (next, var, width) = (r.next, r.var, r.width);
    let mut out = rtl.clone();
    let mutated: ExprRef = match mutation {
        Mutation::IncrementNext => {
            let one = out.ctx_mut().bv_u64(1, width);
            out.ctx_mut().bvadd(next, one)
        }
        Mutation::InvertNext => out.ctx_mut().bvnot(next),
        Mutation::StuckAtHold => var,
    };
    out.set_next(reg, mutated).expect("same width");
    Ok(out)
}

/// The result of a mutation campaign over one design.
#[derive(Clone, Debug, Default)]
pub struct MutationReport {
    /// Mutants whose verification failed (the property set caught them).
    pub killed: Vec<(String, Mutation)>,
    /// Mutants that verified — either an equivalent mutant or a genuine
    /// hole in the property set.
    pub survived: Vec<(String, Mutation)>,
}

impl MutationReport {
    /// Kill ratio in [0, 1].
    pub fn kill_ratio(&self) -> f64 {
        let total = self.killed.len() + self.survived.len();
        if total == 0 {
            return 1.0;
        }
        self.killed.len() as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gila_rtl::parse_verilog;

    #[test]
    fn mutations_change_behaviour() {
        use gila_rtl::RtlSimulator;
        let rtl = parse_verilog(
            r#"
module c(clk, en);
  input clk; input en;
  reg [3:0] cnt;
  always @(posedge clk) if (en) cnt <= cnt + 4'd1;
endmodule
"#,
        )
        .unwrap();
        let mut ins = std::collections::BTreeMap::new();
        ins.insert("clk".to_string(), gila_expr::BitVecValue::from_u64(1, 1));
        ins.insert("en".to_string(), gila_expr::BitVecValue::from_u64(1, 1));
        for (mutation, expected) in [
            (Mutation::IncrementNext, 2u64),
            (Mutation::InvertNext, 0b1110),
            (Mutation::StuckAtHold, 0),
        ] {
            let m = mutate_register(&rtl, "cnt", mutation).unwrap();
            let mut sim = RtlSimulator::new(&m);
            sim.step(&ins).unwrap();
            assert_eq!(
                sim.state()["cnt"].as_bv().to_u64(),
                expected,
                "{mutation}"
            );
        }
        assert!(mutate_register(&rtl, "ghost", Mutation::InvertNext).is_err());
    }
}
