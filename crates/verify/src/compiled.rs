//! Compiled co-simulation: lockstep tape execution.
//!
//! [`crate::cosimulate`] interprets both models, re-walking expression
//! DAGs every cycle. This module lowers the port-ILA and the RTL module
//! once into straight-line tapes (`gila-sim-compile`) and then runs the
//! same co-simulation contract as tight tape loops — the backend behind
//! `gila hunt` and the benchmark's `cosim_cycles_per_s_compiled` column.
//!
//! Three entry points:
//!
//! - [`cosimulate_compiled`] — the drop-in fast counterpart of
//!   [`crate::cosimulate`]. Same start-state distribution and error
//!   contract, but its own (word-granularity) stimulus stream: seeds are
//!   not bit-compatible with the interpreter's.
//! - [`replay_compiled`] — deterministic re-execution of a recorded
//!   start state + command stream (what [`crate::Divergence`] carries),
//!   used by the shrinker and `gila hunt --replay`.
//! - [`cosim_differential`] — drives the interpreter and the compiled
//!   backend from one shared stimulus stream and cross-checks fired
//!   instructions and full states every cycle; the soundness harness for
//!   the compiled backend.

use std::collections::BTreeMap;

use gila_core::{PortIla, PortSimulator, SimError};
use gila_expr::{BitVecValue, Sort, Value};
use gila_rtl::{RtlModule, RtlSimError, RtlSimulator};
use gila_sim_compile::{CompiledPortSim, CompiledRtlSim, Fired};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::cosim::{default_value, random_bv, random_value, CosimError, Divergence};
use crate::refmap::RefinementMap;

fn mask_of(w: u32) -> u64 {
    if w >= 64 {
        u64::MAX
    } else {
        (1u64 << w) - 1
    }
}

/// How one mapped state pair is compared after each cycle. Sorts are
/// checked equal at setup (mirroring the interpreter's `SortMismatch`),
/// so comparison reduces to same-bank register reads.
#[derive(Clone, Copy, Debug)]
enum CompareKind {
    Word,
    Wide,
    Mem,
}

#[derive(Clone, Debug)]
struct MappedState {
    /// ILA state name (= comparison/reporting key).
    name: String,
    /// Index into `port.states()`.
    ila_idx: usize,
    /// Index into the compiled RTL signal list.
    sig_idx: usize,
    kind: CompareKind,
    unchecked: bool,
}

/// One cycle of RTL pin stimulus in tape-friendly form: raw words for
/// pins of width `<= 64` (indexed by pin position), materialized values
/// for wider pins.
#[derive(Clone, Debug)]
pub(crate) struct CycleInputs {
    pub(crate) words: Vec<u64>,
    pub(crate) wides: Vec<(usize, BitVecValue)>,
}

/// A compiled ILA+RTL pair wired up for co-simulation: both tapes, the
/// mapped-state comparison plan, and the input correspondence.
pub(crate) struct CompiledCosim<'a> {
    ila: CompiledPortSim<'a>,
    rtl: CompiledRtlSim<'a>,
    /// In `state_map` (name-sorted) order — the interpreter's comparison
    /// and reporting order.
    mapped: Vec<MappedState>,
    /// `(ILA input index, RTL pin index)` in `port.inputs()` order.
    input_pairs: Vec<(usize, usize)>,
    pin_names: Vec<String>,
    pin_widths: Vec<u32>,
    any_unchecked: bool,
    /// `(name, sort)` of every RTL state element, in name order — the
    /// interpreter's start-state randomization walk.
    state_sorts: Vec<(String, Sort)>,
    /// Instruction index committed by the latest `step_stream`.
    last_fired: usize,
}

impl<'a> CompiledCosim<'a> {
    /// Compiles both sides and validates the map with the interpreter's
    /// error contract (same variants, same discovery order).
    pub(crate) fn new(
        port: &'a PortIla,
        rtl: &'a RtlModule,
        map: &'a RefinementMap,
    ) -> Result<Self, CosimError> {
        let signals: Vec<String> = map.state_map.values().cloned().collect();
        let mut rtl_sim = CompiledRtlSim::new(rtl, &signals).map_err(|e| match e {
            RtlSimError::UnknownSignal { name } => CosimError::UnknownRtlSignal(name),
            other => unreachable!("compile reports only unknown signals: {other}"),
        })?;
        // The co-simulation loop always pairs eval with commit before
        // reading states or signals, so state moves are safe here.
        rtl_sim.enable_state_moves();
        let ila_sim = CompiledPortSim::new(port);

        let state_index: BTreeMap<&str, usize> = port
            .states()
            .iter()
            .enumerate()
            .map(|(i, s)| (s.name.as_str(), i))
            .collect();
        let mut mapped = Vec::new();
        for (sig_idx, ila_name) in map.state_map.keys().enumerate() {
            let unchecked = map.unchecked_states.contains(ila_name);
            let Some(&ila_idx) = state_index.get(ila_name.as_str()) else {
                // The interpreter silently re-anchors (and then ignores)
                // unchecked states the port doesn't declare.
                assert!(
                    unchecked,
                    "refinement map names unknown ILA state {ila_name:?}"
                );
                continue;
            };
            let kind = match port.states()[ila_idx].sort {
                Sort::Bool => CompareKind::Word,
                Sort::Bv(w) if w <= 64 => CompareKind::Word,
                Sort::Bv(_) => CompareKind::Wide,
                Sort::Mem { .. } => CompareKind::Mem,
            };
            mapped.push(MappedState {
                name: ila_name.clone(),
                ila_idx,
                sig_idx,
                kind,
                unchecked,
            });
        }
        // Interpreter parity: a mapped RTL value whose sort differs from
        // the ILA state is rejected by `PortSimulator::with_state` at
        // cycle 0, scanning states in declaration order.
        let mut by_decl: Vec<&MappedState> = mapped.iter().collect();
        by_decl.sort_by_key(|m| m.ila_idx);
        for m in by_decl {
            let expected = port.states()[m.ila_idx].sort;
            let found = rtl_sim.program().slot_sort(rtl_sim.signal_slot(m.sig_idx));
            if expected != found {
                return Err(CosimError::Sim(SimError::SortMismatch {
                    name: m.name.clone(),
                    expected,
                    found,
                }));
            }
        }

        let mut input_pairs = Vec::new();
        for (idx, i) in port.inputs().iter().enumerate() {
            let rtl_name = map
                .interface_map
                .get(&i.name)
                .ok_or_else(|| CosimError::UnmappedInput(i.name.clone()))?;
            let pin_idx = rtl
                .inputs()
                .iter()
                .position(|p| p.name == *rtl_name)
                .ok_or_else(|| CosimError::UnknownRtlSignal(rtl_name.clone()))?;
            input_pairs.push((idx, pin_idx));
        }
        // Interpreter parity: pin-width values that don't match the ILA
        // input's sort fail `PortSimulator::step` on the first attempt.
        for &(ila_idx, pin_idx) in &input_pairs {
            let i = &port.inputs()[ila_idx];
            let found = Sort::Bv(rtl.inputs()[pin_idx].width);
            if i.sort != found {
                return Err(CosimError::Sim(SimError::SortMismatch {
                    name: i.name.clone(),
                    expected: i.sort,
                    found,
                }));
            }
        }

        let pin_names = rtl.inputs().iter().map(|p| p.name.clone()).collect();
        let pin_widths: Vec<u32> = rtl.inputs().iter().map(|p| p.width).collect();
        let any_unchecked = mapped.iter().any(|m| m.unchecked);
        let state_sorts = rtl_sim
            .state()
            .iter()
            .map(|(n, v)| (n.clone(), v.sort()))
            .collect();
        Ok(CompiledCosim {
            ila: ila_sim,
            rtl: rtl_sim,
            mapped,
            input_pairs,
            pin_names,
            pin_widths,
            any_unchecked,
            state_sorts,
            last_fired: 0,
        })
    }

    /// Combined tape length of both sides (for statistics).
    pub(crate) fn tape_len(&self) -> usize {
        self.ila.program().len() + self.rtl.program().len()
    }

    /// The ILA state name of mapped comparison entry `m_i`.
    pub(crate) fn mapped_name(&self, m_i: usize) -> &str {
        &self.mapped[m_i].name
    }

    /// RTL pin widths, in `module.inputs()` order.
    pub(crate) fn pin_widths(&self) -> &[u32] {
        &self.pin_widths
    }

    fn zero_rtl_inputs(&mut self) {
        for idx in 0..self.pin_widths.len() {
            if self.rtl.input_is_word(idx) {
                self.rtl.set_input_word(idx, 0);
            } else {
                self.rtl
                    .set_input_bits(idx, &BitVecValue::zero(self.pin_widths[idx]));
            }
        }
    }

    /// Copies mapped RTL signal `m_i` (valid after an RTL eval) into the
    /// corresponding ILA state register.
    fn copy_signal_to_ila(&mut self, m_i: usize) {
        let (kind, sig_idx, ila_idx) = {
            let m = &self.mapped[m_i];
            (m.kind, m.sig_idx, m.ila_idx)
        };
        match kind {
            CompareKind::Word => {
                let x = self
                    .rtl
                    .program()
                    .read_word(self.rtl.tape(), self.rtl.signal_slot(sig_idx));
                self.ila.set_state_word(ila_idx, x);
            }
            CompareKind::Mem => {
                let src = self
                    .rtl
                    .program()
                    .read_mem(self.rtl.tape(), self.rtl.signal_slot(sig_idx));
                self.ila.copy_mem_state_from(ila_idx, src);
            }
            CompareKind::Wide => {
                let v = self.rtl.signal_value(sig_idx);
                self.ila.set_state_value(ila_idx, &v);
            }
        }
    }

    /// Seeds the ILA from the mapped RTL view under all-zero inputs
    /// (unmapped ILA states reset to zero, as in the interpreter).
    fn bootstrap(&mut self) {
        self.zero_rtl_inputs();
        self.rtl.eval_signals();
        for i in 0..self.ila.port().states().len() {
            let v = default_value(self.ila.port().states()[i].sort);
            self.ila.set_state_value(i, &v);
        }
        for m_i in 0..self.mapped.len() {
            self.copy_signal_to_ila(m_i);
        }
    }

    /// Re-anchors unchecked states from the RTL under all-zero inputs —
    /// the per-cycle prologue of the co-simulation contract.
    fn reanchor(&mut self) {
        if !self.any_unchecked {
            return;
        }
        self.zero_rtl_inputs();
        self.rtl.eval_signals();
        for m_i in 0..self.mapped.len() {
            if self.mapped[m_i].unchecked {
                self.copy_signal_to_ila(m_i);
            }
        }
    }

    /// Draws one cycle of stimulus at word granularity into a reusable
    /// buffer: one RNG word per pin of width `<= 64`, boundary-biased
    /// bits for wider pins. Rejected stimulus attempts then cost no
    /// allocation on the word path.
    fn draw_inputs_into(&self, rng: &mut impl Rng, ci: &mut CycleInputs) {
        ci.wides.clear();
        for (idx, &w) in self.pin_widths.iter().enumerate() {
            if w <= 64 {
                ci.words[idx] = rng.gen::<u64>() & mask_of(w);
            } else {
                ci.wides.push((idx, random_bv(rng, w)));
            }
        }
    }

    /// Encodes a named input vector (as `Divergence::inputs` carries)
    /// into tape form; absent pins drive zero.
    pub(crate) fn encode_inputs(&self, inputs: &BTreeMap<String, BitVecValue>) -> CycleInputs {
        let mut words = vec![0u64; self.pin_widths.len()];
        let mut wides = Vec::new();
        for (idx, name) in self.pin_names.iter().enumerate() {
            let w = self.pin_widths[idx];
            match inputs.get(name) {
                Some(v) if w <= 64 => words[idx] = v.to_u64() & mask_of(w),
                Some(v) => wides.push((idx, v.clone())),
                None if w > 64 => wides.push((idx, BitVecValue::zero(w))),
                None => {}
            }
        }
        CycleInputs { words, wides }
    }

    /// Materializes tape-form stimulus back into the named-vector form.
    fn materialize_inputs(&self, ci: &CycleInputs) -> BTreeMap<String, BitVecValue> {
        let mut out = BTreeMap::new();
        for (idx, name) in self.pin_names.iter().enumerate() {
            let w = self.pin_widths[idx];
            if w <= 64 {
                out.insert(name.clone(), BitVecValue::from_u64(ci.words[idx], w));
            }
        }
        for (idx, v) in &ci.wides {
            out.insert(self.pin_names[*idx].clone(), v.clone());
        }
        out
    }

    /// Applies one cycle of stimulus to the RTL pins and the mapped ILA
    /// inputs.
    fn apply_inputs(&mut self, ci: &CycleInputs) {
        self.apply_rtl_inputs(ci);
        self.apply_ila_inputs(ci);
    }

    /// Applies one cycle of stimulus to the RTL pins only.
    fn apply_rtl_inputs(&mut self, ci: &CycleInputs) {
        for (idx, &x) in ci.words.iter().enumerate() {
            if self.rtl.input_is_word(idx) {
                self.rtl.set_input_word(idx, x);
            }
        }
        for (idx, v) in &ci.wides {
            self.rtl.set_input_bits(*idx, v);
        }
    }

    /// Applies one cycle of stimulus to the mapped ILA inputs only —
    /// all a stimulus *attempt* needs, since decode never reads RTL
    /// pins. The RTL pins are bound once a command is accepted.
    fn apply_ila_inputs(&mut self, ci: &CycleInputs) {
        for &(ila_idx, pin_idx) in &self.input_pairs {
            if self.ila.input_is_word(ila_idx) {
                self.ila.set_input_word(ila_idx, ci.words[pin_idx]);
            } else {
                let v = ci
                    .wides
                    .iter()
                    .find(|(i, _)| *i == pin_idx)
                    .expect("wide pin recorded");
                self.ila.set_input_value(ila_idx, &Value::Bv(v.1.clone()));
            }
        }
    }

    /// Compares every checked mapped state pair; returns the index of
    /// the first (in name order) that disagrees.
    fn compare(&self) -> Option<usize> {
        for (m_i, m) in self.mapped.iter().enumerate() {
            if m.unchecked {
                continue;
            }
            let ila_slot = self.ila.state_slot(m.ila_idx);
            let rtl_slot = self.rtl.signal_slot(m.sig_idx);
            let eq = match m.kind {
                CompareKind::Word => {
                    self.ila.program().read_word(self.ila.tape(), ila_slot)
                        == self.rtl.program().read_word(self.rtl.tape(), rtl_slot)
                }
                CompareKind::Wide => {
                    self.ila.program().read_wide(self.ila.tape(), ila_slot)
                        == self.rtl.program().read_wide(self.rtl.tape(), rtl_slot)
                }
                CompareKind::Mem => {
                    self.ila.program().read_mem(self.ila.tape(), ila_slot)
                        == self.rtl.program().read_mem(self.rtl.tape(), rtl_slot)
                }
            };
            if !eq {
                return Some(m_i);
            }
        }
        None
    }

    /// Resets both sides to `start_state` (full RTL state by name; the
    /// ILA re-bootstraps from the mapped view).
    pub(crate) fn reset(&mut self, start_state: &BTreeMap<String, Value>) -> Result<(), CosimError> {
        for (name, v) in start_state {
            self.rtl
                .set_state(name, v.clone())
                .map_err(|_| CosimError::UnknownRtlSignal(name.clone()))?;
        }
        self.bootstrap();
        Ok(())
    }

    /// Executes one recorded cycle: re-anchor, decode-and-commit the ILA,
    /// clock the RTL, compare. `Ok(Some(i))` reports a divergence on
    /// mapped state `i`.
    pub(crate) fn step_stream(
        &mut self,
        cycle: usize,
        ci: &CycleInputs,
    ) -> Result<Option<usize>, CosimError> {
        self.reanchor();
        self.apply_inputs(ci);
        match self.ila.decode_only() {
            Fired::One(i) => {
                self.ila.commit(i);
                self.last_fired = i;
            }
            Fired::None => return Err(CosimError::NoDecodableCommand { cycle }),
            Fired::Multiple => {
                return Err(CosimError::Sim(SimError::MultipleInstructions {
                    port: self.ila.port().name().to_string(),
                    instructions: self.ila.fired_names(),
                }))
            }
        }
        self.rtl.eval();
        self.rtl.commit();
        // The comparison view needs only the mapped signals under the
        // new state; the next-state cones wait for the next full eval.
        self.rtl.eval_signals();
        Ok(self.compare())
    }

    /// One complete random co-simulation run from `seed`: random start
    /// state, up to `cycles` commands, first divergence (if any) plus
    /// the number of cycles actually executed.
    pub(crate) fn run_random(
        &mut self,
        seed: u64,
        cycles: usize,
    ) -> Result<(Option<Divergence>, usize), CosimError> {
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..self.state_sorts.len() {
            let (name, sort) = {
                let (n, s) = &self.state_sorts[i];
                (n.clone(), *s)
            };
            let v = random_value(&mut rng, sort);
            self.rtl.set_state(&name, v).expect("known state");
        }
        let start_state = self.rtl.state();
        self.bootstrap();

        let mut history: Vec<CycleInputs> = Vec::new();
        let mut scratch = CycleInputs {
            words: vec![0; self.pin_widths.len()],
            wides: Vec::new(),
        };
        for cycle in 0..cycles {
            self.reanchor();
            let mut accepted = false;
            for _attempt in 0..64 {
                self.draw_inputs_into(&mut rng, &mut scratch);
                self.apply_ila_inputs(&scratch);
                match self.ila.decode_only() {
                    Fired::One(i) => {
                        self.ila.commit(i);
                        self.last_fired = i;
                        accepted = true;
                        break;
                    }
                    Fired::None => continue,
                    Fired::Multiple => {
                        return Err(CosimError::Sim(SimError::MultipleInstructions {
                            port: self.ila.port().name().to_string(),
                            instructions: self.ila.fired_names(),
                        }))
                    }
                }
            }
            if !accepted {
                return Err(CosimError::NoDecodableCommand { cycle });
            }
            self.apply_rtl_inputs(&scratch);
            self.rtl.eval();
            self.rtl.commit();
            self.rtl.eval_signals();
            history.push(scratch.clone());
            if let Some(m_i) = self.compare() {
                let d = self.divergence(cycle, m_i, &history, start_state);
                return Ok((Some(d), cycle + 1));
            }
        }
        Ok((None, cycles))
    }

    /// Materializes a [`Divergence`] for mapped state `m_i` at `cycle`.
    pub(crate) fn divergence(
        &self,
        cycle: usize,
        m_i: usize,
        history: &[CycleInputs],
        start_state: BTreeMap<String, Value>,
    ) -> Divergence {
        let m = &self.mapped[m_i];
        Divergence {
            cycle,
            instruction: self.ila.port().instructions()[self.last_fired].name.clone(),
            state: m.name.clone(),
            ila_value: self
                .ila
                .program()
                .read(self.ila.tape(), self.ila.state_slot(m.ila_idx)),
            rtl_value: self.rtl.signal_value(m.sig_idx),
            inputs: history.iter().map(|ci| self.materialize_inputs(ci)).collect(),
            start_state,
        }
    }
}

/// Co-simulates `port` against `rtl` on the compiled tape backend:
/// `cycles` random commands from `seed`, starting from a random state.
///
/// The contract matches [`crate::cosimulate`] — same start-state
/// distribution, same re-anchoring of unchecked states, same errors,
/// `Ok(Some(_))` at the first mapped-state disagreement — but stimulus
/// is drawn at word granularity for speed, so a given seed produces a
/// different (equally random) command stream than the interpreter.
///
/// # Errors
///
/// See [`CosimError`].
pub fn cosimulate_compiled(
    port: &PortIla,
    rtl: &RtlModule,
    map: &RefinementMap,
    seed: u64,
    cycles: usize,
) -> Result<Option<Divergence>, CosimError> {
    let mut cs = CompiledCosim::new(port, rtl, map)?;
    cs.run_random(seed, cycles).map(|(d, _)| d)
}

/// Deterministically replays a recorded run — an RTL `start_state` plus
/// per-cycle input vectors, exactly what [`Divergence`] carries — on the
/// compiled backend, and reports the first divergence it reproduces.
///
/// # Errors
///
/// [`CosimError::NoDecodableCommand`] if some replayed cycle decodes no
/// instruction (streams edited by the shrinker can lose decodability);
/// otherwise as [`CosimError`].
pub fn replay_compiled(
    port: &PortIla,
    rtl: &RtlModule,
    map: &RefinementMap,
    start_state: &BTreeMap<String, Value>,
    inputs: &[BTreeMap<String, BitVecValue>],
) -> Result<Option<Divergence>, CosimError> {
    let mut cs = CompiledCosim::new(port, rtl, map)?;
    cs.reset(start_state)?;
    let mut history: Vec<CycleInputs> = Vec::new();
    for (cycle, vec) in inputs.iter().enumerate() {
        let ci = cs.encode_inputs(vec);
        let diverged = cs.step_stream(cycle, &ci)?;
        history.push(ci);
        if let Some(m_i) = diverged {
            return Ok(Some(cs.divergence(cycle, m_i, &history, start_state.clone())));
        }
    }
    Ok(None)
}

/// Drives the interpreter and the compiled backend from **one shared
/// stimulus stream** (the interpreter's distribution) and cross-checks
/// them cycle by cycle: same fired instruction, same full ILA state,
/// same full RTL state, same divergence verdict.
///
/// Returns `Ok(None)` if all `cycles` cycles ran clean, and
/// `Ok(Some(cycle))` if both backends agree a genuine ILA-vs-RTL
/// divergence occurred at `cycle` (on the same state).
///
/// # Errors
///
/// `Err(description)` on any disagreement *between the backends* — the
/// compiled tape failing to mirror the interpreter — or on a setup
/// error.
pub fn cosim_differential(
    port: &PortIla,
    rtl: &RtlModule,
    map: &RefinementMap,
    seed: u64,
    cycles: usize,
) -> Result<Option<usize>, String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rtl_sim = RtlSimulator::new(rtl);
    let mut cs = CompiledCosim::new(port, rtl, map).map_err(|e| format!("setup: {e}"))?;

    // Shared random start state.
    let state_names: Vec<String> = rtl_sim.state().keys().cloned().collect();
    for name in &state_names {
        let sort = rtl_sim.state()[name].sort();
        let v = random_value(&mut rng, sort);
        rtl_sim.set_state(name, v.clone()).expect("known state");
        cs.rtl.set_state(name, v).expect("known state");
    }

    let all_rtl_inputs: Vec<(String, u32)> = rtl
        .inputs()
        .iter()
        .map(|i| (i.name.clone(), i.width))
        .collect();
    let zero_inputs: BTreeMap<String, BitVecValue> = all_rtl_inputs
        .iter()
        .map(|(n, w)| (n.clone(), BitVecValue::zero(*w)))
        .collect();
    let read_state = |rtl_sim: &RtlSimulator,
                      inputs: &BTreeMap<String, BitVecValue>|
     -> Result<BTreeMap<String, Value>, String> {
        map.state_map
            .iter()
            .map(|(ila_state, rtl_signal)| {
                rtl_sim
                    .signal(rtl_signal, inputs)
                    .map(|v| (ila_state.clone(), v))
                    .map_err(|e| format!("signal {rtl_signal:?}: {e}"))
            })
            .collect()
    };

    // Interpreter bootstrap; the compiled side bootstraps itself.
    let start = read_state(&rtl_sim, &zero_inputs)?;
    let mut ila_state: BTreeMap<String, Value> = port
        .states()
        .iter()
        .map(|s| {
            let v = start
                .get(&s.name)
                .cloned()
                .unwrap_or_else(|| default_value(s.sort));
            (s.name.clone(), v)
        })
        .collect();
    cs.bootstrap();
    if cs.ila.state() != ila_state {
        return Err(format!(
            "bootstrap mismatch at seed {seed}: compiled {:?} vs interpreted {ila_state:?}",
            cs.ila.state()
        ));
    }

    for cycle in 0..cycles {
        // Interpreter re-anchor.
        for name in &map.unchecked_states {
            if let Some(rtl_signal) = map.state_map.get(name) {
                let v = rtl_sim
                    .signal(rtl_signal, &zero_inputs)
                    .map_err(|e| format!("signal {rtl_signal:?}: {e}"))?;
                ila_state.insert(name.clone(), v);
            }
        }
        cs.reanchor();
        let mut ila_sim = PortSimulator::with_state(port, ila_state.clone())
            .map_err(|e| format!("with_state: {e}"))?;

        let mut fired = None;
        let mut rtl_inputs = BTreeMap::new();
        for _attempt in 0..64 {
            rtl_inputs = all_rtl_inputs
                .iter()
                .map(|(n, w)| {
                    let bits: Vec<bool> = (0..*w).map(|_| rng.gen()).collect();
                    (n.clone(), BitVecValue::from_bits(&bits))
                })
                .collect();
            let mut ila_inputs = BTreeMap::new();
            for i in port.inputs() {
                let rtl_name = &map.interface_map[&i.name];
                ila_inputs.insert(i.name.clone(), Value::Bv(rtl_inputs[rtl_name].clone()));
            }
            let ci = cs.encode_inputs(&rtl_inputs);
            cs.apply_inputs(&ci);
            let compiled_fired = cs.ila.decode_only();
            match ila_sim.step(&ila_inputs) {
                Ok(name) => {
                    let Fired::One(idx) = compiled_fired else {
                        return Err(format!(
                            "cycle {cycle}: interpreter fired {name:?}, compiled {compiled_fired:?}"
                        ));
                    };
                    let compiled_name = &port.instructions()[idx].name;
                    if *compiled_name != name {
                        return Err(format!(
                            "cycle {cycle}: interpreter fired {name:?}, compiled fired {compiled_name:?}"
                        ));
                    }
                    cs.ila.commit(idx);
                    fired = Some(name);
                    break;
                }
                Err(SimError::NoInstruction { .. }) => {
                    if compiled_fired != Fired::None {
                        return Err(format!(
                            "cycle {cycle}: interpreter decoded nothing, compiled {compiled_fired:?}"
                        ));
                    }
                    continue;
                }
                Err(e) => return Err(format!("cycle {cycle}: interpreter step: {e}")),
            }
        }
        if fired.is_none() {
            return Err(format!("cycle {cycle}: no decodable command in 64 attempts"));
        }
        ila_state = ila_sim.state().clone();
        if cs.ila.state() != ila_state {
            return Err(format!(
                "cycle {cycle}: ILA state mismatch: compiled {:?} vs interpreted {ila_state:?}",
                cs.ila.state()
            ));
        }

        rtl_sim.step(&rtl_inputs).expect("all pins driven");
        cs.rtl.eval();
        cs.rtl.commit();
        if cs.rtl.state() != *rtl_sim.state() {
            return Err(format!(
                "cycle {cycle}: RTL state mismatch: compiled {:?} vs interpreted {:?}",
                cs.rtl.state(),
                rtl_sim.state()
            ));
        }
        cs.rtl.eval_signals();

        // Divergence verdicts must agree.
        let rtl_view = read_state(&rtl_sim, &rtl_inputs)?;
        let mut interp_diverged: Option<&String> = None;
        for (state, rtl_value) in &rtl_view {
            if map.unchecked_states.contains(state) {
                continue;
            }
            if &ila_state[state] != rtl_value {
                interp_diverged = Some(state);
                break;
            }
        }
        let compiled_diverged = cs.compare().map(|m_i| &cs.mapped[m_i].name);
        match (interp_diverged, compiled_diverged) {
            (None, None) => {}
            (Some(a), Some(b)) if a == b => return Ok(Some(cycle)),
            (a, b) => {
                return Err(format!(
                    "cycle {cycle}: divergence verdict mismatch: interpreter {a:?}, compiled {b:?}"
                ))
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gila_core::StateKind;
    use gila_rtl::parse_verilog;

    fn counter_setup(step: u64) -> (PortIla, RtlModule, RefinementMap) {
        let mut p = PortIla::new("counter");
        let en = p.input("en", Sort::Bv(1));
        let cnt = p.state("cnt", Sort::Bv(8), StateKind::Output);
        let d = p.ctx_mut().eq_u64(en, 1);
        let one = p.ctx_mut().bv_u64(1, 8);
        let nx = p.ctx_mut().bvadd(cnt, one);
        p.instr("inc").decode(d).update("cnt", nx).add().unwrap();
        let d = p.ctx_mut().eq_u64(en, 0);
        p.instr("hold").decode(d).add().unwrap();
        let rtl = parse_verilog(&format!(
            r#"
module counter(clk, en_in);
  input clk; input en_in;
  reg [7:0] count;
  always @(posedge clk) if (en_in) count <= count + 8'd{step};
endmodule
"#
        ))
        .unwrap();
        let mut map = RefinementMap::new("counter");
        map.map_state("cnt", "count");
        map.map_input("en", "en_in");
        (p, rtl, map)
    }

    #[test]
    fn agreeing_pair_runs_clean() {
        let (p, rtl, map) = counter_setup(1);
        let d = cosimulate_compiled(&p, &rtl, &map, 1, 2000).unwrap();
        assert!(d.is_none(), "{d:?}");
    }

    #[test]
    fn divergence_is_located_and_replayable() {
        let (p, rtl, map) = counter_setup(2);
        let d = cosimulate_compiled(&p, &rtl, &map, 1, 500)
            .unwrap()
            .expect("must diverge");
        assert_eq!(d.state, "cnt");
        assert_eq!(d.instruction, "inc");
        assert_eq!(d.inputs.len(), d.cycle + 1);
        // The recorded stream replays to the same divergence.
        let r = replay_compiled(&p, &rtl, &map, &d.start_state, &d.inputs)
            .unwrap()
            .expect("replay reproduces");
        assert_eq!(r.cycle, d.cycle);
        assert_eq!(r.state, d.state);
        assert_eq!(r.ila_value, d.ila_value);
        assert_eq!(r.rtl_value, d.rtl_value);
    }

    #[test]
    fn config_errors_mirror_interpreter() {
        let (p, rtl, mut map) = counter_setup(1);
        map.interface_map.clear();
        assert!(matches!(
            cosimulate_compiled(&p, &rtl, &map, 1, 10),
            Err(CosimError::UnmappedInput(_))
        ));
        let (p, rtl, mut map) = counter_setup(1);
        map.map_state("cnt", "ghost");
        assert!(matches!(
            cosimulate_compiled(&p, &rtl, &map, 1, 10),
            Err(CosimError::UnknownRtlSignal(_))
        ));
    }

    #[test]
    fn differential_agrees_on_counter() {
        let (p, rtl, map) = counter_setup(1);
        for seed in 0..8 {
            let r = cosim_differential(&p, &rtl, &map, seed, 300).unwrap();
            assert_eq!(r, None);
        }
        // And both backends agree on the seeded bug.
        let (p, rtl, map) = counter_setup(2);
        let r = cosim_differential(&p, &rtl, &map, 1, 300).unwrap();
        assert!(r.is_some());
    }
}
