//! Content-addressed cache keys for verification verdicts.
//!
//! A verdict's identity is the *semantic object the solver saw*, not
//! the source text it came from: the cone-of-influence slice of the RTL
//! transition system that the property can observe, the ILA
//! instruction's decode/update semantics, the refinement
//! correspondence, and the per-instruction verification directives
//! (bound, finish condition, strengthening, input policy, invariants).
//! Two specs that differ only outside a property's cone — comments,
//! unrelated ports, renamed instructions, logic sliced away — produce
//! the same key, which is what makes the `gila serve` proof cache an
//! *incremental re-verification* mechanism: edit one instruction and
//! only the keys whose slice actually changed miss the cache.
//!
//! What the key deliberately does **not** cover is `VerifyOptions`:
//! every current option is verdict-preserving on *decided* verdicts.
//! Scheduling (`jobs`, `batch_ports`, `par_threshold`, `share_clauses`),
//! preprocessing, and telemetry change solver effort, never answers;
//! budgets (`budget`, `retries`) change only *decidability*, and
//! undecided verdicts (`unknown`, `panicked`) are never cached. If an
//! option that can change a decided verdict is ever added (say, an
//! approximation mode), it must be folded into [`CACHE_KEY_VERSION`]'s
//! material — see the "Serving" section of DESIGN.md.
//!
//! Keys are 128-bit hex strings from a dual-lane FNV-1a over a
//! canonical post-order serialization of the hash-consed expression
//! DAGs. Not collision-resistant against adversaries — fine for a
//! trusted cache, chosen because it is dependency-free and
//! deterministic across processes (a persisted journal must hash the
//! same on every restart, which rules out `DefaultHasher`).

use std::collections::{BTreeMap, HashMap};

use gila_core::{ModuleIla, PortIla};
use gila_expr::{ExprCtx, ExprNode, ExprRef};
use gila_mc::{coi_slice, support, TransitionSystem};
use gila_rtl::RtlModule;

use crate::engine::{rtl_to_ts, PortPlan, VerifyError};
use crate::refmap::RefinementMap;

/// Version tag folded into every key. Bump whenever the key material or
/// serialization changes — stale journal entries then miss instead of
/// being misapplied.
///
/// v2: abstract-interpretation lemmas (`gila-absint`) are asserted into
/// the solver before BMC. The lemmas are proven consequences of the
/// transition relation, so decided verdicts cannot change — but the
/// bump keeps any pre-absint journal from being credited to a pipeline
/// it never saw, per the policy above.
pub const CACHE_KEY_VERSION: u32 = 2;

/// The cache key of one `(port, instruction)` verification property.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SliceKey {
    /// Port the property belongs to (reporting identity, not hashed).
    pub port: String,
    /// Instruction name (reporting identity, not hashed — renames keep
    /// their verdicts).
    pub instruction: String,
    /// 32-hex-digit content hash of the sliced property.
    pub key: String,
}

/// Computes the content-addressed key of every `(port, instruction)`
/// property `verify_module` would check for this module.
///
/// # Errors
///
/// The same [`VerifyError`]s `verify_module` reports for malformed
/// inputs: unknown signals in a refinement map, a missing map, a bad
/// bound, malformed RTL.
pub fn slice_keys(
    module: &ModuleIla,
    rtl: &RtlModule,
    maps: &[RefinementMap],
) -> Result<Vec<SliceKey>, VerifyError> {
    let map_for = |port: &PortIla| -> Result<&RefinementMap, VerifyError> {
        maps.iter()
            .find(|m| m.name == port.name())
            .or_else(|| maps.iter().find(|m| m.name == "*"))
            .ok_or_else(|| VerifyError::UnknownRtlSignal {
                signal: port.name().to_string(),
                context: "no refinement map for port".to_string(),
            })
    };
    let (ts, ts_signals) = rtl_to_ts(rtl)?;
    let mut keys = Vec::new();
    for port in module.ports() {
        let map = map_for(port)?;
        let plan = PortPlan::build(port, rtl, map, &ts_signals)?;
        // Memo tables survive across this port's instructions: the
        // hash-consed contexts only grow, so shared subgraphs hash once.
        let mut ts_memo: HashMap<ExprRef, (u64, u64)> = HashMap::new();
        let mut cond_memo: HashMap<ExprRef, (u64, u64)> = HashMap::new();
        let mut ila_memo: HashMap<ExprRef, (u64, u64)> = HashMap::new();
        for (idx, instr) in port.instructions().iter().enumerate() {
            let key = instruction_key(
                &plan,
                idx,
                instr,
                &ts,
                &ts_signals,
                &mut ts_memo,
                &mut cond_memo,
                &mut ila_memo,
            );
            keys.push(SliceKey {
                port: port.name().to_string(),
                instruction: instr.name.clone(),
                key,
            });
        }
    }
    Ok(keys)
}

/// Dual-lane FNV-1a/64. The second lane runs over tweaked bytes from a
/// different offset basis, decorrelating the lanes enough that the
/// combined 128 bits make accidental collisions negligible for a cache
/// of any realistic size.
struct Fnv128 {
    a: u64,
    b: u64,
}

const FNV_PRIME: u64 = 0x100_0000_01b3;

impl Fnv128 {
    fn new() -> Self {
        Fnv128 {
            a: 0xcbf2_9ce4_8422_2325,
            b: 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ byte as u64).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ (byte ^ 0xa5) as u64).wrapping_mul(FNV_PRIME);
        }
    }

    /// Length-prefixed, so `("ab","c")` and `("a","bc")` differ.
    fn write_str(&mut self, s: &str) {
        self.write(&(s.len() as u64).to_le_bytes());
        self.write(s.as_bytes());
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn write_hash(&mut self, h: (u64, u64)) {
        self.write_u64(h.0);
        self.write_u64(h.1);
    }

    fn finish(self) -> (u64, u64) {
        (self.a, self.b)
    }
}

/// Canonical hash of `e`'s DAG in `ctx`, memoized across calls sharing
/// `memo`. Structure-only: two hash-consed contexts that intern the
/// same graph produce the same hash regardless of `ExprRef` numbering.
fn expr_hash(ctx: &ExprCtx, e: ExprRef, memo: &mut HashMap<ExprRef, (u64, u64)>) -> (u64, u64) {
    if let Some(&h) = memo.get(&e) {
        return h;
    }
    for node in ctx.post_order(&[e]) {
        if memo.contains_key(&node) {
            continue;
        }
        let mut f = Fnv128::new();
        match ctx.node(node) {
            ExprNode::BoolConst(b) => {
                f.write_str("bc");
                f.write_u64(*b as u64);
            }
            ExprNode::BvConst(v) => {
                f.write_str("vc");
                f.write_str(&format!("{v:?}"));
            }
            ExprNode::MemConst(m) => {
                f.write_str("mc");
                f.write_str(&format!("{m:?}"));
            }
            ExprNode::Var { name, sort } => {
                f.write_str("var");
                f.write_str(name);
                f.write_str(&sort.to_string());
            }
            ExprNode::App { op, args, sort } => {
                f.write_str("app");
                f.write_str(&format!("{op:?}"));
                f.write_str(&sort.to_string());
                for &a in args {
                    f.write_hash(memo[&a]);
                }
            }
        }
        memo.insert(node, f.finish());
    }
    memo[&e]
}

/// Hashes one instruction's property: the per-instruction COI slice of
/// the transition system plus every ingredient of the refinement check.
#[allow(clippy::too_many_arguments)]
fn instruction_key(
    plan: &PortPlan<'_>,
    idx: usize,
    instr: &gila_core::Instruction,
    ts: &TransitionSystem,
    ts_signals: &BTreeMap<String, ExprRef>,
    ts_memo: &mut HashMap<ExprRef, (u64, u64)>,
    cond_memo: &mut HashMap<ExprRef, (u64, u64)>,
    ila_memo: &mut HashMap<ExprRef, (u64, u64)>,
) -> String {
    let ip = &plan.instrs[idx];

    // Root set: what *this instruction's* check can observe of the RTL —
    // the mapped correspondence plus the support of the conditions it
    // uses (invariants apply to every instruction of the port).
    let mut roots: Vec<ExprRef> = Vec::new();
    for (_, e, _) in &plan.mapped_states {
        roots.push(*e);
    }
    for (_, e, _) in &plan.mapped_inputs {
        roots.push(*e);
    }
    let mut cond_exprs: Vec<ExprRef> = plan.invariants.clone();
    cond_exprs.extend(ip.finish_expr);
    cond_exprs.extend(ip.strengthening);
    for name in support(plan.cond_rtl.ctx(), &cond_exprs) {
        if let Some(&e) = ts_signals.get(&name) {
            roots.push(e);
        } else if let Some(e) = ts.ctx().find_var(&name) {
            roots.push(e);
        }
    }
    let (sliced, _) = coi_slice(ts, &roots);

    let mut f = Fnv128::new();
    f.write_str("gila-cache-key");
    f.write_u64(CACHE_KEY_VERSION as u64);

    // 1. The sliced transition system (slicing keeps the original
    // context, so ts_memo stays valid). States sorted by name; the
    // sorted-name iteration makes the serialization canonical.
    let ts_ctx = ts.ctx();
    let mut state_names: Vec<&str> = sliced.states().iter().map(|s| s.name.as_str()).collect();
    state_names.sort_unstable();
    f.write_u64(state_names.len() as u64);
    for name in state_names {
        f.write_str(name);
        let var = ts_ctx.find_var(name).expect("sliced state var exists");
        f.write_str(&ts_ctx.sort_of(var).to_string());
        match sliced.init_of(name) {
            Some(v) => f.write_str(&format!("{v:?}")),
            None => f.write_str("-"),
        }
        match sliced.next_of(name) {
            Some(e) => f.write_hash(expr_hash(ts_ctx, e, ts_memo)),
            None => f.write_str("-"),
        }
    }
    let mut input_names: Vec<&str> = sliced.inputs().iter().map(|i| i.name.as_str()).collect();
    input_names.sort_unstable();
    f.write_u64(input_names.len() as u64);
    for name in input_names {
        f.write_str(name);
        if let Some(var) = ts_ctx.find_var(name) {
            f.write_str(&ts_ctx.sort_of(var).to_string());
        }
    }
    let mut constraint_hashes: Vec<(u64, u64)> = sliced
        .constraints()
        .iter()
        .map(|&c| expr_hash(ts_ctx, c, ts_memo))
        .collect();
    constraint_hashes.sort_unstable();
    f.write_u64(constraint_hashes.len() as u64);
    for h in constraint_hashes {
        f.write_hash(h);
    }

    // 2. The ILA instruction semantics: decode plus updates, in the
    // port's context (updates are a BTreeMap — already name-sorted).
    let ila_ctx = plan.port.ctx();
    f.write_str("decode");
    f.write_hash(expr_hash(ila_ctx, instr.decode, ila_memo));
    f.write_u64(instr.updates.len() as u64);
    for (state, &update) in &instr.updates {
        f.write_str(state);
        f.write_hash(expr_hash(ila_ctx, update, ila_memo));
    }

    // 3. The refinement correspondence: which ILA state/input maps to
    // which RTL expression, and which states are pre-state-only.
    f.write_u64(plan.mapped_states.len() as u64);
    for (ila_name, e, sort) in &plan.mapped_states {
        f.write_str(ila_name);
        f.write_str(&sort.to_string());
        f.write_hash(expr_hash(ts_ctx, *e, ts_memo));
        f.write_u64(plan.map.unchecked_states.contains(ila_name) as u64);
    }
    f.write_u64(plan.mapped_inputs.len() as u64);
    for (ila_name, e, sort) in &plan.mapped_inputs {
        f.write_str(ila_name);
        f.write_str(&sort.to_string());
        f.write_hash(expr_hash(ts_ctx, *e, ts_memo));
    }

    // 4. Per-instruction directives, with conditions hashed as parsed
    // expressions (whitespace-insensitive) in the plan's scratch RTL.
    f.write_u64(ip.bound as u64);
    let cond_ctx = plan.cond_rtl.ctx();
    match ip.finish_expr {
        Some(e) => f.write_hash(expr_hash(cond_ctx, e, cond_memo)),
        None => f.write_str("-"),
    }
    match ip.strengthening {
        Some(e) => f.write_hash(expr_hash(cond_ctx, e, cond_memo)),
        None => f.write_str("-"),
    }
    f.write_str(&format!("{:?}", ip.input_policy));
    f.write_u64(plan.invariants.len() as u64);
    for &inv in &plan.invariants {
        f.write_hash(expr_hash(cond_ctx, inv, cond_memo));
    }

    let (a, b) = f.finish();
    format!("{a:016x}{b:016x}")
}

// Behavioral tests live in `crates/serve/tests/cache.rs` — they need
// the bundled case studies, and `gila-designs` depends on this crate.
