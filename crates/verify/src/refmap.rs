//! Refinement maps: the small, user-supplied glue between a port-ILA
//! specification and an RTL implementation (paper Fig. 5).
//!
//! A refinement map has three parts:
//!
//! * **state map** — which RTL signal corresponds to each ILA
//!   architectural state (checked for equivalence before and after each
//!   instruction);
//! * **interface map** — which RTL signal presents each ILA input;
//! * **instruction map** — per instruction, when it starts (its decode
//!   function, optionally strengthened) and when to check equivalence
//!   (a fixed cycle count, or a monitored RTL condition with a bound).
//!
//! Maps serialize to/from JSON (the paper reports refinement-map sizes
//! in JSON LoC), with RTL-side conditions written as Verilog expressions.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// When an instruction's execution finishes in the RTL (i.e. when the
/// state-map equivalence is checked).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FinishCondition {
    /// Check after exactly this many clock cycles.
    Cycles(
        /// Number of cycles (>= 1).
        usize,
    ),
    /// Check at the first cycle (within `max_cycles`) where the Verilog
    /// condition holds.
    Condition {
        /// A boolean Verilog expression over RTL signals.
        expr: String,
        /// Upper bound on the finish cycle.
        max_cycles: usize,
    },
}

impl Default for FinishCondition {
    fn default() -> Self {
        FinishCondition::Cycles(1)
    }
}

/// What the RTL inputs do on the cycles *after* the command is presented
/// (relevant only for multi-cycle finish conditions).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum InputPolicy {
    /// Inputs are unconstrained after cycle 0.
    #[default]
    Free,
    /// Inputs hold their cycle-0 values for the whole execution.
    Hold,
}

/// Per-instruction verification directives.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstructionMap {
    /// The atomic instruction's name, or `"*"` for a default entry.
    pub instruction: String,
    /// Extra start condition (a Verilog expression over RTL signals),
    /// conjoined with the instruction's decode function. `None` means the
    /// start condition is exactly the decode function.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub start_strengthening: Option<String>,
    /// When to check the post-state equivalence.
    #[serde(default)]
    pub finish: FinishCondition,
    /// Input behaviour during multi-cycle execution.
    #[serde(default)]
    pub input_policy: InputPolicy,
}

impl InstructionMap {
    /// A default entry (`finish: 1 cycle`, decode-only start) for the
    /// named instruction.
    pub fn single_cycle(instruction: impl Into<String>) -> Self {
        InstructionMap {
            instruction: instruction.into(),
            start_strengthening: None,
            finish: FinishCondition::Cycles(1),
            input_policy: InputPolicy::Free,
        }
    }
}

/// A refinement map connecting one port-ILA to an RTL implementation.
///
/// # Examples
///
/// ```
/// use gila_verify::RefinementMap;
///
/// let mut map = RefinementMap::new("decoder");
/// map.map_state("current_word", "op");
/// map.map_state("step", "status");
/// map.map_input("wait", "wait_data");
/// map.add_invariant("status <= 2'd3");
/// let json = map.to_json();
/// let back = RefinementMap::from_json(&json).unwrap();
/// assert_eq!(map, back);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RefinementMap {
    /// Name (usually the port name).
    pub name: String,
    /// ILA architectural state -> RTL signal.
    pub state_map: BTreeMap<String, String>,
    /// ILA input -> RTL signal.
    pub interface_map: BTreeMap<String, String>,
    /// Per-instruction directives. Instructions without an entry use the
    /// `"*"` entry, or the all-default single-cycle entry if none exists.
    #[serde(default)]
    pub instruction_maps: Vec<InstructionMap>,
    /// ILA states that participate in the *pre-state* correspondence but
    /// are not checked for equivalence after the instruction — used when
    /// a port reads a state another port owns (e.g. the store buffer's
    /// load-port reads the buffer array that the in/out port updates;
    /// simultaneous traffic on the other port may legitimately change it).
    #[serde(default)]
    pub unchecked_states: Vec<String>,
    /// Reachability invariants assumed at the start state, as Verilog
    /// expressions over RTL signals (e.g. `"status <= 2'd3"`). These
    /// restrict the symbolic start to states the RTL can actually reach,
    /// mirroring standard ILA refinement practice.
    #[serde(default)]
    pub invariants: Vec<String>,
}

impl RefinementMap {
    /// Creates an empty map with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        RefinementMap {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Maps an ILA state to an RTL signal.
    pub fn map_state(&mut self, ila_state: impl Into<String>, rtl_signal: impl Into<String>) {
        self.state_map.insert(ila_state.into(), rtl_signal.into());
    }

    /// Maps an ILA input to an RTL signal.
    pub fn map_input(&mut self, ila_input: impl Into<String>, rtl_signal: impl Into<String>) {
        self.interface_map
            .insert(ila_input.into(), rtl_signal.into());
    }

    /// Adds a start-state invariant (Verilog expression over RTL signals).
    pub fn add_invariant(&mut self, expr: impl Into<String>) {
        self.invariants.push(expr.into());
    }

    /// Marks an ILA state as pre-state-only (see `unchecked_states`).
    pub fn mark_unchecked(&mut self, ila_state: impl Into<String>) {
        self.unchecked_states.push(ila_state.into());
    }

    /// Adds a per-instruction directive.
    pub fn add_instruction_map(&mut self, m: InstructionMap) {
        self.instruction_maps.push(m);
    }

    /// The directive for an instruction: its own entry, else the `"*"`
    /// entry, else the single-cycle default.
    pub fn instruction_map_for(&self, instruction: &str) -> InstructionMap {
        self.instruction_maps
            .iter()
            .find(|m| m.instruction == instruction)
            .or_else(|| {
                self.instruction_maps
                    .iter()
                    .find(|m| m.instruction == "*")
            })
            .cloned()
            .unwrap_or_else(|| InstructionMap::single_cycle(instruction))
    }

    /// Serializes to pretty JSON (the artifact whose line count Table I
    /// reports as "Ref-map Size (LoC)").
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("refinement maps always serialize")
    }

    /// Parses a map from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error on malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Line count of the JSON rendering ("Ref-map Size (LoC)").
    pub fn size_loc(&self) -> usize {
        self.to_json().lines().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RefinementMap {
        let mut m = RefinementMap::new("DECODER");
        m.map_state("current_word", "op");
        m.map_state("step", "status");
        m.map_input("wait", "wait_data");
        m.map_input("word_in", "op_in");
        m.add_invariant("status <= 2'd3");
        m.add_instruction_map(InstructionMap {
            instruction: "process_s1".into(),
            start_strengthening: Some("status == 2'd1".into()),
            finish: FinishCondition::Cycles(1),
            input_policy: InputPolicy::Free,
        });
        m
    }

    #[test]
    fn json_roundtrip() {
        let m = sample();
        let json = m.to_json();
        let back = RefinementMap::from_json(&json).unwrap();
        assert_eq!(m, back);
        assert!(m.size_loc() > 10);
    }

    #[test]
    fn instruction_map_lookup_precedence() {
        let mut m = sample();
        // exact entry
        assert_eq!(
            m.instruction_map_for("process_s1").start_strengthening,
            Some("status == 2'd1".to_string())
        );
        // default single-cycle fallback
        let d = m.instruction_map_for("stall");
        assert_eq!(d.finish, FinishCondition::Cycles(1));
        // wildcard overrides fallback
        m.add_instruction_map(InstructionMap {
            instruction: "*".into(),
            start_strengthening: None,
            finish: FinishCondition::Cycles(2),
            input_policy: InputPolicy::Hold,
        });
        assert_eq!(m.instruction_map_for("stall").finish, FinishCondition::Cycles(2));
    }

    #[test]
    fn condition_finish_serializes() {
        let mut m = RefinementMap::new("x");
        m.add_instruction_map(InstructionMap {
            instruction: "req".into(),
            start_strengthening: None,
            finish: FinishCondition::Condition {
                expr: "done == 1'b1".into(),
                max_cycles: 8,
            },
            input_policy: InputPolicy::Hold,
        });
        let back = RefinementMap::from_json(&m.to_json()).unwrap();
        assert_eq!(m, back);
    }
}
