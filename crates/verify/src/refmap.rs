//! Refinement maps: the small, user-supplied glue between a port-ILA
//! specification and an RTL implementation (paper Fig. 5).
//!
//! A refinement map has three parts:
//!
//! * **state map** — which RTL signal corresponds to each ILA
//!   architectural state (checked for equivalence before and after each
//!   instruction);
//! * **interface map** — which RTL signal presents each ILA input;
//! * **instruction map** — per instruction, when it starts (its decode
//!   function, optionally strengthened) and when to check equivalence
//!   (a fixed cycle count, or a monitored RTL condition with a bound).
//!
//! Maps serialize to/from JSON (the paper reports refinement-map sizes
//! in JSON LoC), with RTL-side conditions written as Verilog expressions.

use std::collections::BTreeMap;

use gila_json::Value;

/// When an instruction's execution finishes in the RTL (i.e. when the
/// state-map equivalence is checked).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FinishCondition {
    /// Check after exactly this many clock cycles.
    Cycles(
        /// Number of cycles (>= 1).
        usize,
    ),
    /// Check at the first cycle (within `max_cycles`) where the Verilog
    /// condition holds.
    Condition {
        /// A boolean Verilog expression over RTL signals.
        expr: String,
        /// Upper bound on the finish cycle.
        max_cycles: usize,
    },
}

impl Default for FinishCondition {
    fn default() -> Self {
        FinishCondition::Cycles(1)
    }
}

/// What the RTL inputs do on the cycles *after* the command is presented
/// (relevant only for multi-cycle finish conditions).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum InputPolicy {
    /// Inputs are unconstrained after cycle 0.
    #[default]
    Free,
    /// Inputs hold their cycle-0 values for the whole execution.
    Hold,
}

/// Per-instruction verification directives.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InstructionMap {
    /// The atomic instruction's name, or `"*"` for a default entry.
    pub instruction: String,
    /// Extra start condition (a Verilog expression over RTL signals),
    /// conjoined with the instruction's decode function. `None` means the
    /// start condition is exactly the decode function.
    pub start_strengthening: Option<String>,
    /// When to check the post-state equivalence.
    pub finish: FinishCondition,
    /// Input behaviour during multi-cycle execution.
    pub input_policy: InputPolicy,
}

impl InstructionMap {
    /// A default entry (`finish: 1 cycle`, decode-only start) for the
    /// named instruction.
    pub fn single_cycle(instruction: impl Into<String>) -> Self {
        InstructionMap {
            instruction: instruction.into(),
            start_strengthening: None,
            finish: FinishCondition::Cycles(1),
            input_policy: InputPolicy::Free,
        }
    }
}

/// A refinement map connecting one port-ILA to an RTL implementation.
///
/// # Examples
///
/// ```
/// use gila_verify::RefinementMap;
///
/// let mut map = RefinementMap::new("decoder");
/// map.map_state("current_word", "op");
/// map.map_state("step", "status");
/// map.map_input("wait", "wait_data");
/// map.add_invariant("status <= 2'd3");
/// let json = map.to_json();
/// let back = RefinementMap::from_json(&json).unwrap();
/// assert_eq!(map, back);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RefinementMap {
    /// Name (usually the port name).
    pub name: String,
    /// ILA architectural state -> RTL signal.
    pub state_map: BTreeMap<String, String>,
    /// ILA input -> RTL signal.
    pub interface_map: BTreeMap<String, String>,
    /// Per-instruction directives. Instructions without an entry use the
    /// `"*"` entry, or the all-default single-cycle entry if none exists.
    pub instruction_maps: Vec<InstructionMap>,
    /// ILA states that participate in the *pre-state* correspondence but
    /// are not checked for equivalence after the instruction — used when
    /// a port reads a state another port owns (e.g. the store buffer's
    /// load-port reads the buffer array that the in/out port updates;
    /// simultaneous traffic on the other port may legitimately change it).
    pub unchecked_states: Vec<String>,
    /// Reachability invariants assumed at the start state, as Verilog
    /// expressions over RTL signals (e.g. `"status <= 2'd3"`). These
    /// restrict the symbolic start to states the RTL can actually reach,
    /// mirroring standard ILA refinement practice.
    pub invariants: Vec<String>,
}

impl RefinementMap {
    /// Creates an empty map with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        RefinementMap {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Maps an ILA state to an RTL signal.
    pub fn map_state(&mut self, ila_state: impl Into<String>, rtl_signal: impl Into<String>) {
        self.state_map.insert(ila_state.into(), rtl_signal.into());
    }

    /// Maps an ILA input to an RTL signal.
    pub fn map_input(&mut self, ila_input: impl Into<String>, rtl_signal: impl Into<String>) {
        self.interface_map
            .insert(ila_input.into(), rtl_signal.into());
    }

    /// Adds a start-state invariant (Verilog expression over RTL signals).
    pub fn add_invariant(&mut self, expr: impl Into<String>) {
        self.invariants.push(expr.into());
    }

    /// Marks an ILA state as pre-state-only (see `unchecked_states`).
    pub fn mark_unchecked(&mut self, ila_state: impl Into<String>) {
        self.unchecked_states.push(ila_state.into());
    }

    /// Adds a per-instruction directive.
    pub fn add_instruction_map(&mut self, m: InstructionMap) {
        self.instruction_maps.push(m);
    }

    /// The directive for an instruction: its own entry, else the `"*"`
    /// entry, else the single-cycle default.
    pub fn instruction_map_for(&self, instruction: &str) -> InstructionMap {
        self.instruction_maps
            .iter()
            .find(|m| m.instruction == instruction)
            .or_else(|| {
                self.instruction_maps
                    .iter()
                    .find(|m| m.instruction == "*")
            })
            .cloned()
            .unwrap_or_else(|| InstructionMap::single_cycle(instruction))
    }

    /// Serializes to pretty JSON (the artifact whose line count Table I
    /// reports as "Ref-map Size (LoC)").
    pub fn to_json(&self) -> String {
        self.to_value().pretty()
    }

    fn to_value(&self) -> Value {
        Value::object(vec![
            ("name".into(), Value::from(self.name.clone())),
            ("state_map".into(), Value::from(&self.state_map)),
            ("interface_map".into(), Value::from(&self.interface_map)),
            (
                "instruction_maps".into(),
                Value::Array(self.instruction_maps.iter().map(instr_map_to_value).collect()),
            ),
            (
                "unchecked_states".into(),
                Value::from(self.unchecked_states.clone()),
            ),
            ("invariants".into(), Value::from(self.invariants.clone())),
        ])
    }

    /// Parses a map from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`RefMapParseError`] on malformed JSON or on a document
    /// that doesn't match the refinement-map schema.
    pub fn from_json(json: &str) -> Result<Self, RefMapParseError> {
        let doc = gila_json::parse(json).map_err(|e| RefMapParseError(e.to_string()))?;
        let name = require_str(&doc, "name")?.to_string();
        let state_map = parse_string_map(&doc, "state_map")?;
        let interface_map = parse_string_map(&doc, "interface_map")?;
        let instruction_maps = match doc.get("instruction_maps") {
            None => Vec::new(),
            Some(v) => v
                .as_array()
                .ok_or_else(|| RefMapParseError("instruction_maps must be an array".into()))?
                .iter()
                .map(instr_map_from_value)
                .collect::<Result<_, _>>()?,
        };
        Ok(RefinementMap {
            name,
            state_map,
            interface_map,
            instruction_maps,
            unchecked_states: parse_string_list(&doc, "unchecked_states")?,
            invariants: parse_string_list(&doc, "invariants")?,
        })
    }

    /// Line count of the JSON rendering ("Ref-map Size (LoC)").
    pub fn size_loc(&self) -> usize {
        self.to_json().lines().count()
    }
}

/// Error parsing a refinement map from JSON.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RefMapParseError(String);

impl std::fmt::Display for RefMapParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "refinement map: {}", self.0)
    }
}

impl std::error::Error for RefMapParseError {}

fn instr_map_to_value(m: &InstructionMap) -> Value {
    let mut fields = vec![("instruction".into(), Value::from(m.instruction.clone()))];
    if let Some(s) = &m.start_strengthening {
        fields.push(("start_strengthening".into(), Value::from(s.clone())));
    }
    // Externally-tagged enum layout, matching the original serde schema.
    let finish = match &m.finish {
        FinishCondition::Cycles(n) => Value::object(vec![("cycles".into(), Value::from(*n))]),
        FinishCondition::Condition { expr, max_cycles } => Value::object(vec![(
            "condition".into(),
            Value::object(vec![
                ("expr".into(), Value::from(expr.clone())),
                ("max_cycles".into(), Value::from(*max_cycles)),
            ]),
        )]),
    };
    fields.push(("finish".into(), finish));
    let policy = match m.input_policy {
        InputPolicy::Free => "free",
        InputPolicy::Hold => "hold",
    };
    fields.push(("input_policy".into(), Value::from(policy)));
    Value::object(fields)
}

fn instr_map_from_value(v: &Value) -> Result<InstructionMap, RefMapParseError> {
    let instruction = require_str(v, "instruction")?.to_string();
    let start_strengthening = match v.get("start_strengthening") {
        None | Some(Value::Null) => None,
        Some(s) => Some(
            s.as_str()
                .ok_or_else(|| RefMapParseError("start_strengthening must be a string".into()))?
                .to_string(),
        ),
    };
    let finish = match v.get("finish") {
        None => FinishCondition::default(),
        Some(f) => parse_finish(f)?,
    };
    let input_policy = match v.get("input_policy").and_then(Value::as_str) {
        None => InputPolicy::default(),
        Some("free") => InputPolicy::Free,
        Some("hold") => InputPolicy::Hold,
        Some(other) => {
            return Err(RefMapParseError(format!("unknown input_policy `{other}`")));
        }
    };
    Ok(InstructionMap {
        instruction,
        start_strengthening,
        finish,
        input_policy,
    })
}

fn parse_finish(v: &Value) -> Result<FinishCondition, RefMapParseError> {
    if let Some(n) = v.get("cycles") {
        let n = n
            .as_usize()
            .ok_or_else(|| RefMapParseError("finish.cycles must be a non-negative integer".into()))?;
        return Ok(FinishCondition::Cycles(n));
    }
    if let Some(c) = v.get("condition") {
        let expr = require_str(c, "expr")?.to_string();
        let max_cycles = c
            .get("max_cycles")
            .and_then(Value::as_usize)
            .ok_or_else(|| {
                RefMapParseError("finish.condition.max_cycles must be a non-negative integer".into())
            })?;
        return Ok(FinishCondition::Condition { expr, max_cycles });
    }
    Err(RefMapParseError(
        "finish must be {\"cycles\": N} or {\"condition\": {...}}".into(),
    ))
}

fn require_str<'v>(v: &'v Value, key: &str) -> Result<&'v str, RefMapParseError> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| RefMapParseError(format!("missing or non-string field `{key}`")))
}

fn parse_string_map(
    doc: &Value,
    key: &str,
) -> Result<BTreeMap<String, String>, RefMapParseError> {
    let fields = doc
        .get(key)
        .and_then(Value::as_object)
        .ok_or_else(|| RefMapParseError(format!("missing or non-object field `{key}`")))?;
    fields
        .iter()
        .map(|(k, v)| {
            v.as_str()
                .map(|s| (k.clone(), s.to_string()))
                .ok_or_else(|| RefMapParseError(format!("`{key}` values must be strings")))
        })
        .collect()
}

fn parse_string_list(doc: &Value, key: &str) -> Result<Vec<String>, RefMapParseError> {
    match doc.get(key) {
        None => Ok(Vec::new()),
        Some(v) => v
            .as_array()
            .ok_or_else(|| RefMapParseError(format!("`{key}` must be an array")))?
            .iter()
            .map(|item| {
                item.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| RefMapParseError(format!("`{key}` entries must be strings")))
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RefinementMap {
        let mut m = RefinementMap::new("DECODER");
        m.map_state("current_word", "op");
        m.map_state("step", "status");
        m.map_input("wait", "wait_data");
        m.map_input("word_in", "op_in");
        m.add_invariant("status <= 2'd3");
        m.add_instruction_map(InstructionMap {
            instruction: "process_s1".into(),
            start_strengthening: Some("status == 2'd1".into()),
            finish: FinishCondition::Cycles(1),
            input_policy: InputPolicy::Free,
        });
        m
    }

    #[test]
    fn json_roundtrip() {
        let m = sample();
        let json = m.to_json();
        let back = RefinementMap::from_json(&json).unwrap();
        assert_eq!(m, back);
        assert!(m.size_loc() > 10);
    }

    #[test]
    fn instruction_map_lookup_precedence() {
        let mut m = sample();
        // exact entry
        assert_eq!(
            m.instruction_map_for("process_s1").start_strengthening,
            Some("status == 2'd1".to_string())
        );
        // default single-cycle fallback
        let d = m.instruction_map_for("stall");
        assert_eq!(d.finish, FinishCondition::Cycles(1));
        // wildcard overrides fallback
        m.add_instruction_map(InstructionMap {
            instruction: "*".into(),
            start_strengthening: None,
            finish: FinishCondition::Cycles(2),
            input_policy: InputPolicy::Hold,
        });
        assert_eq!(m.instruction_map_for("stall").finish, FinishCondition::Cycles(2));
    }

    #[test]
    fn condition_finish_serializes() {
        let mut m = RefinementMap::new("x");
        m.add_instruction_map(InstructionMap {
            instruction: "req".into(),
            start_strengthening: None,
            finish: FinishCondition::Condition {
                expr: "done == 1'b1".into(),
                max_cycles: 8,
            },
            input_policy: InputPolicy::Hold,
        });
        let back = RefinementMap::from_json(&m.to_json()).unwrap();
        assert_eq!(m, back);
    }
}
