//! Test-only fault injection for the verification engine.
//!
//! A [`FaultPlan`] is a list of rules matched against each job's
//! `(port, instruction)` pair just before it runs. A matching rule
//! fires its action — panic the job, force an `Unknown` verdict (by
//! swapping the job's budget for an already-expired deadline), or sleep
//! — a bounded number of times, then goes inert. This is how the
//! robustness machinery (panic isolation, budget escalation,
//! checkpoint/resume) is exercised deterministically in tests and CI
//! without needing a genuinely hard SAT instance.
//!
//! Plans are built programmatically ([`FaultPlan::inject`]) or parsed
//! from the `GILA_FAULT_PLAN` environment variable by the CLI
//! ([`FaultPlan::from_env`]); the engine itself never reads the
//! environment, so an exported variable cannot corrupt library users.
//!
//! The spec grammar is semicolon-separated rules of two families —
//! job faults (target has a `/`) and socket faults (target is a frame
//! index), the latter exercised by the `gila serve` daemon and client:
//!
//! ```text
//! ACTION@PORT/INSTR[*COUNT]
//! ACTION := panic[:MESSAGE] | unknown | delay:MILLIS
//!
//! SOCKET_ACTION@FRAME[*COUNT]
//! SOCKET_ACTION := disconnect | io-error | slow-client:MILLIS
//! ```
//!
//! `PORT` and `INSTR` may be `*` (match anything); `FRAME` is a 0-based
//! frame index or `*`; `COUNT` bounds how often the rule fires
//! (default: unlimited). Examples: `panic:boom@counter/inc*1;
//! unknown@*/dec`, `disconnect@1*1`, `slow-client:20@*`.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// What an injected fault does to the job it hits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic with this message (exercises scheduler panic isolation).
    Panic(String),
    /// Replace the job's budget with an expired deadline, forcing a
    /// `CheckResult::Unknown` through the real resource-out path.
    ForceUnknown,
    /// Sleep before running the job (exercises timing-dependent paths).
    Delay(Duration),
}

/// What an injected socket fault does to the connection it hits. These
/// are interpreted by the serve-layer I/O code (the engine never sees
/// them): the injecting side truncates, errors, or throttles its own
/// stream so the *peer* has to survive the abuse.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SocketFault {
    /// Close the connection abruptly — when fired mid-frame, the peer
    /// sees a half-written frame followed by EOF.
    Disconnect,
    /// Surface an I/O error on the stream instead of completing the
    /// frame.
    IoError,
    /// Sleep this long between chunks while writing a frame (a slow or
    /// stalled client).
    SlowClient(Duration),
}

/// One socket fault rule: a fault, a frame-index pattern, and a
/// remaining fire count.
#[derive(Debug)]
struct SocketRule {
    /// 0-based frame index this rule matches; `None` matches any frame.
    frame: Option<u64>,
    fault: SocketFault,
    /// Fires remaining; `u64::MAX` means unlimited.
    remaining: AtomicU64,
}

impl SocketRule {
    fn try_fire(&self, frame: u64) -> bool {
        (self.frame.is_none() || self.frame == Some(frame))
            && self
                .remaining
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                .is_ok()
    }
}

/// One fault rule: an action, a `(port, instruction)` pattern, and a
/// remaining fire count.
#[derive(Debug)]
struct FaultRule {
    port: String,
    instr: String,
    action: FaultAction,
    /// Fires remaining; `u64::MAX` means unlimited.
    remaining: AtomicU64,
}

impl FaultRule {
    fn matches(&self, port: &str, instr: &str) -> bool {
        (self.port == "*" || self.port == port) && (self.instr == "*" || self.instr == instr)
    }

    /// Consumes one fire if any remain.
    fn try_fire(&self) -> bool {
        self.remaining
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_ok()
    }
}

/// A set of fault rules, shared read-only across scheduler workers.
#[derive(Debug, Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    socket_rules: Vec<SocketRule>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a rule: `action` fires for jobs matching `port`/`instr`
    /// (either may be `"*"`) at most `count` times (`None` = unlimited).
    pub fn inject(
        mut self,
        port: &str,
        instr: &str,
        action: FaultAction,
        count: Option<u64>,
    ) -> Self {
        self.rules.push(FaultRule {
            port: port.to_string(),
            instr: instr.to_string(),
            action,
            remaining: AtomicU64::new(count.unwrap_or(u64::MAX)),
        });
        self
    }

    /// The plan from the `GILA_FAULT_PLAN` environment variable, if set
    /// and non-empty. Only the CLI calls this; library runs inject
    /// faults solely through [`crate::VerifyOptions::fault_plan`].
    pub fn from_env() -> Result<Option<FaultPlan>, FaultPlanError> {
        match std::env::var("GILA_FAULT_PLAN") {
            Ok(spec) if !spec.trim().is_empty() => Self::parse(&spec).map(Some),
            _ => Ok(None),
        }
    }

    /// Parses the spec grammar described in the module docs.
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultPlanError> {
        let bad = |rule: &str, why: &str| {
            Err(FaultPlanError {
                rule: rule.to_string(),
                reason: why.to_string(),
            })
        };
        let mut plan = FaultPlan::new();
        for rule in spec.split(';').filter(|r| !r.trim().is_empty()) {
            let rule = rule.trim();
            let Some((action_s, target)) = rule.split_once('@') else {
                return bad(rule, "expected ACTION@PORT/INSTR or SOCKET_ACTION@FRAME");
            };
            // Socket-family rules target a frame index, not PORT/INSTR.
            let socket_fault = if action_s == "disconnect" {
                Some(SocketFault::Disconnect)
            } else if action_s == "io-error" {
                Some(SocketFault::IoError)
            } else if let Some(ms) = action_s.strip_prefix("slow-client:") {
                match ms.parse::<u64>() {
                    Ok(ms) => Some(SocketFault::SlowClient(Duration::from_millis(ms))),
                    Err(_) => return bad(rule, "slow-client wants milliseconds, e.g. slow-client:20"),
                }
            } else {
                None
            };
            if let Some(fault) = socket_fault {
                if target.contains('/') {
                    return bad(rule, "socket faults target a frame index, not PORT/INSTR");
                }
                let (frame_s, count) = match target.rsplit_once('*') {
                    None => (target, None),
                    Some(("", "")) => (target, None),
                    Some((_, "")) => return bad(rule, "fire count after `*` must be an integer"),
                    Some((f, n)) => match n.parse::<u64>() {
                        Ok(c) => (f, Some(c)),
                        Err(_) => return bad(rule, "fire count after `*` must be an integer"),
                    },
                };
                let frame = if frame_s == "*" {
                    None
                } else {
                    match frame_s.parse::<u64>() {
                        Ok(f) => Some(f),
                        Err(_) => return bad(rule, "frame must be an index or `*`"),
                    }
                };
                plan = plan.inject_socket(frame, fault, count);
                continue;
            }
            let Some((port, instr_part)) = target.split_once('/') else {
                return bad(rule, "target must be PORT/INSTR");
            };
            // The instruction part may carry a `*COUNT` suffix; a bare
            // `*` is the wildcard instruction, not a count marker.
            let (instr, count) = match instr_part.rsplit_once('*') {
                None => (instr_part, None),
                Some(("", "")) => (instr_part, None),
                Some((_, "")) => return bad(rule, "fire count after `*` must be an integer"),
                Some((i, n)) => match n.parse::<u64>() {
                    Ok(c) => (i, Some(c)),
                    Err(_) => return bad(rule, "fire count after `*` must be an integer"),
                },
            };
            if port.is_empty() || instr.is_empty() {
                return bad(rule, "target must be PORT/INSTR");
            }
            let action = if let Some(msg) = action_s.strip_prefix("panic") {
                FaultAction::Panic(
                    msg.strip_prefix(':').unwrap_or("injected panic").to_string(),
                )
            } else if action_s == "unknown" {
                FaultAction::ForceUnknown
            } else if let Some(ms) = action_s.strip_prefix("delay:") {
                match ms.parse::<u64>() {
                    Ok(ms) => FaultAction::Delay(Duration::from_millis(ms)),
                    Err(_) => return bad(rule, "delay wants milliseconds, e.g. delay:50"),
                }
            } else {
                return bad(rule, "action must be panic[:MSG], unknown, or delay:MILLIS");
            };
            plan = plan.inject(port, instr, action, count);
        }
        Ok(plan)
    }

    /// The action to apply to this job, if a rule matches and still has
    /// fires left. The first matching rule (in declaration order) with
    /// remaining fires wins, and one fire is consumed.
    pub fn fire(&self, port: &str, instr: &str) -> Option<FaultAction> {
        self.rules
            .iter()
            .find(|r| r.matches(port, instr) && r.try_fire())
            .map(|r| r.action.clone())
    }

    /// Adds a socket rule: `fault` fires on the `frame`-th frame written
    /// (`None` = any frame) at most `count` times (`None` = unlimited).
    pub fn inject_socket(
        mut self,
        frame: Option<u64>,
        fault: SocketFault,
        count: Option<u64>,
    ) -> Self {
        self.socket_rules.push(SocketRule {
            frame,
            fault,
            remaining: AtomicU64::new(count.unwrap_or(u64::MAX)),
        });
        self
    }

    /// The socket fault to apply while writing the `frame`-th frame, if
    /// a socket rule matches and still has fires left. First matching
    /// rule wins; one fire is consumed.
    pub fn socket_fault(&self, frame: u64) -> Option<SocketFault> {
        self.socket_rules
            .iter()
            .find(|r| r.try_fire(frame))
            .map(|r| r.fault)
    }

    /// Whether any socket rules exist (lets I/O paths skip the
    /// per-frame check entirely in the common case).
    pub fn has_socket_faults(&self) -> bool {
        !self.socket_rules.is_empty()
    }
}

/// A rule in a fault-plan spec that failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlanError {
    /// The offending rule text.
    pub rule: String,
    /// What was wrong with it.
    pub reason: String,
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault rule {:?}: {}", self.rule, self.reason)
    }
}

impl std::error::Error for FaultPlanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_rules_and_wildcards() {
        let plan =
            FaultPlan::parse("panic:boom@counter/inc*1; unknown@*/dec ;delay:5@p/i").unwrap();
        assert_eq!(
            plan.fire("counter", "inc"),
            Some(FaultAction::Panic("boom".into()))
        );
        // The count-1 rule is spent.
        assert_eq!(plan.fire("counter", "inc"), None);
        assert_eq!(plan.fire("anything", "dec"), Some(FaultAction::ForceUnknown));
        assert_eq!(plan.fire("anything", "dec"), Some(FaultAction::ForceUnknown));
        assert_eq!(
            plan.fire("p", "i"),
            Some(FaultAction::Delay(Duration::from_millis(5)))
        );
        assert_eq!(plan.fire("p", "other"), None);
    }

    #[test]
    fn parse_default_panic_message_and_star_instr() {
        let plan = FaultPlan::parse("panic@*/*").unwrap();
        assert_eq!(
            plan.fire("any", "thing"),
            Some(FaultAction::Panic("injected panic".into()))
        );
    }

    #[test]
    fn parse_rejects_malformed_rules() {
        for bad in ["panic", "panic@noslash", "explode@a/b", "delay:x@a/b", "unknown@a/b*x"] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn parse_socket_rules() {
        let plan =
            FaultPlan::parse("disconnect@1*1; io-error@*; slow-client:20@0").unwrap();
        assert!(plan.has_socket_faults());
        // Frame 0: the slow-client rule is declared after io-error@*,
        // which matches first.
        assert_eq!(plan.socket_fault(0), Some(SocketFault::IoError));
        assert_eq!(plan.socket_fault(1), Some(SocketFault::Disconnect));
        // disconnect@1 is spent after one fire; io-error@* still matches.
        assert_eq!(plan.socket_fault(1), Some(SocketFault::IoError));

        let plan = FaultPlan::parse("slow-client:20@0; disconnect@*").unwrap();
        assert_eq!(
            plan.socket_fault(0),
            Some(SocketFault::SlowClient(Duration::from_millis(20)))
        );
        assert_eq!(plan.socket_fault(7), Some(SocketFault::Disconnect));
        // Job rules are unaffected by socket rules.
        assert_eq!(plan.fire("p", "i"), None);
    }

    #[test]
    fn parse_rejects_malformed_socket_rules() {
        for bad in [
            "disconnect@a/b",
            "disconnect@x",
            "slow-client:x@*",
            "io-error@1*x",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn first_matching_rule_wins_until_spent() {
        let plan = FaultPlan::new()
            .inject("p", "i", FaultAction::ForceUnknown, Some(1))
            .inject("*", "*", FaultAction::Panic("fallback".into()), None);
        assert_eq!(plan.fire("p", "i"), Some(FaultAction::ForceUnknown));
        assert_eq!(
            plan.fire("p", "i"),
            Some(FaultAction::Panic("fallback".into()))
        );
    }
}
