//! # gila-verify — refinement checking of RTL against module-ILAs
//!
//! The verification half of the DATE 2021 methodology. Given a port-ILA
//! (from `gila-core`), an RTL implementation (from `gila-rtl`), and a
//! small JSON-serializable [`RefinementMap`] (state map, interface map,
//! and per-instruction start/finish conditions), the engine
//! *automatically generates one correctness property per atomic
//! instruction* —
//!
//! > starting from corresponding equivalent states, after executing the
//! > specified instruction, the corresponding states are equivalent —
//!
//! and discharges each by bounded unrolling + bit-blasting + SAT
//! ([`verify_port`] / [`verify_module`]). UNSAT proves the instruction;
//! SAT yields a concrete counterexample trace ([`RefinementCex`]).
//! Because every instruction of every port is checked, the property set
//! is *complete* for the module's functional (non-timing) behaviour.
//!
//! The crate also provides the paper's small-memory abstraction
//! ([`abstract_port_memory`] / [`abstract_rtl_memory`]) and Fig. 5-style
//! property rendering ([`render_property`]).
//!
//! # Examples
//!
//! ```
//! use gila_core::{PortIla, StateKind};
//! use gila_expr::Sort;
//! use gila_rtl::parse_verilog;
//! use gila_verify::{verify_port, RefinementMap, VerifyOptions};
//!
//! // ILA: a 4-bit counter with inc/hold instructions.
//! let mut ila = PortIla::new("counter");
//! let en = ila.input("en", Sort::Bv(1));
//! let cnt = ila.state("cnt", Sort::Bv(4), StateKind::Output);
//! let d = ila.ctx_mut().eq_u64(en, 1);
//! let one = ila.ctx_mut().bv_u64(1, 4);
//! let nx = ila.ctx_mut().bvadd(cnt, one);
//! ila.instr("inc").decode(d).update("cnt", nx).add()?;
//! let d = ila.ctx_mut().eq_u64(en, 0);
//! ila.instr("hold").decode(d).add()?;
//!
//! // RTL implementation.
//! let rtl = parse_verilog(r#"
//! module counter(clk, en_in);
//!   input clk; input en_in;
//!   reg [3:0] count;
//!   always @(posedge clk) if (en_in) count <= count + 4'd1;
//! endmodule
//! "#)?;
//!
//! // Refinement map and check.
//! let mut map = RefinementMap::new("counter");
//! map.map_state("cnt", "count");
//! map.map_input("en", "en_in");
//! let report = verify_port(&ila, &rtl, &map, &VerifyOptions::default())?;
//! assert!(report.all_hold());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod abstraction;
mod cache_key;
mod checkpoint;
mod compiled;
mod cosim;
mod engine;
mod equiv;
mod fault;
mod hunt;
mod invariants;
mod mutation;
mod property;
mod refmap;
mod scheduler;
mod shrink;
mod synth;
mod vcd;

pub use abstraction::{abstract_port_memory, abstract_rtl_memory, AbstractError};
pub use cache_key::{slice_keys, SliceKey, CACHE_KEY_VERSION};
pub use checkpoint::{parse_journal_entry, verdict_to_json, CheckpointWriter, JournalEntry};
pub use engine::{
    rtl_to_ts, verify_module, verify_port, BudgetSpent, CheckResult, InstrVerdict, ModuleReport,
    PortReport, RefinementCex, SolveBudget, VerdictCounts, VerifyError, VerifyOptions,
};
pub use fault::{FaultAction, FaultPlan, FaultPlanError, SocketFault};
/// Re-exported so budget consumers can name the resource that ran out
/// without depending on `gila-smt` directly.
pub use gila_smt::ResourceOut;
pub use property::{render_all_properties, render_property};
pub use refmap::{FinishCondition, InputPolicy, InstructionMap, RefinementMap};
pub use compiled::{cosim_differential, cosimulate_compiled, replay_compiled};
pub use cosim::{
    cosimulate, parse_bv, parse_value, random_bv, random_value, render_bv, render_value,
    CosimError, Divergence,
};
pub use equiv::{check_rtl_equivalence, EquivError, EquivOutcome};
pub use hunt::{hunt, HuntConfig, HuntFinding, HuntReport, HuntTarget};
pub use shrink::{shrink_divergence, ShrinkResult};
pub use invariants::validate_invariants;
pub use mutation::{mutate_register, MutateError, Mutation, MutationReport};
pub use synth::{identity_refmap, identity_refmaps, synthesize_module, synthesize_port, SynthError};
pub use vcd::cex_to_vcd;
