//! JSONL checkpoint/resume for verification runs.
//!
//! A long verification run streams one JSON line per decided job to a
//! checkpoint file — flushed per line, so a crash or kill loses at most
//! the line being written. A later run with `resume` loads the file and
//! skips every `(port, instruction)` pair that was already *decided*
//! (`holds`, `cex`, `unreached`); `unknown` and `panicked` entries are
//! deliberately not treated as decided, so a resumed run re-attempts
//! exactly the jobs that failed to produce an answer.
//!
//! The entry schema (one object per line):
//!
//! ```text
//! {"port": "...", "instr": "...", "verdict": "holds|cex|unreached|unknown|panicked",
//!  ... verdict-specific fields ...}
//! ```
//!
//! Resumed counterexample verdicts carry only the mismatch summary
//! (`finish_cycle`, `mismatched`), not the full witness trace; rerun
//! the instruction without `resume` to regenerate the trace.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::Duration;

use gila_json::Value;

use crate::engine::{CheckResult, InstrVerdict, RefinementCex, VerifyError};

/// A line-buffered, mutex-guarded JSONL checkpoint sink shared by every
/// worker of a run.
pub struct CheckpointWriter {
    file: Mutex<BufWriter<File>>,
}

impl CheckpointWriter {
    /// Creates `path` fresh, truncating any previous checkpoint.
    pub fn create(path: &Path) -> Result<Self, VerifyError> {
        let file = File::create(path).map_err(|e| VerifyError::Checkpoint {
            path: path.display().to_string(),
            reason: e.to_string(),
        })?;
        Ok(CheckpointWriter {
            file: Mutex::new(BufWriter::new(file)),
        })
    }

    /// Opens `path` for appending (creating it if missing), so a
    /// resumed run keeps extending the checkpoint it read.
    pub fn append(path: &Path) -> Result<Self, VerifyError> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| VerifyError::Checkpoint {
                path: path.display().to_string(),
                reason: e.to_string(),
            })?;
        Ok(CheckpointWriter {
            file: Mutex::new(BufWriter::new(file)),
        })
    }

    /// Appends one verdict line and flushes it. Best-effort: an I/O
    /// failure (disk full, path removed) is swallowed — losing the
    /// checkpoint must not fail the verification run it was protecting.
    pub(crate) fn record(&self, port: &str, verdict: &InstrVerdict) {
        let line = entry_json(port, verdict).to_compact();
        // A worker that panicked while holding the lock poisons it; the
        // data is a fully written or unwritten line either way, so keep
        // using it.
        let mut file = self.file.lock().unwrap_or_else(|p| p.into_inner());
        let _ = writeln!(file, "{line}");
        let _ = file.flush();
    }
}

/// Serializes one verdict in the checkpoint entry schema (see the
/// module docs). Public so other journals — the serve-layer proof
/// cache — reuse the exact torn-tail-tolerant format, possibly with
/// extra fields appended to the object.
pub fn verdict_to_json(port: &str, v: &InstrVerdict) -> Value {
    entry_json(port, v)
}

/// One parsed journal entry: either a decided verdict or an undecided
/// marker (`unknown`/`panicked`) that must *remove* any earlier
/// decision for the same `(port, instruction)` pair.
#[derive(Debug)]
pub enum JournalEntry {
    /// A decided verdict (`holds`, `cex` summary, `unreached`).
    Decided {
        /// Port the verdict belongs to.
        port: String,
        /// Instruction name.
        instr: String,
        /// The reconstructed verdict (zero effort counters). Boxed:
        /// verdicts dwarf the `Undecided` variant.
        verdict: Box<InstrVerdict>,
    },
    /// An undecided outcome: the job never produced an answer.
    Undecided {
        /// Port the entry belongs to.
        port: String,
        /// Instruction name.
        instr: String,
    },
}

/// Parses one checkpoint entry object back into a [`JournalEntry`].
/// The inverse of [`verdict_to_json`] up to the fields a journal keeps
/// (counterexamples come back as summaries). Unknown extra fields are
/// ignored, so journals may extend the schema.
pub fn parse_journal_entry(entry: &Value) -> Result<JournalEntry, String> {
    let field = |key: &str| {
        entry
            .get(key)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing field {key:?}"))
    };
    let port = field("port")?;
    let instr = field("instr")?;
    let result = match field("verdict")?.as_str() {
        "holds" => CheckResult::Holds,
        "unreached" => CheckResult::FinishNotReached {
            max_cycles: entry
                .get("max_cycles")
                .and_then(Value::as_usize)
                .unwrap_or(0),
        },
        "cex" => CheckResult::CounterExample(Box::new(RefinementCex {
            finish_cycle: entry
                .get("finish_cycle")
                .and_then(Value::as_usize)
                .unwrap_or(0),
            rtl_start_state: Default::default(),
            rtl_inputs: Vec::new(),
            rtl_trace: Vec::new(),
            rtl_finish_state: Default::default(),
            ila_post_state: Default::default(),
            mismatched_states: entry
                .get("mismatched")
                .and_then(Value::as_array)
                .map(|a| {
                    a.iter()
                        .filter_map(Value::as_str)
                        .map(str::to_string)
                        .collect()
                })
                .unwrap_or_default(),
        })),
        "unknown" | "panicked" => return Ok(JournalEntry::Undecided { port, instr }),
        other => return Err(format!("unknown verdict {other:?}")),
    };
    let verdict = InstrVerdict {
        instruction: instr.clone(),
        result,
        time: Duration::ZERO,
        stats: Default::default(),
        cnf_growth: Default::default(),
        effort: Default::default(),
        solves: 0,
        retries: 0,
        worker: None,
        batch_id: None,
        batch_size: 0,
        queue_ns: 0,
        stolen: false,
        clauses_exported: 0,
        clauses_imported: 0,
        clauses_deduped: 0,
        inprocess: Default::default(),
    };
    Ok(JournalEntry::Decided {
        port,
        instr,
        verdict: Box::new(verdict),
    })
}

fn entry_json(port: &str, v: &InstrVerdict) -> Value {
    let mut fields = vec![
        ("port".to_string(), Value::String(port.to_string())),
        ("instr".to_string(), Value::String(v.instruction.clone())),
        ("verdict".to_string(), Value::String(v.result.tag().to_string())),
    ];
    match &v.result {
        CheckResult::Holds => {}
        CheckResult::CounterExample(cex) => {
            fields.push((
                "finish_cycle".to_string(),
                Value::Number(cex.finish_cycle as f64),
            ));
            fields.push((
                "mismatched".to_string(),
                Value::Array(
                    cex.mismatched_states
                        .iter()
                        .map(|s| Value::String(s.clone()))
                        .collect(),
                ),
            ));
        }
        CheckResult::FinishNotReached { max_cycles } => {
            fields.push(("max_cycles".to_string(), Value::Number(*max_cycles as f64)));
        }
        CheckResult::Unknown { reason, budget_spent } => {
            fields.push(("reason".to_string(), Value::String(reason.as_str().to_string())));
            fields.push((
                "conflicts_spent".to_string(),
                Value::Number(budget_spent.conflicts as f64),
            ));
        }
        CheckResult::JobPanicked { message } => {
            fields.push(("message".to_string(), Value::String(message.clone())));
        }
    }
    fields.push(("wall_ns".to_string(), Value::Number(v.time.as_nanos() as f64)));
    Value::object(fields)
}

/// Loads a checkpoint into a `(port, instruction) -> verdict` map of
/// *decided* jobs. Later lines win over earlier ones for the same pair
/// (a resumed run re-records what it re-verifies). A torn final line —
/// the signature of a killed writer — is tolerated; malformed content
/// anywhere else is an error.
pub(crate) fn load_resume(
    path: &Path,
) -> Result<HashMap<(String, String), InstrVerdict>, VerifyError> {
    let err = |reason: String| VerifyError::Checkpoint {
        path: path.display().to_string(),
        reason,
    };
    let text = std::fs::read_to_string(path).map_err(|e| err(e.to_string()))?;
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    let mut decided = HashMap::new();
    for (i, line) in lines.iter().enumerate() {
        let last = i + 1 == lines.len();
        let entry = match gila_json::parse(line) {
            Ok(v) => v,
            Err(_) if last => break,
            Err(e) => return Err(err(format!("line {}: {e}", i + 1))),
        };
        match parse_journal_entry(&entry).map_err(|e| err(format!("line {}: {e}", i + 1)))? {
            JournalEntry::Decided {
                port,
                instr,
                verdict,
            } => {
                decided.insert((port, instr), *verdict);
            }
            // Undecided outcomes: keeping any earlier decision is wrong —
            // they never had one — so make sure the job reruns.
            JournalEntry::Undecided { port, instr } => {
                decided.remove(&(port, instr));
            }
        }
    }
    Ok(decided)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verdict(instr: &str, result: CheckResult) -> InstrVerdict {
        InstrVerdict {
            instruction: instr.to_string(),
            result,
            time: Duration::from_millis(1),
            stats: Default::default(),
            cnf_growth: Default::default(),
            effort: Default::default(),
            solves: 2,
            retries: 0,
            worker: None,
            batch_id: None,
            batch_size: 0,
            queue_ns: 0,
            stolen: false,
            clauses_exported: 0,
            clauses_imported: 0,
            clauses_deduped: 0,
            inprocess: Default::default(),
        }
    }

    #[test]
    fn roundtrip_skips_undecided_entries() {
        let dir = std::env::temp_dir().join("gila_ckpt_roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        let w = CheckpointWriter::create(&path).unwrap();
        w.record("p", &verdict("a", CheckResult::Holds));
        w.record(
            "p",
            &verdict(
                "b",
                CheckResult::Unknown {
                    reason: gila_smt::ResourceOut::Conflicts,
                    budget_spent: Default::default(),
                },
            ),
        );
        w.record(
            "p",
            &verdict(
                "c",
                CheckResult::JobPanicked {
                    message: "boom".into(),
                },
            ),
        );
        w.record("p", &verdict("d", CheckResult::FinishNotReached { max_cycles: 3 }));
        drop(w);
        let decided = load_resume(&path).unwrap();
        assert!(decided.contains_key(&("p".into(), "a".into())));
        assert!(!decided.contains_key(&("p".into(), "b".into())), "unknown is not decided");
        assert!(!decided.contains_key(&("p".into(), "c".into())), "panicked is not decided");
        let d = &decided[&("p".into(), "d".into())];
        assert!(matches!(
            d.result,
            CheckResult::FinishNotReached { max_cycles: 3 }
        ));
        assert_eq!(d.instruction, "d");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn later_lines_win_and_undecided_overrides_decided() {
        let dir = std::env::temp_dir().join("gila_ckpt_dedup");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        let w = CheckpointWriter::create(&path).unwrap();
        w.record("p", &verdict("a", CheckResult::Holds));
        w.record(
            "p",
            &verdict(
                "a",
                CheckResult::Unknown {
                    reason: gila_smt::ResourceOut::Deadline,
                    budget_spent: Default::default(),
                },
            ),
        );
        drop(w);
        // The later `unknown` wipes the earlier decision: the job reruns.
        let decided = load_resume(&path).unwrap();
        assert!(decided.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_final_line_is_tolerated() {
        let dir = std::env::temp_dir().join("gila_ckpt_torn");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        let w = CheckpointWriter::create(&path).unwrap();
        w.record("p", &verdict("a", CheckResult::Holds));
        drop(w);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        write!(f, "{{\"port\":\"p\",\"instr\":\"b\",\"verd").unwrap();
        drop(f);
        let decided = load_resume(&path).unwrap();
        assert_eq!(decided.len(), 1);
        // ... but a malformed line in the middle is a real error.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        writeln!(f).unwrap();
        writeln!(f, "{{\"port\":\"p\",\"instr\":\"c\",\"verdict\":\"holds\"}}").unwrap();
        drop(f);
        assert!(matches!(
            load_resume(&path),
            Err(VerifyError::Checkpoint { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cex_entries_resume_with_mismatch_summary() {
        let dir = std::env::temp_dir().join("gila_ckpt_cex");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        let w = CheckpointWriter::create(&path).unwrap();
        let cex = RefinementCex {
            finish_cycle: 2,
            rtl_start_state: Default::default(),
            rtl_inputs: Vec::new(),
            rtl_trace: Vec::new(),
            rtl_finish_state: Default::default(),
            ila_post_state: Default::default(),
            mismatched_states: vec!["cnt".into()],
        };
        w.record("p", &verdict("a", CheckResult::CounterExample(Box::new(cex))));
        drop(w);
        let decided = load_resume(&path).unwrap();
        let CheckResult::CounterExample(back) = &decided[&("p".into(), "a".into())].result
        else {
            panic!("expected cex");
        };
        assert_eq!(back.finish_cycle, 2);
        assert_eq!(back.mismatched_states, vec!["cnt".to_string()]);
        std::fs::remove_file(&path).ok();
    }
}
