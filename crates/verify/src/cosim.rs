//! Simulation-based refinement testing: drive a port-ILA and an RTL
//! implementation with the same random command streams and compare the
//! refinement-mapped states after every cycle.
//!
//! This is the lightweight dynamic counterpart of [`crate::verify_port`]:
//! no proof, but millions of cycles per second, useful as a smoke check
//! while models are being written and as an independent oracle for the
//! SAT-based engine.

use std::collections::BTreeMap;
use std::fmt;

use gila_core::{PortIla, PortSimulator, SimError};
use gila_expr::{BitVecValue, MemValue, Sort, Value};
use gila_rtl::{RtlModule, RtlSimulator};
use rand::{Rng, SeedableRng};

use crate::refmap::RefinementMap;

/// A state divergence found by co-simulation.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// The cycle at which the divergence appeared.
    pub cycle: usize,
    /// The instruction the ILA executed that cycle.
    pub instruction: String,
    /// The ILA state that disagrees.
    pub state: String,
    /// The ILA's value.
    pub ila_value: Value,
    /// The RTL's value.
    pub rtl_value: Value,
    /// The RTL input vectors driven on cycles `0..=cycle` — the exact
    /// command stream that reproduces this divergence.
    pub inputs: Vec<BTreeMap<String, BitVecValue>>,
    /// The RTL start state the run began from. Together with `inputs`
    /// this makes the divergence exactly replayable without the
    /// original RNG.
    pub start_state: BTreeMap<String, Value>,
}

impl Divergence {
    /// Renders the offending command stream in `gila sim` stimulus
    /// format: `# start name=value` header lines pinning the RTL start
    /// state, then one cycle per line of `name=0xHEX` pairs. Feeding the
    /// text back through `gila hunt --replay` reproduces the divergence
    /// exactly (the `# start` lines parse as comments everywhere else).
    pub fn command_stream(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.start_state {
            out.push_str(&format!("# start {name}={}\n", render_value(v)));
        }
        for (cycle, inputs) in self.inputs.iter().enumerate() {
            out.push_str(&format!("# cycle {cycle}\n"));
            let rendered: Vec<String> = inputs
                .iter()
                .map(|(name, v)| format!("{name}={}", render_bv(v)))
                .collect();
            out.push_str(&rendered.join(" "));
            out.push('\n');
        }
        out
    }
}

/// Renders a bit-vector as `0xHEX` (values fitting in 64 bits) or
/// `0bBITS` (msb first). Inverse of [`parse_bv`].
pub fn render_bv(v: &BitVecValue) -> String {
    match v.try_to_u64() {
        Some(x) => format!("0x{x:x}"),
        None => {
            let bits: String = v
                .to_bits()
                .iter()
                .rev()
                .map(|b| if *b { '1' } else { '0' })
                .collect();
            format!("0b{bits}")
        }
    }
}

/// Renders a [`Value`] in the command-stream format: booleans and
/// bit-vectors via [`render_bv`], memories as
/// `@DEFAULT{ADDR:DATA,...}`. Inverse of [`parse_value`].
pub fn render_value(v: &Value) -> String {
    match v {
        Value::Bool(b) => format!("0x{}", u32::from(*b)),
        Value::Bv(bv) => render_bv(bv),
        Value::Mem(m) => {
            let writes: Vec<String> = m
                .iter_written()
                .map(|(a, d)| format!("0x{a:x}:{}", render_bv(d)))
                .collect();
            format!("@{}{{{}}}", render_bv(m.default_word()), writes.join(","))
        }
    }
}

/// Parses a [`render_bv`]-formatted literal to `width` bits (excess high
/// bits are truncated; missing high bits are zero).
pub fn parse_bv(s: &str, width: u32) -> Option<BitVecValue> {
    let v = if let Some(hex) = s.strip_prefix("0x") {
        BitVecValue::parse_hex(hex)?
    } else if let Some(bin) = s.strip_prefix("0b") {
        BitVecValue::parse_binary(bin)?
    } else {
        return None;
    };
    Some(match v.width().cmp(&width) {
        std::cmp::Ordering::Equal => v,
        std::cmp::Ordering::Less => v.zext(width),
        std::cmp::Ordering::Greater => v.extract(width - 1, 0),
    })
}

/// Parses a [`render_value`]-formatted literal against an expected
/// sort. Inverse of [`render_value`].
pub fn parse_value(s: &str, sort: Sort) -> Option<Value> {
    match sort {
        Sort::Bool => Some(Value::Bool(!parse_bv(s, 1)?.is_zero())),
        Sort::Bv(w) => Some(Value::Bv(parse_bv(s, w)?)),
        Sort::Mem {
            addr_width,
            data_width,
        } => {
            let body = s.strip_prefix('@')?;
            let (default, writes) = body.split_once('{')?;
            let writes = writes.strip_suffix('}')?;
            let mut m = MemValue::filled(addr_width, data_width, parse_bv(default, data_width)?);
            for pair in writes.split(',').filter(|p| !p.is_empty()) {
                let (addr, data) = pair.split_once(':')?;
                let addr = parse_bv(addr, addr_width)?;
                m = m.write(&addr, &parse_bv(data, data_width)?);
            }
            Some(Value::Mem(m))
        }
    }
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "state {:?} diverged at cycle {} after {:?}: ila = {:?}, rtl = {:?}\n\
             offending command stream:\n{}",
            self.state,
            self.cycle,
            self.instruction,
            self.ila_value,
            self.rtl_value,
            self.command_stream()
        )
    }
}

/// An error during co-simulation setup or stepping.
#[derive(Clone, Debug)]
pub enum CosimError {
    /// An ILA input has no interface-map entry.
    UnmappedInput(
        /// The input's name.
        String,
    ),
    /// A refinement-mapped RTL signal does not exist.
    UnknownRtlSignal(
        /// The signal name.
        String,
    ),
    /// No instruction decoded for any of the attempted random commands
    /// (the port's command space is heavily constrained; seed the
    /// stimulus differently).
    NoDecodableCommand {
        /// The cycle where stimulus generation gave up.
        cycle: usize,
    },
    /// The model is nondeterministic or otherwise failed to step.
    Sim(
        /// The underlying simulator error.
        SimError,
    ),
}

impl fmt::Display for CosimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CosimError::UnmappedInput(name) => {
                write!(f, "ILA input {name:?} has no interface-map entry")
            }
            CosimError::UnknownRtlSignal(name) => {
                write!(f, "RTL has no signal {name:?}")
            }
            CosimError::NoDecodableCommand { cycle } => {
                write!(f, "no decodable command found at cycle {cycle}")
            }
            CosimError::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CosimError {}

/// A random bit-vector of `width` bits. Mostly uniform per-bit, but one
/// draw in eight lands on a boundary value — zero, all-ones, one, or
/// the sign bit alone — so narrow corner cases (carry out, sign
/// flips, wrap-around) appear at realistic rates even for wide vectors.
pub fn random_bv(rng: &mut impl Rng, width: u32) -> BitVecValue {
    if rng.gen_range(0..8u32) == 0 {
        match rng.gen_range(0..4u32) {
            0 => BitVecValue::zero(width),
            1 => BitVecValue::ones(width),
            2 => BitVecValue::one(width),
            _ => {
                let bits: Vec<bool> = (0..width).map(|i| i == width - 1).collect();
                BitVecValue::from_bits(&bits)
            }
        }
    } else {
        let bits: Vec<bool> = (0..width).map(|_| rng.gen()).collect();
        BitVecValue::from_bits(&bits)
    }
}

/// A random [`Value`] of `sort`, boundary-biased via [`random_bv`].
/// Memories get eight writes over a zeroed array, always including the
/// lowest (`0`) and highest (`2^w - 1`) addresses so edge-of-address-
/// space behaviour is exercised. Shared with the randomized property
/// tests so expression-level checks draw environments from the same
/// distribution the co-simulator uses for states and inputs.
pub fn random_value(rng: &mut impl Rng, sort: Sort) -> Value {
    match sort {
        Sort::Bool => Value::Bool(rng.gen()),
        Sort::Bv(w) => Value::Bv(random_bv(rng, w)),
        Sort::Mem {
            addr_width,
            data_width,
        } => {
            let mut m = MemValue::zeroed(addr_width, data_width);
            m = m.write(&BitVecValue::zero(addr_width), &random_bv(rng, data_width));
            m = m.write(&BitVecValue::ones(addr_width), &random_bv(rng, data_width));
            for _ in 0..6 {
                let a = BitVecValue::from_u64(rng.gen(), addr_width);
                m = m.write(&a, &random_bv(rng, data_width));
            }
            Value::Mem(m)
        }
    }
}

pub(crate) fn default_value(sort: Sort) -> Value {
    match sort {
        Sort::Bool => Value::Bool(false),
        Sort::Bv(w) => Value::Bv(BitVecValue::zero(w)),
        Sort::Mem {
            addr_width,
            data_width,
        } => Value::Mem(MemValue::zeroed(addr_width, data_width)),
    }
}

/// Co-simulates `port` against `rtl` for `cycles` random commands from
/// `seed`, starting from a random (consistent) state.
///
/// Returns `Ok(None)` if the mapped states agreed on every cycle,
/// `Ok(Some(divergence))` at the first disagreement.
///
/// States listed in the map's `unchecked_states` are re-anchored from
/// the RTL before every instruction and excluded from the comparison
/// (they belong to other ports).
///
/// # Errors
///
/// See [`CosimError`].
pub fn cosimulate(
    port: &PortIla,
    rtl: &RtlModule,
    map: &RefinementMap,
    seed: u64,
    cycles: usize,
) -> Result<Option<Divergence>, CosimError> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut rtl_sim = RtlSimulator::new(rtl);
    // Random start state on the RTL side.
    let state_names: Vec<String> = rtl_sim.state().keys().cloned().collect();
    for name in &state_names {
        let sort = rtl_sim.state()[name].sort();
        let v = random_value(&mut rng, sort);
        rtl_sim.set_state(name, v).expect("known state");
    }
    let start_state = rtl_sim.state().clone();
    let all_rtl_inputs: Vec<(String, u32)> = rtl
        .inputs()
        .iter()
        .map(|i| (i.name.clone(), i.width))
        .collect();
    let zero_inputs: BTreeMap<String, BitVecValue> = all_rtl_inputs
        .iter()
        .map(|(n, w)| (n.clone(), BitVecValue::zero(*w)))
        .collect();

    let read_state = |rtl_sim: &RtlSimulator,
                      inputs: &BTreeMap<String, BitVecValue>|
     -> Result<BTreeMap<String, Value>, CosimError> {
        map.state_map
            .iter()
            .map(|(ila_state, rtl_signal)| {
                rtl_sim
                    .signal(rtl_signal, inputs)
                    .map(|v| (ila_state.clone(), v))
                    .map_err(|_| CosimError::UnknownRtlSignal(rtl_signal.clone()))
            })
            .collect()
    };

    // Bootstrap the ILA state from the mapped RTL view.
    let start = read_state(&rtl_sim, &zero_inputs)?;
    let mut ila_state: BTreeMap<String, Value> = port
        .states()
        .iter()
        .map(|s| {
            let v = start
                .get(&s.name)
                .cloned()
                .unwrap_or_else(|| default_value(s.sort));
            (s.name.clone(), v)
        })
        .collect();

    let mut input_history: Vec<BTreeMap<String, BitVecValue>> = Vec::new();
    for cycle in 0..cycles {
        for name in &map.unchecked_states {
            if let Some(rtl_signal) = map.state_map.get(name) {
                let v = rtl_sim
                    .signal(rtl_signal, &zero_inputs)
                    .map_err(|_| CosimError::UnknownRtlSignal(rtl_signal.clone()))?;
                ila_state.insert(name.clone(), v);
            }
        }
        let mut ila_sim =
            PortSimulator::with_state(port, ila_state.clone()).map_err(CosimError::Sim)?;
        let mut fired = None;
        let mut rtl_inputs = BTreeMap::new();
        for _attempt in 0..64 {
            let mut ila_inputs = BTreeMap::new();
            rtl_inputs = all_rtl_inputs
                .iter()
                .map(|(n, w)| {
                    let bits: Vec<bool> = (0..*w).map(|_| rng.gen()).collect();
                    (n.clone(), BitVecValue::from_bits(&bits))
                })
                .collect();
            for i in port.inputs() {
                let rtl_name = map
                    .interface_map
                    .get(&i.name)
                    .ok_or_else(|| CosimError::UnmappedInput(i.name.clone()))?;
                let v = rtl_inputs
                    .get(rtl_name)
                    .ok_or_else(|| CosimError::UnknownRtlSignal(rtl_name.clone()))?
                    .clone();
                ila_inputs.insert(i.name.clone(), Value::Bv(v));
            }
            match ila_sim.step(&ila_inputs) {
                Ok(name) => {
                    fired = Some(name);
                    break;
                }
                Err(SimError::NoInstruction { .. }) => continue,
                Err(e) => return Err(CosimError::Sim(e)),
            }
        }
        let Some(fired) = fired else {
            return Err(CosimError::NoDecodableCommand { cycle });
        };
        input_history.push(rtl_inputs.clone());
        ila_state = ila_sim.state().clone();
        rtl_sim
            .step(&rtl_inputs)
            .expect("inputs cover all pins by construction");
        let rtl_view = read_state(&rtl_sim, &rtl_inputs)?;
        for (state, rtl_value) in &rtl_view {
            if map.unchecked_states.contains(state) {
                continue;
            }
            let ila_value = &ila_state[state];
            if ila_value != rtl_value {
                return Ok(Some(Divergence {
                    cycle,
                    instruction: fired,
                    state: state.clone(),
                    ila_value: ila_value.clone(),
                    rtl_value: rtl_value.clone(),
                    inputs: input_history,
                    start_state,
                }));
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gila_core::StateKind;
    use gila_rtl::parse_verilog;

    fn counter_setup(step: u64) -> (PortIla, RtlModule, RefinementMap) {
        let mut p = PortIla::new("counter");
        let en = p.input("en", Sort::Bv(1));
        let cnt = p.state("cnt", Sort::Bv(8), StateKind::Output);
        let d = p.ctx_mut().eq_u64(en, 1);
        let one = p.ctx_mut().bv_u64(1, 8);
        let nx = p.ctx_mut().bvadd(cnt, one);
        p.instr("inc").decode(d).update("cnt", nx).add().unwrap();
        let d = p.ctx_mut().eq_u64(en, 0);
        p.instr("hold").decode(d).add().unwrap();
        let rtl = parse_verilog(&format!(
            r#"
module counter(clk, en_in);
  input clk; input en_in;
  reg [7:0] count;
  always @(posedge clk) if (en_in) count <= count + 8'd{step};
endmodule
"#
        ))
        .unwrap();
        let mut map = RefinementMap::new("counter");
        map.map_state("cnt", "count");
        map.map_input("en", "en_in");
        (p, rtl, map)
    }

    #[test]
    fn agreeing_pair_runs_clean() {
        let (p, rtl, map) = counter_setup(1);
        let d = cosimulate(&p, &rtl, &map, 1, 500).unwrap();
        assert!(d.is_none(), "{d:?}");
    }

    #[test]
    fn divergence_is_located() {
        let (p, rtl, map) = counter_setup(2);
        let d = cosimulate(&p, &rtl, &map, 1, 500)
            .unwrap()
            .expect("must diverge");
        assert_eq!(d.state, "cnt");
        assert_eq!(d.instruction, "inc");
        assert_eq!(
            (d.rtl_value.as_bv().to_u64() + 255) % 256,
            d.ila_value.as_bv().to_u64()
        );
    }

    #[test]
    fn random_values_cover_boundaries() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xD15);
        // Wide vectors: boundary draws must show up at a healthy rate —
        // per-bit sampling alone would essentially never produce them.
        let (mut zeros, mut ones, mut unit, mut sign) = (0u32, 0u32, 0u32, 0u32);
        const N: u32 = 4000;
        for _ in 0..N {
            let v = random_bv(&mut rng, 32);
            if v.is_zero() {
                zeros += 1;
            } else if v.is_ones() {
                ones += 1;
            } else if v.to_u64() == 1 {
                unit += 1;
            } else if v.to_u64() == 1 << 31 {
                sign += 1;
            }
        }
        for (what, n) in [("zero", zeros), ("ones", ones), ("one", unit), ("sign", sign)] {
            // Expected ~ N/32 each; demand at least a quarter of that.
            assert!(n >= N / 128, "boundary value {what} seen only {n} times");
        }
        // Memories: both ends of the address space are always written.
        for _ in 0..16 {
            let m = random_value(
                &mut rng,
                Sort::Mem {
                    addr_width: 16,
                    data_width: 8,
                },
            );
            let Value::Mem(m) = m else { unreachable!() };
            let written: Vec<u64> = m.iter_written().map(|(a, _)| a).collect();
            assert!(written.contains(&0), "no write at address 0");
            assert!(written.contains(&0xffff), "no write at the top address");
        }
    }

    #[test]
    fn command_stream_values_round_trip() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xF00);
        let sorts = [
            Sort::Bool,
            Sort::Bv(1),
            Sort::Bv(8),
            Sort::Bv(64),
            Sort::Bv(100),
            Sort::Mem {
                addr_width: 8,
                data_width: 16,
            },
            Sort::Mem {
                addr_width: 4,
                data_width: 96,
            },
        ];
        for sort in sorts {
            for _ in 0..50 {
                let v = random_value(&mut rng, sort);
                let text = render_value(&v);
                let back = parse_value(&text, sort).expect("parses back");
                assert_eq!(back, v, "round-trip through {text:?}");
            }
        }
    }

    #[test]
    fn config_errors_are_reported() {
        let (p, rtl, mut map) = counter_setup(1);
        map.interface_map.clear();
        assert!(matches!(
            cosimulate(&p, &rtl, &map, 1, 10),
            Err(CosimError::UnmappedInput(_))
        ));
        let (p, rtl, mut map) = counter_setup(1);
        map.map_state("cnt", "ghost");
        assert!(matches!(
            cosimulate(&p, &rtl, &map, 1, 10),
            Err(CosimError::UnknownRtlSignal(_))
        ));
    }
}
