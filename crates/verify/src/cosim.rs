//! Simulation-based refinement testing: drive a port-ILA and an RTL
//! implementation with the same random command streams and compare the
//! refinement-mapped states after every cycle.
//!
//! This is the lightweight dynamic counterpart of [`crate::verify_port`]:
//! no proof, but millions of cycles per second, useful as a smoke check
//! while models are being written and as an independent oracle for the
//! SAT-based engine.

use std::collections::BTreeMap;
use std::fmt;

use gila_core::{PortIla, PortSimulator, SimError};
use gila_expr::{BitVecValue, MemValue, Sort, Value};
use gila_rtl::{RtlModule, RtlSimulator};
use rand::{Rng, SeedableRng};

use crate::refmap::RefinementMap;

/// A state divergence found by co-simulation.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// The cycle at which the divergence appeared.
    pub cycle: usize,
    /// The instruction the ILA executed that cycle.
    pub instruction: String,
    /// The ILA state that disagrees.
    pub state: String,
    /// The ILA's value.
    pub ila_value: Value,
    /// The RTL's value.
    pub rtl_value: Value,
    /// The RTL input vectors driven on cycles `0..=cycle` — the exact
    /// command stream that reproduces this divergence.
    pub inputs: Vec<BTreeMap<String, BitVecValue>>,
}

impl Divergence {
    /// Renders the offending command stream in `gila sim` stimulus
    /// format: one cycle per line, `name=0xHEX` pairs. Replaying it
    /// (with the same random start state) reproduces the divergence.
    pub fn command_stream(&self) -> String {
        let mut out = String::new();
        for (cycle, inputs) in self.inputs.iter().enumerate() {
            out.push_str(&format!("# cycle {cycle}\n"));
            let rendered: Vec<String> = inputs
                .iter()
                .map(|(name, v)| match v.try_to_u64() {
                    Some(x) => format!("{name}=0x{x:x}"),
                    None => {
                        let bits: String = v
                            .to_bits()
                            .iter()
                            .rev()
                            .map(|b| if *b { '1' } else { '0' })
                            .collect();
                        format!("{name}=0b{bits}")
                    }
                })
                .collect();
            out.push_str(&rendered.join(" "));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "state {:?} diverged at cycle {} after {:?}: ila = {:?}, rtl = {:?}\n\
             offending command stream:\n{}",
            self.state,
            self.cycle,
            self.instruction,
            self.ila_value,
            self.rtl_value,
            self.command_stream()
        )
    }
}

/// An error during co-simulation setup or stepping.
#[derive(Clone, Debug)]
pub enum CosimError {
    /// An ILA input has no interface-map entry.
    UnmappedInput(
        /// The input's name.
        String,
    ),
    /// A refinement-mapped RTL signal does not exist.
    UnknownRtlSignal(
        /// The signal name.
        String,
    ),
    /// No instruction decoded for any of the attempted random commands
    /// (the port's command space is heavily constrained; seed the
    /// stimulus differently).
    NoDecodableCommand {
        /// The cycle where stimulus generation gave up.
        cycle: usize,
    },
    /// The model is nondeterministic or otherwise failed to step.
    Sim(
        /// The underlying simulator error.
        SimError,
    ),
}

impl fmt::Display for CosimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CosimError::UnmappedInput(name) => {
                write!(f, "ILA input {name:?} has no interface-map entry")
            }
            CosimError::UnknownRtlSignal(name) => {
                write!(f, "RTL has no signal {name:?}")
            }
            CosimError::NoDecodableCommand { cycle } => {
                write!(f, "no decodable command found at cycle {cycle}")
            }
            CosimError::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CosimError {}

/// A uniformly random [`Value`] of `sort` (memories get eight random
/// writes over a zeroed array). Shared with the randomized property
/// tests so expression-level checks draw environments from the same
/// distribution the co-simulator uses for states and inputs.
pub fn random_value(rng: &mut impl Rng, sort: Sort) -> Value {
    match sort {
        Sort::Bool => Value::Bool(rng.gen()),
        Sort::Bv(w) => {
            let bits: Vec<bool> = (0..w).map(|_| rng.gen()).collect();
            Value::Bv(BitVecValue::from_bits(&bits))
        }
        Sort::Mem {
            addr_width,
            data_width,
        } => {
            let mut m = MemValue::zeroed(addr_width, data_width);
            for _ in 0..8 {
                let a = BitVecValue::from_u64(rng.gen(), addr_width);
                let bits: Vec<bool> = (0..data_width).map(|_| rng.gen()).collect();
                m = m.write(&a, &BitVecValue::from_bits(&bits));
            }
            Value::Mem(m)
        }
    }
}

fn default_value(sort: Sort) -> Value {
    match sort {
        Sort::Bool => Value::Bool(false),
        Sort::Bv(w) => Value::Bv(BitVecValue::zero(w)),
        Sort::Mem {
            addr_width,
            data_width,
        } => Value::Mem(MemValue::zeroed(addr_width, data_width)),
    }
}

/// Co-simulates `port` against `rtl` for `cycles` random commands from
/// `seed`, starting from a random (consistent) state.
///
/// Returns `Ok(None)` if the mapped states agreed on every cycle,
/// `Ok(Some(divergence))` at the first disagreement.
///
/// States listed in the map's `unchecked_states` are re-anchored from
/// the RTL before every instruction and excluded from the comparison
/// (they belong to other ports).
///
/// # Errors
///
/// See [`CosimError`].
pub fn cosimulate(
    port: &PortIla,
    rtl: &RtlModule,
    map: &RefinementMap,
    seed: u64,
    cycles: usize,
) -> Result<Option<Divergence>, CosimError> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut rtl_sim = RtlSimulator::new(rtl);
    // Random start state on the RTL side.
    let state_names: Vec<String> = rtl_sim.state().keys().cloned().collect();
    for name in &state_names {
        let sort = rtl_sim.state()[name].sort();
        let v = random_value(&mut rng, sort);
        rtl_sim.set_state(name, v).expect("known state");
    }
    let all_rtl_inputs: Vec<(String, u32)> = rtl
        .inputs()
        .iter()
        .map(|i| (i.name.clone(), i.width))
        .collect();
    let zero_inputs: BTreeMap<String, BitVecValue> = all_rtl_inputs
        .iter()
        .map(|(n, w)| (n.clone(), BitVecValue::zero(*w)))
        .collect();

    let read_state = |rtl_sim: &RtlSimulator,
                      inputs: &BTreeMap<String, BitVecValue>|
     -> Result<BTreeMap<String, Value>, CosimError> {
        map.state_map
            .iter()
            .map(|(ila_state, rtl_signal)| {
                rtl_sim
                    .signal(rtl_signal, inputs)
                    .map(|v| (ila_state.clone(), v))
                    .map_err(|_| CosimError::UnknownRtlSignal(rtl_signal.clone()))
            })
            .collect()
    };

    // Bootstrap the ILA state from the mapped RTL view.
    let start = read_state(&rtl_sim, &zero_inputs)?;
    let mut ila_state: BTreeMap<String, Value> = port
        .states()
        .iter()
        .map(|s| {
            let v = start
                .get(&s.name)
                .cloned()
                .unwrap_or_else(|| default_value(s.sort));
            (s.name.clone(), v)
        })
        .collect();

    let mut input_history: Vec<BTreeMap<String, BitVecValue>> = Vec::new();
    for cycle in 0..cycles {
        for name in &map.unchecked_states {
            if let Some(rtl_signal) = map.state_map.get(name) {
                let v = rtl_sim
                    .signal(rtl_signal, &zero_inputs)
                    .map_err(|_| CosimError::UnknownRtlSignal(rtl_signal.clone()))?;
                ila_state.insert(name.clone(), v);
            }
        }
        let mut ila_sim =
            PortSimulator::with_state(port, ila_state.clone()).map_err(CosimError::Sim)?;
        let mut fired = None;
        let mut rtl_inputs = BTreeMap::new();
        for _attempt in 0..64 {
            let mut ila_inputs = BTreeMap::new();
            rtl_inputs = all_rtl_inputs
                .iter()
                .map(|(n, w)| {
                    let bits: Vec<bool> = (0..*w).map(|_| rng.gen()).collect();
                    (n.clone(), BitVecValue::from_bits(&bits))
                })
                .collect();
            for i in port.inputs() {
                let rtl_name = map
                    .interface_map
                    .get(&i.name)
                    .ok_or_else(|| CosimError::UnmappedInput(i.name.clone()))?;
                let v = rtl_inputs
                    .get(rtl_name)
                    .ok_or_else(|| CosimError::UnknownRtlSignal(rtl_name.clone()))?
                    .clone();
                ila_inputs.insert(i.name.clone(), Value::Bv(v));
            }
            match ila_sim.step(&ila_inputs) {
                Ok(name) => {
                    fired = Some(name);
                    break;
                }
                Err(SimError::NoInstruction { .. }) => continue,
                Err(e) => return Err(CosimError::Sim(e)),
            }
        }
        let Some(fired) = fired else {
            return Err(CosimError::NoDecodableCommand { cycle });
        };
        input_history.push(rtl_inputs.clone());
        ila_state = ila_sim.state().clone();
        rtl_sim
            .step(&rtl_inputs)
            .expect("inputs cover all pins by construction");
        let rtl_view = read_state(&rtl_sim, &rtl_inputs)?;
        for (state, rtl_value) in &rtl_view {
            if map.unchecked_states.contains(state) {
                continue;
            }
            let ila_value = &ila_state[state];
            if ila_value != rtl_value {
                return Ok(Some(Divergence {
                    cycle,
                    instruction: fired,
                    state: state.clone(),
                    ila_value: ila_value.clone(),
                    rtl_value: rtl_value.clone(),
                    inputs: input_history,
                }));
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gila_core::StateKind;
    use gila_rtl::parse_verilog;

    fn counter_setup(step: u64) -> (PortIla, RtlModule, RefinementMap) {
        let mut p = PortIla::new("counter");
        let en = p.input("en", Sort::Bv(1));
        let cnt = p.state("cnt", Sort::Bv(8), StateKind::Output);
        let d = p.ctx_mut().eq_u64(en, 1);
        let one = p.ctx_mut().bv_u64(1, 8);
        let nx = p.ctx_mut().bvadd(cnt, one);
        p.instr("inc").decode(d).update("cnt", nx).add().unwrap();
        let d = p.ctx_mut().eq_u64(en, 0);
        p.instr("hold").decode(d).add().unwrap();
        let rtl = parse_verilog(&format!(
            r#"
module counter(clk, en_in);
  input clk; input en_in;
  reg [7:0] count;
  always @(posedge clk) if (en_in) count <= count + 8'd{step};
endmodule
"#
        ))
        .unwrap();
        let mut map = RefinementMap::new("counter");
        map.map_state("cnt", "count");
        map.map_input("en", "en_in");
        (p, rtl, map)
    }

    #[test]
    fn agreeing_pair_runs_clean() {
        let (p, rtl, map) = counter_setup(1);
        let d = cosimulate(&p, &rtl, &map, 1, 500).unwrap();
        assert!(d.is_none(), "{d:?}");
    }

    #[test]
    fn divergence_is_located() {
        let (p, rtl, map) = counter_setup(2);
        let d = cosimulate(&p, &rtl, &map, 1, 500)
            .unwrap()
            .expect("must diverge");
        assert_eq!(d.state, "cnt");
        assert_eq!(d.instruction, "inc");
        assert_eq!(
            (d.rtl_value.as_bv().to_u64() + 255) % 256,
            d.ila_value.as_bv().to_u64()
        );
    }

    #[test]
    fn config_errors_are_reported() {
        let (p, rtl, mut map) = counter_setup(1);
        map.interface_map.clear();
        assert!(matches!(
            cosimulate(&p, &rtl, &map, 1, 10),
            Err(CosimError::UnmappedInput(_))
        ));
        let (p, rtl, mut map) = counter_setup(1);
        map.map_state("cnt", "ghost");
        assert!(matches!(
            cosimulate(&p, &rtl, &map, 1, 10),
            Err(CosimError::UnknownRtlSignal(_))
        ));
    }
}
