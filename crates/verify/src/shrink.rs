//! Divergence auto-shrinking: reduce a reproducing command stream to a
//! locally minimal one.
//!
//! `gila hunt` finds divergences with deep random traces — hundreds or
//! thousands of commands, almost all of which are irrelevant to the
//! bug. This module replays candidate streams on the compiled backend
//! (one tape compilation, thousands of cheap replays) and applies two
//! reductions:
//!
//! 1. **Command minimization** — delta debugging (ddmin) over the cycle
//!    list for fast bulk removal, then single-removal passes to a
//!    fixpoint. The fixpoint guarantees *1-minimality*: removing any
//!    single remaining command makes the divergence disappear.
//! 2. **Value minimization** — per cycle and per pin, try driving zero,
//!    then try clearing each set bit; keep whatever still reproduces.
//!
//! A candidate *reproduces* when replay diverges on the same ILA state
//! name as the original (the cycle may move — earlier is better). The
//! shrunk stream replays from the same recorded start state, so the
//! result is a standalone, deterministic reproducer.

use gila_core::PortIla;
use gila_expr::BitVecValue;
use gila_rtl::RtlModule;

use crate::compiled::{CompiledCosim, CycleInputs};
use crate::cosim::{CosimError, Divergence};
use crate::refmap::RefinementMap;

/// The outcome of shrinking one divergence.
#[derive(Clone, Debug)]
pub struct ShrinkResult {
    /// The minimized divergence (same state, same start state, shortest
    /// stream found).
    pub divergence: Divergence,
    /// Cycles in the original reproducing stream.
    pub original_cycles: usize,
    /// Replays spent across both minimization phases.
    pub replays: usize,
}

struct Shrinker<'a, 'b> {
    cs: &'b mut CompiledCosim<'a>,
    original: &'b Divergence,
    replays: usize,
}

impl Shrinker<'_, '_> {
    /// Replays `stream`; true iff it diverges on the original state.
    fn reproduces(&mut self, stream: &[CycleInputs]) -> bool {
        self.replays += 1;
        if self.cs.reset(&self.original.start_state).is_err() {
            return false;
        }
        for (cycle, ci) in stream.iter().enumerate() {
            match self.cs.step_stream(cycle, ci) {
                Ok(Some(m_i)) => return self.cs.mapped_name(m_i) == self.original.state,
                Ok(None) => continue,
                // A pruned stream may lose decodability mid-way; that
                // candidate simply doesn't reproduce.
                Err(_) => return false,
            }
        }
        false
    }

    /// Delta debugging over the command list: remove progressively
    /// smaller chunks while the stream still reproduces.
    fn ddmin(&mut self, mut stream: Vec<CycleInputs>) -> Vec<CycleInputs> {
        let mut n = 2usize;
        while stream.len() >= 2 {
            let chunk = stream.len().div_ceil(n);
            let mut any = false;
            let mut start = 0;
            while start < stream.len() {
                let end = (start + chunk).min(stream.len());
                let candidate: Vec<CycleInputs> = stream[..start]
                    .iter()
                    .chain(&stream[end..])
                    .cloned()
                    .collect();
                if !candidate.is_empty() && self.reproduces(&candidate) {
                    stream = candidate;
                    any = true;
                    // `start` stays: the next chunk has shifted into place.
                } else {
                    start = end;
                }
            }
            if any {
                n = n.saturating_sub(1).max(2);
            } else if chunk <= 1 {
                break;
            } else {
                n = (2 * n).min(stream.len());
            }
        }
        stream
    }

    /// Single-command removal to a fixpoint: afterwards, removing any
    /// one command no longer reproduces (1-minimality).
    fn one_minimal(&mut self, mut stream: Vec<CycleInputs>) -> Vec<CycleInputs> {
        loop {
            let mut removed = false;
            let mut i = 0;
            while i < stream.len() && stream.len() > 1 {
                let mut candidate = stream.clone();
                candidate.remove(i);
                if self.reproduces(&candidate) {
                    stream = candidate;
                    removed = true;
                } else {
                    i += 1;
                }
            }
            if !removed {
                return stream;
            }
        }
    }

    /// Per-pin value minimization: drive zero where possible, else clear
    /// individual bits. Applies to word-bank pins and to wide pins (the
    /// latter only via the all-zero attempt).
    fn minimize_values(&mut self, mut stream: Vec<CycleInputs>) -> Vec<CycleInputs> {
        let pins = self.cs.pin_widths().len();
        for cycle in 0..stream.len() {
            for pin in 0..pins {
                let word = stream[cycle].words[pin];
                if word != 0 {
                    let mut candidate = stream.clone();
                    candidate[cycle].words[pin] = 0;
                    if self.reproduces(&candidate) {
                        stream = candidate;
                        continue;
                    }
                    let mut bits = word;
                    while bits != 0 {
                        let bit = bits & bits.wrapping_neg();
                        bits &= bits - 1;
                        let current = stream[cycle].words[pin];
                        if current & bit == 0 {
                            continue;
                        }
                        let mut candidate = stream.clone();
                        candidate[cycle].words[pin] = current & !bit;
                        if self.reproduces(&candidate) {
                            stream = candidate;
                        }
                    }
                }
            }
            for w_i in 0..stream[cycle].wides.len() {
                let (pin, ref v) = stream[cycle].wides[w_i];
                if !v.is_zero() {
                    let mut candidate = stream.clone();
                    candidate[cycle].wides[w_i] = (pin, BitVecValue::zero(v.width()));
                    if self.reproduces(&candidate) {
                        stream = candidate;
                    }
                }
            }
        }
        stream
    }
}

/// Shrinks `divergence` to a locally minimal reproducing command
/// stream: 1-minimal in commands, bit-minimal per driven value, same
/// diverging state, same start state.
///
/// # Errors
///
/// Setup errors from [`CosimError`]; also
/// [`CosimError::NoDecodableCommand`] if the *original* stream fails to
/// reproduce its own divergence (a non-deterministic model).
pub fn shrink_divergence(
    port: &PortIla,
    rtl: &RtlModule,
    map: &RefinementMap,
    divergence: &Divergence,
) -> Result<ShrinkResult, CosimError> {
    let mut cs = CompiledCosim::new(port, rtl, map)?;
    shrink_with(&mut cs, divergence)
}

/// [`shrink_divergence`] over an already-compiled pair — what `gila
/// hunt` uses so each worker compiles a design once.
pub(crate) fn shrink_with(
    cs: &mut CompiledCosim<'_>,
    divergence: &Divergence,
) -> Result<ShrinkResult, CosimError> {
    let encoded: Vec<CycleInputs> = divergence
        .inputs
        .iter()
        .map(|v| cs.encode_inputs(v))
        .collect();
    let original_cycles = encoded.len();
    let mut shrinker = Shrinker {
        cs,
        original: divergence,
        replays: 0,
    };
    if !shrinker.reproduces(&encoded) {
        return Err(CosimError::NoDecodableCommand {
            cycle: divergence.cycle,
        });
    }
    let stream = shrinker.ddmin(encoded);
    let stream = shrinker.one_minimal(stream);
    let stream = shrinker.minimize_values(stream);
    let replays = shrinker.replays;

    // Final replay materializes the minimized divergence.
    cs.reset(&divergence.start_state)?;
    let mut history: Vec<CycleInputs> = Vec::new();
    for (cycle, ci) in stream.iter().enumerate() {
        let diverged = cs.step_stream(cycle, ci)?;
        history.push(ci.clone());
        if let Some(m_i) = diverged {
            return Ok(ShrinkResult {
                divergence: cs.divergence(cycle, m_i, &history, divergence.start_state.clone()),
                original_cycles,
                replays,
            });
        }
    }
    unreachable!("minimized stream stopped reproducing")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiled::cosimulate_compiled;
    use crate::replay_compiled;
    use gila_core::StateKind;
    use gila_expr::Sort;
    use gila_rtl::parse_verilog;

    /// A counter that only miscounts when `en` and `mode` are both high:
    /// the bug needs a specific command, so most of a random trace is
    /// noise the shrinker must strip.
    fn gated_bug() -> (PortIla, RtlModule, RefinementMap) {
        let mut p = PortIla::new("gated");
        let en = p.input("en", Sort::Bv(1));
        let mode = p.input("mode", Sort::Bv(1));
        let cnt = p.state("cnt", Sort::Bv(8), StateKind::Output);
        let _ = mode;
        let d_en = p.ctx_mut().eq_u64(en, 1);
        let one = p.ctx_mut().bv_u64(1, 8);
        let nx = p.ctx_mut().bvadd(cnt, one);
        p.instr("inc").decode(d_en).update("cnt", nx).add().unwrap();
        let d_hold = p.ctx_mut().eq_u64(en, 0);
        p.instr("hold").decode(d_hold).add().unwrap();
        let rtl = parse_verilog(
            r#"
module gated(clk, en_in, mode_in);
  input clk; input en_in; input mode_in;
  reg [7:0] count;
  always @(posedge clk)
    if (en_in) count <= count + (mode_in ? 8'd3 : 8'd1);
endmodule
"#,
        )
        .unwrap();
        let mut map = RefinementMap::new("gated");
        map.map_state("cnt", "count");
        map.map_input("en", "en_in");
        map.map_input("mode", "mode_in");
        (p, rtl, map)
    }

    #[test]
    fn shrinks_to_single_command_and_is_one_minimal() {
        let (p, rtl, map) = gated_bug();
        let d = cosimulate_compiled(&p, &rtl, &map, 3, 400)
            .unwrap()
            .expect("bug must surface");
        let shrunk = shrink_divergence(&p, &rtl, &map, &d).unwrap();
        // The bug is one bad command; the minimal stream is exactly it.
        assert_eq!(shrunk.divergence.inputs.len(), 1);
        assert_eq!(shrunk.divergence.state, d.state);
        assert_eq!(shrunk.original_cycles, d.inputs.len());
        assert!(shrunk.replays > 0);
        // The minimized values still drive both trigger pins high.
        let cmd = &shrunk.divergence.inputs[0];
        assert_eq!(cmd["en_in"].to_u64(), 1);
        assert_eq!(cmd["mode_in"].to_u64(), 1);
        // And the shrunk stream replays to the same divergence.
        let r = replay_compiled(&p, &rtl, &map, &shrunk.divergence.start_state, &shrunk.divergence.inputs)
            .unwrap()
            .expect("shrunk stream reproduces");
        assert_eq!(r.state, d.state);
        // 1-minimality: the empty stream cannot reproduce.
        let r = replay_compiled(&p, &rtl, &map, &shrunk.divergence.start_state, &[]).unwrap();
        assert!(r.is_none());
    }
}
