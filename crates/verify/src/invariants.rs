//! Validation of refinement-map invariants against the RTL.
//!
//! The per-instruction refinement properties assume the user-supplied
//! reachability invariants at the start state. That is sound only if
//! the invariants actually over-approximate the RTL's reachable states;
//! this module closes that gap by proving them with k-induction (or
//! refuting them with a BMC trace from reset).

use gila_expr::import;
use gila_mc::{k_induction, InductionOutcome};
use gila_rtl::{parse_rtl_expr, RtlModule};

use crate::engine::VerifyError;

/// Attempts to prove the conjunction of the given Verilog-expression
/// invariants as an inductive invariant of the RTL (from its declared
/// reset values), with induction depth up to `max_k`.
///
/// * `Proved { k }` — the invariants hold in every reachable state;
///   assuming them in refinement checks is sound.
/// * `Violated(cex)` — a reset-reachable state violates them; the
///   refinement results that relied on them are vacuous for that state.
/// * `Unknown` — neither; strengthen the invariants or raise `max_k`.
///
/// # Errors
///
/// Returns [`VerifyError::Verilog`] for malformed condition strings.
///
/// # Examples
///
/// ```
/// use gila_mc::InductionOutcome;
/// use gila_rtl::parse_verilog;
/// use gila_verify::validate_invariants;
///
/// let rtl = parse_verilog(r#"
/// module m(clk, en);
///   input clk; input en;
///   reg [3:0] phase;
///   initial begin phase = 0; end
///   always @(posedge clk) begin
///     if (phase == 4'd2) phase <= 4'd0;
///     else if (en) phase <= phase + 4'd1;
///   end
/// endmodule
/// "#)?;
/// let outcome = validate_invariants(&rtl, &["phase <= 4'd2".to_string()], 2)?;
/// assert!(matches!(outcome, InductionOutcome::Proved { .. }));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn validate_invariants(
    rtl: &RtlModule,
    invariants: &[String],
    max_k: usize,
) -> Result<InductionOutcome, VerifyError> {
    let mut rtl_scratch = rtl.clone();
    let (mut ts, _signals) = crate::engine::rtl_to_ts(rtl)?;
    let mut memo = std::collections::HashMap::new();
    let mut conjuncts = Vec::new();
    for inv in invariants {
        let e = parse_rtl_expr(&mut rtl_scratch, inv)?;
        let e = import(ts.ctx_mut(), rtl_scratch.ctx(), e, &mut memo);
        let b = ts.ctx_mut().bv_to_bool(e);
        conjuncts.push(b);
    }
    let prop = ts.ctx_mut().and_many(&conjuncts);
    Ok(k_induction(&ts, prop, max_k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gila_rtl::parse_verilog;

    fn phase_machine() -> RtlModule {
        parse_verilog(
            r#"
module m(clk, en);
  input clk; input en;
  reg [3:0] phase;
  initial begin phase = 0; end
  always @(posedge clk) begin
    if (phase == 4'd2) phase <= 4'd0;
    else if (en) phase <= phase + 4'd1;
  end
endmodule
"#,
        )
        .expect("valid")
    }

    #[test]
    fn inductive_invariant_proved() {
        let outcome =
            validate_invariants(&phase_machine(), &["phase <= 4'd2".to_string()], 2).unwrap();
        assert!(matches!(outcome, InductionOutcome::Proved { .. }), "{outcome:?}");
    }

    #[test]
    fn false_invariant_refuted_with_trace() {
        let outcome =
            validate_invariants(&phase_machine(), &["phase <= 4'd1".to_string()], 2).unwrap();
        let InductionOutcome::Violated(cex) = outcome else {
            panic!("expected violation, got {outcome:?}");
        };
        // Reached phase == 2 after two enabled steps.
        assert_eq!(cex.violation_step, 2);
        assert_eq!(
            cex.steps[2].states["phase"].as_bv().to_u64(),
            2
        );
    }

    #[test]
    fn conjunction_of_invariants() {
        let outcome = validate_invariants(
            &phase_machine(),
            &["phase <= 4'd2".to_string(), "phase != 4'd9".to_string()],
            2,
        )
        .unwrap();
        assert!(matches!(outcome, InductionOutcome::Proved { .. }));
    }

    #[test]
    fn bad_expression_is_an_error() {
        assert!(validate_invariants(&phase_machine(), &["ghost == 1".to_string()], 1).is_err());
    }

    #[test]
    fn noc_router_pointer_invariant_is_inductive() {
        // The invariant the NoC router refinement maps assume.
        let rtl = gila_designs_stub();
        let outcome = validate_invariants(&rtl, &["rt_rr <= 3'd4".to_string()], 1).unwrap();
        assert!(
            matches!(outcome, InductionOutcome::Proved { .. }),
            "{outcome:?}"
        );
    }

    /// A local copy of the router's pointer-update logic (the designs
    /// crate depends on this one, so we cannot import it here).
    fn gila_designs_stub() -> RtlModule {
        parse_verilog(
            r#"
module rr(clk, a, b);
  input clk; input a; input b;
  reg [2:0] rt_rr;
  initial begin rt_rr = 0; end
  wire [2:0] winner = a ? 3'd0 : 3'd4;
  always @(posedge clk) begin
    if (a && b) rt_rr <= (winner == 3'd4) ? 3'd0 : winner + 3'd1;
  end
endmodule
"#,
        )
        .expect("valid")
    }
}
