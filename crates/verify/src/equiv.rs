//! Sequential equivalence checking of two RTL modules (a miter
//! construction): do two implementations produce the same observable
//! signals, cycle for cycle, from reset under all input sequences?
//!
//! Used to compare hand-written RTL against ILA-synthesized RTL, or a
//! fixed design against a patched one.

use std::collections::HashMap;
use std::fmt;

use gila_expr::{import_mapped, ExprRef, Sort, Value};
use gila_mc::{bmc_safety, BmcOutcome, Counterexample, TransitionSystem};
use gila_rtl::RtlModule;

/// An error setting up the equivalence check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EquivError {
    /// The two modules' input pins differ (equivalence needs a common
    /// stimulus alphabet).
    InputMismatch {
        /// Description of the difference.
        detail: String,
    },
    /// A compared signal does not exist or the pair has different widths.
    SignalMismatch {
        /// Description of the problem.
        detail: String,
    },
}

impl fmt::Display for EquivError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EquivError::InputMismatch { detail } => write!(f, "input mismatch: {detail}"),
            EquivError::SignalMismatch { detail } => write!(f, "signal mismatch: {detail}"),
        }
    }
}

impl std::error::Error for EquivError {}

/// Outcome of a bounded sequential equivalence check.
#[derive(Clone, Debug)]
pub enum EquivOutcome {
    /// The compared signals agree on every cycle up to the bound.
    EquivalentUpTo(
        /// The bound checked.
        usize,
    ),
    /// The modules diverge; the trace is over the miter (signals of the
    /// first module keep their names, the second module's are prefixed
    /// with `b__`).
    Diverges(
        /// The witnessing trace.
        Box<Counterexample>,
    ),
}

impl EquivOutcome {
    /// True if no divergence was found.
    pub fn equivalent(&self) -> bool {
        matches!(self, EquivOutcome::EquivalentUpTo(_))
    }
}

fn add_side(
    ts: &mut TransitionSystem,
    rtl: &RtlModule,
    prefix: &str,
) -> Result<HashMap<String, ExprRef>, EquivError> {
    // States are prefixed; inputs are shared (created by caller).
    let mut var_map: HashMap<ExprRef, ExprRef> = HashMap::new();
    for i in rtl.inputs() {
        let shared = ts
            .ctx()
            .find_var(&i.name)
            .expect("caller declares the shared inputs first");
        var_map.insert(i.var, shared);
    }
    for r in rtl.regs() {
        let v = ts.state(format!("{prefix}{}", r.name), Sort::Bv(r.width));
        if let Some(init) = &r.init {
            ts.set_init(&format!("{prefix}{}", r.name), init.clone())
                .expect("declared");
        } else {
            // Equivalence is from reset; registers without declared
            // resets start at zero in both sides (documented convention,
            // matching the simulators).
            ts.set_init(
                &format!("{prefix}{}", r.name),
                Value::Bv(gila_expr::BitVecValue::zero(r.width)),
            )
            .expect("declared");
        }
        var_map.insert(r.var, v);
    }
    for m in rtl.mems() {
        let name = format!("{prefix}{}", m.name);
        let v = ts.state(
            name.clone(),
            Sort::Mem {
                addr_width: m.addr_width,
                data_width: m.data_width,
            },
        );
        let init = m
            .init
            .clone()
            .unwrap_or_else(|| gila_expr::MemValue::zeroed(m.addr_width, m.data_width));
        ts.set_init(&name, Value::Mem(init)).expect("declared");
        var_map.insert(m.var, v);
    }
    // Next-state functions and named signals through the variable map.
    let mut memo = HashMap::new();
    let mut import = |ts: &mut TransitionSystem, e: ExprRef| -> ExprRef {
        import_mapped(ts.ctx_mut(), rtl.ctx(), e, &var_map, &mut memo)
            .expect("all rtl variables mapped")
    };
    let mut signals: HashMap<String, ExprRef> = HashMap::new();
    for r in rtl.regs() {
        let next = import(ts, r.next);
        ts.set_next(&format!("{prefix}{}", r.name), next)
            .expect("declared");
        signals.insert(r.name.clone(), var_map[&r.var]);
    }
    for m in rtl.mems() {
        let next = import(ts, m.next);
        ts.set_next(&format!("{prefix}{}", m.name), next)
            .expect("declared");
        signals.insert(m.name.clone(), var_map[&m.var]);
    }
    for s in rtl.signals() {
        let e = import(ts, s.expr);
        signals.insert(s.name.clone(), e);
    }
    for i in rtl.inputs() {
        signals.insert(i.name.clone(), var_map[&i.var]);
    }
    Ok(signals)
}

/// Checks that `a` and `b` — two modules with identical input pins —
/// keep every signal pair in `compare` equal on every cycle from reset,
/// for all input sequences of length up to `bound`.
///
/// # Errors
///
/// Returns [`EquivError`] if the interfaces or compared signals do not
/// line up.
pub fn check_rtl_equivalence(
    a: &RtlModule,
    b: &RtlModule,
    compare: &[(&str, &str)],
    bound: usize,
) -> Result<EquivOutcome, EquivError> {
    // Interfaces must agree (names and widths).
    for ia in a.inputs() {
        match b.find_input(&ia.name) {
            Some(ib) if ib.width == ia.width => {}
            Some(ib) => {
                return Err(EquivError::InputMismatch {
                    detail: format!(
                        "input {:?} has width {} in one module and {} in the other",
                        ia.name, ia.width, ib.width
                    ),
                })
            }
            None => {
                return Err(EquivError::InputMismatch {
                    detail: format!("input {:?} missing from the second module", ia.name),
                })
            }
        }
    }
    for ib in b.inputs() {
        if a.find_input(&ib.name).is_none() {
            return Err(EquivError::InputMismatch {
                detail: format!("input {:?} missing from the first module", ib.name),
            });
        }
    }
    let mut ts = TransitionSystem::new(format!("{}_vs_{}", a.name(), b.name()));
    for i in a.inputs() {
        ts.input(i.name.clone(), Sort::Bv(i.width));
    }
    let sig_a = add_side(&mut ts, a, "")?;
    let sig_b = add_side(&mut ts, b, "b__")?;
    // The property: all compared pairs equal.
    let mut eqs = Vec::new();
    for (na, nb) in compare {
        let ea = sig_a.get(*na).copied().ok_or_else(|| EquivError::SignalMismatch {
            detail: format!("{na:?} not found in {}", a.name()),
        })?;
        let eb = sig_b.get(*nb).copied().ok_or_else(|| EquivError::SignalMismatch {
            detail: format!("{nb:?} not found in {}", b.name()),
        })?;
        let sa = ts.ctx().sort_of(ea);
        let sb = ts.ctx().sort_of(eb);
        if sa != sb {
            return Err(EquivError::SignalMismatch {
                detail: format!("{na:?} has sort {sa}, {nb:?} has sort {sb}"),
            });
        }
        eqs.push(ts.ctx_mut().eq(ea, eb));
    }
    let prop = ts.ctx_mut().and_many(&eqs);
    Ok(match bmc_safety(&ts, prop, bound).0 {
        BmcOutcome::HoldsUpTo(k) => EquivOutcome::EquivalentUpTo(k),
        BmcOutcome::Violated(cex) => EquivOutcome::Diverges(cex),
        // Unreachable: unbounded bmc_safety installs no solve limits.
        BmcOutcome::Unknown { reason, at_step } => {
            unreachable!("unbounded BMC gave up ({reason:?} at step {at_step})")
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gila_rtl::parse_verilog;

    fn counter(step: &str) -> RtlModule {
        parse_verilog(&format!(
            r#"
module counter(clk, en);
  input clk; input en;
  reg [3:0] cnt;
  initial begin cnt = 0; end
  always @(posedge clk) if (en) cnt <= cnt + {step};
endmodule
"#
        ))
        .expect("valid")
    }

    #[test]
    fn identical_modules_are_equivalent() {
        let a = counter("4'd1");
        let b = counter("4'd1");
        let outcome = check_rtl_equivalence(&a, &b, &[("cnt", "cnt")], 6).unwrap();
        assert!(outcome.equivalent(), "{outcome:?}");
    }

    #[test]
    fn semantically_equal_but_structurally_different() {
        let a = counter("4'd1");
        // +1 written as subtracting minus-one.
        let b = counter("(-4'd15)");
        let outcome = check_rtl_equivalence(&a, &b, &[("cnt", "cnt")], 6).unwrap();
        assert!(outcome.equivalent(), "{outcome:?}");
    }

    #[test]
    fn divergent_modules_produce_a_trace() {
        let a = counter("4'd1");
        let b = counter("4'd2");
        let outcome = check_rtl_equivalence(&a, &b, &[("cnt", "cnt")], 6).unwrap();
        let EquivOutcome::Diverges(cex) = outcome else {
            panic!("expected divergence");
        };
        // First divergence: the first enabled cycle.
        let step = cex.violation_step;
        assert_eq!(
            cex.steps[step].states["cnt"].as_bv().to_u64().abs_diff(
                cex.steps[step].states["b__cnt"].as_bv().to_u64()
            ),
            1
        );
    }

    #[test]
    fn interface_mismatches_are_errors() {
        let a = counter("4'd1");
        let b = parse_verilog(
            r#"
module other(clk, enable);
  input clk; input enable;
  reg [3:0] cnt;
  always @(posedge clk) if (enable) cnt <= cnt + 4'd1;
endmodule
"#,
        )
        .unwrap();
        assert!(matches!(
            check_rtl_equivalence(&a, &b, &[("cnt", "cnt")], 4),
            Err(EquivError::InputMismatch { .. })
        ));
        let c = counter("4'd1");
        assert!(matches!(
            check_rtl_equivalence(&a, &c, &[("ghost", "cnt")], 4),
            Err(EquivError::SignalMismatch { .. })
        ));
    }
}
