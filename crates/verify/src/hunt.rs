//! Mass randomized bug hunting on the compiled simulation backend.
//!
//! A hunt is a grid of independent co-simulation tasks — every
//! `(design, port)` pair crossed with `seeds` random seeds, each running
//! up to `cycles` commands on [`crate::cosimulate_compiled`]'s tape
//! backend. Tasks are distributed over a small worker pool (`jobs`
//! threads, an atomic task counter — the tasks are uniform enough that
//! work stealing would buy nothing), and each worker compiles every
//! design it touches exactly once, so steady-state cost is pure tape
//! execution.
//!
//! Every divergence found is auto-shrunk ([`crate::shrink_divergence`])
//! to a locally minimal command stream unless the config says otherwise.
//! The report is deterministic: findings are keyed and sorted by
//! `(design, port, seed)`, independent of worker interleaving — the
//! property the jobs=1-vs-jobs=N tests pin down.
//!
//! Telemetry: one `compile` span per (worker, design, port) tape
//! compilation and one `eval` span per task, so `gila hunt --trace` is
//! comparable across job counts via `gila_trace::span_set`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use gila_core::PortIla;
use gila_rtl::RtlModule;
use gila_trace::{Event, SpanKind, Tracer};

use crate::compiled::CompiledCosim;
use crate::cosim::{CosimError, Divergence};
use crate::refmap::RefinementMap;
use crate::shrink::{shrink_with, ShrinkResult};

/// One (design, port) pair to hunt over.
#[derive(Clone, Copy, Debug)]
pub struct HuntTarget<'a> {
    /// Design name (for reporting; ports of one design share it).
    pub design: &'a str,
    /// The port-ILA specification.
    pub port: &'a PortIla,
    /// The RTL implementation.
    pub rtl: &'a RtlModule,
    /// The refinement map tying them together.
    pub map: &'a RefinementMap,
}

/// Hunt dimensions and behaviour.
#[derive(Clone, Debug)]
pub struct HuntConfig {
    /// Random seeds per target.
    pub seeds: u64,
    /// Maximum commands per seed.
    pub cycles: usize,
    /// Worker threads.
    pub jobs: usize,
    /// First seed; task `(target, i)` runs seed `seed_base + i`.
    pub seed_base: u64,
    /// Auto-shrink every divergence found.
    pub shrink: bool,
}

impl Default for HuntConfig {
    fn default() -> Self {
        HuntConfig {
            seeds: 256,
            cycles: 1024,
            jobs: 1,
            seed_base: 0xB06,
            shrink: true,
        }
    }
}

/// One divergence found by a hunt.
#[derive(Clone, Debug)]
pub struct HuntFinding {
    /// Design name of the target.
    pub design: String,
    /// Port name of the target.
    pub port: String,
    /// The seed that found it.
    pub seed: u64,
    /// The divergence as first observed.
    pub divergence: Divergence,
    /// The shrunk reproducer (absent when shrinking is disabled or the
    /// stream failed to replay deterministically).
    pub shrunk: Option<ShrinkResult>,
}

/// Aggregate outcome of a hunt.
#[derive(Clone, Debug, Default)]
pub struct HuntReport {
    /// All divergences, sorted by `(design, port, seed)`.
    pub findings: Vec<HuntFinding>,
    /// Total tasks executed (targets × seeds).
    pub tasks: usize,
    /// Tasks that ran all cycles without divergence.
    pub clean_tasks: usize,
    /// Tasks that errored (e.g. no decodable command for a seed), as
    /// `(design, port, seed, error)`, sorted like findings.
    pub errors: Vec<(String, String, u64, String)>,
    /// Co-simulated cycles summed over all tasks.
    pub cycles_run: u64,
}

enum TaskOutcome {
    Clean { cycles: u64 },
    Found { cycles: u64, finding: Box<HuntFinding> },
    Error { error: String },
}

/// Runs the full hunt grid over `targets`.
///
/// # Errors
///
/// Configuration errors ([`CosimError::UnmappedInput`],
/// [`CosimError::UnknownRtlSignal`], sort mismatches) are returned
/// up front — they would fail every seed of a target identically.
/// Per-seed errors (a seed that decodes no command) are collected in
/// [`HuntReport::errors`] instead.
pub fn hunt(
    targets: &[HuntTarget<'_>],
    config: &HuntConfig,
    tracer: &Tracer,
) -> Result<HuntReport, CosimError> {
    // Validate every target once; workers can then treat compile as
    // infallible.
    for t in targets {
        CompiledCosim::new(t.port, t.rtl, t.map)?;
    }

    let seeds = config.seeds.max(1);
    let total = targets.len() * seeds as usize;
    let next = AtomicUsize::new(0);
    let outcomes: Mutex<Vec<(usize, TaskOutcome)>> = Mutex::new(Vec::with_capacity(total));
    let jobs = config.jobs.max(1).min(total.max(1));

    std::thread::scope(|scope| {
        for worker in 0..jobs {
            let next = &next;
            let outcomes = &outcomes;
            scope.spawn(move || {
                let mut compiled: HashMap<usize, CompiledCosim<'_>> = HashMap::new();
                let mut local: Vec<(usize, TaskOutcome)> = Vec::new();
                loop {
                    let task = next.fetch_add(1, Ordering::Relaxed);
                    if task >= total {
                        break;
                    }
                    let t_i = task / seeds as usize;
                    let seed = config.seed_base + (task % seeds as usize) as u64;
                    let target = &targets[t_i];
                    let cs = compiled.entry(t_i).or_insert_with(|| {
                        let cs = CompiledCosim::new(target.port, target.rtl, target.map)
                            .expect("targets validated up front");
                        tracer.record(|| {
                            Event::new(SpanKind::Compile)
                                .port(target.port.name())
                                .label(target.design)
                                .worker(Some(worker))
                                .field("tape_instrs", cs.tape_len() as u64)
                        });
                        cs
                    });
                    let outcome = match cs.run_random(seed, config.cycles) {
                        Ok((None, cycles)) => TaskOutcome::Clean {
                            cycles: cycles as u64,
                        },
                        Ok((Some(divergence), cycles)) => {
                            let shrunk = if config.shrink {
                                shrink_with(cs, &divergence).ok()
                            } else {
                                None
                            };
                            TaskOutcome::Found {
                                cycles: cycles as u64,
                                finding: Box::new(HuntFinding {
                                    design: target.design.to_string(),
                                    port: target.port.name().to_string(),
                                    seed,
                                    divergence,
                                    shrunk,
                                }),
                            }
                        }
                        Err(e) => TaskOutcome::Error {
                            error: e.to_string(),
                        },
                    };
                    tracer.record(|| {
                        let (cycles, diverged) = match &outcome {
                            TaskOutcome::Clean { cycles } => (*cycles, 0),
                            TaskOutcome::Found { cycles, .. } => (*cycles, 1),
                            TaskOutcome::Error { .. } => (0, 0),
                        };
                        Event::new(SpanKind::Eval)
                            .port(target.port.name())
                            .label(&format!("{}#{seed}", target.design))
                            .worker(Some(worker))
                            .field("cycles", cycles)
                            .field("diverged", diverged)
                    });
                    local.push((task, outcome));
                }
                outcomes
                    .lock()
                    .expect("hunt outcome collector poisoned")
                    .append(&mut local);
            });
        }
    });

    let mut outcomes = outcomes.into_inner().expect("hunt outcome collector poisoned");
    outcomes.sort_by_key(|(task, _)| *task);

    let mut report = HuntReport {
        tasks: total,
        ..HuntReport::default()
    };
    for (task, outcome) in outcomes {
        match outcome {
            TaskOutcome::Clean { cycles } => {
                report.clean_tasks += 1;
                report.cycles_run += cycles;
            }
            TaskOutcome::Found { cycles, finding } => {
                report.cycles_run += cycles;
                report.findings.push(*finding);
            }
            TaskOutcome::Error { error } => {
                let t_i = task / seeds as usize;
                let seed = config.seed_base + (task % seeds as usize) as u64;
                report.errors.push((
                    targets[t_i].design.to_string(),
                    targets[t_i].port.name().to_string(),
                    seed,
                    error,
                ));
            }
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.design, &a.port, a.seed).cmp(&(&b.design, &b.port, b.seed)));
    report.errors.sort();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gila_core::StateKind;
    use gila_expr::Sort;
    use gila_rtl::parse_verilog;
    use gila_trace::span_set;

    fn counter(step: u64) -> (PortIla, RtlModule, RefinementMap) {
        let mut p = PortIla::new("counter");
        let en = p.input("en", Sort::Bv(1));
        let cnt = p.state("cnt", Sort::Bv(8), StateKind::Output);
        let d = p.ctx_mut().eq_u64(en, 1);
        let one = p.ctx_mut().bv_u64(1, 8);
        let nx = p.ctx_mut().bvadd(cnt, one);
        p.instr("inc").decode(d).update("cnt", nx).add().unwrap();
        let d = p.ctx_mut().eq_u64(en, 0);
        p.instr("hold").decode(d).add().unwrap();
        let rtl = parse_verilog(&format!(
            r#"
module counter(clk, en_in);
  input clk; input en_in;
  reg [7:0] count;
  always @(posedge clk) if (en_in) count <= count + 8'd{step};
endmodule
"#
        ))
        .unwrap();
        let mut map = RefinementMap::new("counter");
        map.map_state("cnt", "count");
        map.map_input("en", "en_in");
        (p, rtl, map)
    }

    fn run(jobs: usize, tracer: &Tracer) -> HuntReport {
        let good = counter(1);
        let bad = counter(2);
        let targets = [
            HuntTarget {
                design: "good",
                port: &good.0,
                rtl: &good.1,
                map: &good.2,
            },
            HuntTarget {
                design: "bad",
                port: &bad.0,
                rtl: &bad.1,
                map: &bad.2,
            },
        ];
        let config = HuntConfig {
            seeds: 6,
            cycles: 128,
            jobs,
            ..HuntConfig::default()
        };
        hunt(&targets, &config, tracer).unwrap()
    }

    #[test]
    fn finds_only_the_buggy_design_and_shrinks() {
        let report = run(2, &Tracer::disabled());
        assert_eq!(report.tasks, 12);
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        // Every seed of the good design is clean; every seed of the bad
        // one diverges (any en=1 cycle exposes step=2).
        assert_eq!(report.clean_tasks, 6);
        assert_eq!(report.findings.len(), 6);
        assert!(report.cycles_run > 0);
        let mut last_seed = None;
        for f in &report.findings {
            assert_eq!(f.design, "bad");
            assert_eq!(f.port, "counter");
            let s = f.shrunk.as_ref().expect("shrinking enabled");
            assert_eq!(s.divergence.inputs.len(), 1, "step bug needs one command");
            assert_eq!(s.divergence.state, f.divergence.state);
            if let Some(prev) = last_seed {
                assert!(f.seed > prev, "findings sorted by seed");
            }
            last_seed = Some(f.seed);
        }
    }

    #[test]
    fn span_set_is_identical_across_job_counts() {
        let (t1, ring1) = Tracer::ring(4096);
        let (t4, ring4) = Tracer::ring(4096);
        let r1 = run(1, &t1);
        let r4 = run(4, &t4);
        assert_eq!(r1.findings.len(), r4.findings.len());
        assert_eq!(r1.clean_tasks, r4.clean_tasks);
        let jsonl = |events: Vec<Event>| {
            events
                .iter()
                .map(|e| e.to_json_line())
                .collect::<Vec<_>>()
                .join("\n")
        };
        let s1 = span_set(&jsonl(ring1.events())).unwrap();
        let s4 = span_set(&jsonl(ring4.events())).unwrap();
        assert_eq!(s1, s4);
        // compile spans for both designs + one eval span per task.
        assert!(s1.len() >= 12 + 2, "{s1:?}");
    }
}
